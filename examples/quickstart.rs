//! Quickstart: run a small combustion proxy with hybrid in-situ/in-transit
//! statistics and print the per-step summaries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sitra::core::{run_pipeline, AnalysisSpec, HybridStats, PipelineConfig, Placement};
use sitra::sim::{SimConfig, Simulation, Variable};
use std::sync::Arc;

fn main() {
    // A 32×24×20 lifted-flame proxy, decomposed over 2×2×1 ranks, with
    // two staging buckets and hybrid statistics every step.
    let mut sim = Simulation::new(SimConfig::small([32, 24, 20], 42));
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, 5);
    cfg.extra_variables = vec![Variable::Pressure, Variable::Species(5)]; // + Y_OH
    cfg.analyses = vec![AnalysisSpec::new(
        Arc::new(HybridStats::default()),
        Placement::Hybrid,
        1,
    )];

    let result = run_pipeline(&mut sim, &cfg).expect("valid config");

    println!("step | variable |    mean |  stddev |     min |     max");
    println!("-----+----------+---------+---------+---------+--------");
    for step in 1..=5u64 {
        let stats = result
            .output("stats", step)
            .expect("stats every step")
            .as_stats()
            .unwrap();
        for (name, d) in stats {
            println!(
                "{step:4} | {name:8} | {:7.2} | {:7.2} | {:7.2} | {:7.2}",
                d.mean, d.std_dev, d.min, d.max
            );
        }
    }

    let m = &result.metrics;
    println!(
        "\nper step: learn in-situ {:.2} ms, model payload {:.0} B, derive in-transit {:.3} ms",
        1e3 * m.mean_insitu_secs("stats"),
        m.mean_movement_bytes("stats"),
        1e3 * m.mean_aggregate_secs("stats"),
    );
    println!(
        "the simulation shipped {:.0} bytes of models instead of {} bytes of raw data per step",
        m.mean_movement_bytes("stats"),
        32 * 24 * 20 * 3 * 8
    );
}
