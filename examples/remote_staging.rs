//! Remote staging: the simulation stages its hybrid analyses through a
//! space server on a real TCP socket, with bucket workers connecting
//! over loopback — the same wiring as running `sitra-staged` and worker
//! processes on separate nodes, collapsed into one process for the demo.
//!
//! ```text
//! cargo run --release --example remote_staging
//! ```
//!
//! Set `SITRA_STAGED_ENDPOINT=tcp://host:port` to skip the in-process
//! server and stage through an already-running `sitra-staged` instead
//! (whose `--metrics-listen` endpoint then shows the run's net,
//! scheduler, and space metrics live). The driver closes the remote
//! scheduler when it finishes, which also shuts the service down.

use sitra::core::remote::{run_bucket_worker, BucketWorkerOpts};
use sitra::core::{run_pipeline, AnalysisSpec, HybridViz, PipelineConfig, Placement};
use sitra::dataspaces::SpaceServer;
use sitra::mesh::BBox3;
use sitra::net::Addr;
use sitra::sim::{SimConfig, Simulation};
use sitra::viz::{TransferFunction, View, ViewAxis};
use std::sync::Arc;

const DIMS: [usize; 3] = [32, 24, 20];
const STEPS: usize = 5;
const WORKERS: usize = 2;

fn specs() -> Vec<AnalysisSpec> {
    vec![AnalysisSpec::new(
        Arc::new(HybridViz {
            stride: 2,
            view: View::full_res(BBox3::from_dims(DIMS), ViewAxis::Z, false),
            tf: TransferFunction::hot(250.0, 2500.0),
        }),
        Placement::Hybrid,
        1,
    )]
}

fn main() {
    // 1. The staging service — in production this is `sitra-staged
    //    --listen tcp://…` on dedicated nodes, and pointing
    //    SITRA_STAGED_ENDPOINT at it uses exactly that deployment.
    // SITRA_JOURNAL=path journals the driver's span events as JSONL;
    // replay the per-stage breakdown offline with
    // `cargo run -p sitra-bench --bin obs_report -- path`.
    let journal = std::env::var_os("SITRA_JOURNAL")
        .map(|p| sitra::obs::set_journal_path(std::path::Path::new(&p)).expect("open journal"));

    let external = std::env::var("SITRA_STAGED_ENDPOINT").ok().map(|e| {
        e.parse::<Addr>()
            .expect("SITRA_STAGED_ENDPOINT must be a valid address")
    });
    let server = if external.is_none() {
        let bind: Addr = "tcp://127.0.0.1:0".parse().unwrap();
        Some(SpaceServer::start(&bind, 2).expect("start staging server"))
    } else {
        None
    };
    let endpoint = match &external {
        Some(addr) => addr.clone(),
        None => server.as_ref().unwrap().addr(),
    };
    println!("staging service on {endpoint}");

    // 2. Bucket workers — in production, separate `run_bucket_worker`
    //    processes pointed at the same endpoint.
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let ep = endpoint.clone();
            std::thread::spawn(move || {
                run_bucket_worker(&ep, &specs(), w as u32, &BucketWorkerOpts::default())
                    .expect("bucket worker")
            })
        })
        .collect();

    // 3. The simulation driver: identical pipeline code, plus one line
    //    pointing hybrid staging at the remote endpoint.
    let mut sim = Simulation::new(SimConfig::small(DIMS, 42));
    let mut cfg =
        PipelineConfig::new([2, 2, 1], 2, STEPS).with_staging_endpoint(endpoint.to_string());
    cfg.analyses = specs();
    let result = run_pipeline(&mut sim, &cfg).expect("valid config");

    let completed: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    if let Some(server) = &server {
        let stats = server.sched_stats();
        println!(
            "{} steps rendered in-transit by {} remote workers ({} tasks assigned, {} requeued)",
            STEPS, WORKERS, stats.tasks_assigned, stats.tasks_requeued
        );
    } else {
        println!("{STEPS} steps rendered in-transit by {WORKERS} remote workers");
    }
    for step in 1..=STEPS as u64 {
        let img = result
            .output("viz-hybrid", step)
            .and_then(|o| o.as_image())
            .expect("image every step");
        let bright = img
            .pixels()
            .iter()
            .filter(|p| p[0] + p[1] + p[2] > 0.5)
            .count();
        println!(
            "  step {step}: {}x{} image, {bright} bright pixels",
            img.width(),
            img.height()
        );
    }
    println!("workers completed {completed} tasks; shutting down");
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(j) = journal {
        j.flush();
    }
}
