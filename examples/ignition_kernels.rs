//! Ignition-kernel science: run the hybrid merge-tree analysis every
//! step, simplify the tree by persistence, and track the surviving
//! hot-spot features over time — the analysis that is *impossible* with
//! post-processing at conventional save cadences (the paper's Fig. 1).
//!
//! ```text
//! cargo run --release --example ignition_kernels
//! ```

use sitra::core::{
    run_pipeline, AnalysisSpec, FeatureStats, HybridTopology, PipelineConfig, Placement,
};
use sitra::sim::{SimConfig, Simulation, Variable};
use sitra::topology::distributed::BoundaryPolicy;
use sitra::topology::{segment_superlevel, track_features, Connectivity, Segmentation};
use std::sync::Arc;

const DIMS: [usize; 3] = [48, 32, 32];
const STEPS: usize = 30;
const KERNEL_THRESHOLD: f64 = 2650.0;

fn main() {
    let mut sim = Simulation::new(SimConfig {
        kernel_spawn_rate: 0.8,
        kernel_lifetime: 10,
        kernel_amplitude: 900.0,
        ..SimConfig::small(DIMS, 2024)
    });

    // The hybrid pipeline computes the global merge tree every step,
    // plus per-feature statistics (one statistical model per connected
    // hot region — the paper's "feature-based statistics" future work).
    let mut cfg = PipelineConfig::new([2, 2, 1], 3, STEPS);
    cfg.analyses = vec![
        AnalysisSpec::new(Arc::new(HybridTopology::default()), Placement::Hybrid, 1),
        AnalysisSpec::new(
            Arc::new(FeatureStats {
                threshold: KERNEL_THRESHOLD,
                conn: Connectivity::Six,
                policy: BoundaryPolicy::BoundaryMaxima,
            }),
            Placement::Hybrid,
            1,
        ),
    ];
    let result = run_pipeline(&mut sim, &cfg).expect("valid config");

    // Count high-temperature maxima per step from the in-transit trees.
    println!("step | tree nodes | maxima > {KERNEL_THRESHOLD} K");
    let mut hot_counts = Vec::new();
    for step in 1..=STEPS as u64 {
        let tree = result.output("topology", step).unwrap().as_tree().unwrap();
        let hot = tree
            .nodes
            .iter()
            .filter(|(_, v)| *v > KERNEL_THRESHOLD)
            .count();
        hot_counts.push(hot);
        if step <= 10 {
            println!("{step:4} | {:10} | {hot}", tree.nodes.len());
        }
    }
    println!(
        "  ... ({} steps; hot maxima seen on {} of them)",
        STEPS,
        hot_counts.iter().filter(|&&h| h > 0).count()
    );

    // Per-kernel statistics from the in-transit feature-stats analysis.
    println!("\nper-feature statistics (steps with hot kernels):");
    let mut shown = 0;
    for step in 1..=STEPS as u64 {
        let feats = result
            .output("feature-stats", step)
            .unwrap()
            .as_stats()
            .unwrap();
        if feats.is_empty() || shown >= 5 {
            continue;
        }
        shown += 1;
        for (name, d) in feats {
            println!(
                "  step {step:3} {name}: {} cells, T = {:.0} ± {:.0} K (peak {:.0})",
                d.count, d.mean, d.std_dev, d.max
            );
        }
    }

    // Track the kernels through time with segmentation overlap (the
    // segmentations here are recomputed serially from the deterministic
    // proxy; in a production deployment the in-transit stage would also
    // emit them).
    let mut sim2 = Simulation::new(SimConfig {
        kernel_spawn_rate: 0.8,
        kernel_lifetime: 10,
        kernel_amplitude: 900.0,
        ..SimConfig::small(DIMS, 2024)
    });
    let g = sim2.global();
    let segs: Vec<Segmentation> = (0..STEPS)
        .map(|_| {
            sim2.advance();
            let f = sim2.block_field(Variable::Temperature, &g);
            segment_superlevel(&f, &g, KERNEL_THRESHOLD, Connectivity::TwentySix, None)
        })
        .collect();
    let tracks = track_features(&segs, 2);
    println!("\nkernel tracks (birth step, lifetime in observations):");
    for t in tracks.iter().filter(|t| t.length() >= 2) {
        println!(
            "  born at step {:3}, tracked for {:2} steps (labels {:?} ...)",
            t.birth_step + 1,
            t.length(),
            &t.labels[..t.labels.len().min(3)]
        );
    }
    let spawned = sim2.kernels().total_spawned();
    println!(
        "\n{} kernels spawned, {} multi-step tracks recovered at per-step cadence —\n\
         at a save interval of 400 steps (conventional post-processing), every one \
         of these would be invisible.",
        spawned,
        tracks.iter().filter(|t| t.length() >= 2).count()
    );
}
