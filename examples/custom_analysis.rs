//! Extending the framework: a user-defined hybrid analysis.
//!
//! The paper argues a large class of algorithms decomposes into a
//! data-parallel in-situ stage plus a small aggregation stage. This
//! example implements one from scratch — per-rank histograms of the OH
//! mass fraction merged in-transit into global quantiles — and registers
//! it alongside the built-ins. Everything (transport, scheduling,
//! metrics) comes from the framework.
//!
//! ```text
//! cargo run --release --example custom_analysis
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sitra::core::{
    run_pipeline, Analysis, AnalysisOutput, AnalysisSpec, InSituCtx, PipelineConfig, Placement,
};
use sitra::sim::{SimConfig, Simulation, Variable};
use sitra::stats::Histogram;
use std::sync::Arc;

/// Histogram of Y_OH with fixed binning; in-situ stage = local fill,
/// aggregation = exact merge + quantile extraction.
struct OhHistogram {
    bins: usize,
}

const RANGE: (f64, f64) = (0.0, 0.02);

impl Analysis for OhHistogram {
    fn name(&self) -> &str {
        "oh-histogram"
    }

    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        let field = ctx.var("Y_OH").expect("Y_OH materialized");
        let mut h = Histogram::new(RANGE.0, RANGE.1, self.bins);
        h.extend(field.as_slice());
        // Compact wire format: counts + under/overflow.
        let mut buf = BytesMut::with_capacity(8 * (self.bins + 2));
        buf.put_u64_le(h.underflow);
        buf.put_u64_le(h.overflow);
        for &c in h.counts() {
            buf.put_u64_le(c);
        }
        buf.freeze()
    }

    fn aggregate(&self, _step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        let mut total = Histogram::new(RANGE.0, RANGE.1, self.bins);
        for (_, bytes) in parts {
            let mut b = bytes.clone();
            let underflow = b.get_u64_le();
            let overflow = b.get_u64_le();
            let counts: Vec<u64> = (0..self.bins).map(|_| b.get_u64_le()).collect();
            total.merge(&Histogram::from_parts(
                RANGE.0, RANGE.1, counts, underflow, overflow,
            ));
        }
        // Publish the quantiles as a tiny "stats" output.
        let mut m = sitra::stats::Moments::new();
        for q in [0.5, 0.9, 0.99] {
            if let Some(v) = total.quantile(q) {
                m.push(v);
            }
        }
        AnalysisOutput::Stats(vec![(
            "Y_OH quantiles(p50,p90,p99)".to_string(),
            sitra::stats::derive(&m).unwrap(),
        )])
    }
}

fn main() {
    let mut sim = Simulation::new(SimConfig::small([32, 24, 20], 11));
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, 4);
    cfg.extra_variables = vec![Variable::Species(5)]; // Y_OH
    cfg.analyses = vec![AnalysisSpec::new(
        Arc::new(OhHistogram { bins: 64 }),
        Placement::Hybrid,
        1,
    )];
    let result = run_pipeline(&mut sim, &cfg).expect("valid config");

    println!("step | Y_OH p50..p99 span | payload/rank (B)");
    for step in 1..=4u64 {
        let out = result
            .output("oh-histogram", step)
            .unwrap()
            .as_stats()
            .unwrap();
        let d = &out[0].1;
        let row = result
            .metrics
            .for_analysis("oh-histogram")
            .iter()
            .find(|r| r.step == step)
            .unwrap()
            .movement_bytes
            / 4;
        println!("{step:4} | {:.5} .. {:.5}  | {row}", d.min, d.max);
    }
    println!("\na complete custom analysis in ~60 lines: the framework provides");
    println!("transport, scheduling, placement, and metrics.");
}
