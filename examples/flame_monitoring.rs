//! Simulation monitoring: render the flame every step through both
//! visualization paths — full-resolution in-situ and down-sampled hybrid
//! — and write the frames as PPM images.
//!
//! This is the paper's monitoring use case: the hybrid path produces
//! lower-resolution images that are perfectly adequate for watching a
//! run, at a tiny fraction of the data movement and with the rendering
//! cost moved off the simulation's critical path.
//!
//! ```text
//! cargo run --release --example flame_monitoring
//! # frames appear under target/monitoring/
//! ```

use sitra::core::{run_pipeline, AnalysisSpec, HybridViz, InSituViz, PipelineConfig, Placement};
use sitra::mesh::BBox3;
use sitra::sim::{SimConfig, Simulation};
use sitra::viz::{TransferFunction, View, ViewAxis};
use std::sync::Arc;

const DIMS: [usize; 3] = [96, 64, 48];
const STEPS: usize = 6;
const STRIDE: usize = 4;

fn main() {
    let view = View::full_res(BBox3::from_dims(DIMS), ViewAxis::Z, false);
    let tf = TransferFunction::hot(300.0, 2600.0);

    let mut sim = Simulation::new(SimConfig {
        kernel_spawn_rate: 1.5,
        ..SimConfig::small(DIMS, 9)
    });
    let mut cfg = PipelineConfig::new([2, 2, 2], 2, STEPS);
    cfg.analyses = vec![
        AnalysisSpec::new(
            Arc::new(InSituViz {
                view: view.clone(),
                tf: tf.clone(),
            }),
            Placement::InSitu,
            1,
        ),
        AnalysisSpec::new(
            Arc::new(HybridViz {
                stride: STRIDE,
                view: view.clone(),
                tf: tf.clone(),
            }),
            Placement::Hybrid,
            1,
        ),
    ];

    let result = run_pipeline(&mut sim, &cfg).expect("valid config");

    let dir = std::path::Path::new("target/monitoring");
    std::fs::create_dir_all(dir).unwrap();
    println!("step | hybrid RMSE vs full-res | payload (KiB) | frames");
    for step in 1..=STEPS as u64 {
        let full = result
            .output("viz-insitu", step)
            .unwrap()
            .as_image()
            .unwrap();
        let hybrid = result
            .output("viz-hybrid", step)
            .unwrap()
            .as_image()
            .unwrap();
        let f1 = dir.join(format!("step{step:03}_insitu.ppm"));
        let f2 = dir.join(format!("step{step:03}_hybrid.ppm"));
        full.write_ppm(&f1, [0.0; 3]).unwrap();
        hybrid.write_ppm(&f2, [0.0; 3]).unwrap();
        let payload = result
            .metrics
            .for_analysis("viz-hybrid")
            .iter()
            .find(|r| r.step == step)
            .unwrap()
            .movement_bytes as f64
            / 1024.0;
        println!(
            "{step:4} | {:22.4} | {payload:13.1} | {}, {}",
            hybrid.rmse(full),
            f1.display(),
            f2.display()
        );
    }

    let raw_kib = (DIMS[0] * DIMS[1] * DIMS[2] * 8) as f64 / 1024.0;
    println!(
        "\nfull-resolution field: {raw_kib:.0} KiB/step; the hybrid path moved \
         {:.1} KiB/step ({}x less) while rendering off the simulation cores.",
        result.metrics.mean_movement_bytes("viz-hybrid") / 1024.0,
        (raw_kib * 1024.0 / result.metrics.mean_movement_bytes("viz-hybrid")) as u64
    );
}
