//! Cluster smoke: a three-member staging cluster over real TCP, one
//! member killed mid-run, and the run still completes with
//! degraded-never-lost accounting — outputs byte-identical to the
//! fault-free in-situ run.
//!
//! ```text
//! cargo run --release --example cluster_smoke
//! ```
//!
//! This is the same wiring as three `sitra-staged --cluster-*`
//! processes on separate nodes, collapsed into one process for the
//! demo: member 0 founds the cluster, members 1 and 2 join through it
//! (`--cluster-join` in process form), a cluster bucket worker
//! aggregates in-transit, and a scheduled kill takes member 2 down
//! mid-run. CI greps the final line for `dropped=0`.

use sitra::cluster::{Bootstrap, ClusterNode, ClusterNodeOpts};
use sitra::core::remote::{run_cluster_bucket_worker, BucketWorkerOpts};
use sitra::core::{run_pipeline, AnalysisSpec, HybridViz, PipelineConfig, Placement, StagingMode};
use sitra::mesh::BBox3;
use sitra::net::Addr;
use sitra::sim::{SimConfig, Simulation};
use sitra::viz::{TransferFunction, View, ViewAxis};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const DIMS: [usize; 3] = [32, 24, 20];
const STEPS: usize = 5;
/// Staged outputs collected before member 2 is killed.
const KILL_AFTER_OUTPUTS: usize = 2;

fn specs() -> Vec<AnalysisSpec> {
    vec![AnalysisSpec::new(
        Arc::new(HybridViz {
            stride: 2,
            view: View::full_res(BBox3::from_dims(DIMS), ViewAxis::Z, false),
            tf: TransferFunction::hot(250.0, 2500.0),
        }),
        Placement::Hybrid,
        1,
    )]
}

fn config() -> PipelineConfig {
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, STEPS);
    cfg.analyses = specs();
    cfg
}

fn main() {
    // Golden reference: the same pipeline, fully in-situ and fault-free.
    let mut golden_sim = Simulation::new(SimConfig::small(DIMS, 42));
    let golden = run_pipeline(
        &mut golden_sim,
        &config().with_staging_mode(StagingMode::InSitu),
    )
    .expect("golden config");

    // Member 0 founds the cluster on an OS-assigned port; 1 and 2 join
    // through it — in production these are three
    // `sitra-staged --cluster-seed/--cluster-join` processes.
    let listen: Addr = "tcp://127.0.0.1:0".parse().unwrap();
    let founder = ClusterNode::start(
        &listen,
        Bootstrap::Seeds(vec![listen.to_string()]),
        ClusterNodeOpts::default(),
    )
    .expect("start founder");
    let contact = founder.addr().to_string();
    let joiners: Vec<ClusterNode> = (0..2)
        .map(|_| {
            ClusterNode::start(
                &listen,
                Bootstrap::Join(contact.clone()),
                ClusterNodeOpts::default(),
            )
            .expect("join member")
        })
        .collect();
    let mut members: Vec<ClusterNode> = std::iter::once(founder).chain(joiners).collect();
    let endpoints: Vec<String> = members.iter().map(|m| m.addr().to_string()).collect();
    println!("cluster-smoke: three members on {endpoints:?}");

    // One cluster bucket worker — in production, separate
    // `run_cluster_bucket_worker` processes with the same member list.
    let worker = {
        let eps = endpoints.clone();
        std::thread::spawn(move || {
            run_cluster_bucket_worker(&eps, &specs(), 0, &BucketWorkerOpts::default())
                .expect("cluster bucket worker")
        })
    };

    // The scheduled fault: after KILL_AFTER_OUTPUTS staged outputs have
    // come back, member 2 dies abruptly — no handoff, no goodbye.
    let victim = Arc::new(Mutex::new(members.pop()));
    let collected = Arc::new(AtomicUsize::new(0));
    let hook = {
        let victim = Arc::clone(&victim);
        let collected = Arc::clone(&collected);
        Arc::new(move |_label: &str, _step: u64| {
            if collected.fetch_add(1, Ordering::SeqCst) + 1 == KILL_AFTER_OUTPUTS {
                if let Some(n) = victim.lock().unwrap().take() {
                    println!("cluster-smoke: killing member {} mid-run", n.addr());
                    n.kill();
                }
            }
        })
    };

    let mut sim = Simulation::new(SimConfig::small(DIMS, 42));
    let cfg = config()
        .with_staging_cluster(endpoints.clone())
        .with_staging_output_hook(hook);
    let result = run_pipeline(&mut sim, &cfg).expect("cluster config");

    // Tear down the survivors; closing their schedulers retires the
    // worker.
    if let Some(n) = victim.lock().unwrap().take() {
        n.kill(); // the kill tick never came (tiny run): fault it now
    }
    for m in members {
        m.shutdown();
    }
    let completed = worker.join().expect("worker thread");

    // Degraded-never-lost: every output present and byte-identical to
    // the golden run, nothing dropped, any casualty re-aggregated
    // in-situ by the driver.
    assert_eq!(result.dropped_tasks, 0, "a task was LOST");
    let mut matched = 0usize;
    for (label, step, out) in &golden.outputs {
        let got = result
            .output(label, *step)
            .unwrap_or_else(|| panic!("missing output {label}@{step}"));
        assert_eq!(got, out, "output {label}@{step} diverged from golden");
        matched += 1;
    }
    let suspects = sitra::obs::global().snapshot().counter("cluster.suspects");
    println!(
        "cluster-smoke: worker completed {completed} task(s); {suspects} suspicion eviction(s)"
    );
    println!(
        "cluster-smoke: outputs={matched} degraded={} dropped={} — all byte-identical to golden",
        result.degraded_tasks, result.dropped_tasks
    );
}
