//! # sitra-flowmap
//!
//! Communication-free Lagrangian flow-map extraction, after Sane et al.
//! ("Scalable In Situ Lagrangian Flow Map Extraction"): each rank seeds
//! a particle basis on a *globally aligned* lattice inside its own
//! block, advects every particle through the block's velocity field
//! with classical RK4, and records a small **termination record** per
//! particle — where it started, where it stopped, and why (it left the
//! block, or the step budget ran out).
//!
//! The workload is the cost-shape opposite of the down-sample/render
//! analyses: the in-situ stage is compute-heavy (four velocity
//! evaluations per particle per integration step) while the
//! intermediate it ships is tiny (61 bytes per seed). No particle ever
//! crosses a rank boundary — a particle reaching the block face
//! *terminates* there, which is exactly what makes the stage
//! communication-free and embarrassingly data-parallel.
//!
//! Everything here is deterministic: seeds come from a fixed lattice
//! walked in x-fastest order, and the integrator is pure `f64`
//! arithmetic evaluated in a fixed order, so equal inputs produce
//! byte-identical record lists on every backend.

use sitra_mesh::{BBox3, ScalarField};

/// Why a particle stopped advecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The trajectory left the rank's block: the flow map is complete
    /// for this seed (a downstream consumer may stitch it to the
    /// neighbour block's basis).
    ExitedBlock,
    /// The integration budget ran out with the particle still interior.
    MaxSteps,
}

impl Termination {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            Termination::ExitedBlock => 0,
            Termination::MaxSteps => 1,
        }
    }

    /// Inverse of [`Termination::code`].
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Termination::ExitedBlock),
            1 => Some(Termination::MaxSteps),
            _ => None,
        }
    }
}

/// One seed's termination record — the unit of the flow-map output.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Globally unique seed id: the seed's linear index in the global
    /// grid box, so ids are identical regardless of the decomposition.
    pub seed: u64,
    /// Seed position (global continuous grid coordinates).
    pub start: [f64; 3],
    /// Terminal position.
    pub end: [f64; 3],
    /// Integration steps taken.
    pub steps: u32,
    /// Why advection stopped.
    pub reason: Termination,
}

/// Flow-map extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowMapOpts {
    /// Seed lattice stride in *global* grid coordinates: a grid point
    /// seeds a particle iff every coordinate is a multiple of this, so
    /// the union of all ranks' bases equals one global lattice no
    /// matter how the domain is decomposed.
    pub seed_stride: usize,
    /// RK4 integration step (in the simulation's time units).
    pub dt: f64,
    /// Integration budget per particle.
    pub max_steps: u32,
}

impl Default for FlowMapOpts {
    fn default() -> Self {
        Self {
            seed_stride: 4,
            dt: 0.5,
            max_steps: 64,
        }
    }
}

/// Trilinear interpolation of the three velocity components over one
/// block. Query positions are clamped into the block's continuous
/// domain, so RK4 stage evaluations that probe slightly outside the
/// face read the face value.
struct BlockVelocity<'a> {
    u: &'a ScalarField,
    v: &'a ScalarField,
    w: &'a ScalarField,
    lo: [f64; 3],
    hi: [f64; 3],
}

impl<'a> BlockVelocity<'a> {
    fn new(u: &'a ScalarField, v: &'a ScalarField, w: &'a ScalarField) -> Self {
        let b = u.bbox();
        assert_eq!(b, v.bbox(), "velocity components cover different boxes");
        assert_eq!(b, w.bbox(), "velocity components cover different boxes");
        assert!(!b.is_empty(), "empty velocity block");
        let lo = [b.lo[0] as f64, b.lo[1] as f64, b.lo[2] as f64];
        // Last grid point per axis (hi is exclusive).
        let hi = [
            (b.hi[0] - 1) as f64,
            (b.hi[1] - 1) as f64,
            (b.hi[2] - 1) as f64,
        ];
        Self { u, v, w, lo, hi }
    }

    /// True while `p` is inside the block's continuous domain.
    fn contains(&self, p: [f64; 3]) -> bool {
        (0..3).all(|a| p[a] >= self.lo[a] && p[a] <= self.hi[a])
    }

    fn sample(&self, f: &ScalarField, p: [f64; 3]) -> f64 {
        let mut base = [0usize; 3];
        let mut frac = [0.0f64; 3];
        for a in 0..3 {
            let c = p[a].clamp(self.lo[a], self.hi[a]);
            let i = (c.floor() as usize).min(self.hi[a] as usize);
            base[a] = i;
            frac[a] = c - i as f64;
        }
        let up = |a: usize, i: usize| (i + 1).min(self.hi[a] as usize);
        let mut acc = 0.0;
        for (dz, wz) in [(0usize, 1.0 - frac[2]), (1, frac[2])] {
            for (dy, wy) in [(0usize, 1.0 - frac[1]), (1, frac[1])] {
                for (dx, wx) in [(0usize, 1.0 - frac[0]), (1, frac[0])] {
                    let q = [
                        if dx == 0 { base[0] } else { up(0, base[0]) },
                        if dy == 0 { base[1] } else { up(1, base[1]) },
                        if dz == 0 { base[2] } else { up(2, base[2]) },
                    ];
                    acc += wx * wy * wz * f.get(q);
                }
            }
        }
        acc
    }

    fn velocity(&self, p: [f64; 3]) -> [f64; 3] {
        [
            self.sample(self.u, p),
            self.sample(self.v, p),
            self.sample(self.w, p),
        ]
    }
}

/// Advect one particle from `start` with RK4 until it leaves the block
/// or the budget runs out.
fn advect_one(
    vel: &BlockVelocity<'_>,
    seed: u64,
    start: [f64; 3],
    opts: &FlowMapOpts,
) -> FlowRecord {
    let h = opts.dt;
    let mut pos = start;
    let mut steps = 0u32;
    let reason = loop {
        if steps >= opts.max_steps {
            break Termination::MaxSteps;
        }
        let k1 = vel.velocity(pos);
        let k2 = vel.velocity(offset(pos, k1, 0.5 * h));
        let k3 = vel.velocity(offset(pos, k2, 0.5 * h));
        let k4 = vel.velocity(offset(pos, k3, h));
        for a in 0..3 {
            pos[a] += h / 6.0 * (k1[a] + 2.0 * k2[a] + 2.0 * k3[a] + k4[a]);
        }
        steps += 1;
        if !vel.contains(pos) {
            break Termination::ExitedBlock;
        }
    };
    FlowRecord {
        seed,
        start,
        end: pos,
        steps,
        reason,
    }
}

fn offset(p: [f64; 3], d: [f64; 3], s: f64) -> [f64; 3] {
    [p[0] + s * d[0], p[1] + s * d[1], p[2] + s * d[2]]
}

/// Extract one rank's flow-map basis: seed every globally-aligned
/// lattice point of `block`, advect each seed through the block's
/// `(u, v, w)` velocity snapshot, and return the termination records in
/// seed order. `global` is the full simulation box (seed ids are linear
/// indices into it).
///
/// The velocity fields must cover exactly `block`. Communication-free
/// by construction: nothing outside the three local fields is read.
pub fn advect_block(
    u: &ScalarField,
    v: &ScalarField,
    w: &ScalarField,
    block: &BBox3,
    global: &BBox3,
    opts: &FlowMapOpts,
) -> Vec<FlowRecord> {
    assert!(opts.seed_stride > 0, "seed_stride must be positive");
    assert!(opts.dt > 0.0, "dt must be positive");
    assert_eq!(u.bbox(), *block, "velocity block mismatch");
    let vel = BlockVelocity::new(u, v, w);
    let stride = opts.seed_stride;
    block
        .iter()
        .filter(|p| p.iter().all(|c| c % stride == 0))
        .map(|p| {
            let seed = global.local_index(p) as u64;
            let start = [p[0] as f64, p[1] as f64, p[2] as f64];
            advect_one(&vel, seed, start, opts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(block: BBox3, vx: f64, vy: f64, vz: f64) -> (ScalarField, ScalarField, ScalarField) {
        (
            ScalarField::new_fill(block, vx),
            ScalarField::new_fill(block, vy),
            ScalarField::new_fill(block, vz),
        )
    }

    #[test]
    fn uniform_flow_advects_straight() {
        let block = BBox3::from_dims([9, 9, 9]);
        let (u, v, w) = uniform(block, 1.0, 0.0, 0.0);
        let opts = FlowMapOpts {
            seed_stride: 4,
            dt: 0.5,
            max_steps: 4,
        };
        let recs = advect_block(&u, &v, &w, &block, &block, &opts);
        // 3 lattice points per axis (0, 4, 8).
        assert_eq!(recs.len(), 27);
        for r in &recs {
            // Constant velocity: RK4 is exact; x advances dt per step.
            assert_eq!(
                r.reason,
                if r.start[0] >= 8.0 {
                    Termination::ExitedBlock
                } else {
                    Termination::MaxSteps
                }
            );
            let expect_x = r.start[0] + 0.5 * r.steps as f64;
            assert!((r.end[0] - expect_x).abs() < 1e-12, "{r:?}");
            assert_eq!(r.end[1], r.start[1]);
            assert_eq!(r.end[2], r.start[2]);
        }
    }

    #[test]
    fn fast_flow_exits_block() {
        let block = BBox3::from_dims([5, 5, 5]);
        let (u, v, w) = uniform(block, 10.0, 0.0, 0.0);
        let opts = FlowMapOpts {
            seed_stride: 2,
            dt: 1.0,
            max_steps: 64,
        };
        for r in advect_block(&u, &v, &w, &block, &block, &opts) {
            assert_eq!(r.reason, Termination::ExitedBlock, "{r:?}");
            assert!(r.steps <= 2, "{r:?}");
            assert!(r.end[0] > 4.0, "{r:?}");
        }
    }

    #[test]
    fn zero_flow_exhausts_budget_in_place() {
        let block = BBox3::from_dims([4, 4, 4]);
        let (u, v, w) = uniform(block, 0.0, 0.0, 0.0);
        let opts = FlowMapOpts {
            seed_stride: 2,
            dt: 0.5,
            max_steps: 7,
        };
        for r in advect_block(&u, &v, &w, &block, &block, &opts) {
            assert_eq!(r.reason, Termination::MaxSteps);
            assert_eq!(r.steps, 7);
            assert_eq!(r.end, r.start);
        }
    }

    #[test]
    fn seed_lattice_is_global_not_block_relative() {
        // A block offset from the origin seeds only globally aligned
        // points, so two decompositions of the same domain produce the
        // same union of seeds.
        let global = BBox3::from_dims([8, 4, 4]);
        let block = BBox3::new([3, 0, 0], [8, 4, 4]);
        let (u, v, w) = uniform(block, 0.0, 0.0, 0.0);
        let opts = FlowMapOpts {
            seed_stride: 4,
            dt: 0.5,
            max_steps: 1,
        };
        let recs = advect_block(&u, &v, &w, &block, &global, &opts);
        let starts: Vec<[f64; 3]> = recs.iter().map(|r| r.start).collect();
        // x ∈ {4}, y ∈ {0}, z ∈ {0}: only globally stride-aligned points.
        assert_eq!(starts, vec![[4.0, 0.0, 0.0]]);
        assert_eq!(recs[0].seed, global.local_index([4, 0, 0]) as u64);
    }

    #[test]
    fn deterministic_across_runs() {
        let block = BBox3::from_dims([7, 6, 5]);
        let u = ScalarField::from_fn(block, |p| (p[0] as f64 * 0.3).sin() + 0.8);
        let v = ScalarField::from_fn(block, |p| (p[1] as f64 * 0.7).cos() * 0.2);
        let w = ScalarField::from_fn(block, |p| (p[2] as f64 * 0.5).sin() * 0.1);
        let opts = FlowMapOpts::default();
        let a = advect_block(&u, &v, &w, &block, &block, &opts);
        let b = advect_block(&u, &v, &w, &block, &block, &opts);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn interpolation_clamps_at_faces() {
        let block = BBox3::from_dims([4, 4, 4]);
        let u = ScalarField::from_fn(block, |p| p[0] as f64);
        let zero = ScalarField::new_fill(block, 0.0);
        let vel = BlockVelocity::new(&u, &zero, &zero);
        // Outside queries read the clamped face value.
        assert_eq!(vel.sample(&u, [-5.0, 1.0, 1.0]), 0.0);
        assert_eq!(vel.sample(&u, [99.0, 1.0, 1.0]), 3.0);
        // Interior queries interpolate linearly.
        assert!((vel.sample(&u, [1.5, 2.0, 2.0]) - 1.5).abs() < 1e-12);
    }
}
