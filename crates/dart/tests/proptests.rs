//! Property-based tests for the transport: arbitrary operation sequences
//! against a reference model — every transfer completes exactly once at
//! both ends, regions behave like a last-write-wins map, and path
//! selection/statistics are consistent.

use bytes::Bytes;
use proptest::prelude::*;
use sitra_dart::{Event, Fabric, NetworkModel, Path};
use std::collections::HashMap;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Op {
    Export {
        owner: usize,
        key: u64,
        len: usize,
    },
    Unexport {
        owner: usize,
        key: u64,
    },
    Get {
        requester: usize,
        owner: usize,
        key: u64,
    },
    Send {
        from: usize,
        to: usize,
        len: usize,
    },
}

fn arb_ops(n_eps: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..n_eps, 0u64..4, 1usize..10_000).prop_map(|(owner, key, len)| Op::Export {
                owner,
                key,
                len
            }),
            (0..n_eps, 0u64..4).prop_map(|(owner, key)| Op::Unexport { owner, key }),
            (0..n_eps, 0..n_eps, 0u64..4).prop_map(|(requester, owner, key)| Op::Get {
                requester,
                owner,
                key
            }),
            (0..n_eps, 0..n_eps, 1usize..10_000).prop_map(|(from, to, len)| Op::Send {
                from,
                to,
                len
            }),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transfers_complete_exactly_once(ops in arb_ops(3)) {
        let model = NetworkModel::gemini();
        let fabric = Fabric::new(model);
        let eps: Vec<_> = (0..3).map(|_| fabric.register()).collect();
        // Reference model of exported regions.
        let mut regions: HashMap<(usize, u64), usize> = HashMap::new();
        let mut expected_gets = 0usize; // successful gets issued
        let mut expected_msgs = 0usize;
        let mut sent_bytes = 0u64;

        for op in &ops {
            match *op {
                Op::Export { owner, key, len } => {
                    eps[owner].export(key, Bytes::from(vec![owner as u8; len]));
                    regions.insert((owner, key), len);
                }
                Op::Unexport { owner, key } => {
                    eps[owner].unexport(key);
                    regions.remove(&(owner, key));
                }
                Op::Get { requester, owner, key } => {
                    let res = eps[requester].rdma_get(eps[owner].id(), key);
                    match regions.get(&(owner, key)) {
                        Some(_) => {
                            prop_assert!(res.is_ok());
                            expected_gets += 1;
                        }
                        None => prop_assert!(res.is_err()),
                    }
                }
                Op::Send { from, to, len } => {
                    eps[from]
                        .smsg_send(eps[to].id(), Bytes::from(vec![9u8; len]))
                        .unwrap();
                    expected_msgs += 1;
                    sent_bytes += len as u64;
                }
            }
        }

        // Drain all events: every issued get yields exactly one
        // requester-side completion (success or failure — a region may
        // be withdrawn between issue and service), successes also yield
        // one source-side event.
        let mut get_completes = 0;
        let mut get_failed = 0;
        let mut get_served = 0;
        let mut messages = 0;
        for ep in &eps {
            while let Some(ev) = ep.poll_event(Duration::from_millis(300)) {
                match ev {
                    Event::GetComplete { data, .. } => {
                        get_completes += 1;
                        prop_assert!(!data.is_empty());
                    }
                    Event::GetFailed { .. } => get_failed += 1,
                    Event::GetServed { .. } => get_served += 1,
                    Event::Message { data, .. } => {
                        messages += 1;
                        prop_assert!(!data.is_empty());
                    }
                    _ => {}
                }
            }
        }
        prop_assert_eq!(get_completes + get_failed, expected_gets, "requester completions");
        prop_assert_eq!(get_served, get_completes, "source completions");
        prop_assert_eq!(messages, expected_msgs);

        let stats = fabric.stats();
        prop_assert_eq!(stats.smsg_messages as usize, expected_msgs);
        prop_assert_eq!(stats.smsg_bytes, sent_bytes);
        prop_assert_eq!(stats.bte_transfers as usize, get_completes);
        fabric.shutdown();
    }

    #[test]
    fn model_path_selection_consistent(bytes in 0usize..100_000_000,
                                       thresh in 1usize..1_000_000) {
        let model = NetworkModel {
            smsg_threshold: thresh,
            ..NetworkModel::gemini()
        };
        let p = model.path_for(bytes);
        prop_assert_eq!(p == Path::Smsg, bytes <= thresh);
        // Time is positive and finite either way.
        let t = model.auto_transfer_time(bytes);
        prop_assert!(t > 0.0 && t.is_finite());
    }
}
