//! Network cost model: simulated transfer times for the two data paths.

use serde::{Deserialize, Serialize};

/// Latency/bandwidth model of the interconnect, with separate parameters
/// for the small-message (SMSG/FMA) and bulk (BTE RDMA) paths.
///
/// Defaults approximate the Gemini interconnect of the Cray XK6 the paper
/// ran on: ~1.5 µs small-message latency, ~6 µs bulk setup, ~5 GB/s
/// per-link bulk bandwidth, ~1 GB/s effective small-message streaming.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message latency of the SMSG path (seconds).
    pub smsg_latency: f64,
    /// Effective bandwidth of the SMSG path (bytes/second).
    pub smsg_bandwidth: f64,
    /// Per-transaction setup latency of the BTE path (seconds).
    pub bte_latency: f64,
    /// Bulk bandwidth of the BTE path (bytes/second).
    pub bte_bandwidth: f64,
    /// Messages at or below this size use SMSG; larger transfers use BTE.
    pub smsg_threshold: usize,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::gemini()
    }
}

impl NetworkModel {
    /// Parameters approximating the Cray XK6 Gemini interconnect.
    pub fn gemini() -> Self {
        Self {
            smsg_latency: 1.5e-6,
            smsg_bandwidth: 1.0e9,
            bte_latency: 6.0e-6,
            bte_bandwidth: 5.0e9,
            smsg_threshold: 4096,
        }
    }

    /// Which path a transfer of `bytes` takes.
    pub fn path_for(&self, bytes: usize) -> crate::Path {
        if bytes <= self.smsg_threshold {
            crate::Path::Smsg
        } else {
            crate::Path::Bte
        }
    }

    /// Simulated wall time for a transfer of `bytes` on `path` (seconds).
    pub fn transfer_time(&self, bytes: usize, path: crate::Path) -> f64 {
        match path {
            crate::Path::Smsg => self.smsg_latency + bytes as f64 / self.smsg_bandwidth,
            crate::Path::Bte => self.bte_latency + bytes as f64 / self.bte_bandwidth,
        }
    }

    /// Simulated time with automatic path selection.
    pub fn auto_transfer_time(&self, bytes: usize) -> f64 {
        self.transfer_time(bytes, self.path_for(bytes))
    }

    /// The message size at which both paths take equal time (bytes).
    /// Below this, SMSG wins on latency; above, BTE wins on bandwidth.
    pub fn crossover_bytes(&self) -> f64 {
        // smsg_lat + b/smsg_bw = bte_lat + b/bte_bw
        (self.bte_latency - self.smsg_latency)
            / (1.0 / self.smsg_bandwidth - 1.0 / self.bte_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Path;

    #[test]
    fn path_selection_threshold() {
        let m = NetworkModel::gemini();
        assert_eq!(m.path_for(0), Path::Smsg);
        assert_eq!(m.path_for(4096), Path::Smsg);
        assert_eq!(m.path_for(4097), Path::Bte);
        assert_eq!(m.path_for(100 << 20), Path::Bte);
    }

    #[test]
    fn small_messages_faster_on_smsg() {
        let m = NetworkModel::gemini();
        for bytes in [8, 64, 1024] {
            assert!(m.transfer_time(bytes, Path::Smsg) < m.transfer_time(bytes, Path::Bte));
        }
    }

    #[test]
    fn large_transfers_faster_on_bte() {
        let m = NetworkModel::gemini();
        for bytes in [1 << 20, 64 << 20] {
            assert!(m.transfer_time(bytes, Path::Bte) < m.transfer_time(bytes, Path::Smsg));
        }
    }

    #[test]
    fn crossover_consistent_with_times() {
        let m = NetworkModel::gemini();
        let x = m.crossover_bytes();
        assert!(x > 0.0);
        let below = (x * 0.5) as usize;
        let above = (x * 2.0) as usize;
        assert!(m.transfer_time(below, Path::Smsg) < m.transfer_time(below, Path::Bte));
        assert!(m.transfer_time(above, Path::Bte) < m.transfer_time(above, Path::Smsg));
    }

    #[test]
    fn time_monotone_in_size() {
        let m = NetworkModel::gemini();
        let mut prev = 0.0;
        for bytes in [0usize, 100, 10_000, 1_000_000, 100_000_000] {
            let t = m.auto_transfer_time(bytes);
            assert!(t >= prev);
            prev = t;
        }
    }
}
