//! # sitra-dart
//!
//! An in-process reimplementation of **DART**, the asynchronous data
//! transport substrate the paper builds its staging framework on (Docan
//! et al., HPDC'08; ported to the Cray Gemini uGNI interface for this
//! paper).
//!
//! The substrate provides exactly the services the paper enumerates:
//! node registration/unregistration, one-sided data transfer, message
//! passing, and event notification/processing. As on Gemini, two data
//! paths exist and are selected by message size:
//!
//! * **SMSG/FMA** — low-latency small-message sends, delivered directly
//!   to the peer's event queue;
//! * **BTE** — bulk RDMA `get`/`put` against *registered memory regions*,
//!   executed by a progress engine without involving the region owner's
//!   CPU, with completion events generated at **both** the source and the
//!   destination of the transfer (the mechanism DataSpaces uses to track
//!   transaction status and schedule analysis).
//!
//! Since we run on one machine, "RDMA" is a reference-counted buffer
//! clone ([`bytes::Bytes`], so payloads are never deep-copied) performed
//! by a dedicated progress thread — preserving the essential property
//! that bulk pulls are asynchronous with respect to both endpoints. A
//! pluggable [`NetworkModel`] charges each transfer the latency and
//! bandwidth of the modeled fabric, which is how the discrete-event
//! replay at paper scale obtains its communication costs.

pub mod endpoint;
pub mod gateway;
pub mod model;

pub use endpoint::{
    DartError, Endpoint, EndpointId, Event, Fabric, FabricStats, Path, RegionKey, TransferId,
};
pub use gateway::{GatewayClient, RegionGateway};
pub use model::NetworkModel;
