//! Off-fabric access to exported regions over a real socket.
//!
//! The in-process [`Fabric`] gives same-address-space peers one-sided
//! `rdma_get`; a [`RegionGateway`] extends that reach across process
//! boundaries by serving region fetches over [`sitra_net`] — the role
//! DART's remote transfer daemons play between the simulation partition
//! and the staging nodes. A [`GatewayClient`] in another process (e.g. a
//! remote staging bucket) can then pull any region a producer has
//! exported, with the same look-don't-interrupt semantics: the producer
//! rank's CPU is never involved in serving the bytes.
//!
//! The wire protocol is a single request/response pair per fetch:
//!
//! ```text
//! request  = peer: u64 LE | key: u64 LE          (16 bytes)
//! response = 0x00 | payload                       (region found)
//!          | 0x01                                 (no such region)
//! ```

use crate::endpoint::{EndpointId, Fabric, RegionKey};
use bytes::{BufMut, Bytes, BytesMut};
use sitra_net::{serve, Addr, Backoff, Connection, Listener, NetError, ServerHandle};
use std::sync::Arc;

const STATUS_FOUND: u8 = 0;
const STATUS_MISSING: u8 = 1;

/// Serves fetches of exported regions to off-fabric consumers.
pub struct RegionGateway {
    handle: Option<ServerHandle>,
    addr: Addr,
}

impl RegionGateway {
    /// Bind `addr` and serve fetches against `fabric`.
    pub fn start(fabric: Arc<Fabric>, addr: &Addr) -> Result<RegionGateway, NetError> {
        let listener = Listener::bind(addr)?;
        let bound = listener.local_addr();
        let handle = serve(listener, move |conn| gateway_connection(&fabric, &conn));
        Ok(RegionGateway {
            handle: Some(handle),
            addr: bound,
        })
    }

    /// Where the gateway is listening.
    pub fn addr(&self) -> Addr {
        self.addr.clone()
    }

    /// Stop accepting fetches.
    pub fn shutdown(mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
    }
}

fn gateway_connection(fabric: &Fabric, conn: &Connection) {
    loop {
        let frame = match conn.recv() {
            Ok(f) => f,
            Err(_) => return,
        };
        if frame.len() != 16 {
            // Malformed fetch: hang up rather than guess.
            return;
        }
        let peer = u64::from_le_bytes(frame[0..8].try_into().unwrap());
        let key = u64::from_le_bytes(frame[8..16].try_into().unwrap());
        let resp = match fabric.read_exported_region(peer, key) {
            Some(data) => {
                let mut buf = BytesMut::with_capacity(1 + data.len());
                buf.put_u8(STATUS_FOUND);
                buf.put_slice(&data);
                buf.freeze()
            }
            None => Bytes::from_static(&[STATUS_MISSING]),
        };
        if conn.send(resp).is_err() {
            return;
        }
    }
}

/// Off-fabric consumer of exported regions.
pub struct GatewayClient {
    conn: Connection,
}

impl GatewayClient {
    /// Connect with a single attempt.
    pub fn connect(addr: &Addr) -> Result<GatewayClient, NetError> {
        Ok(GatewayClient {
            conn: sitra_net::connect(addr)?,
        })
    }

    /// Connect with bounded exponential backoff.
    pub fn connect_retry(addr: &Addr, backoff: &Backoff) -> Result<GatewayClient, NetError> {
        Ok(GatewayClient {
            conn: sitra_net::connect_retry(addr, backoff)?,
        })
    }

    /// Fetch region `key` exported by endpoint `peer`. `Ok(None)` means
    /// the region is not (or no longer) exported — the same signal as
    /// [`Event::GetFailed`](crate::endpoint::Event::GetFailed) on the
    /// fabric, i.e. staging back-pressure withdrew the payload.
    pub fn fetch(&self, peer: EndpointId, key: RegionKey) -> Result<Option<Bytes>, NetError> {
        let mut req = BytesMut::with_capacity(16);
        req.put_u64_le(peer);
        req.put_u64_le(key);
        self.conn.send(req.freeze())?;
        let resp = self.conn.recv()?;
        match resp.first() {
            Some(&STATUS_FOUND) => Ok(Some(resp.slice(1..))),
            Some(&STATUS_MISSING) => Ok(None),
            _ => Err(NetError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkModel;

    #[test]
    fn fetch_exported_region_over_inproc() {
        let fabric = Fabric::new(NetworkModel::gemini());
        let producer = fabric.register();
        producer.export(7, Bytes::from_static(b"exported-bytes"));
        let addr: Addr = "inproc://dart-gateway".parse().unwrap();
        let gw = RegionGateway::start(Arc::clone(&fabric), &addr).unwrap();
        let client = GatewayClient::connect(&gw.addr()).unwrap();
        assert_eq!(
            client.fetch(producer.id(), 7).unwrap().as_deref(),
            Some(&b"exported-bytes"[..])
        );
        // Withdrawn region reads as missing, like GetFailed on-fabric.
        producer.unexport(7);
        assert_eq!(client.fetch(producer.id(), 7).unwrap(), None);
        assert_eq!(client.fetch(9999, 1).unwrap(), None);
        gw.shutdown();
        fabric.shutdown();
    }

    #[test]
    fn fetch_over_tcp_loopback() {
        let fabric = Fabric::new(NetworkModel::gemini());
        let producer = fabric.register();
        let payload = Bytes::from(vec![42u8; 300_000]);
        producer.export(1, payload.clone());
        let bind: Addr = "tcp://127.0.0.1:0".parse().unwrap();
        let gw = RegionGateway::start(Arc::clone(&fabric), &bind).unwrap();
        let client = GatewayClient::connect_retry(&gw.addr(), &Backoff::default()).unwrap();
        assert_eq!(client.fetch(producer.id(), 1).unwrap(), Some(payload));
        gw.shutdown();
        fabric.shutdown();
    }
}
