//! The fabric, endpoints, registered regions, and the progress engine.

use crate::model::NetworkModel;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Identifies a registered endpoint (node).
pub type EndpointId = u64;
/// Identifies an exported memory region within an endpoint.
pub type RegionKey = u64;
/// Identifies one transfer transaction.
pub type TransferId = u64;

/// Which data path a transfer used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Path {
    /// FMA short-message path: lowest latency, direct OS-bypass.
    Smsg,
    /// Block Transfer Engine: bulk RDMA get/put.
    Bte,
}

/// Errors returned by transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DartError {
    /// The peer endpoint is not (or no longer) registered.
    UnknownEndpoint(EndpointId),
    /// The peer has not exported the requested region.
    UnknownRegion(EndpointId, RegionKey),
    /// The fabric has been shut down.
    Closed,
}

impl std::fmt::Display for DartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DartError::UnknownEndpoint(e) => write!(f, "unknown endpoint {e}"),
            DartError::UnknownRegion(e, k) => write!(f, "unknown region {k} on endpoint {e}"),
            DartError::Closed => write!(f, "fabric closed"),
        }
    }
}
impl std::error::Error for DartError {}

/// Event notifications delivered to endpoint event queues.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A small message arrived (SMSG path).
    Message {
        /// Sender endpoint.
        from: EndpointId,
        /// Payload.
        data: Bytes,
        /// Simulated network time the message spent in flight.
        sim_time: f64,
    },
    /// A `get` this endpoint issued has completed (destination-side
    /// completion).
    GetComplete {
        /// Transfer transaction id.
        id: TransferId,
        /// The region owner.
        from: EndpointId,
        /// The pulled data.
        data: Bytes,
        /// Simulated transfer duration.
        sim_time: f64,
    },
    /// A `get` this endpoint issued could not be served: the region or
    /// its owner disappeared between issue and service (producers may
    /// withdraw regions at any time — staging back-pressure).
    GetFailed {
        /// Transfer transaction id.
        id: TransferId,
        /// The intended owner.
        from: EndpointId,
        /// The missing region.
        key: RegionKey,
    },
    /// A peer pulled one of this endpoint's regions (source-side
    /// completion — fired without this endpoint's participation).
    GetServed {
        /// Transfer transaction id.
        id: TransferId,
        /// Which peer pulled.
        by: EndpointId,
        /// Which region.
        key: RegionKey,
    },
    /// A `put` this endpoint issued has been written at the target
    /// (source-side completion).
    PutComplete {
        /// Transfer transaction id.
        id: TransferId,
        /// The written peer.
        to: EndpointId,
        /// Simulated transfer duration.
        sim_time: f64,
    },
    /// A peer wrote into one of this endpoint's regions (destination-side
    /// completion).
    PutReceived {
        /// Transfer transaction id.
        id: TransferId,
        /// The writer.
        from: EndpointId,
        /// The region written.
        key: RegionKey,
    },
}

/// Aggregate transfer statistics of a fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricStats {
    /// Messages sent on the SMSG path.
    pub smsg_messages: u64,
    /// Bytes moved on the SMSG path.
    pub smsg_bytes: u64,
    /// Transactions on the BTE path.
    pub bte_transfers: u64,
    /// Bytes moved on the BTE path.
    pub bte_bytes: u64,
    /// Total simulated network seconds across all transfers.
    pub sim_seconds: f64,
}

struct EndpointShared {
    regions: RwLock<HashMap<RegionKey, Bytes>>,
    events: Sender<Event>,
}

enum Request {
    Get {
        id: TransferId,
        requester: EndpointId,
        owner: EndpointId,
        key: RegionKey,
    },
    Put {
        id: TransferId,
        writer: EndpointId,
        target: EndpointId,
        key: RegionKey,
        data: Bytes,
    },
    Shutdown,
}

/// Live counters mirroring [`FabricStats`] into the global
/// [`sitra_obs`] registry, so a metrics endpoint can watch fabric
/// traffic without polling `Fabric::stats()`.
struct FabricObs {
    smsg_messages: sitra_obs::Counter,
    smsg_bytes: sitra_obs::Counter,
    bte_transfers: sitra_obs::Counter,
    bte_bytes: sitra_obs::Counter,
}

impl FabricObs {
    fn resolve() -> Self {
        let reg = sitra_obs::global();
        FabricObs {
            smsg_messages: reg.counter("dart.fabric.smsg_messages"),
            smsg_bytes: reg.counter("dart.fabric.smsg_bytes"),
            bte_transfers: reg.counter("dart.fabric.bte_transfers"),
            bte_bytes: reg.counter("dart.fabric.bte_bytes"),
        }
    }
}

struct FabricInner {
    endpoints: RwLock<HashMap<EndpointId, Arc<EndpointShared>>>,
    model: NetworkModel,
    stats: Mutex<FabricStats>,
    obs: FabricObs,
    next_endpoint: AtomicU64,
    next_transfer: AtomicU64,
    req_tx: Sender<Request>,
}

/// The transport fabric: a registry of endpoints plus a progress engine
/// executing bulk transfers asynchronously.
pub struct Fabric {
    inner: Arc<FabricInner>,
    progress: Mutex<Option<JoinHandle<()>>>,
}

impl Fabric {
    /// Bring up a fabric with the given network model.
    pub fn new(model: NetworkModel) -> Arc<Self> {
        let (req_tx, req_rx) = unbounded::<Request>();
        let inner = Arc::new(FabricInner {
            endpoints: RwLock::new(HashMap::new()),
            model,
            stats: Mutex::new(FabricStats::default()),
            obs: FabricObs::resolve(),
            next_endpoint: AtomicU64::new(1),
            next_transfer: AtomicU64::new(1),
            req_tx,
        });
        let worker_inner = Arc::clone(&inner);
        let progress = std::thread::Builder::new()
            .name("dart-progress".into())
            .spawn(move || progress_loop(worker_inner, req_rx))
            .expect("spawn progress thread");
        Arc::new(Self {
            inner,
            progress: Mutex::new(Some(progress)),
        })
    }

    /// Register a new endpoint (node) on the fabric.
    pub fn register(self: &Arc<Self>) -> Endpoint {
        let id = self.inner.next_endpoint.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        let shared = Arc::new(EndpointShared {
            regions: RwLock::new(HashMap::new()),
            events: tx,
        });
        self.inner.endpoints.write().insert(id, shared);
        Endpoint {
            id,
            fabric: Arc::clone(&self.inner),
            events: rx,
        }
    }

    /// Cumulative transfer statistics.
    pub fn stats(&self) -> FabricStats {
        *self.inner.stats.lock()
    }

    /// Snapshot a peer's exported region without going through the
    /// progress engine — the local read a [`crate::gateway::RegionGateway`]
    /// performs on behalf of an off-fabric consumer. Returns `None` when
    /// the endpoint is unregistered or the region was withdrawn.
    pub fn read_exported_region(&self, peer: EndpointId, key: RegionKey) -> Option<Bytes> {
        let eps = self.inner.endpoints.read();
        let data = eps.get(&peer)?.regions.read().get(&key).cloned();
        data
    }

    /// The network model in force.
    pub fn model(&self) -> NetworkModel {
        self.inner.model
    }

    /// Stop the progress engine (idempotent). In-flight requests finish.
    pub fn shutdown(&self) {
        if let Some(h) = self.progress.lock().take() {
            let _ = self.inner.req_tx.send(Request::Shutdown);
            let _ = h.join();
        }
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn progress_loop(inner: Arc<FabricInner>, rx: Receiver<Request>) {
    while let Ok(req) = rx.recv() {
        match req {
            Request::Shutdown => break,
            Request::Get {
                id,
                requester,
                owner,
                key,
            } => {
                let endpoints = inner.endpoints.read();
                let fail = |endpoints: &HashMap<EndpointId, Arc<EndpointShared>>| {
                    if let Some(req_ep) = endpoints.get(&requester) {
                        let _ = req_ep.events.send(Event::GetFailed {
                            id,
                            from: owner,
                            key,
                        });
                    }
                };
                let Some(own) = endpoints.get(&owner) else {
                    fail(&endpoints);
                    continue;
                };
                let data = own.regions.read().get(&key).cloned();
                let Some(data) = data else {
                    fail(&endpoints);
                    continue;
                };
                let sim = inner.model.transfer_time(data.len(), Path::Bte);
                {
                    let mut s = inner.stats.lock();
                    s.bte_transfers += 1;
                    s.bte_bytes += data.len() as u64;
                    s.sim_seconds += sim;
                }
                inner.obs.bte_transfers.inc();
                inner.obs.bte_bytes.add(data.len() as u64);
                // Source-side completion (the owner's CPU was never
                // involved in serving the data).
                let _ = own.events.send(Event::GetServed {
                    id,
                    by: requester,
                    key,
                });
                if let Some(req_ep) = endpoints.get(&requester) {
                    let _ = req_ep.events.send(Event::GetComplete {
                        id,
                        from: owner,
                        data,
                        sim_time: sim,
                    });
                }
            }
            Request::Put {
                id,
                writer,
                target,
                key,
                data,
            } => {
                let endpoints = inner.endpoints.read();
                let Some(tgt) = endpoints.get(&target) else {
                    continue;
                };
                let sim = inner.model.transfer_time(data.len(), Path::Bte);
                {
                    let mut s = inner.stats.lock();
                    s.bte_transfers += 1;
                    s.bte_bytes += data.len() as u64;
                    s.sim_seconds += sim;
                }
                inner.obs.bte_transfers.inc();
                inner.obs.bte_bytes.add(data.len() as u64);
                tgt.regions.write().insert(key, data);
                let _ = tgt.events.send(Event::PutReceived {
                    id,
                    from: writer,
                    key,
                });
                if let Some(w) = endpoints.get(&writer) {
                    let _ = w.events.send(Event::PutComplete {
                        id,
                        to: target,
                        sim_time: sim,
                    });
                }
            }
        }
    }
}

/// One registered node on the fabric.
pub struct Endpoint {
    id: EndpointId,
    fabric: Arc<FabricInner>,
    events: Receiver<Event>,
}

impl Endpoint {
    /// This endpoint's id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Export a memory region under `key`, making it available for peers
    /// to `get` without involving this endpoint's CPU. Re-exporting a key
    /// replaces the region (e.g. for double-buffered timesteps).
    pub fn export(&self, key: RegionKey, data: Bytes) {
        let eps = self.fabric.endpoints.read();
        let me = eps.get(&self.id).expect("own endpoint alive");
        me.regions.write().insert(key, data);
    }

    /// Withdraw an exported region.
    pub fn unexport(&self, key: RegionKey) {
        let eps = self.fabric.endpoints.read();
        if let Some(me) = eps.get(&self.id) {
            me.regions.write().remove(&key);
        }
    }

    /// Asynchronously pull `key` from `peer` (BTE RDMA get). Completion
    /// arrives as [`Event::GetComplete`] on this endpoint and
    /// [`Event::GetServed`] on the peer. Errors are detected eagerly when
    /// the region or peer does not exist at issue time.
    pub fn rdma_get(&self, peer: EndpointId, key: RegionKey) -> Result<TransferId, DartError> {
        {
            let eps = self.fabric.endpoints.read();
            let p = eps.get(&peer).ok_or(DartError::UnknownEndpoint(peer))?;
            if !p.regions.read().contains_key(&key) {
                return Err(DartError::UnknownRegion(peer, key));
            }
        }
        let id = self.fabric.next_transfer.fetch_add(1, Ordering::Relaxed);
        self.fabric
            .req_tx
            .send(Request::Get {
                id,
                requester: self.id,
                owner: peer,
                key,
            })
            .map_err(|_| DartError::Closed)?;
        Ok(id)
    }

    /// Asynchronously write `data` into `peer`'s region `key` (BTE RDMA
    /// put). The region is created at the target if absent.
    pub fn rdma_put(
        &self,
        peer: EndpointId,
        key: RegionKey,
        data: Bytes,
    ) -> Result<TransferId, DartError> {
        if !self.fabric.endpoints.read().contains_key(&peer) {
            return Err(DartError::UnknownEndpoint(peer));
        }
        let id = self.fabric.next_transfer.fetch_add(1, Ordering::Relaxed);
        self.fabric
            .req_tx
            .send(Request::Put {
                id,
                writer: self.id,
                target: peer,
                key,
                data,
            })
            .map_err(|_| DartError::Closed)?;
        Ok(id)
    }

    /// Send a small message (SMSG path): delivered synchronously to the
    /// peer's event queue with the small-message latency charged.
    pub fn smsg_send(&self, peer: EndpointId, data: Bytes) -> Result<(), DartError> {
        let eps = self.fabric.endpoints.read();
        let p = eps.get(&peer).ok_or(DartError::UnknownEndpoint(peer))?;
        let sim = self.fabric.model.transfer_time(data.len(), Path::Smsg);
        {
            let mut s = self.fabric.stats.lock();
            s.smsg_messages += 1;
            s.smsg_bytes += data.len() as u64;
            s.sim_seconds += sim;
        }
        self.fabric.obs.smsg_messages.inc();
        self.fabric.obs.smsg_bytes.add(data.len() as u64);
        p.events
            .send(Event::Message {
                from: self.id,
                data,
                sim_time: sim,
            })
            .map_err(|_| DartError::Closed)
    }

    /// Size-based automatic path selection, as DART does on Gemini: data
    /// at or below the model's SMSG threshold goes as a message; larger
    /// payloads are exported and written to the peer via BTE put.
    /// Returns the path taken.
    pub fn send_auto(
        &self,
        peer: EndpointId,
        key: RegionKey,
        data: Bytes,
    ) -> Result<Path, DartError> {
        match self.fabric.model.path_for(data.len()) {
            Path::Smsg => {
                self.smsg_send(peer, data)?;
                Ok(Path::Smsg)
            }
            Path::Bte => {
                self.rdma_put(peer, key, data)?;
                Ok(Path::Bte)
            }
        }
    }

    /// Read one of this endpoint's own regions (e.g. after a peer `put`).
    pub fn read_region(&self, key: RegionKey) -> Option<Bytes> {
        let eps = self.fabric.endpoints.read();
        let data = eps.get(&self.id)?.regions.read().get(&key).cloned();
        data
    }

    /// Blocking event poll with timeout.
    pub fn poll_event(&self, timeout: Duration) -> Option<Event> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Non-blocking event poll.
    pub fn try_event(&self) -> Option<Event> {
        self.events.try_recv().ok()
    }

    /// Unregister from the fabric; pending events are dropped.
    pub fn unregister(self) {
        self.fabric.endpoints.write().remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Arc<Fabric> {
        Fabric::new(NetworkModel::gemini())
    }

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn smsg_roundtrip() {
        let f = fabric();
        let a = f.register();
        let b = f.register();
        a.smsg_send(b.id(), Bytes::from_static(b"hello")).unwrap();
        match b.poll_event(T) {
            Some(Event::Message {
                from,
                data,
                sim_time,
            }) => {
                assert_eq!(from, a.id());
                assert_eq!(&data[..], b"hello");
                assert!(sim_time > 0.0);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn rdma_get_fires_both_completions() {
        let f = fabric();
        let owner = f.register();
        let puller = f.register();
        let payload = Bytes::from(vec![7u8; 100_000]);
        owner.export(42, payload.clone());
        let id = puller.rdma_get(owner.id(), 42).unwrap();
        match puller.poll_event(T) {
            Some(Event::GetComplete {
                id: gid,
                from,
                data,
                sim_time,
            }) => {
                assert_eq!(gid, id);
                assert_eq!(from, owner.id());
                assert_eq!(data, payload);
                assert!(sim_time > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match owner.poll_event(T) {
            Some(Event::GetServed { id: gid, by, key }) => {
                assert_eq!(gid, id);
                assert_eq!(by, puller.id());
                assert_eq!(key, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rdma_get_is_zero_copy() {
        let f = fabric();
        let owner = f.register();
        let puller = f.register();
        let payload = Bytes::from(vec![1u8; 4096]);
        let src_ptr = payload.as_ptr();
        owner.export(1, payload);
        puller.rdma_get(owner.id(), 1).unwrap();
        match puller.poll_event(T) {
            Some(Event::GetComplete { data, .. }) => {
                assert_eq!(data.as_ptr(), src_ptr, "payload was deep-copied");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rdma_put_writes_target_region() {
        let f = fabric();
        let a = f.register();
        let b = f.register();
        let id = a
            .rdma_put(b.id(), 9, Bytes::from_static(b"payload"))
            .unwrap();
        match a.poll_event(T) {
            Some(Event::PutComplete { id: pid, to, .. }) => {
                assert_eq!((pid, to), (id, b.id()));
            }
            other => panic!("unexpected {other:?}"),
        }
        match b.poll_event(T) {
            Some(Event::PutReceived { from, key, .. }) => {
                assert_eq!((from, key), (a.id(), 9));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(&b.read_region(9).unwrap()[..], b"payload");
    }

    #[test]
    fn errors_for_unknown_targets() {
        let f = fabric();
        let a = f.register();
        let b = f.register();
        assert_eq!(a.rdma_get(9999, 1), Err(DartError::UnknownEndpoint(9999)));
        assert_eq!(
            a.rdma_get(b.id(), 77),
            Err(DartError::UnknownRegion(b.id(), 77))
        );
        let bid = b.id();
        b.unregister();
        assert_eq!(
            a.smsg_send(bid, Bytes::new()).unwrap_err(),
            DartError::UnknownEndpoint(bid)
        );
    }

    #[test]
    fn auto_path_selection() {
        let f = fabric();
        let a = f.register();
        let b = f.register();
        let small = Bytes::from(vec![0u8; 64]);
        let big = Bytes::from(vec![0u8; 1 << 20]);
        assert_eq!(a.send_auto(b.id(), 1, small).unwrap(), Path::Smsg);
        assert_eq!(a.send_auto(b.id(), 2, big).unwrap(), Path::Bte);
        // Both events arrive.
        let mut got_msg = false;
        let mut got_put = false;
        for _ in 0..2 {
            match b.poll_event(T) {
                Some(Event::Message { .. }) => got_msg = true,
                Some(Event::PutReceived { .. }) => got_put = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(got_msg && got_put);
        let stats = f.stats();
        assert_eq!(stats.smsg_messages, 1);
        assert_eq!(stats.bte_transfers, 1);
        assert_eq!(stats.bte_bytes, 1 << 20);
        assert!(stats.sim_seconds > 0.0);
    }

    #[test]
    fn reexport_replaces_region() {
        let f = fabric();
        let o = f.register();
        let p = f.register();
        o.export(5, Bytes::from_static(b"v1"));
        o.export(5, Bytes::from_static(b"v2"));
        p.rdma_get(o.id(), 5).unwrap();
        match p.poll_event(T) {
            Some(Event::GetComplete { data, .. }) => assert_eq!(&data[..], b"v2"),
            other => panic!("unexpected {other:?}"),
        }
        o.unexport(5);
        assert_eq!(
            p.rdma_get(o.id(), 5),
            Err(DartError::UnknownRegion(o.id(), 5))
        );
    }

    #[test]
    fn concurrent_pullers_each_get_completion() {
        let f = fabric();
        let owner = f.register();
        owner.export(1, Bytes::from(vec![9u8; 200_000]));
        let oid = owner.id();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ep = f.register();
                std::thread::spawn(move || {
                    ep.rdma_get(oid, 1).unwrap();
                    match ep.poll_event(T) {
                        Some(Event::GetComplete { data, .. }) => data.len(),
                        other => panic!("unexpected {other:?}"),
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 200_000);
        }
        // Owner saw 8 served events.
        let mut served = 0;
        while let Some(Event::GetServed { .. }) = owner.poll_event(Duration::from_millis(200)) {
            served += 1;
        }
        assert_eq!(served, 8);
        assert_eq!(f.stats().bte_transfers, 8);
    }

    #[test]
    fn shutdown_is_idempotent_and_closes() {
        let f = fabric();
        let a = f.register();
        let b = f.register();
        f.shutdown();
        f.shutdown();
        // Bulk ops now fail with Closed; SMSG (synchronous) still works.
        assert_eq!(
            a.rdma_put(b.id(), 1, Bytes::new()).unwrap_err(),
            DartError::Closed
        );
    }
}
