//! Property-based tests for the merge-tree pipeline. The central
//! invariant of the whole reproduction: for *any* field and *any* block
//! decomposition, the hybrid in-situ/in-transit computation produces
//! exactly the merge tree of the serial computation — and the streaming
//! gluing is order-independent.

use proptest::prelude::*;
use sitra_mesh::{exchange_ghosts, BBox3, Decomposition, ScalarField};
use sitra_topology::{
    distributed::{
        distributed_merge_tree, glue_subtrees, in_situ_subtrees, serial_merge_tree, BoundaryPolicy,
    },
    segment_superlevel, track_features, Connectivity, StreamingMergeTree,
};

/// Small random-ish fields with plenty of ties (few distinct values) to
/// stress the simulation-of-simplicity tie-breaking.
fn field_and_decomp() -> impl Strategy<Value = (ScalarField, Decomposition)> {
    (
        2usize..8,
        2usize..7,
        2usize..6,
        1usize..4,
        1usize..3,
        1usize..3,
        2u64..=u64::MAX,
        2usize..12,
    )
        .prop_map(|(nx, ny, nz, px, py, pz, seed, nvals)| {
            let g = BBox3::from_dims([nx, ny, nz]);
            let f = ScalarField::from_fn(g, |p| {
                let h = (p[0] as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((p[1] as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
                    .wrapping_add((p[2] as u64).wrapping_mul(0x165667B19E3779F9))
                    .wrapping_mul(seed | 1);
                ((h >> 32) % nvals as u64) as f64
            });
            let d = Decomposition::new(g, [px.min(nx), py.min(ny), pz.min(nz)]);
            (f, d)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distributed_equals_serial_all_shared((f, d) in field_and_decomp()) {
        let fields: Vec<ScalarField> =
            (0..d.rank_count()).map(|r| f.extract(&d.block(r))).collect();
        let (dist, _) =
            distributed_merge_tree(&d, &fields, Connectivity::Six, BoundaryPolicy::AllShared);
        let serial = serial_merge_tree(&f, Connectivity::Six);
        prop_assert_eq!(dist.canonical(), serial.canonical());
    }

    #[test]
    fn distributed_equals_serial_boundary_maxima((f, d) in field_and_decomp()) {
        let fields: Vec<ScalarField> =
            (0..d.rank_count()).map(|r| f.extract(&d.block(r))).collect();
        let (dist, _) = distributed_merge_tree(
            &d, &fields, Connectivity::Six, BoundaryPolicy::BoundaryMaxima);
        let serial = serial_merge_tree(&f, Connectivity::Six);
        prop_assert_eq!(dist.canonical(), serial.canonical());
    }

    #[test]
    fn distributed_equals_serial_26(( f, d) in field_and_decomp()) {
        let fields: Vec<ScalarField> =
            (0..d.rank_count()).map(|r| f.extract(&d.block(r))).collect();
        let (dist, _) = distributed_merge_tree(
            &d, &fields, Connectivity::TwentySix, BoundaryPolicy::BoundaryMaxima);
        let serial = serial_merge_tree(&f, Connectivity::TwentySix);
        prop_assert_eq!(dist.canonical(), serial.canonical());
    }

    #[test]
    fn gluing_is_subtree_order_independent((f, d) in field_and_decomp(),
                                           rot in 0usize..16) {
        let fields: Vec<ScalarField> =
            (0..d.rank_count()).map(|r| f.extract(&d.block(r))).collect();
        let (ghosted, _) = exchange_ghosts(&d, &fields, 1);
        let subtrees =
            in_situ_subtrees(&d, &ghosted, Connectivity::Six, BoundaryPolicy::BoundaryMaxima);
        let (ref_tree, _) = glue_subtrees(&subtrees);
        // Rotate the subtree order.
        let k = rot % subtrees.len().max(1);
        let mut rotated = subtrees.clone();
        rotated.rotate_left(k);
        let (rot_tree, _) = glue_subtrees(&rotated);
        prop_assert_eq!(ref_tree.canonical(), rot_tree.canonical());
    }

    #[test]
    fn edge_order_within_stream_is_irrelevant((f, d) in field_and_decomp(),
                                              swap_seed in 0u64..1000) {
        let fields: Vec<ScalarField> =
            (0..d.rank_count()).map(|r| f.extract(&d.block(r))).collect();
        let (ghosted, _) = exchange_ghosts(&d, &fields, 1);
        let subtrees =
            in_situ_subtrees(&d, &ghosted, Connectivity::Six, BoundaryPolicy::AllShared);
        let (ref_tree, _) = glue_subtrees(&subtrees);
        // Shuffle each subtree's edge list deterministically.
        let mut shuffled = subtrees.clone();
        let mut state = swap_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for sub in &mut shuffled {
            let n = sub.edges.len();
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                sub.edges.swap(i, j);
            }
        }
        let mut sink = StreamingMergeTree::new();
        for sub in &shuffled {
            sub.stream_into(&mut sink);
        }
        let (shuf_tree, _) = sink.finish();
        prop_assert_eq!(ref_tree.canonical(), shuf_tree.canonical());
    }

    #[test]
    fn maxima_of_tree_match_graph_maxima((f, _d) in field_and_decomp()) {
        // A vertex is a tree leaf iff it has no sweep-higher neighbor.
        let tree = serial_merge_tree(&f, Connectivity::Six);
        let g = f.bbox();
        let mut expected: Vec<u64> = Vec::new();
        for p in g.iter() {
            let kp = (f.get(p), g.local_index(p) as u64);
            let higher = Connectivity::Six.neighbors_in(p, &g).any(|q| {
                let kq = (f.get(q), g.local_index(q) as u64);
                kq.0 > kp.0 || (kq.0 == kp.0 && kq.1 < kp.1)
            });
            if !higher {
                expected.push(g.local_index(p) as u64);
            }
        }
        let mut got = tree.maxima();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn segmentation_labels_are_maxima_and_cover((f, _d) in field_and_decomp(),
                                                thresh_num in 0usize..10) {
        let g = f.bbox();
        let (mn, mx) = f.min_max().unwrap();
        let t = mn + (mx - mn) * thresh_num as f64 / 10.0;
        let tree = serial_merge_tree(&f, Connectivity::Six);
        let maxima: std::collections::HashSet<u64> = tree.maxima().into_iter().collect();
        let seg = segment_superlevel(&f, &g, t, Connectivity::Six, None);
        for p in g.iter() {
            match seg.label(p) {
                Some(l) => {
                    prop_assert!(f.get(p) >= t);
                    prop_assert!(maxima.contains(&l));
                }
                None => prop_assert!(f.get(p) < t),
            }
        }
    }

    #[test]
    fn tracks_partition_observed_features(steps in 2usize..5, seed in 0u64..500) {
        // Build a small time series of fields; every (step, feature) pair
        // appears in exactly one track.
        let g = BBox3::from_dims([8, 8, 1]);
        let segs: Vec<_> = (0..steps)
            .map(|s| {
                let f = ScalarField::from_fn(g, |p| {
                    let h = (p[0] as u64 + 13 * p[1] as u64 + 31 * s as u64)
                        .wrapping_mul(seed | 1)
                        .wrapping_mul(0x9E3779B97F4A7C15);
                    ((h >> 32) % 7) as f64
                });
                segment_superlevel(&f, &g, 4.0, Connectivity::Six, None)
            })
            .collect();
        let tracks = track_features(&segs, 1);
        let mut seen: std::collections::HashSet<(usize, u64)> = Default::default();
        for t in &tracks {
            for (off, &l) in t.labels.iter().enumerate() {
                prop_assert!(seen.insert((t.birth_step + off, l)),
                    "feature appears in two tracks");
            }
        }
        let total: usize = segs.iter().map(|s| s.features().len()).sum();
        let tracked: usize = tracks.iter().map(|t| t.labels.len()).sum();
        prop_assert_eq!(total, tracked);
    }
}
