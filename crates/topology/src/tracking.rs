//! Feature tracking through time by segmentation overlap.
//!
//! The paper's Fig. 1 shows why concurrent analysis matters: a small
//! vortical structure lives for ~10 simulation steps, so its track is
//! completely lost when data is saved every ~400 steps. Tracking here is
//! the standard overlap method: features in consecutive segmentations are
//! connected when their voxel overlap is large enough, and tracks are
//! chains of such connections.

use crate::segment::Segmentation;
use crate::types::VertexId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An overlap between a feature at step `t` and one at step `t+1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapEdge {
    /// Feature label in the earlier segmentation.
    pub from: VertexId,
    /// Feature label in the later segmentation.
    pub to: VertexId,
    /// Number of shared voxels.
    pub overlap: usize,
}

/// Voxel-overlap edges between two segmentations over the same region.
pub fn overlap_edges(a: &Segmentation, b: &Segmentation) -> Vec<OverlapEdge> {
    assert_eq!(a.bbox, b.bbox, "segmentations cover different regions");
    let mut counts: HashMap<(VertexId, VertexId), usize> = HashMap::new();
    for (la, lb) in a.labels.iter().zip(&b.labels) {
        if let (Some(x), Some(y)) = (la, lb) {
            *counts.entry((*x, *y)).or_default() += 1;
        }
    }
    let mut out: Vec<OverlapEdge> = counts
        .into_iter()
        .map(|((from, to), overlap)| OverlapEdge { from, to, overlap })
        .collect();
    out.sort_unstable_by(|x, y| {
        y.overlap
            .cmp(&x.overlap)
            .then(x.from.cmp(&y.from))
            .then(x.to.cmp(&y.to))
    });
    out
}

/// A tracked feature: which label it carried at each step it was alive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureTrack {
    /// Index (into the segmentation sequence) where the track begins.
    pub birth_step: usize,
    /// Feature label at each consecutive step starting at `birth_step`.
    pub labels: Vec<VertexId>,
}

impl FeatureTrack {
    /// Number of steps the feature was observed.
    pub fn length(&self) -> usize {
        self.labels.len()
    }
}

/// Track features through a sequence of segmentations.
///
/// Between consecutive steps, each feature is matched to the successor it
/// overlaps most (greedy, one-to-one, largest overlaps first); an overlap
/// below `min_overlap` voxels does not connect. Unmatched successors begin
/// new tracks.
pub fn track_features(segs: &[Segmentation], min_overlap: usize) -> Vec<FeatureTrack> {
    let mut tracks: Vec<FeatureTrack> = Vec::new();
    // Which track currently owns each live label.
    let mut live: HashMap<VertexId, usize> = HashMap::new();
    for (step, seg) in segs.iter().enumerate() {
        if step == 0 {
            for f in seg.features() {
                live.insert(f, tracks.len());
                tracks.push(FeatureTrack {
                    birth_step: 0,
                    labels: vec![f],
                });
            }
            continue;
        }
        let edges = overlap_edges(&segs[step - 1], seg);
        let mut matched_from: HashMap<VertexId, VertexId> = HashMap::new();
        let mut matched_to: HashMap<VertexId, VertexId> = HashMap::new();
        for e in edges {
            if e.overlap < min_overlap.max(1) {
                continue;
            }
            if matched_from.contains_key(&e.from) || matched_to.contains_key(&e.to) {
                continue;
            }
            matched_from.insert(e.from, e.to);
            matched_to.insert(e.to, e.from);
        }
        let mut next_live: HashMap<VertexId, usize> = HashMap::new();
        for f in seg.features() {
            if let Some(prev) = matched_to.get(&f) {
                if let Some(&ti) = live.get(prev) {
                    tracks[ti].labels.push(f);
                    next_live.insert(f, ti);
                    continue;
                }
            }
            // New feature.
            next_live.insert(f, tracks.len());
            tracks.push(FeatureTrack {
                birth_step: step,
                labels: vec![f],
            });
        }
        live = next_live;
    }
    tracks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment_superlevel;
    use crate::types::Connectivity;
    use sitra_mesh::{BBox3, ScalarField};

    /// A Gaussian bump centered at `c` on a 1D strip.
    fn bump(center: f64, dims: usize) -> ScalarField {
        let b = BBox3::from_dims([dims, 1, 1]);
        ScalarField::from_fn(b, |p| {
            let d = p[0] as f64 - center;
            (-d * d / 4.0).exp()
        })
    }

    fn seg_of(f: &ScalarField) -> Segmentation {
        segment_superlevel(f, &f.bbox(), 0.5, Connectivity::Six, None)
    }

    #[test]
    fn moving_bump_is_one_track() {
        // A bump advected 1 cell/step overlaps itself: one long track.
        let segs: Vec<Segmentation> = (0..8).map(|t| seg_of(&bump(5.0 + t as f64, 24))).collect();
        let tracks = track_features(&segs, 1);
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].length(), 8);
        assert_eq!(tracks[0].birth_step, 0);
    }

    #[test]
    fn fast_bump_breaks_track() {
        // Advected 10 cells/step: no overlap, a new track per step. This
        // is the paper's Fig. 1 failure mode when sampling too coarsely.
        let segs: Vec<Segmentation> = (0..4)
            .map(|t| seg_of(&bump(3.0 + 10.0 * t as f64, 64)))
            .collect();
        let tracks = track_features(&segs, 1);
        assert_eq!(tracks.len(), 4);
        assert!(tracks.iter().all(|t| t.length() == 1));
    }

    #[test]
    fn birth_and_death() {
        // Step 0: one bump; steps 1-2: two bumps; step 3: second only.
        let two = |c1: f64, c2: f64| {
            let b = BBox3::from_dims([40, 1, 1]);
            ScalarField::from_fn(b, |p| {
                let d1 = p[0] as f64 - c1;
                let d2 = p[0] as f64 - c2;
                (-d1 * d1 / 4.0).exp() + (-d2 * d2 / 4.0).exp()
            })
        };
        let segs = vec![
            seg_of(&bump(5.0, 40)),
            seg_of(&two(5.0, 30.0)),
            seg_of(&two(5.0, 31.0)),
            seg_of(&bump(31.0, 40)),
        ];
        let tracks = track_features(&segs, 1);
        assert_eq!(tracks.len(), 2);
        let first = tracks.iter().find(|t| t.birth_step == 0).unwrap();
        let second = tracks.iter().find(|t| t.birth_step == 1).unwrap();
        assert_eq!(first.length(), 3); // dies after step 2
        assert_eq!(second.length(), 3); // alive through step 3
    }

    #[test]
    fn overlap_edges_sorted_and_counted() {
        let a = seg_of(&bump(5.0, 16));
        let b = seg_of(&bump(6.0, 16));
        let e = overlap_edges(&a, &b);
        assert_eq!(e.len(), 1);
        assert!(e[0].overlap >= 1);
    }

    #[test]
    fn min_overlap_gates_matching() {
        let a = seg_of(&bump(5.0, 24));
        let b = seg_of(&bump(6.0, 24));
        let e = overlap_edges(&a, &b);
        let tracks = track_features(&[a, b], e[0].overlap + 1);
        // Overlap below the gate: two separate tracks.
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn empty_segmentations_yield_no_tracks() {
        let f = ScalarField::new_fill(BBox3::from_dims([8, 1, 1]), 0.0);
        let segs = vec![seg_of(&f), seg_of(&f)];
        assert!(track_features(&segs, 1).is_empty());
    }
}
