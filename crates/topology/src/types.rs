//! Shared vertex identity, sweep ordering, and grid connectivity.

use serde::{Deserialize, Serialize};
use sitra_mesh::BBox3;

/// Globally unique vertex identifier: the linear index of the grid point
/// within the *global* domain (x fastest). Using global ids makes subtrees
/// computed on different ranks refer to the same vertices, which is what
/// lets the in-transit stage glue them.
pub type VertexId = u64;

/// Linearize a global coordinate against the global domain box.
pub fn vertex_id(global: &BBox3, p: [usize; 3]) -> VertexId {
    global.local_index(p) as VertexId
}

/// Inverse of [`vertex_id`].
pub fn vertex_coord(global: &BBox3, id: VertexId) -> [usize; 3] {
    global.coord_of(id as usize)
}

/// The sweep order: `(value, id)` lexicographic, *descending*.
///
/// `sweep_after(a, b)` is true when `a` is encountered strictly after `b`
/// as the isovalue sweeps from +inf downward — i.e. `a` is "lower" in
/// merge-tree terms. Tie-breaking on the vertex id is a simulation of
/// simplicity: it makes every field effectively injective, so the merge
/// tree is unique and identical no matter how the domain is decomposed.
#[inline]
pub fn sweep_after(a: (f64, VertexId), b: (f64, VertexId)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 > b.1)
}

/// True when `a` is strictly higher (earlier in the sweep) than `b`.
#[inline]
pub fn sweep_before(a: (f64, VertexId), b: (f64, VertexId)) -> bool {
    sweep_after(b, a)
}

/// Vertex adjacency used to define superlevel-set connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Connectivity {
    /// Face neighbors only (6 in 3D).
    Six,
    /// Face, edge, and corner neighbors (26 in 3D).
    TwentySix,
}

impl Connectivity {
    /// Neighbor offsets for this connectivity.
    pub fn offsets(self) -> Vec<[isize; 3]> {
        match self {
            Connectivity::Six => vec![
                [-1, 0, 0],
                [1, 0, 0],
                [0, -1, 0],
                [0, 1, 0],
                [0, 0, -1],
                [0, 0, 1],
            ],
            Connectivity::TwentySix => {
                let mut v = Vec::with_capacity(26);
                for dz in -1isize..=1 {
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            if dx != 0 || dy != 0 || dz != 0 {
                                v.push([dx, dy, dz]);
                            }
                        }
                    }
                }
                v
            }
        }
    }

    /// Neighbors of `p` inside `bbox`.
    pub fn neighbors_in(self, p: [usize; 3], bbox: &BBox3) -> impl Iterator<Item = [usize; 3]> {
        let b = *bbox;
        self.offsets().into_iter().filter_map(move |d| {
            let mut q = [0usize; 3];
            for a in 0..3 {
                let c = p[a] as isize + d[a];
                if c < b.lo[a] as isize || c >= b.hi[a] as isize {
                    return None;
                }
                q[a] = c as usize;
            }
            Some(q)
        })
    }
}

/// A compact union-find over dense local indices with path compression and
/// union by size — the workhorse of the in-situ sweep.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Union the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        big
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_order_total() {
        // Higher value comes first; ties broken by smaller id first.
        assert!(sweep_before((2.0, 5), (1.0, 0)));
        assert!(sweep_before((1.0, 0), (1.0, 1)));
        assert!(sweep_after((1.0, 1), (1.0, 0)));
        assert!(!sweep_after((1.0, 0), (1.0, 0)));
        assert!(!sweep_before((1.0, 0), (1.0, 0)));
    }

    #[test]
    fn vertex_id_roundtrip() {
        let g = BBox3::new([2, 3, 4], [7, 9, 11]);
        for p in g.iter() {
            assert_eq!(vertex_coord(&g, vertex_id(&g, p)), p);
        }
    }

    #[test]
    fn connectivity_counts() {
        assert_eq!(Connectivity::Six.offsets().len(), 6);
        assert_eq!(Connectivity::TwentySix.offsets().len(), 26);
    }

    #[test]
    fn neighbors_clipped_at_boundary() {
        let b = BBox3::from_dims([3, 3, 3]);
        let corner: Vec<_> = Connectivity::TwentySix
            .neighbors_in([0, 0, 0], &b)
            .collect();
        assert_eq!(corner.len(), 7);
        let center: Vec<_> = Connectivity::TwentySix
            .neighbors_in([1, 1, 1], &b)
            .collect();
        assert_eq!(center.len(), 26);
        let face6: Vec<_> = Connectivity::Six.neighbors_in([0, 1, 1], &b).collect();
        assert_eq!(face6.len(), 5);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(6);
        assert_ne!(uf.find(0), uf.find(1));
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(1), uf.find(2));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(5));
    }
}
