//! # sitra-topology
//!
//! Merge trees for structured-grid scalar fields, decomposed into the
//! paper's hybrid in-situ / in-transit formulation:
//!
//! * **In-situ** ([`local`]): on each rank's ghosted block, a low-overhead
//!   sort + union-find sweep (Carr–Snoeyink–Axen adapted to join trees)
//!   builds the *augmented* local merge tree — every vertex of the block
//!   appears. Because adjacent ghosted blocks overlap by one vertex layer,
//!   the union of the local graphs is exactly the global graph.
//! * **Reduction** ([`reduce`]): the augmented local tree is sparsified to
//!   a [`Subtree`] containing only local critical points plus the vertices
//!   shared with neighboring blocks (the paper's "topological ghost
//!   cells"), typically orders of magnitude smaller than the block.
//! * **In-transit** ([`stream`]): a single staging bucket glues the
//!   subtrees with a streaming algorithm that accepts vertices and edges
//!   in *any* order, maintains a merge tree of everything seen so far via
//!   path merging, and *finalizes* (splices out and evicts) regular
//!   vertices whose last incident edge has been processed — keeping the
//!   in-memory footprint close to the number of critical points rather
//!   than the number of intermediate vertices.
//!
//! On top of the tree, [`tree`] provides persistence-based simplification,
//! [`segment`] threshold segmentations labeled by surviving maxima, and
//! [`tracking`] feature tracking through time by segmentation overlap —
//! the machinery behind the paper's Fig. 1 (ignition kernels trackable
//! only at high temporal resolution).
//!
//! The merge tree convention throughout is the **join tree of superlevel
//! sets**: the isovalue sweeps from +inf downward, leaves are local
//! maxima, and arcs merge at saddles (the paper's Fig. 3). Ties are broken
//! by vertex id, giving a globally consistent total order (simulation of
//! simplicity), so results are deterministic and decomposition-independent.

pub mod distributed;
pub mod local;
pub mod reduce;
pub mod segment;
pub mod stream;
pub mod tracking;
pub mod tree;
pub mod types;

pub use distributed::distributed_merge_tree;
pub use local::augmented_join_tree;
pub use reduce::{reduce_to_subtree, Subtree};
pub use segment::{segment_superlevel, Segmentation};
pub use stream::StreamingMergeTree;
pub use tracking::{track_features, FeatureTrack, OverlapEdge};
pub use tree::MergeTree;
pub use types::{sweep_after, Connectivity, VertexId};
