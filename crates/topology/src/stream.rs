//! The in-transit stage: streaming aggregation of subtrees.
//!
//! A single staging bucket receives subtree vertices and edges from all
//! ranks *in arbitrary order* and maintains the merge tree of everything
//! seen so far by **path merging**: inserting an edge merges the two
//! endpoint chains like sorted lists. To keep the memory footprint low
//! (the paper's key requirement for the serial in-transit stage), a vertex
//! is *finalized* once no more information about it can arrive; a
//! finalized **regular** vertex (exactly one up-arc, one down-arc) can
//! never become critical again, so it is spliced out of its chain and
//! evicted from memory. What remains in memory is essentially the set of
//! critical points plus not-yet-finalized boundary vertices.
//!
//! Finalization protocol: every piece of the stream comes from a *source*
//! (one rank's subtree). A vertex declaration names the set of sources
//! that might also declare the same vertex (computable from bounding-box
//! arithmetic — the ranks whose ghosted regions contain the point). A
//! vertex is finalized when (a) every potential source has either
//! declared it or announced end-of-stream, and (b) all declared incident
//! edges have been inserted.
//!
//! Why eviction is safe: in a join tree, up-arc counts only change when an
//! edge whose *lower* endpoint is the vertex itself is inserted (component
//! merges happen at the lower endpoint of the connecting graph edge).
//! Once all incident edges are seen, the vertex's criticality class is
//! fixed; later path merges may re-parent it but never change its degree,
//! and splicing it out preserves chain order for all future merges.

use crate::tree::MergeTree;
use crate::types::{sweep_before, VertexId};
use std::collections::{HashMap, HashSet};

/// Identifier of one stream source (typically the producing rank).
pub type SourceId = u32;

#[derive(Debug, Clone)]
struct Entry {
    value: f64,
    down: Option<VertexId>,
    ups: Vec<VertexId>,
    /// Incident edges declared but not yet inserted.
    remaining: u32,
    /// Pinned vertices are exempt from finalization eviction — consumers
    /// (e.g. feature-based statistics) will look them up in the final
    /// tree even if they are globally regular.
    pinned: bool,
    /// Potential sources that have neither declared this vertex nor ended
    /// their stream.
    pending: Vec<SourceId>,
}

/// Statistics of one streaming aggregation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Distinct vertices declared.
    pub vertices: usize,
    /// Edges inserted.
    pub edges: usize,
    /// Peak number of simultaneously live (in-memory) vertices.
    pub peak_live: usize,
    /// Vertices evicted early by finalization.
    pub evicted: usize,
}

/// Order-independent streaming merge-tree builder; see module docs.
#[derive(Debug, Default)]
pub struct StreamingMergeTree {
    entries: HashMap<VertexId, Entry>,
    ended: HashSet<SourceId>,
    stats: StreamStats,
}

impl StreamingMergeTree {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Progress statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Number of vertices currently held in memory.
    pub fn live(&self) -> usize {
        self.entries.len()
    }

    /// Declare a vertex from `source` with the number of incident edges
    /// this source will eventually send. `potential` lists *all* sources
    /// that might declare this vertex (including `source` itself); every
    /// declaring source must announce the same value and potential set.
    pub fn declare_vertex(
        &mut self,
        source: SourceId,
        id: VertexId,
        value: f64,
        incident_edges: u32,
        potential: &[SourceId],
    ) {
        assert!(
            potential.contains(&source),
            "vertex {id}: declaring source {source} not in its potential set"
        );
        assert!(
            !self.ended.contains(&source),
            "vertex {id}: source {source} already ended"
        );
        let first = !self.entries.contains_key(&id);
        let ended = &self.ended;
        let e = self.entries.entry(id).or_insert_with(|| Entry {
            value,
            down: None,
            ups: Vec::new(),
            remaining: 0,
            pinned: false,
            pending: potential
                .iter()
                .copied()
                .filter(|s| !ended.contains(s))
                .collect(),
        });
        assert_eq!(e.value, value, "vertex {id} declared with differing values");
        if first {
            self.stats.vertices += 1;
        }
        if let Some(pos) = e.pending.iter().position(|&s| s == source) {
            e.pending.swap_remove(pos);
        } else {
            panic!("vertex {id} declared twice by source {source}");
        }
        e.remaining += incident_edges;
        self.stats.peak_live = self.stats.peak_live.max(self.entries.len());
    }

    /// Announce that `source` will send nothing further. Vertices waiting
    /// only on this source become finalizable.
    pub fn end_source(&mut self, source: SourceId) {
        assert!(self.ended.insert(source), "source {source} ended twice");
        let affected: Vec<VertexId> = self
            .entries
            .iter_mut()
            .filter_map(|(&id, e)| {
                if let Some(pos) = e.pending.iter().position(|&s| s == source) {
                    e.pending.swap_remove(pos);
                    Some(id)
                } else {
                    None
                }
            })
            .collect();
        for id in affected {
            self.try_finalize(id);
        }
    }

    /// Exempt a declared vertex from eviction: it will appear in the
    /// final tree even when globally regular. Any source may pin.
    pub fn pin_vertex(&mut self, id: VertexId) {
        self.entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("pin of undeclared vertex {id}"))
            .pinned = true;
    }

    fn key(&self, id: VertexId) -> (f64, VertexId) {
        (self.entries[&id].value, id)
    }

    fn set_down(&mut self, u: VertexId, new_down: Option<VertexId>) {
        let old = self.entries.get_mut(&u).unwrap().down;
        if old == new_down {
            return;
        }
        if let Some(o) = old {
            let e = self.entries.get_mut(&o).unwrap();
            if let Some(pos) = e.ups.iter().position(|&x| x == u) {
                e.ups.swap_remove(pos);
            }
        }
        self.entries.get_mut(&u).unwrap().down = new_down;
        if let Some(n) = new_down {
            self.entries.get_mut(&n).unwrap().ups.push(u);
        }
    }

    /// Insert one subtree edge. Both endpoints must have been declared.
    /// The edge may connect vertices in any order and arbitrary position;
    /// chains are merged to maintain the join tree of all edges seen.
    pub fn insert_edge(&mut self, a: VertexId, b: VertexId) {
        assert!(
            self.entries.contains_key(&a),
            "edge endpoint {a} not declared"
        );
        assert!(
            self.entries.contains_key(&b),
            "edge endpoint {b} not declared"
        );
        assert_ne!(a, b, "self-loop");
        self.stats.edges += 1;

        // Path-merge the two chains.
        let (mut u, mut v) = (a, b);
        loop {
            if u == v {
                break;
            }
            if sweep_before(self.key(v), self.key(u)) {
                std::mem::swap(&mut u, &mut v);
            }
            // u is strictly higher than v.
            match self.entries[&u].down {
                None => {
                    self.set_down(u, Some(v));
                    break;
                }
                Some(w) => {
                    if w == v {
                        break;
                    }
                    if sweep_before(self.key(v), self.key(w)) {
                        // v belongs between u and w: splice, then merge the
                        // rest of v's chain with w's chain.
                        self.set_down(u, Some(v));
                        u = v;
                        v = w;
                    } else {
                        u = w;
                    }
                }
            }
        }

        // Account the processed edge and attempt finalization.
        for id in [a, b] {
            let e = self.entries.get_mut(&id).unwrap();
            assert!(e.remaining > 0, "more edges than declared for {id}");
            e.remaining -= 1;
        }
        self.try_finalize(a);
        self.try_finalize(b);
    }

    /// Evict `id` if it is finalized and regular.
    fn try_finalize(&mut self, id: VertexId) {
        let Some(e) = self.entries.get(&id) else {
            return;
        };
        if e.pinned
            || !e.pending.is_empty()
            || e.remaining != 0
            || e.ups.len() != 1
            || e.down.is_none()
        {
            return;
        }
        let up = e.ups[0];
        let down = e.down.unwrap();
        // Splice: up now points past id to down.
        self.set_down(id, None);
        self.set_down(up, Some(down));
        self.entries.remove(&id);
        self.stats.evicted += 1;
    }

    /// Finish the stream: every declared edge must have arrived and every
    /// vertex must be fully resolved (callers must [`Self::end_source`]
    /// every source). Returns the merge tree of the union of all subtrees
    /// (with any remaining regular vertices still present; call
    /// [`MergeTree::canonical`] to splice them).
    pub fn finish(mut self) -> (MergeTree, StreamStats) {
        let leftover: Vec<VertexId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.remaining > 0 || !e.pending.is_empty())
            .map(|(&id, _)| id)
            .collect();
        assert!(
            leftover.is_empty(),
            "stream finished with undelivered edges or sources at {leftover:?}"
        );
        self.stats.peak_live = self.stats.peak_live.max(self.entries.len());
        let mut tree = MergeTree::new();
        for (&id, e) in &self.entries {
            tree.add_node(id, e.value);
        }
        for (&id, e) in &self.entries {
            if let Some(d) = e.down {
                tree.add_arc(id, d);
            }
        }
        (tree, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Declare from a single source 0 with itself as the only potential.
    fn declare_all(s: &mut StreamingMergeTree, verts: &[(VertexId, f64, u32)]) {
        for &(id, v, deg) in verts {
            s.declare_vertex(0, id, v, deg, &[0]);
        }
    }

    #[test]
    fn single_chain() {
        let mut s = StreamingMergeTree::new();
        declare_all(&mut s, &[(0, 5.0, 1), (1, 3.0, 2), (2, 1.0, 1)]);
        s.insert_edge(0, 1);
        s.insert_edge(1, 2);
        s.end_source(0);
        let (t, stats) = s.finish();
        let c = t.canonical();
        assert_eq!(c.nodes, vec![(0, 5.0), (2, 1.0)]);
        assert_eq!(c.arcs, vec![(0, 2)]);
        assert_eq!(stats.edges, 2);
        // Vertex 1 was regular and fully processed: evicted early.
        assert_eq!(stats.evicted, 1);
    }

    #[test]
    fn two_peaks_any_order() {
        // Graph: 0(5)-1(1)-2(4): merge tree has maxima 0,2 and saddle 1.
        let verts = [(0u64, 5.0, 1u32), (1, 1.0, 2), (2, 4.0, 1)];
        let edges = [(0u64, 1u64), (1, 2)];
        // All edge orders and orientations must give the same tree.
        for perm in [[0, 1], [1, 0]] {
            for flip in 0..4 {
                let mut s = StreamingMergeTree::new();
                declare_all(&mut s, &verts);
                for (n, &pi) in perm.iter().enumerate() {
                    let (a, b) = edges[pi];
                    if flip & (1 << n) != 0 {
                        s.insert_edge(b, a);
                    } else {
                        s.insert_edge(a, b);
                    }
                }
                s.end_source(0);
                let (t, _) = s.finish();
                let c = t.canonical();
                assert_eq!(c.nodes.len(), 3);
                assert_eq!(c.arcs, vec![(0, 1), (2, 1)]);
            }
        }
    }

    #[test]
    fn splice_mid_chain() {
        // Path graph 0(10)-2(7)-3(1) plus edge 1(8)-3: maxima 0 and 1
        // merge at 3.
        let mut s = StreamingMergeTree::new();
        declare_all(
            &mut s,
            &[(0, 10.0, 1), (2, 7.0, 2), (3, 1.0, 2), (1, 8.0, 1)],
        );
        s.insert_edge(0, 2);
        s.insert_edge(2, 3);
        s.insert_edge(1, 3);
        s.end_source(0);
        let (t, _) = s.finish();
        let c = t.canonical();
        assert_eq!(c.arcs, vec![(0, 3), (1, 3)]);
    }

    #[test]
    fn shared_vertex_across_two_sources() {
        // Sources 0 and 1 share vertex 5; it must not be finalized until
        // both have contributed, even though source 0's edges complete
        // while it is (temporarily) regular.
        let mut s = StreamingMergeTree::new();
        s.declare_vertex(0, 9, 9.0, 1, &[0]);
        s.declare_vertex(0, 5, 2.0, 1, &[0, 1]);
        s.insert_edge(9, 5);
        s.end_source(0);
        // Vertex 5 is regular w.r.t. source 0 but still pending source 1.
        assert_eq!(s.live(), 2);
        s.declare_vertex(1, 5, 2.0, 1, &[0, 1]);
        s.declare_vertex(1, 7, 6.0, 1, &[1]);
        s.insert_edge(7, 5);
        s.end_source(1);
        let (t, _) = s.finish();
        let c = t.canonical();
        // 5 is a genuine saddle joining maxima 9 and 7.
        assert_eq!(c.arcs, vec![(7, 5), (9, 5)]);
    }

    #[test]
    fn vertex_pending_unheard_source_waits_for_its_end() {
        // Source 1 never declares vertex 5; ending source 1 releases it.
        let mut s = StreamingMergeTree::new();
        s.declare_vertex(0, 9, 9.0, 1, &[0]);
        s.declare_vertex(0, 5, 2.0, 1, &[0, 1]);
        s.declare_vertex(0, 3, 1.0, 0, &[0]);
        s.insert_edge(9, 5);
        s.end_source(0);
        // 5's declared edge has arrived but it is still pending source 1
        // (which may yet attach more structure): everything stays live.
        assert_eq!(s.live(), 3);
        s.end_source(1);
        let (t, _) = s.finish();
        // 5 is the root of the chain 9 -> 5; 3 is an isolated root.
        assert_eq!(t.roots().len(), 2);
    }

    #[test]
    #[should_panic]
    fn differing_values_panic() {
        let mut s = StreamingMergeTree::new();
        s.declare_vertex(0, 1, 2.0, 0, &[0, 1]);
        s.declare_vertex(1, 1, 3.0, 0, &[0, 1]);
    }

    #[test]
    #[should_panic]
    fn double_declaration_same_source_panics() {
        let mut s = StreamingMergeTree::new();
        s.declare_vertex(0, 1, 2.0, 0, &[0]);
        s.declare_vertex(0, 1, 2.0, 0, &[0]);
    }

    #[test]
    #[should_panic]
    fn finish_with_missing_edges_panics() {
        let mut s = StreamingMergeTree::new();
        s.declare_vertex(0, 0, 1.0, 1, &[0]);
        s.declare_vertex(0, 1, 0.0, 1, &[0]);
        s.end_source(0);
        let _ = s.finish();
    }

    #[test]
    #[should_panic]
    fn finish_with_unended_source_panics() {
        let mut s = StreamingMergeTree::new();
        s.declare_vertex(0, 0, 1.0, 0, &[0, 1]);
        s.end_source(0);
        let _ = s.finish();
    }

    #[test]
    #[should_panic]
    fn undeclared_endpoint_panics() {
        let mut s = StreamingMergeTree::new();
        s.declare_vertex(0, 0, 1.0, 1, &[0]);
        s.insert_edge(0, 99);
    }

    #[test]
    fn eviction_bounds_memory_on_long_chain() {
        // A long monotone chain streamed in order: interior vertices are
        // evicted as soon as both their edges are in, so live never grows
        // with the chain length.
        let n = 10_000u64;
        let mut s = StreamingMergeTree::new();
        s.declare_vertex(0, 0, n as f64, 1, &[0]);
        let mut prev = 0u64;
        for i in 1..n {
            s.declare_vertex(0, i, (n - i) as f64, if i == n - 1 { 1 } else { 2 }, &[0]);
            s.insert_edge(prev, i);
            prev = i;
        }
        s.end_source(0);
        let (t, stats) = s.finish();
        assert!(stats.peak_live < 16, "peak {}", stats.peak_live);
        assert_eq!(stats.evicted as u64, n - 2);
        let c = t.canonical();
        assert_eq!(c.nodes.len(), 2);
    }

    #[test]
    fn pinned_regular_vertex_survives_finalization() {
        // Chain 0(5) -> 1(3) -> 2(1): vertex 1 is regular and would be
        // evicted, but pinning keeps it in the final tree.
        let mut s = StreamingMergeTree::new();
        declare_all(&mut s, &[(0, 5.0, 1), (1, 3.0, 2), (2, 1.0, 1)]);
        s.pin_vertex(1);
        s.insert_edge(0, 1);
        s.insert_edge(1, 2);
        s.end_source(0);
        assert_eq!(s.live(), 3, "pinned vertex must stay live");
        let (t, stats) = s.finish();
        assert_eq!(stats.evicted, 0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(1), Some(3.0));
        assert_eq!(t.down_of(1), Some(2));
        // Canonicalization still splices it for topology comparisons.
        assert_eq!(t.canonical().nodes.len(), 2);
    }

    #[test]
    #[should_panic]
    fn pin_of_undeclared_vertex_panics() {
        let mut s = StreamingMergeTree::new();
        s.pin_vertex(99);
    }

    #[test]
    fn isolated_vertex_is_leaf_and_root() {
        let mut s = StreamingMergeTree::new();
        s.declare_vertex(0, 3, 4.0, 0, &[0]);
        s.end_source(0);
        let (t, _) = s.finish();
        assert_eq!(t.maxima(), vec![3]);
        assert_eq!(t.roots(), vec![3]);
    }

    #[test]
    fn late_declaration_after_other_source_ended() {
        // Source 1 ends before source 0 declares a vertex whose potential
        // set includes source 1: the pending set must not wait on it.
        let mut s = StreamingMergeTree::new();
        s.end_source(1);
        s.declare_vertex(0, 5, 1.0, 0, &[0, 1]);
        s.end_source(0);
        let (t, _) = s.finish();
        assert_eq!(t.len(), 1);
    }
}
