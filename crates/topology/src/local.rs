//! The in-situ stage: augmented join tree of one block.
//!
//! This is the paper's adaptation of the Carr–Snoeyink–Axen algorithm: a
//! low-overhead, in-core sweep that sorts the block's vertices by value
//! and grows superlevel-set components with a union-find, recording for
//! every vertex the next vertex downward in its component — the
//! *augmented* join tree (every grid point appears as a tree node).
//!
//! The sort makes the algorithm ill-suited to a global distributed
//! solution (as the paper notes), but on a single rank's block it is fast
//! and cache-friendly; the result is immediately sparsified by
//! [`crate::reduce`] before leaving the node.

use crate::types::{sweep_before, Connectivity, UnionFind, VertexId};
use sitra_mesh::{BBox3, ScalarField};

/// The augmented join tree of one block: for every local vertex, the next
/// vertex strictly downward in the sweep, or `None` for the block's
/// lowest vertex of its component.
#[derive(Debug, Clone)]
pub struct AugmentedTree {
    /// The region the tree covers (a ghosted block, or the whole domain).
    pub bbox: BBox3,
    /// The global domain, defining vertex ids.
    pub global: BBox3,
    /// Down pointer per local linear index.
    pub down: Vec<Option<u32>>,
    /// Number of tree children (up-arcs) per local linear index.
    pub up_count: Vec<u32>,
}

impl AugmentedTree {
    /// Global vertex id of a local index.
    #[inline]
    pub fn vertex_id(&self, local: u32) -> VertexId {
        self.global.local_index(self.bbox.coord_of(local as usize)) as VertexId
    }

    /// Local index of a global coordinate.
    #[inline]
    pub fn local_of(&self, p: [usize; 3]) -> u32 {
        self.bbox.local_index(p) as u32
    }

    /// True if the local vertex is a leaf (local maximum of the block).
    #[inline]
    pub fn is_leaf(&self, local: u32) -> bool {
        self.up_count[local as usize] == 0
    }

    /// True if the local vertex is critical in this block's tree:
    /// a leaf (maximum), a merge saddle, or a component root.
    #[inline]
    pub fn is_critical(&self, local: u32) -> bool {
        let u = self.up_count[local as usize];
        u != 1 || self.down[local as usize].is_none()
    }

    /// Iterate the local indices of all critical vertices.
    pub fn criticals(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.down.len() as u32).filter(|&i| self.is_critical(i))
    }
}

/// Compute the augmented join tree of `field` under `conn` connectivity.
///
/// `global` is the full domain (defines vertex ids and hence the global
/// sweep order; ties in value are broken by id so the result is the tree
/// of an effectively injective function).
pub fn augmented_join_tree(
    field: &ScalarField,
    global: &BBox3,
    conn: Connectivity,
) -> AugmentedTree {
    let bbox = field.bbox();
    let n = field.len();
    assert!(n > 0, "empty block");
    assert!(
        global.contains_box(&bbox),
        "block {bbox:?} outside global domain {global:?}"
    );

    // Sweep order: descending (value, id).
    let mut order: Vec<u32> = (0..n as u32).collect();
    let key = |i: u32| -> (f64, VertexId) {
        (
            field.get_linear(i as usize),
            global.local_index(bbox.coord_of(i as usize)) as VertexId,
        )
    };
    order.sort_unstable_by(|&a, &b| {
        let ka = key(a);
        let kb = key(b);
        // Descending by value, ascending by id on ties.
        kb.0.partial_cmp(&ka.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ka.1.cmp(&kb.1))
    });

    let mut uf = UnionFind::new(n);
    // Per component representative: the most recently swept vertex (the
    // current "growth point" the next arc will attach to).
    let mut lowest: Vec<u32> = (0..n as u32).collect();
    let mut down: Vec<Option<u32>> = vec![None; n];
    let mut up_count: Vec<u32> = vec![0; n];
    let mut processed = vec![false; n];

    let offsets = conn.offsets();
    for &v in &order {
        let vk = key(v);
        let p = bbox.coord_of(v as usize);
        for d in &offsets {
            let mut q = [0usize; 3];
            let mut ok = true;
            for a in 0..3 {
                let c = p[a] as isize + d[a];
                if c < bbox.lo[a] as isize || c >= bbox.hi[a] as isize {
                    ok = false;
                    break;
                }
                q[a] = c as usize;
            }
            if !ok {
                continue;
            }
            let u = bbox.local_index(q) as u32;
            if !processed[u as usize] {
                continue;
            }
            debug_assert!(sweep_before(key(u), vk));
            let ru = uf.find(u);
            let rv = uf.find(v);
            if ru == rv {
                continue;
            }
            // The component of u reaches down to v: attach its growth
            // point.
            let l = lowest[ru as usize];
            debug_assert!(down[l as usize].is_none());
            down[l as usize] = Some(v);
            up_count[v as usize] += 1;
            let r = uf.union(ru, rv);
            lowest[r as usize] = v;
        }
        processed[v as usize] = true;
        let rv = uf.find(v);
        lowest[rv as usize] = v;
    }

    AugmentedTree {
        bbox,
        global: *global,
        down,
        up_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(values: Vec<f64>, dims: [usize; 3], conn: Connectivity) -> AugmentedTree {
        let b = BBox3::from_dims(dims);
        let f = ScalarField::from_vec(b, values);
        augmented_join_tree(&f, &b, conn)
    }

    #[test]
    fn monotone_ramp_is_a_path() {
        // 1D ramp: single maximum at the top, every vertex chains down.
        let t = tree_of(
            (0..8).map(|i| i as f64).collect(),
            [8, 1, 1],
            Connectivity::Six,
        );
        let leaves: Vec<u32> = (0..8).filter(|&i| t.is_leaf(i)).collect();
        assert_eq!(leaves, vec![7]);
        // Chain: 7 -> 6 -> ... -> 0, root at 0.
        for i in 1..8u32 {
            assert_eq!(t.down[i as usize], Some(i - 1));
        }
        assert_eq!(t.down[0], None);
        assert_eq!(t.criticals().count(), 2); // leaf + root
    }

    #[test]
    fn two_peaks_merge_at_saddle() {
        // Values: 5 1 4  => maxima at 0 and 2, saddle at 1 (root).
        let t = tree_of(vec![5.0, 1.0, 4.0], [3, 1, 1], Connectivity::Six);
        assert!(t.is_leaf(0));
        assert!(t.is_leaf(2));
        assert_eq!(t.down[0], Some(1));
        assert_eq!(t.down[2], Some(1));
        assert_eq!(t.up_count[1], 2);
        assert_eq!(t.down[1], None); // saddle is also the global min/root
    }

    #[test]
    fn w_profile() {
        // 5 1 4 0 3: maxima 0,2,4; merges at 1 then 3.
        let t = tree_of(vec![5.0, 1.0, 4.0, 0.0, 3.0], [5, 1, 1], Connectivity::Six);
        assert_eq!((0..5).filter(|&i| t.is_leaf(i)).count(), 3);
        assert_eq!(t.up_count[1], 2); // 5-peak and 4-peak merge at 1
        assert_eq!(t.up_count[3], 2); // that component and the 3-peak merge at 0... at 3
        assert_eq!(t.down[1], Some(3));
        assert_eq!(t.down[4], Some(3));
        assert_eq!(t.down[3], None);
    }

    #[test]
    fn constant_field_single_leaf_by_tiebreak() {
        let t = tree_of(vec![2.0; 27], [3, 3, 3], Connectivity::TwentySix);
        // Tie-break by id: vertex 0 is highest, the only leaf.
        let leaves: Vec<u32> = (0..27).filter(|&i| t.is_leaf(i)).collect();
        assert_eq!(leaves, vec![0]);
        // Exactly one root.
        assert_eq!((0..27).filter(|&i| t.down[i as usize].is_none()).count(), 1);
    }

    #[test]
    fn down_pointers_descend_in_sweep_order() {
        let b = BBox3::from_dims([4, 4, 4]);
        let f = ScalarField::from_fn(b, |p| ((p[0] * 7 + p[1] * 13 + p[2] * 29) % 11) as f64);
        let t = augmented_join_tree(&f, &b, Connectivity::Six);
        for i in 0..f.len() as u32 {
            if let Some(d) = t.down[i as usize] {
                let ki = (f.get_linear(i as usize), t.vertex_id(i));
                let kd = (f.get_linear(d as usize), t.vertex_id(d));
                assert!(sweep_before(ki, kd), "down must strictly descend");
            }
        }
        // up_count consistency.
        let mut counts = vec![0u32; f.len()];
        for i in 0..f.len() {
            if let Some(d) = t.down[i] {
                counts[d as usize] += 1;
            }
        }
        assert_eq!(counts, t.up_count);
    }

    #[test]
    fn tree_has_n_minus_components_edges() {
        // A connected grid block yields exactly one root and n-1 edges.
        let b = BBox3::from_dims([5, 3, 2]);
        let f = ScalarField::from_fn(b, |p| ((p[0] * 31 + p[1] * 17 + p[2] * 5) % 13) as f64);
        let t = augmented_join_tree(&f, &b, Connectivity::Six);
        let edges = t.down.iter().filter(|d| d.is_some()).count();
        let roots = t.down.iter().filter(|d| d.is_none()).count();
        assert_eq!(roots, 1);
        assert_eq!(edges, f.len() - 1);
    }

    #[test]
    fn connectivity_changes_maxima() {
        // A diagonal pair is connected under 26- but not 6-connectivity.
        //   values: 1 0
        //           0 1   (z = 1 slab of zeros keeps it 3D-valid)
        let b = BBox3::from_dims([2, 2, 1]);
        let f = ScalarField::from_vec(b, vec![1.0, 0.0, 0.0, 1.0]);
        let t6 = augmented_join_tree(&f, &b, Connectivity::Six);
        let t26 = augmented_join_tree(&f, &b, Connectivity::TwentySix);
        let leaves6 = (0..4).filter(|&i| t6.is_leaf(i)).count();
        let leaves26 = (0..4).filter(|&i| t26.is_leaf(i)).count();
        assert_eq!(leaves6, 2);
        // Under 26-connectivity the two 1.0s are adjacent: one leaf.
        assert_eq!(leaves26, 1);
    }
}
