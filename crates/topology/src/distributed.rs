//! End-to-end distributed merge tree: the full hybrid pipeline in one
//! call, used both by the framework driver and by correctness tests.

use crate::local::augmented_join_tree;
use crate::reduce::{reduce_to_subtree, InterfaceInfo, Subtree};
use crate::stream::{SourceId, StreamStats, StreamingMergeTree};
use crate::tree::MergeTree;
use crate::types::{sweep_before, Connectivity};
use rayon::prelude::*;
use sitra_mesh::{BBox3, Decomposition, ScalarField};

/// Which interface vertices each rank keeps in its subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryPolicy {
    /// Keep every vertex contained in another rank's ghosted region.
    /// Larger payload, trivially sound.
    AllShared,
    /// Keep, per neighbor pair, only the maxima of the field restricted
    /// to the pair's overlap region — the paper's "maxima restricted to
    /// boundary components" (corner regions arise as diagonal-neighbor
    /// overlaps). Much smaller payload.
    BoundaryMaxima,
}

/// Data-movement and memory accounting of one distributed computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributedStats {
    /// Total intermediate vertices across all subtrees.
    pub subtree_verts: usize,
    /// Total intermediate edges across all subtrees.
    pub subtree_edges: usize,
    /// Total intermediate bytes moved to the staging area.
    pub bytes_moved: usize,
    /// Streaming-stage statistics.
    pub stream: StreamStats,
}

/// Is `p` a maximum of `field` restricted to `region` (under `conn`,
/// ties broken by global id)?
fn is_restricted_maximum(
    field: &ScalarField,
    global: &BBox3,
    region: &BBox3,
    p: [usize; 3],
    conn: Connectivity,
) -> bool {
    let kp = (field.get(p), global.local_index(p) as u64);
    for q in conn.neighbors_in(p, region) {
        let kq = (field.get(q), global.local_index(q) as u64);
        if sweep_before(kq, kp) {
            return false;
        }
    }
    true
}

/// Compute each rank's in-situ subtree from its ghosted block.
///
/// `ghosted[r]` must cover `decomp.block(r).grow_clamped(1, global)` (see
/// [`sitra_mesh::exchange_ghosts`]); blocks then overlap by one vertex
/// layer, so the union of the local graphs is the global grid graph.
pub fn in_situ_subtrees(
    decomp: &Decomposition,
    ghosted: &[ScalarField],
    conn: Connectivity,
    policy: BoundaryPolicy,
) -> Vec<Subtree> {
    (0..decomp.rank_count())
        .into_par_iter()
        .map(|rank| rank_subtree(decomp, rank, &ghosted[rank], conn, policy))
        .collect()
}

/// One rank's in-situ topology stage: local tree + reduction. `field`
/// must cover the rank's block grown by a one-point halo.
pub fn rank_subtree(
    decomp: &Decomposition,
    rank: usize,
    field: &ScalarField,
    conn: Connectivity,
    policy: BoundaryPolicy,
) -> Subtree {
    let global = decomp.global();
    {
        assert_eq!(
            field.bbox(),
            decomp.block(rank).grow_clamped(1, &global),
            "rank {rank}: ghosted field does not match block"
        );
        let tree = augmented_join_tree(field, &global, conn);
        let own_gbox = field.bbox();
        reduce_to_subtree(&tree, field, rank as SourceId, |p| {
            // Potential declarers: every rank whose ghosted box
            // contains p (they might keep it as a critical point of
            // their local tree even if it is not an interface
            // vertex). `s`'s ghosted box contains `p` exactly when
            // `block(s)` intersects the unit box around `p` grown by
            // the halo width, so a spatial query finds them all —
            // including ranks beyond the 26-neighborhood when blocks
            // are thinner than the halo. Every rank runs the same
            // query, so the sets agree at the aggregator.
            let probe = BBox3::new(p, [p[0] + 1, p[1] + 1, p[2] + 1]).grow_clamped(1, &global);
            let mut potential: Vec<SourceId> = vec![rank as SourceId];
            let mut keep = false;
            for (s, _) in decomp.ranks_overlapping(&probe) {
                if s == rank {
                    continue;
                }
                potential.push(s as SourceId);
                if keep {
                    continue;
                }
                // Pair overlap region: both ranks of the pair compute
                // the identical region and (for BoundaryMaxima) the
                // identical restricted maxima.
                let region = decomp
                    .block(s)
                    .grow_clamped(1, &global)
                    .intersect(&own_gbox)
                    .expect("ghosted boxes of sharing ranks overlap");
                debug_assert!(region.contains(p));
                keep = match policy {
                    BoundaryPolicy::AllShared => true,
                    BoundaryPolicy::BoundaryMaxima => {
                        is_restricted_maximum(field, &global, &region, p, conn)
                    }
                };
            }
            InterfaceInfo { potential, keep }
        })
    }
}

/// Glue subtrees in-transit (any order) into the global merge tree.
pub fn glue_subtrees(subtrees: &[Subtree]) -> (MergeTree, StreamStats) {
    let mut s = StreamingMergeTree::new();
    for sub in subtrees {
        sub.stream_into(&mut s);
    }
    s.finish()
}

/// The whole hybrid pipeline: ghost exchange → per-rank in-situ subtrees
/// (in parallel) → streaming in-transit gluing. `fields[r]` covers exactly
/// `decomp.block(r)`.
pub fn distributed_merge_tree(
    decomp: &Decomposition,
    fields: &[ScalarField],
    conn: Connectivity,
    policy: BoundaryPolicy,
) -> (MergeTree, DistributedStats) {
    let (ghosted, _) = sitra_mesh::exchange_ghosts(decomp, fields, 1);
    let subtrees = in_situ_subtrees(decomp, &ghosted, conn, policy);
    let mut stats = DistributedStats::default();
    for s in &subtrees {
        stats.subtree_verts += s.verts.len();
        stats.subtree_edges += s.edges.len();
        stats.bytes_moved += s.bytes();
    }
    let (tree, stream) = glue_subtrees(&subtrees);
    stats.stream = stream;
    (tree, stats)
}

/// The split tree (sublevel-set merge tree) of a field: leaves are
/// *minima*, arcs merge as the isovalue rises.
///
/// Implemented as the join tree of the negated field, so **node values in
/// the returned tree are negated** (`tree value = −f`); ids are
/// unchanged. Persistence and structure queries work directly; translate
/// values back with a sign flip. The distributed pipeline handles split
/// trees the same way — negate the field before the in-situ stage.
pub fn serial_split_tree(field: &ScalarField, conn: Connectivity) -> MergeTree {
    let mut neg = field.clone();
    neg.map_in_place(|v| -v);
    serial_merge_tree(&neg, conn)
}

/// Serial reference: the merge tree of the whole domain in one piece.
pub fn serial_merge_tree(field: &ScalarField, conn: Connectivity) -> MergeTree {
    let global = field.bbox();
    let t = augmented_join_tree(field, &global, conn);
    let mut tree = MergeTree::new();
    for i in 0..field.len() as u32 {
        tree.add_node(t.vertex_id(i), field.get_linear(i as usize));
    }
    for i in 0..field.len() as u32 {
        if let Some(d) = t.down[i as usize] {
            tree.add_arc(t.vertex_id(i), t.vertex_id(d));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_field(b: BBox3, salt: usize) -> ScalarField {
        ScalarField::from_fn(b, |p| {
            ((p[0].wrapping_mul(2654435761)
                ^ p[1].wrapping_mul(40503)
                ^ p[2].wrapping_mul(2246822519)
                ^ salt.wrapping_mul(97))
                % 1013) as f64
        })
    }

    fn check(dims: [usize; 3], parts: [usize; 3], conn: Connectivity, salt: usize) {
        let g = BBox3::from_dims(dims);
        let whole = hash_field(g, salt);
        let d = Decomposition::new(g, parts);
        let fields: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect();
        let serial = serial_merge_tree(&whole, conn);
        for policy in [BoundaryPolicy::AllShared, BoundaryPolicy::BoundaryMaxima] {
            let (dist, stats) = distributed_merge_tree(&d, &fields, conn, policy);
            assert_eq!(
                dist.canonical(),
                serial.canonical(),
                "{dims:?} {parts:?} {policy:?}"
            );
            assert!(stats.bytes_moved > 0);
        }
    }

    #[test]
    fn distributed_equals_serial_2x1x1() {
        check([10, 6, 5], [2, 1, 1], Connectivity::Six, 1);
    }

    #[test]
    fn distributed_equals_serial_2x2x2() {
        check([8, 8, 8], [2, 2, 2], Connectivity::Six, 2);
    }

    #[test]
    fn distributed_equals_serial_26conn() {
        check([9, 7, 6], [3, 2, 2], Connectivity::TwentySix, 3);
    }

    #[test]
    fn distributed_equals_serial_uneven() {
        check([11, 7, 5], [4, 3, 1], Connectivity::Six, 4);
    }

    #[test]
    fn constant_field_distributed() {
        let g = BBox3::from_dims([6, 6, 6]);
        let whole = ScalarField::new_fill(g, 1.0);
        let d = Decomposition::new(g, [2, 2, 1]);
        let fields: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect();
        let serial = serial_merge_tree(&whole, Connectivity::Six);
        for policy in [BoundaryPolicy::AllShared, BoundaryPolicy::BoundaryMaxima] {
            let (dist, _) = distributed_merge_tree(&d, &fields, Connectivity::Six, policy);
            assert_eq!(dist.canonical(), serial.canonical(), "{policy:?}");
            assert_eq!(dist.maxima().len(), 1);
        }
    }

    #[test]
    fn boundary_maxima_moves_less_data() {
        let g = BBox3::from_dims([24, 24, 24]);
        let whole = ScalarField::from_fn(g, |p| {
            let x = p[0] as f64 / 24.0;
            let y = p[1] as f64 / 24.0;
            let z = p[2] as f64 / 24.0;
            (6.3 * x).sin() + (6.3 * y).cos() * (3.1 * z).sin()
        });
        let d = Decomposition::new(g, [2, 2, 2]);
        let fields: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect();
        let (t1, all) =
            distributed_merge_tree(&d, &fields, Connectivity::Six, BoundaryPolicy::AllShared);
        let (t2, maxima) = distributed_merge_tree(
            &d,
            &fields,
            Connectivity::Six,
            BoundaryPolicy::BoundaryMaxima,
        );
        assert_eq!(t1.canonical(), t2.canonical());
        assert!(
            maxima.bytes_moved * 3 < all.bytes_moved,
            "maxima policy {} vs all-shared {}",
            maxima.bytes_moved,
            all.bytes_moved
        );
        // And for a smooth field the reduced payload is far below raw.
        let raw_bytes = g.count() * 8;
        assert!(
            maxima.bytes_moved * 10 < raw_bytes,
            "moved {} of {} raw bytes",
            maxima.bytes_moved,
            raw_bytes
        );
    }

    #[test]
    fn split_tree_leaves_are_minima() {
        // 1D: 5 1 4 0 3 — minima at positions 1 and 3.
        let b = BBox3::from_dims([5, 1, 1]);
        let f = ScalarField::from_vec(b, vec![5.0, 1.0, 4.0, 0.0, 3.0]);
        let split = serial_split_tree(&f, Connectivity::Six);
        let mut leaves = split.maxima();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![1, 3]);
        // Split-tree leaf values are the negated field values.
        assert_eq!(split.value(3), Some(-0.0));
        // Join tree of the same field has maxima elsewhere.
        let join = serial_merge_tree(&f, Connectivity::Six);
        let mut peaks = join.maxima();
        peaks.sort_unstable();
        assert_eq!(peaks, vec![0, 2, 4]);
    }

    #[test]
    fn streaming_memory_stays_bounded() {
        let g = BBox3::from_dims([20, 20, 10]);
        let whole = hash_field(g, 9);
        let d = Decomposition::new(g, [2, 2, 1]);
        let fields: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect();
        let (_, stats) = distributed_merge_tree(
            &d,
            &fields,
            Connectivity::Six,
            BoundaryPolicy::BoundaryMaxima,
        );
        // The gluer never holds anywhere near the full vertex set.
        assert!(stats.stream.peak_live <= stats.subtree_verts);
        assert!(stats.stream.evicted > 0);
    }
}
