//! The merge tree proper: canonical critical-point structure,
//! persistence-based branch decomposition, and simplification.

use crate::types::{sweep_before, VertexId};
use std::collections::HashMap;

/// A merge (join) tree over global vertex ids.
///
/// Nodes carry their scalar value; each node has at most one `down`
/// neighbor (toward lower values). Leaves are maxima, nodes with two or
/// more up-arcs are merge saddles, and a node without `down` is the root
/// of its component.
#[derive(Debug, Clone, Default)]
pub struct MergeTree {
    ids: Vec<VertexId>,
    values: Vec<f64>,
    down: Vec<Option<u32>>,
    index: HashMap<VertexId, u32>,
}

impl MergeTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Insert a node if absent; returns its slot. Panics if the same id is
    /// re-declared with a different value.
    pub fn add_node(&mut self, id: VertexId, value: f64) -> u32 {
        if let Some(&i) = self.index.get(&id) {
            assert_eq!(
                self.values[i as usize], value,
                "vertex {id} re-declared with a different value"
            );
            return i;
        }
        let i = self.ids.len() as u32;
        self.ids.push(id);
        self.values.push(value);
        self.down.push(None);
        self.index.insert(id, i);
        i
    }

    /// Connect `upper` downward to `lower`. Both must exist; `upper` must
    /// be strictly higher in sweep order and not yet connected.
    pub fn add_arc(&mut self, upper: VertexId, lower: VertexId) {
        let u = self.index[&upper];
        let l = self.index[&lower];
        assert!(
            sweep_before(
                (self.values[u as usize], upper),
                (self.values[l as usize], lower)
            ),
            "arc must descend: {upper} -> {lower}"
        );
        assert!(
            self.down[u as usize].is_none(),
            "{upper} already has a down arc"
        );
        self.down[u as usize] = Some(l);
    }

    /// Node value by id.
    pub fn value(&self, id: VertexId) -> Option<f64> {
        self.index.get(&id).map(|&i| self.values[i as usize])
    }

    /// The node each id points down to.
    pub fn down_of(&self, id: VertexId) -> Option<VertexId> {
        let i = *self.index.get(&id)?;
        self.down[i as usize].map(|d| self.ids[d as usize])
    }

    /// All node ids.
    pub fn node_ids(&self) -> &[VertexId] {
        &self.ids
    }

    /// All arcs as `(upper id, lower id)`.
    pub fn arcs(&self) -> Vec<(VertexId, VertexId)> {
        self.down
            .iter()
            .enumerate()
            .filter_map(|(u, d)| d.map(|l| (self.ids[u], self.ids[l as usize])))
            .collect()
    }

    fn up_counts(&self) -> Vec<u32> {
        let mut up = vec![0u32; self.len()];
        for d in self.down.iter().flatten() {
            up[*d as usize] += 1;
        }
        up
    }

    /// Leaves (maxima), sorted descending in sweep order.
    pub fn maxima(&self) -> Vec<VertexId> {
        let up = self.up_counts();
        let mut out: Vec<u32> = (0..self.len() as u32)
            .filter(|&i| up[i as usize] == 0)
            .collect();
        self.sort_by_sweep(&mut out);
        out.into_iter().map(|i| self.ids[i as usize]).collect()
    }

    /// Roots (one per connected component).
    pub fn roots(&self) -> Vec<VertexId> {
        (0..self.len())
            .filter(|&i| self.down[i].is_none())
            .map(|i| self.ids[i])
            .collect()
    }

    fn sort_by_sweep(&self, idxs: &mut [u32]) {
        idxs.sort_unstable_by(|&a, &b| {
            let ka = (self.values[a as usize], self.ids[a as usize]);
            let kb = (self.values[b as usize], self.ids[b as usize]);
            kb.0.partial_cmp(&ka.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ka.1.cmp(&kb.1))
        });
    }

    /// The canonical form: regular nodes (exactly one up-arc and a
    /// down-arc) spliced out, arcs sorted. Two trees describe the same
    /// topology iff their canonical node/arc sets are equal — this is the
    /// equality used to validate the distributed computation against the
    /// serial one.
    pub fn canonical(&self) -> CanonicalTree {
        let up = self.up_counts();
        let keep = |i: u32| up[i as usize] != 1 || self.down[i as usize].is_none();
        let mut nodes: Vec<(VertexId, f64)> = Vec::new();
        let mut arcs: Vec<(VertexId, VertexId)> = Vec::new();
        for i in 0..self.len() as u32 {
            if !keep(i) {
                continue;
            }
            nodes.push((self.ids[i as usize], self.values[i as usize]));
            // Walk down through regular nodes to the next kept node.
            let mut cur = self.down[i as usize];
            while let Some(c) = cur {
                if keep(c) {
                    arcs.push((self.ids[i as usize], self.ids[c as usize]));
                    break;
                }
                cur = self.down[c as usize];
            }
        }
        nodes.sort_unstable_by_key(|n| n.0);
        arcs.sort_unstable();
        CanonicalTree { nodes, arcs }
    }

    /// Branch decomposition by the elder rule.
    ///
    /// Every node is assigned to the branch of the *sweep-highest* maximum
    /// above it; each non-elder maximum's branch terminates at the saddle
    /// where it merges with an older branch. Returns, per maximum, the
    /// saddle where its branch dies (`None` for the globally-highest
    /// maximum of each component, which persists forever).
    pub fn branch_decomposition(&self) -> Vec<Branch> {
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        self.sort_by_sweep(&mut order);
        let up = self.up_counts();
        // branch[i]: the maximum owning the branch through node i.
        let mut branch: Vec<Option<u32>> = vec![None; n];
        let mut dies: HashMap<u32, Option<(VertexId, f64)>> = HashMap::new();
        // Process top-down: by the time we reach a node, all its up-arcs
        // have assigned branches.
        let mut ups_of: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, d) in self.down.iter().enumerate() {
            if let Some(l) = d {
                ups_of[*l as usize].push(u as u32);
            }
        }
        for &i in &order {
            let iu = i as usize;
            if up[iu] == 0 {
                branch[iu] = Some(i);
                dies.insert(i, None);
                continue;
            }
            // The elder child branch continues through this node.
            let mut child_branches: Vec<u32> = ups_of[iu]
                .iter()
                .map(|&u| branch[u as usize].expect("processed above"))
                .collect();
            child_branches.sort_unstable_by(|&a, &b| {
                let ka = (self.values[a as usize], self.ids[a as usize]);
                let kb = (self.values[b as usize], self.ids[b as usize]);
                kb.0.partial_cmp(&ka.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ka.1.cmp(&kb.1))
            });
            child_branches.dedup();
            let elder = child_branches[0];
            branch[iu] = Some(elder);
            // Younger branches die here.
            for &y in &child_branches[1..] {
                dies.insert(y, Some((self.ids[iu], self.values[iu])));
            }
        }
        let mut out: Vec<Branch> = dies
            .into_iter()
            .map(|(leaf, death)| {
                let lv = self.values[leaf as usize];
                Branch {
                    leaf: self.ids[leaf as usize],
                    leaf_value: lv,
                    dies_at: death,
                    persistence: death.map_or(f64::INFINITY, |(_, sv)| lv - sv),
                }
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.persistence
                .partial_cmp(&a.persistence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.leaf.cmp(&b.leaf))
        });
        out
    }

    /// For every node with value ≥ `t` (in sweep order), the *feature
    /// representative*: the sweep-highest maximum of its superlevel-set
    /// component at level `t`. Nodes below `t` are absent.
    ///
    /// This is the tree-side half of feature-based statistics: per-block
    /// partial statistics are keyed by a local maximum, and this map
    /// tells the in-transit stage which global feature each local
    /// maximum belongs to at the analysis threshold.
    pub fn feature_representatives(&self, t: f64) -> HashMap<VertexId, VertexId> {
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        self.sort_by_sweep(&mut order);
        // Union-find over node slots, restricted to nodes >= t.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut r = x;
            while parent[r as usize] != r {
                r = parent[r as usize];
            }
            let mut c = x;
            while parent[c as usize] != r {
                let nx = parent[c as usize];
                parent[c as usize] = r;
                c = nx;
            }
            r
        }
        // Highest node (by sweep) in each component — always a maximum,
        // because components grow top-down.
        let mut top: Vec<u32> = (0..n as u32).collect();
        let above = |i: u32| self.values[i as usize] >= t;
        let mut ups_of: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, d) in self.down.iter().enumerate() {
            if let Some(l) = d {
                ups_of[*l as usize].push(u as u32);
            }
        }
        for &i in &order {
            if !above(i) {
                break;
            }
            // Union with every up-neighbor (all ups are sweep-higher by
            // the arc invariant, hence already processed and above t).
            for &u in &ups_of[i as usize] {
                let ru = find(&mut parent, u);
                let ri = find(&mut parent, i);
                if ru != ri {
                    // Keep the sweep-higher top.
                    let tu = top[ru as usize];
                    let ti = top[ri as usize];
                    let ku = (self.values[tu as usize], self.ids[tu as usize]);
                    let ki = (self.values[ti as usize], self.ids[ti as usize]);
                    let newtop = if sweep_before(ku, ki) { tu } else { ti };
                    parent[ru as usize] = ri;
                    top[ri as usize] = newtop;
                }
            }
        }
        let mut out = HashMap::new();
        for i in 0..n as u32 {
            if above(i) {
                let r = find(&mut parent, i);
                out.insert(self.ids[i as usize], self.ids[top[r as usize] as usize]);
            }
        }
        out
    }

    /// Maxima whose branch persistence is at least `threshold`, plus a map
    /// from every maximum to the surviving maximum that absorbs it under
    /// simplification (surviving maxima map to themselves).
    pub fn simplify_map(&self, threshold: f64) -> SimplifyMap {
        let branches = self.branch_decomposition();
        let surviving: Vec<VertexId> = branches
            .iter()
            .filter(|b| b.persistence >= threshold)
            .map(|b| b.leaf)
            .collect();
        // For absorbed maxima: follow the branch of the saddle where they
        // die, repeatedly, until a surviving maximum is reached.
        // Build: leaf -> (dies_at saddle), and saddle -> owning branch.
        let n = self.len();
        let mut ups_of: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, d) in self.down.iter().enumerate() {
            if let Some(l) = d {
                ups_of[*l as usize].push(u as u32);
            }
        }
        // Recompute branch ownership (same walk as branch_decomposition).
        let mut order: Vec<u32> = (0..n as u32).collect();
        self.sort_by_sweep(&mut order);
        let up = self.up_counts();
        let mut branch: Vec<Option<u32>> = vec![None; n];
        let mut parent_branch: HashMap<VertexId, VertexId> = HashMap::new();
        for &i in &order {
            let iu = i as usize;
            if up[iu] == 0 {
                branch[iu] = Some(i);
                continue;
            }
            let mut child_branches: Vec<u32> = ups_of[iu]
                .iter()
                .map(|&u| branch[u as usize].unwrap())
                .collect();
            child_branches.sort_unstable_by(|&a, &b| {
                let ka = (self.values[a as usize], self.ids[a as usize]);
                let kb = (self.values[b as usize], self.ids[b as usize]);
                kb.0.partial_cmp(&ka.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ka.1.cmp(&kb.1))
            });
            child_branches.dedup();
            let elder = child_branches[0];
            branch[iu] = Some(elder);
            for &y in &child_branches[1..] {
                parent_branch.insert(self.ids[y as usize], self.ids[elder as usize]);
            }
        }
        let surviving_set: std::collections::HashSet<VertexId> =
            surviving.iter().copied().collect();
        let mut absorb: HashMap<VertexId, VertexId> = HashMap::new();
        for b in &branches {
            let mut cur = b.leaf;
            while !surviving_set.contains(&cur) {
                cur = *parent_branch
                    .get(&cur)
                    .expect("every non-surviving branch has a parent");
            }
            absorb.insert(b.leaf, cur);
        }
        SimplifyMap { surviving, absorb }
    }
}

/// Canonical (critical-points-only) form of a merge tree; see
/// [`MergeTree::canonical`].
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalTree {
    /// `(id, value)` for every critical node, sorted by id.
    pub nodes: Vec<(VertexId, f64)>,
    /// `(upper, lower)` arcs between critical nodes, sorted.
    pub arcs: Vec<(VertexId, VertexId)>,
}

/// One branch of the decomposition: a maximum and where it dies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Branch {
    /// The maximum owning the branch.
    pub leaf: VertexId,
    /// Value at the maximum.
    pub leaf_value: f64,
    /// Saddle `(id, value)` where the branch merges into an older one;
    /// `None` for the elder branch of a component.
    pub dies_at: Option<(VertexId, f64)>,
    /// `leaf_value − saddle_value`, or +inf for elder branches.
    pub persistence: f64,
}

/// Result of persistence simplification at a threshold.
#[derive(Debug, Clone)]
pub struct SimplifyMap {
    /// Maxima that survive, most persistent first.
    pub surviving: Vec<VertexId>,
    /// Every maximum → the surviving maximum that absorbs it.
    pub absorb: HashMap<VertexId, VertexId>,
}

impl SimplifyMap {
    /// The surviving maximum absorbing `leaf` (identity for survivors).
    pub fn target(&self, leaf: VertexId) -> Option<VertexId> {
        self.absorb.get(&leaf).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree:   10(a)   8(b)
    ///            \    /
    ///             6(s)     4(c)
    ///               \      /
    ///                 2(r)
    fn two_saddle_tree() -> MergeTree {
        let mut t = MergeTree::new();
        t.add_node(0, 10.0); // a
        t.add_node(1, 8.0); // b
        t.add_node(2, 6.0); // s
        t.add_node(3, 4.0); // c
        t.add_node(4, 2.0); // r
        t.add_arc(0, 2);
        t.add_arc(1, 2);
        t.add_arc(2, 4);
        t.add_arc(3, 4);
        t
    }

    #[test]
    fn maxima_and_roots() {
        let t = two_saddle_tree();
        assert_eq!(t.maxima(), vec![0, 1, 3]);
        assert_eq!(t.roots(), vec![4]);
    }

    #[test]
    fn canonical_splices_regular_nodes() {
        let mut t = MergeTree::new();
        t.add_node(0, 10.0);
        t.add_node(1, 7.0); // regular
        t.add_node(2, 5.0); // regular
        t.add_node(3, 1.0);
        t.add_arc(0, 1);
        t.add_arc(1, 2);
        t.add_arc(2, 3);
        let c = t.canonical();
        assert_eq!(c.nodes, vec![(0, 10.0), (3, 1.0)]);
        assert_eq!(c.arcs, vec![(0, 3)]);
    }

    #[test]
    fn canonical_equality_across_representations() {
        // Same topology with and without intermediate regular nodes.
        let t1 = two_saddle_tree();
        let mut t2 = MergeTree::new();
        t2.add_node(0, 10.0);
        t2.add_node(9, 9.0); // regular on a's arc
        t2.add_node(1, 8.0);
        t2.add_node(2, 6.0);
        t2.add_node(3, 4.0);
        t2.add_node(4, 2.0);
        t2.add_arc(0, 9);
        t2.add_arc(9, 2);
        t2.add_arc(1, 2);
        t2.add_arc(2, 4);
        t2.add_arc(3, 4);
        assert_eq!(t1.canonical(), t2.canonical());
    }

    #[test]
    fn branch_decomposition_elder_rule() {
        let t = two_saddle_tree();
        let br = t.branch_decomposition();
        assert_eq!(br.len(), 3);
        // Elder branch: leaf 0, infinite persistence.
        assert_eq!(br[0].leaf, 0);
        assert!(br[0].persistence.is_infinite());
        // Leaf 1 dies at saddle 2 (value 6): persistence 2.
        let b1 = br.iter().find(|b| b.leaf == 1).unwrap();
        assert_eq!(b1.dies_at, Some((2, 6.0)));
        assert_eq!(b1.persistence, 2.0);
        // Leaf 3 dies at root 4 (value 2): persistence 2.
        let b3 = br.iter().find(|b| b.leaf == 3).unwrap();
        assert_eq!(b3.dies_at, Some((4, 2.0)));
        assert_eq!(b3.persistence, 2.0);
    }

    #[test]
    fn simplify_absorbs_small_branches() {
        let t = two_saddle_tree();
        // Threshold above 2: only the elder branch survives.
        let s = t.simplify_map(3.0);
        assert_eq!(s.surviving, vec![0]);
        assert_eq!(s.target(1), Some(0));
        assert_eq!(s.target(3), Some(0));
        assert_eq!(s.target(0), Some(0));
        // Threshold 0: everything survives.
        let s0 = t.simplify_map(0.0);
        assert_eq!(s0.surviving.len(), 3);
        assert_eq!(s0.target(1), Some(1));
    }

    #[test]
    fn nested_absorption_chains() {
        // d(9) dies into c's branch; c(9.5) dies into a's branch. With a
        // high threshold both must chain to a.
        let mut t = MergeTree::new();
        t.add_node(0, 10.0); // a
        t.add_node(1, 9.5); // c
        t.add_node(2, 9.0); // d
        t.add_node(3, 8.5); // saddle d/c
        t.add_node(4, 5.0); // saddle c/a
        t.add_arc(1, 3);
        t.add_arc(2, 3);
        t.add_arc(3, 4);
        t.add_arc(0, 4);
        let s = t.simplify_map(10.0);
        assert_eq!(s.surviving, vec![0]);
        assert_eq!(s.target(2), Some(0));
        assert_eq!(s.target(1), Some(0));
        // Middle threshold: c survives (persistence 4.5), d (0.5) doesn't.
        let s2 = t.simplify_map(1.0);
        assert_eq!(s2.surviving.len(), 2);
        assert_eq!(s2.target(2), Some(1));
    }

    #[test]
    #[should_panic]
    fn arc_must_descend() {
        let mut t = MergeTree::new();
        t.add_node(0, 1.0);
        t.add_node(1, 5.0);
        t.add_arc(0, 1);
    }

    #[test]
    #[should_panic]
    fn redeclare_different_value_panics() {
        let mut t = MergeTree::new();
        t.add_node(0, 1.0);
        t.add_node(0, 2.0);
    }

    #[test]
    fn accessors() {
        let t = two_saddle_tree();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.value(2), Some(6.0));
        assert_eq!(t.value(99), None);
        assert_eq!(t.down_of(0), Some(2));
        assert_eq!(t.down_of(4), None);
        assert_eq!(t.down_of(99), None);
        assert_eq!(t.arcs().len(), 4);
        assert_eq!(t.node_ids().len(), 5);
        assert!(MergeTree::new().is_empty());
    }

    #[test]
    fn feature_representatives_by_threshold() {
        let t = two_saddle_tree();
        // Above the first saddle (t = 7): components {a}, {b} — wait, b=8
        // is above 7, a=10 too; they are separate (saddle at 6 is below).
        let reps = t.feature_representatives(7.0);
        assert_eq!(reps.get(&0), Some(&0));
        assert_eq!(reps.get(&1), Some(&1));
        assert!(!reps.contains_key(&2)); // saddle (6) below threshold
        assert!(!reps.contains_key(&3)); // c (4) below threshold
                                         // At t = 5: a and b merged through the saddle; c separate.
        let reps = t.feature_representatives(5.0);
        assert_eq!(reps.get(&0), Some(&0));
        assert_eq!(reps.get(&1), Some(&0));
        assert_eq!(reps.get(&2), Some(&0));
        assert!(!reps.contains_key(&3));
        // At t = 3: c is its own feature.
        let reps = t.feature_representatives(3.0);
        assert_eq!(reps.get(&3), Some(&3));
        assert_eq!(reps.get(&1), Some(&0));
        // Below the root everything is one feature labeled by the
        // global max.
        let reps = t.feature_representatives(0.0);
        assert!(reps.values().all(|&r| r == 0));
        assert_eq!(reps.len(), 5);
    }

    #[test]
    fn forest_with_two_components() {
        let mut t = MergeTree::new();
        t.add_node(0, 5.0);
        t.add_node(1, 1.0);
        t.add_arc(0, 1);
        t.add_node(10, 7.0);
        t.add_node(11, 2.0);
        t.add_arc(10, 11);
        assert_eq!(t.roots().len(), 2);
        let br = t.branch_decomposition();
        assert_eq!(br.len(), 2);
        assert!(br.iter().all(|b| b.persistence.is_infinite()));
    }
}
