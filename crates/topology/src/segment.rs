//! Threshold segmentation: label superlevel-set components by their
//! dominant (optionally simplification-absorbed) maximum.
//!
//! This is the merge tree's primary analysis product in the paper's
//! combustion use case: the regions around local maxima describe features
//! such as burning regions or ignition kernels, and a family of such
//! segmentations (one per threshold) is exactly what the tree encodes.

use crate::tree::SimplifyMap;
use crate::types::{sweep_before, Connectivity, UnionFind, VertexId};
use serde::{Deserialize, Serialize};
use sitra_mesh::ScalarField;

/// A per-vertex labeling of one block or domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segmentation {
    /// The region covered, mirroring the source field.
    pub bbox: sitra_mesh::BBox3,
    /// Label per vertex (x fastest): the id of the maximum owning the
    /// component, or `None` below the threshold.
    pub labels: Vec<Option<VertexId>>,
    /// The threshold used.
    pub threshold: f64,
}

impl Segmentation {
    /// Label at a global coordinate.
    pub fn label(&self, p: [usize; 3]) -> Option<VertexId> {
        self.labels[self.bbox.local_index(p)]
    }

    /// Distinct feature labels, sorted.
    pub fn features(&self) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self.labels.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of vertices carrying `label`.
    pub fn feature_size(&self, label: VertexId) -> usize {
        self.labels.iter().filter(|l| **l == Some(label)).count()
    }
}

/// Segment the superlevel set `{f ≥ threshold}` of `field`.
///
/// Each connected component (under `conn`) is labeled by its highest
/// vertex (in global sweep order) — its maximum. If `simplify` is given,
/// labels are mapped through it, merging features whose maxima were
/// absorbed by persistence simplification (the label becomes the
/// *surviving* maximum). `global` defines vertex ids.
pub fn segment_superlevel(
    field: &ScalarField,
    global: &sitra_mesh::BBox3,
    threshold: f64,
    conn: Connectivity,
    simplify: Option<&SimplifyMap>,
) -> Segmentation {
    let bbox = field.bbox();
    let n = field.len();
    let mut uf = UnionFind::new(n);
    let vid = |i: usize| global.local_index(bbox.coord_of(i)) as VertexId;

    // Union adjacent above-threshold vertices.
    let offsets = conn.offsets();
    for i in 0..n {
        if field.get_linear(i) < threshold {
            continue;
        }
        let p = bbox.coord_of(i);
        for d in &offsets {
            let mut q = [0usize; 3];
            let mut ok = true;
            for a in 0..3 {
                let c = p[a] as isize + d[a];
                if c < bbox.lo[a] as isize || c >= bbox.hi[a] as isize {
                    ok = false;
                    break;
                }
                q[a] = c as usize;
            }
            if !ok {
                continue;
            }
            let j = bbox.local_index(q);
            if field.get_linear(j) >= threshold {
                uf.union(i as u32, j as u32);
            }
        }
    }

    // Highest vertex per component.
    let mut best: Vec<Option<u32>> = vec![None; n];
    for i in 0..n {
        if field.get_linear(i) < threshold {
            continue;
        }
        let r = uf.find(i as u32) as usize;
        let better = match best[r] {
            None => true,
            Some(b) => sweep_before(
                (field.get_linear(i), vid(i)),
                (field.get_linear(b as usize), vid(b as usize)),
            ),
        };
        if better {
            best[r] = Some(i as u32);
        }
    }

    let labels: Vec<Option<VertexId>> = (0..n)
        .map(|i| {
            if field.get_linear(i) < threshold {
                return None;
            }
            let r = uf.find(i as u32) as usize;
            let m = vid(best[r].expect("component has a maximum") as usize);
            Some(match simplify {
                Some(s) => s.target(m).unwrap_or(m),
                None => m,
            })
        })
        .collect();

    Segmentation {
        bbox,
        labels,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitra_mesh::BBox3;

    /// 1D double bump: 0 3 9 3 0 4 8 4 0
    fn bump_field() -> ScalarField {
        ScalarField::from_vec(
            BBox3::from_dims([9, 1, 1]),
            vec![0.0, 3.0, 9.0, 3.0, 0.0, 4.0, 8.0, 4.0, 0.0],
        )
    }

    #[test]
    fn two_features_above_threshold() {
        let f = bump_field();
        let g = f.bbox();
        let s = segment_superlevel(&f, &g, 2.5, Connectivity::Six, None);
        let feats = s.features();
        assert_eq!(feats.len(), 2);
        // Labels are the maxima ids (positions 2 and 6).
        assert_eq!(feats, vec![2, 6]);
        assert_eq!(s.label([2, 0, 0]), Some(2));
        assert_eq!(s.label([6, 0, 0]), Some(6));
        assert_eq!(s.label([0, 0, 0]), None);
        assert_eq!(s.feature_size(2), 3);
        assert_eq!(s.feature_size(6), 3);
    }

    #[test]
    fn low_threshold_merges_features() {
        let f = bump_field();
        let g = f.bbox();
        let s = segment_superlevel(&f, &g, -1.0, Connectivity::Six, None);
        // Whole domain is one component labeled by the global max (id 2).
        assert_eq!(s.features(), vec![2]);
        assert_eq!(s.feature_size(2), 9);
    }

    #[test]
    fn threshold_above_everything_is_empty() {
        let f = bump_field();
        let g = f.bbox();
        let s = segment_superlevel(&f, &g, 100.0, Connectivity::Six, None);
        assert!(s.features().is_empty());
        assert!(s.labels.iter().all(Option::is_none));
    }

    #[test]
    fn simplification_relabels_to_surviving_maximum() {
        let f = bump_field();
        let g = f.bbox();
        let tree = crate::distributed::serial_merge_tree(&f, Connectivity::Six);
        // The 8-peak has persistence 8: dies at the root (value 0). The
        // 9-peak is elder. Simplify away everything but the elder.
        let smap = tree.simplify_map(f64::INFINITY);
        assert_eq!(smap.surviving, vec![2]);
        let s = segment_superlevel(&f, &g, 2.5, Connectivity::Six, Some(&smap));
        // Both bumps now carry the surviving label.
        assert_eq!(s.features(), vec![2]);
        assert_eq!(s.feature_size(2), 6);
    }

    #[test]
    fn segmentation_consistent_with_merge_tree_maxima() {
        // Every feature label is a maximum of the tree.
        let b = BBox3::from_dims([8, 8, 1]);
        let f = ScalarField::from_fn(b, |p| {
            let x = p[0] as f64;
            let y = p[1] as f64;
            ((x * 1.3).sin() * (y * 0.9).cos() * 10.0).round()
        });
        let tree = crate::distributed::serial_merge_tree(&f, Connectivity::TwentySix);
        let maxima: std::collections::HashSet<VertexId> = tree.maxima().into_iter().collect();
        let s = segment_superlevel(&f, &b, 1.0, Connectivity::TwentySix, None);
        for feat in s.features() {
            assert!(maxima.contains(&feat), "label {feat} is not a tree maximum");
        }
    }
}
