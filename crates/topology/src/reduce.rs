//! Sparsifying a local augmented tree into the intermediate [`Subtree`]
//! that ships to the staging area.
//!
//! The reduction keeps local critical points (maxima, merge saddles,
//! component roots) plus the *interface* vertices the caller selects —
//! the topological equivalent of ghost cells. Regular non-interface
//! vertices are spliced out of the tree chains. The resulting vertex and
//! edge lists are the "intermediate results" of the paper's hybrid
//! topology pipeline: typically orders of magnitude smaller than the
//! block, yet sufficient for the streaming in-transit stage to
//! reconstruct the exact global merge tree.
//!
//! Two interface policies are provided by [`crate::distributed`]:
//!
//! * **AllShared** — keep every vertex seen by more than one rank. Simple
//!   and obviously sound, but the payload scales with the block surface.
//! * **BoundaryMaxima** — keep, per neighbor pair, only the maxima of the
//!   field restricted to the pair's overlap region (the paper's "maxima
//!   restricted to boundary components", with corner overlaps arising as
//!   their own pair regions). Sound because any superlevel crossing at a
//!   dropped interface vertex is witnessed by an uphill path *within the
//!   overlap region* to one of its kept maxima.

use crate::local::AugmentedTree;
use crate::stream::SourceId;
use crate::types::VertexId;
use serde::{Deserialize, Serialize};
use sitra_mesh::ScalarField;

/// One kept vertex of a subtree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubtreeVertex {
    /// Global vertex id.
    pub id: VertexId,
    /// Field value.
    pub value: f64,
    /// Incident edge count within this subtree.
    pub degree: u32,
    /// All sources that might declare this vertex (always includes the
    /// subtree's own source). Derived from bounding-box arithmetic, so
    /// every declaring rank sends the same set.
    pub potential: Vec<SourceId>,
    /// Request the aggregator to keep this vertex in the final tree even
    /// if it turns out to be globally regular (used by feature-based
    /// statistics to look up local maxima).
    pub pinned: bool,
}

/// The intermediate data of one rank's in-situ topology stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Subtree {
    /// The producing source (rank).
    pub source: SourceId,
    /// Kept vertices.
    pub verts: Vec<SubtreeVertex>,
    /// Edges between kept vertices, upper first.
    pub edges: Vec<(VertexId, VertexId)>,
}

impl Subtree {
    /// Wire size: id (8) + value (8) + degree (4) per vertex, 4 bytes per
    /// potential-source entry beyond the implicit own source, 16 per edge.
    pub fn bytes(&self) -> usize {
        let vert_bytes: usize = self
            .verts
            .iter()
            .map(|v| 20 + 4 * v.potential.len().saturating_sub(1))
            .sum();
        vert_bytes + self.edges.len() * 16
    }

    /// Feed this subtree into a streaming aggregator and announce its end.
    pub fn stream_into(&self, sink: &mut crate::stream::StreamingMergeTree) {
        for v in &self.verts {
            sink.declare_vertex(self.source, v.id, v.value, v.degree, &v.potential);
            if v.pinned {
                sink.pin_vertex(v.id);
            }
        }
        for &(a, b) in &self.edges {
            sink.insert_edge(a, b);
        }
        sink.end_source(self.source);
    }
}

/// What the caller knows about a point's relationship to other ranks.
#[derive(Debug, Clone)]
pub struct InterfaceInfo {
    /// All sources that *might* declare this vertex — every rank whose
    /// (ghosted) region contains the point, including this one. Must be
    /// identical no matter which rank computes it, because the streaming
    /// aggregator uses it to decide when a vertex can be finalized.
    pub potential: Vec<SourceId>,
    /// True if the vertex must be kept as an interface vertex (in
    /// addition to any vertex kept for being critical).
    pub keep: bool,
}

/// Reduce an augmented local tree to the subtree of critical and kept
/// interface vertices.
///
/// `field` must be the block the tree was computed from (for values);
/// `info(p)` describes the point's sharing (see [`InterfaceInfo`]).
/// Critical vertices are always kept; `info(p).keep` adds interface
/// vertices. The potential set matters even for critical-only vertices:
/// another rank may independently keep the same point, and the aggregator
/// must know to wait for it.
pub fn reduce_to_subtree(
    tree: &AugmentedTree,
    field: &ScalarField,
    source: SourceId,
    mut info: impl FnMut([usize; 3]) -> InterfaceInfo,
) -> Subtree {
    assert_eq!(tree.bbox, field.bbox(), "tree/field mismatch");
    let n = tree.down.len();
    let mut keep = vec![false; n];
    let mut potential: Vec<Option<Vec<SourceId>>> = vec![None; n];
    for i in 0..n as u32 {
        let p = tree.bbox.coord_of(i as usize);
        let fi = info(p);
        if fi.keep || tree.is_critical(i) {
            keep[i as usize] = true;
            let mut pot = fi.potential;
            if !pot.contains(&source) {
                pot.push(source);
            }
            pot.sort_unstable();
            pot.dedup();
            potential[i as usize] = Some(pot);
        }
    }

    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut degree: Vec<u32> = vec![0; n];
    for i in 0..n as u32 {
        if !keep[i as usize] {
            continue;
        }
        // Walk down to the next kept vertex.
        let mut cur = tree.down[i as usize];
        while let Some(c) = cur {
            if keep[c as usize] {
                edges.push((tree.vertex_id(i), tree.vertex_id(c)));
                degree[i as usize] += 1;
                degree[c as usize] += 1;
                break;
            }
            cur = tree.down[c as usize];
        }
    }
    let mut verts: Vec<SubtreeVertex> = Vec::new();
    for i in 0..n as u32 {
        if keep[i as usize] {
            verts.push(SubtreeVertex {
                id: tree.vertex_id(i),
                value: field.get_linear(i as usize),
                degree: degree[i as usize],
                potential: potential[i as usize].take().unwrap_or_else(|| vec![source]),
                pinned: false,
            });
        }
    }
    Subtree {
        source,
        verts,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::augmented_join_tree;
    use crate::stream::StreamingMergeTree;
    use crate::types::Connectivity;
    use sitra_mesh::BBox3;

    fn hash_field(b: BBox3) -> ScalarField {
        ScalarField::from_fn(b, |p| {
            ((p[0].wrapping_mul(2654435761)
                ^ p[1].wrapping_mul(40503)
                ^ p[2].wrapping_mul(2246822519))
                % 1009) as f64
        })
    }

    #[test]
    fn no_interface_keeps_only_criticals() {
        let b = BBox3::from_dims([6, 6, 6]);
        let f = hash_field(b);
        let t = augmented_join_tree(&f, &b, Connectivity::Six);
        let sub = reduce_to_subtree(&t, &f, 0, |_| InterfaceInfo {
            potential: vec![0],
            keep: false,
        });
        assert_eq!(sub.verts.len(), t.criticals().count());
        assert!(sub.verts.len() < f.len());
    }

    #[test]
    fn reduced_subtree_has_same_canonical_tree() {
        // Streaming the reduced subtree of the whole domain reproduces the
        // canonical tree of the full augmented tree.
        let b = BBox3::from_dims([7, 5, 4]);
        let f = hash_field(b);
        let t = augmented_join_tree(&f, &b, Connectivity::TwentySix);
        let mut full = crate::tree::MergeTree::new();
        for i in 0..f.len() as u32 {
            full.add_node(t.vertex_id(i), f.get_linear(i as usize));
        }
        for i in 0..f.len() as u32 {
            if let Some(d) = t.down[i as usize] {
                full.add_arc(t.vertex_id(i), t.vertex_id(d));
            }
        }
        let sub = reduce_to_subtree(&t, &f, 0, |_| InterfaceInfo {
            potential: vec![0],
            keep: false,
        });
        let mut s = StreamingMergeTree::new();
        sub.stream_into(&mut s);
        let (glued, _) = s.finish();
        assert_eq!(glued.canonical(), full.canonical());
    }

    #[test]
    fn interface_vertices_are_kept_with_degrees() {
        let b = BBox3::from_dims([5, 4, 3]);
        let f = hash_field(b);
        let t = augmented_join_tree(&f, &b, Connectivity::Six);
        // Mark the x == 4 face as interface shared with source 1.
        let sub = reduce_to_subtree(&t, &f, 0, |p| InterfaceInfo {
            potential: if p[0] == 4 { vec![0, 1] } else { vec![0] },
            keep: p[0] == 4,
        });
        for p in b.iter().filter(|p| p[0] == 4) {
            let id = b.local_index(p) as VertexId;
            let v = sub.verts.iter().find(|v| v.id == id).expect("kept");
            assert_eq!(v.potential, vec![0, 1]);
        }
        // Degrees match edge incidences.
        for v in &sub.verts {
            let cnt = sub
                .edges
                .iter()
                .filter(|&&(a, bb)| a == v.id || bb == v.id)
                .count() as u32;
            assert_eq!(cnt, v.degree, "vertex {}", v.id);
        }
    }

    #[test]
    fn subtree_edges_connect_kept_vertices_downward() {
        let b = BBox3::from_dims([6, 3, 3]);
        let f = hash_field(b);
        let t = augmented_join_tree(&f, &b, Connectivity::Six);
        let sub = reduce_to_subtree(&t, &f, 0, |p| InterfaceInfo {
            potential: if p[0] == 0 { vec![0, 3] } else { vec![0] },
            keep: p[0] == 0,
        });
        let val = |id: VertexId| sub.verts.iter().find(|v| v.id == id).unwrap().value;
        for &(a, c) in &sub.edges {
            assert!(crate::types::sweep_before((val(a), a), (val(c), c)));
        }
    }

    #[test]
    fn bytes_accounting() {
        let sub = Subtree {
            source: 0,
            verts: vec![
                SubtreeVertex {
                    id: 0,
                    value: 1.0,
                    degree: 1,
                    potential: vec![0],
                    pinned: false,
                },
                SubtreeVertex {
                    id: 1,
                    value: 0.0,
                    degree: 1,
                    potential: vec![0, 1],
                    pinned: false,
                },
            ],
            edges: vec![(0, 1)],
        };
        assert_eq!(sub.bytes(), 20 + (20 + 4) + 16);
    }
}
