//! Shared infrastructure for the experiment binaries: kernel-rate
//! calibration, paper constants, paper-scale projection, and table
//! formatting.
//!
//! Every table/figure binary follows the same scheme the DESIGN.md
//! per-experiment index describes: the analytics kernels are *real* (the
//! same code the live pipeline runs), timed on this host to obtain
//! per-cell rates, and the machine model projects those rates to the
//! paper's 4896/9440-core Jaguar configurations. Absolute numbers
//! therefore reflect this host's speed; the *shape* (who wins, by what
//! factor, where crossovers sit) is the reproduction target.

use serde::{Deserialize, Serialize};
use sitra_mesh::{downsample, Decomposition, ScalarField};
use sitra_sim::{SimConfig, Simulation, Variable};
use sitra_stats::MultiModel;
use sitra_topology::distributed::{glue_subtrees, in_situ_subtrees, BoundaryPolicy};
use sitra_topology::Connectivity;
use sitra_viz::{render_block, HybridRenderer, TransferFunction, View, ViewAxis};
use std::time::Instant;

pub mod replay;

/// Paper constants (Table I).
pub mod paper {
    /// Global grid of the lifted H2 case.
    pub const DIMS: [usize; 3] = [1600, 1372, 430];
    /// Variables in the data set.
    pub const N_VARS: usize = 14;
    /// Rank grid at 4896 cores.
    pub const PARTS_4896: [usize; 3] = [16, 28, 10];
    /// Rank grid at 9440 cores.
    pub const PARTS_9440: [usize; 3] = [32, 28, 10];
    /// Per-core block at 4896 cores.
    pub const BLOCK_4896: [usize; 3] = [100, 49, 43];
    /// Per-core block at 9440 cores.
    pub const BLOCK_9440: [usize; 3] = [50, 49, 43];
    /// Simulation seconds per step at 4896 cores (Table I).
    pub const SIM_SECS_4896: f64 = 16.85;
    /// Down-sampling stride of the hybrid visualization (Fig. 2).
    pub const VIZ_STRIDE: usize = 8;
    /// Table II reference rows at 4896 cores:
    /// (label, in-situ s, movement s, movement MB, in-transit s).
    pub const TABLE2: [(&str, f64, f64, f64, f64); 5] = [
        ("in-situ visualization", 0.73, 0.0, 0.0, 0.0),
        ("in-situ descriptive statistics", 1.64, 0.0, 0.0, 0.0),
        ("hybrid visualization", 0.08, 0.092, 49.19, 5.06),
        ("hybrid topology", 2.72, 2.06, 87.02, 119.81),
        ("hybrid descriptive statistics", 1.69, 0.06, 13.30, 0.01),
    ];
}

/// Measured per-cell (or per-element) rates of the real kernels on this
/// host.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelRates {
    /// Full-resolution ray casting, cells/second (per core).
    pub viz_cells_per_sec: f64,
    /// In-situ down-sampling, source cells/second.
    pub downsample_cells_per_sec: f64,
    /// Statistics `learn`, observations/second (one variable).
    pub learn_cells_per_sec: f64,
    /// Local join tree + reduction, cells/second.
    pub subtree_cells_per_sec: f64,
    /// In-transit serial rendering of coarse data, coarse cells/second.
    pub coarse_render_cells_per_sec: f64,
    /// In-transit streaming gluing, subtree vertices/second.
    pub glue_verts_per_sec: f64,
    /// Subtree payload bytes per block cell on the proxy data (data
    /// dependent; measured).
    pub subtree_bytes_per_cell: f64,
    /// `derive` seconds for a 14-variable model (constant).
    pub derive_secs: f64,
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Measure the real kernels on a representative block of proxy data.
///
/// `block_dims` should be large enough to amortize overheads (the
/// default binaries use 48³ ≈ 110k cells, half a paper block).
pub fn calibrate(block_dims: [usize; 3], seed: u64) -> KernelRates {
    let mut sim = Simulation::new(SimConfig::small(block_dims, seed));
    for _ in 0..3 {
        sim.advance();
    }
    let g = sim.global();
    let field = sim.block_field(Variable::Temperature, &g);
    let cells = field.len() as f64;
    let (mn, mx) = field.min_max().unwrap();
    let tf = TransferFunction::hot(mn, mx);
    let view = View::full_res(g, ViewAxis::Z, false);

    // Full-res rendering (serial core rate: render on the current thread).
    let (_, viz_t) = time(|| render_block(&field, &g, &view, &tf));

    // Down-sampling.
    let (ds, ds_t) = time(|| downsample(&field, paper::VIZ_STRIDE.min(block_dims[0] / 2)));
    let _ = ds;

    // Statistics learn over one variable.
    let (_, learn_t) = time(|| MultiModel::learn(&[("T", field.as_slice())]));

    // Topology: split the calibration block 2×2×2 so the subtree stage
    // sees realistic interface work, then measure the glue stage.
    let d = Decomposition::new(g, [2, 2, 2]);
    let blocks: Vec<ScalarField> = (0..8).map(|r| field.extract(&d.block(r))).collect();
    let (ghosted, _) = sitra_mesh::exchange_ghosts(&d, &blocks, 1);
    // Time one rank's subtree serially for a clean per-cell rate.
    let (sub0, sub_t) = time(|| {
        sitra_topology::distributed::rank_subtree(
            &d,
            0,
            &ghosted[0],
            Connectivity::Six,
            BoundaryPolicy::BoundaryMaxima,
        )
    });
    let sub_cells = ghosted[0].len() as f64;
    let subs = in_situ_subtrees(
        &d,
        &ghosted,
        Connectivity::Six,
        BoundaryPolicy::BoundaryMaxima,
    );
    let total_verts: usize = subs.iter().map(|s| s.verts.len()).sum();
    let total_bytes: usize = subs.iter().map(|s| s.bytes()).sum();
    let (_, glue_t) = time(|| glue_subtrees(&subs));
    let _ = sub0;

    // In-transit coarse rendering rate.
    let stride = 2;
    let coarse_blocks: Vec<_> = (0..8)
        .map(|r| downsample(&field.extract(&d.block(r)), stride))
        .collect();
    let hr = HybridRenderer::new(coarse_blocks);
    let coarse_cells = hr.coarse_domain().count() as f64;
    let coarse_view = View::full_res(hr.coarse_domain(), ViewAxis::Z, false);
    let (_, coarse_t) = time(|| hr.render(&coarse_view, &tf));

    // Derive on a 14-variable model.
    let model = MultiModel::learn(
        &sitra_sim::ALL_VARIABLES
            .iter()
            .map(|v| (v.name(), field.as_slice()))
            .collect::<Vec<_>>(),
    );
    let (_, derive_t) = time(|| {
        model
            .vars
            .iter()
            .map(|(_, m)| sitra_stats::derive(m).unwrap())
            .collect::<Vec<_>>()
    });

    KernelRates {
        viz_cells_per_sec: cells / viz_t.max(1e-9),
        downsample_cells_per_sec: cells / ds_t.max(1e-9),
        learn_cells_per_sec: cells / learn_t.max(1e-9),
        subtree_cells_per_sec: sub_cells / sub_t.max(1e-9),
        coarse_render_cells_per_sec: coarse_cells / coarse_t.max(1e-9),
        glue_verts_per_sec: total_verts as f64 / glue_t.max(1e-9),
        subtree_bytes_per_cell: total_bytes as f64 / g.count() as f64,
        derive_secs: derive_t,
    }
}

/// Effective data-movement model into the staging area: a per-message
/// setup cost paid across the staging parallelism plus a shared ingress
/// bandwidth. Calibrated against the paper's hybrid-viz row
/// (49.19 MB in 0.092 s ⇒ ≈ 535 MB/s effective aggregate).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MovementModel {
    /// Aggregate ingress bandwidth of the staging area (bytes/second).
    pub ingress_bandwidth: f64,
    /// Per-message setup (seconds) paid by each producer.
    pub per_message: f64,
    /// Staging-side parallelism absorbing message setup.
    pub parallelism: usize,
}

impl Default for MovementModel {
    fn default() -> Self {
        Self {
            ingress_bandwidth: 535.0e6,
            per_message: 6.0e-6,
            parallelism: 256,
        }
    }
}

impl MovementModel {
    /// Movement seconds for `total_bytes` sent as `messages` transfers.
    pub fn movement_secs(&self, total_bytes: f64, messages: usize) -> f64 {
        messages as f64 * self.per_message / self.parallelism.max(1) as f64
            + total_bytes / self.ingress_bandwidth
    }
}

/// One projected Table II row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Variant label (matching the paper's row names).
    pub label: String,
    /// In-situ seconds per step (per rank, ranks run concurrently).
    pub insitu_secs: f64,
    /// Movement seconds per step.
    pub movement_secs: f64,
    /// Movement megabytes per step.
    pub movement_mb: f64,
    /// In-transit seconds per step (serial bucket).
    pub intransit_secs: f64,
}

/// Project the five Table II rows to the paper's 4896-core configuration
/// from measured kernel rates.
pub fn project_table2(rates: &KernelRates, movement: &MovementModel) -> Vec<Table2Row> {
    let block_cells = (paper::BLOCK_4896[0] * paper::BLOCK_4896[1] * paper::BLOCK_4896[2]) as f64;
    let n_ranks = (paper::PARTS_4896[0] * paper::PARTS_4896[1] * paper::PARTS_4896[2]) as f64;
    let global_cells = (paper::DIMS[0] * paper::DIMS[1] * paper::DIMS[2]) as f64;
    let stride3 = (paper::VIZ_STRIDE * paper::VIZ_STRIDE * paper::VIZ_STRIDE) as f64;
    let coarse_cells = global_cells / stride3;
    let mb = 1.0e6;

    let mut rows = Vec::new();
    // Fully in-situ visualization: each rank renders its block; the
    // compositing is folded into the same stage (paper reports one
    // number).
    rows.push(Table2Row {
        label: "in-situ visualization".into(),
        insitu_secs: block_cells / rates.viz_cells_per_sec,
        movement_secs: 0.0,
        movement_mb: 0.0,
        intransit_secs: 0.0,
    });
    // Fully in-situ statistics: learn over all 14 variables + the
    // all-reduce (negligible) + derive.
    rows.push(Table2Row {
        label: "in-situ descriptive statistics".into(),
        insitu_secs: paper::N_VARS as f64 * block_cells / rates.learn_cells_per_sec
            + rates.derive_secs,
        movement_secs: 0.0,
        movement_mb: 0.0,
        intransit_secs: 0.0,
    });
    // Hybrid visualization.
    let ds_bytes = coarse_cells * 8.0;
    rows.push(Table2Row {
        label: "hybrid visualization".into(),
        insitu_secs: block_cells / rates.downsample_cells_per_sec,
        movement_secs: movement.movement_secs(ds_bytes, n_ranks as usize),
        movement_mb: ds_bytes / mb,
        intransit_secs: coarse_cells / rates.coarse_render_cells_per_sec,
    });
    // Hybrid topology.
    let sub_bytes = rates.subtree_bytes_per_cell * global_cells;
    let sub_verts = sub_bytes / 24.0; // ≈ bytes per encoded vertex
    rows.push(Table2Row {
        label: "hybrid topology".into(),
        insitu_secs: block_cells / rates.subtree_cells_per_sec,
        movement_secs: movement.movement_secs(sub_bytes, n_ranks as usize),
        movement_mb: sub_bytes / mb,
        intransit_secs: sub_verts / rates.glue_verts_per_sec,
    });
    // Hybrid statistics.
    let model_bytes = n_ranks * paper::N_VARS as f64 * 61.0; // wire size/var
    rows.push(Table2Row {
        label: "hybrid descriptive statistics".into(),
        insitu_secs: paper::N_VARS as f64 * block_cells / rates.learn_cells_per_sec,
        movement_secs: movement.movement_secs(model_bytes, n_ranks as usize),
        movement_mb: model_bytes / mb,
        intransit_secs: rates.derive_secs.max(1e-6),
    });
    rows
}

/// Render a text table with a header row.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Write an experiment result as JSON under `target/experiments/`.
pub fn write_json(name: &str, value: &impl Serialize) {
    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, serde_json::to_string_pretty(value).unwrap()) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[could not write {}: {e}]", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_rates() {
        let r = calibrate([16, 16, 16], 1);
        assert!(r.viz_cells_per_sec > 0.0);
        assert!(r.downsample_cells_per_sec > 0.0);
        assert!(r.learn_cells_per_sec > 0.0);
        assert!(r.subtree_cells_per_sec > 0.0);
        assert!(r.coarse_render_cells_per_sec > 0.0);
        assert!(r.glue_verts_per_sec > 0.0);
        assert!(r.subtree_bytes_per_cell > 0.0);
        // Down-sampling is far cheaper than rendering — the core of the
        // hybrid-viz claim.
        assert!(r.downsample_cells_per_sec > 3.0 * r.viz_cells_per_sec);
    }

    #[test]
    fn table2_projection_shape() {
        let rates = calibrate([16, 16, 16], 2);
        let rows = project_table2(&rates, &MovementModel::default());
        assert_eq!(rows.len(), 5);
        let get = |label: &str| rows.iter().find(|r| r.label.contains(label)).unwrap();
        // Shape assertions mirroring the paper's qualitative claims:
        // hybrid viz in-situ stage ≪ fully in-situ viz;
        assert!(
            get("hybrid visualization").insitu_secs
                < get("in-situ visualization").insitu_secs / 3.0
        );
        // topology moves the most intermediate data of the three hybrids;
        assert!(get("hybrid topology").movement_mb > get("hybrid descriptive").movement_mb);
        // stats in-transit stage is trivial; topology's dominates.
        assert!(get("hybrid topology").intransit_secs > get("hybrid descriptive").intransit_secs);
    }

    #[test]
    fn movement_model_monotone() {
        let m = MovementModel::default();
        assert!(m.movement_secs(1e6, 100) < m.movement_secs(1e8, 100));
        assert!(m.movement_secs(1e6, 10) <= m.movement_secs(1e6, 10_000));
    }
}
