//! Replay an observability journal (JSONL of [`ObsEvent`]) into the
//! paper-style per-stage breakdown.
//!
//! The driver journals two event families per analysis row —
//! `analysis.insitu` (the simulation-side half) and `analysis.aggregate`
//! (the staging-side half) — plus one `step` event per timestep. Every
//! numeric value is stringified with `Display`, which round-trips `f64`
//! exactly, so the rows reconstructed here agree bit-for-bit with the
//! `PipelineMetrics` the live run returned (the agreement test in
//! `tests/obs_report.rs` asserts exactly that).

use serde::Serialize;
use sitra_dataspaces::{TenantSchedStats, TenantSnapshot, DEFAULT_TENANT};
use sitra_obs::ObsEvent;
use std::path::Path;

/// One `(analysis, step)` row rebuilt from the journal, mirroring
/// `sitra_core::AnalysisMetrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StageRow {
    /// Analysis label.
    pub analysis: String,
    /// Simulation step.
    pub step: u64,
    /// `insitu`, `hybrid`, or `hybrid-remote` (empty when the journal
    /// only holds the aggregation half, e.g. a worker-side journal).
    pub placement: String,
    /// Wall seconds of the in-situ stage (max over ranks).
    pub insitu_secs: f64,
    /// In-situ seconds summed over ranks.
    pub insitu_core_secs: f64,
    /// Bytes shipped to the aggregation stage.
    pub movement_bytes: u64,
    /// Simulated network seconds for the movement.
    pub movement_sim_secs: f64,
    /// Wall seconds of the aggregation stage.
    pub aggregate_secs: f64,
    /// Which bucket aggregated (None for synchronous in-situ).
    pub bucket: Option<u32>,
    /// Streaming aggregation was used.
    pub streamed: bool,
    /// Step completion → output availability.
    pub latency_secs: f64,
    /// The staging path failed and the driver re-ran the aggregation
    /// in-situ (`analysis.degraded` event).
    pub degraded: bool,
}

/// One timestep row rebuilt from the journal, mirroring
/// `sitra_core::StepMetrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StepRow {
    /// Step number.
    pub step: u64,
    /// Wall seconds of the simulation compute.
    pub sim_secs: f64,
    /// Wall seconds of the ghost exchange.
    pub ghost_secs: f64,
    /// Wall seconds blocked on synchronous analysis work.
    pub blocked_secs: f64,
    /// At least one hybrid analysis on this step fell back to in-situ
    /// aggregation (`step.degraded` event).
    pub degraded: bool,
}

/// Everything a journal replay reconstructs.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Replay {
    /// Per-step rows, in journal order.
    pub steps: Vec<StepRow>,
    /// Per-(analysis, step) rows, in first-seen order.
    pub stages: Vec<StageRow>,
    /// Events that were not part of the driver/worker span families
    /// (net frames, scheduler internals, …) — counted, not dropped
    /// silently.
    pub other_events: usize,
}

/// Read a JSONL journal. Unparseable lines are an error: a journal is
/// machine-written, so garbage means truncation or corruption.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<ObsEvent>> {
    let text = std::fs::read_to_string(path)?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: ObsEvent = serde_json::from_str(line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: bad journal line: {e}", path.display(), i + 1),
            )
        })?;
        events.push(ev);
    }
    Ok(events)
}

/// Rebuild per-step and per-stage rows from a stream of events.
pub fn replay(events: &[ObsEvent]) -> Replay {
    let mut out = Replay::default();
    for ev in events {
        match (ev.component.as_str(), ev.name.as_str()) {
            ("driver", "step") => {
                let row = step_row(&mut out.steps, ev.u64("step").unwrap_or(0));
                row.sim_secs = ev.f64("sim_secs").unwrap_or(0.0);
                row.ghost_secs = ev.f64("ghost_secs").unwrap_or(0.0);
                row.blocked_secs = ev.f64("blocked_secs").unwrap_or(0.0);
            }
            // Degradation can be journaled before the step event (in
            // the step's analysis loop) or after every step event (in
            // the end-of-run drain), hence find-or-create both ways.
            ("driver", "step.degraded") => {
                step_row(&mut out.steps, ev.u64("step").unwrap_or(0)).degraded = true;
            }
            ("driver", "analysis.insitu") => {
                let row = stage_row(&mut out.stages, ev);
                row.placement = ev.get("placement").unwrap_or("").to_string();
                row.insitu_secs = ev.f64("insitu_secs").unwrap_or(0.0);
                row.insitu_core_secs = ev.f64("insitu_core_secs").unwrap_or(0.0);
                row.movement_bytes = ev.u64("movement_bytes").unwrap_or(0);
                row.movement_sim_secs = ev.f64("movement_sim_secs").unwrap_or(0.0);
            }
            ("driver" | "worker", "analysis.aggregate") => {
                let row = stage_row(&mut out.stages, ev);
                // A degraded row is driver-owned: the live run retires
                // every task exactly once, so an aggregate event landing
                // on a degraded row can only be abandoned worker-side
                // work (the worker finished after the driver's deadline
                // expired and its output was never collected). Keep the
                // driver's authoritative half.
                if row.degraded {
                    continue;
                }
                row.aggregate_secs = ev.f64("aggregate_secs").unwrap_or(0.0);
                row.bucket = ev.get("bucket").and_then(|b| b.parse().ok());
                row.streamed = ev.get("streamed") == Some("true");
                row.latency_secs = ev.f64("latency_secs").unwrap_or(0.0);
                // The bucket measures the movement too (its pulls);
                // merge with max(), exactly as the live driver does.
                row.movement_sim_secs = row
                    .movement_sim_secs
                    .max(ev.f64("movement_sim_secs").unwrap_or(0.0));
            }
            ("driver", "analysis.degraded") => {
                // The staging path failed this task; the driver re-ran
                // the aggregation in-situ. Mirrors the live driver's
                // in-place row update — including voiding any bucket
                // assignment a since-abandoned remote aggregation may
                // have journaled before the degradation.
                let row = stage_row(&mut out.stages, ev);
                row.aggregate_secs = ev.f64("aggregate_secs").unwrap_or(0.0);
                row.latency_secs = ev.f64("latency_secs").unwrap_or(0.0);
                row.bucket = None;
                row.streamed = false;
                row.degraded = true;
            }
            _ => out.other_events += 1,
        }
    }
    out
}

/// The row for this step, created on first sight.
fn step_row(steps: &mut Vec<StepRow>, step: u64) -> &mut StepRow {
    if let Some(i) = steps.iter().position(|r| r.step == step) {
        return &mut steps[i];
    }
    steps.push(StepRow {
        step,
        ..StepRow::default()
    });
    steps.last_mut().unwrap()
}

/// The row for this event's `(analysis, step)`, created on first sight.
fn stage_row<'a>(stages: &'a mut Vec<StageRow>, ev: &ObsEvent) -> &'a mut StageRow {
    let analysis = ev.get("analysis").unwrap_or("").to_string();
    let step = ev.u64("step").unwrap_or(0);
    if let Some(i) = stages
        .iter()
        .position(|r| r.analysis == analysis && r.step == step)
    {
        return &mut stages[i];
    }
    stages.push(StageRow {
        analysis,
        step,
        ..StageRow::default()
    });
    stages.last_mut().unwrap()
}

impl Replay {
    /// Mean in-situ seconds of one analysis across its steps.
    pub fn mean_insitu_secs(&self, analysis: &str) -> f64 {
        mean(self.rows(analysis).map(|r| r.insitu_secs))
    }

    /// Mean aggregation seconds of one analysis across its steps.
    pub fn mean_aggregate_secs(&self, analysis: &str) -> f64 {
        mean(self.rows(analysis).map(|r| r.aggregate_secs))
    }

    /// Distinct analysis labels, in first-seen order.
    pub fn analyses(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.stages {
            if !seen.contains(&r.analysis.as_str()) {
                seen.push(r.analysis.as_str());
            }
        }
        seen
    }

    /// Steps on which at least one hybrid analysis degraded to in-situ
    /// fallback.
    pub fn degraded_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.degraded).count()
    }

    /// Stage rows that degraded to in-situ fallback.
    pub fn degraded_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.degraded).count()
    }

    fn rows<'a>(&'a self, analysis: &'a str) -> impl Iterator<Item = &'a StageRow> {
        self.stages.iter().filter(move |r| r.analysis == analysis)
    }
}

/// Rebuild the per-tenant scheduler table from the journal's `sched`
/// event families (`tenant.register`, `tenant.admit`, `tenant.assign`,
/// `tenant.requeue`, `task.shed`), bit-identical to what the live
/// `Scheduler::tenant_stats` reported at the same point in the event
/// stream. `queued` is derived from the conservation identity
/// (`submitted + requeued == assigned + shed + queued`), which the
/// scheduler maintains atomically under its lock.
///
/// Row order matches the live snapshot: the default tenant is seeded at
/// index 0 (it exists from construction without journaling anything),
/// and every other tenant's first scheduler interaction — registration
/// or first submission — journals an event naming it, so first-seen
/// order here is first-touch order there.
pub fn replay_tenants(events: &[ObsEvent]) -> Vec<TenantSnapshot> {
    let mut rows = vec![TenantSnapshot {
        name: DEFAULT_TENANT.to_string(),
        weight: 1,
        queued: 0,
        task_quota: None,
        stats: TenantSchedStats::default(),
    }];
    fn row<'a>(rows: &'a mut Vec<TenantSnapshot>, name: &str) -> &'a mut TenantSnapshot {
        if let Some(i) = rows.iter().position(|r| r.name == name) {
            return &mut rows[i];
        }
        rows.push(TenantSnapshot {
            name: name.to_string(),
            weight: 1,
            queued: 0,
            task_quota: None,
            stats: TenantSchedStats::default(),
        });
        rows.last_mut().unwrap()
    }
    for ev in events {
        if ev.component != "sched" {
            continue;
        }
        let Some(tenant) = ev.get("tenant").map(str::to_string) else {
            continue;
        };
        match ev.name.as_str() {
            "tenant.register" => {
                let r = row(&mut rows, &tenant);
                r.weight = ev.u64("weight").unwrap_or(1) as u32;
                r.task_quota = match ev.get("task_quota") {
                    None | Some("none") => None,
                    Some(q) => q.parse().ok(),
                };
            }
            "tenant.admit" => {
                let r = row(&mut rows, &tenant);
                match ev.get("verdict") {
                    // "shed" is AcceptedShed: the submission was
                    // admitted (the victim's eviction is journaled
                    // separately as `task.shed`).
                    Some("accepted") | Some("shed") => r.stats.tasks_submitted += 1,
                    Some("rejected") => r.stats.tasks_rejected += 1,
                    _ => {}
                }
            }
            "tenant.assign" => row(&mut rows, &tenant).stats.tasks_assigned += 1,
            "tenant.requeue" => row(&mut rows, &tenant).stats.tasks_requeued += 1,
            "task.shed" => row(&mut rows, &tenant).stats.tasks_shed += 1,
            _ => {}
        }
    }
    for r in &mut rows {
        r.queued = (r.stats.tasks_submitted + r.stats.tasks_requeued)
            - (r.stats.tasks_assigned + r.stats.tasks_shed);
    }
    rows
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(component: &str, name: &str, kv: &[(&str, &str)]) -> ObsEvent {
        ObsEvent {
            ts_ns: 0,
            component: component.into(),
            name: name.into(),
            kv: kv
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn merges_insitu_and_aggregate_halves() {
        let events = vec![
            ev(
                "driver",
                "analysis.insitu",
                &[
                    ("analysis", "viz"),
                    ("step", "1"),
                    ("placement", "hybrid"),
                    ("insitu_secs", "0.25"),
                    ("insitu_core_secs", "1.0"),
                    ("movement_bytes", "4096"),
                    ("movement_sim_secs", "0.125"),
                ],
            ),
            ev(
                "driver",
                "step",
                &[
                    ("step", "1"),
                    ("sim_secs", "2.5"),
                    ("ghost_secs", "0.5"),
                    ("blocked_secs", "0.25"),
                ],
            ),
            ev(
                "worker",
                "analysis.aggregate",
                &[
                    ("analysis", "viz"),
                    ("step", "1"),
                    ("aggregate_secs", "0.75"),
                    ("bucket", "3"),
                    ("streamed", "true"),
                    ("latency_secs", "1.5"),
                ],
            ),
            ev("net", "frame", &[("bytes", "64")]),
        ];
        let r = replay(&events);
        assert_eq!(r.steps.len(), 1);
        assert_eq!(r.steps[0].sim_secs, 2.5);
        assert_eq!(r.stages.len(), 1);
        let s = &r.stages[0];
        assert_eq!(s.analysis, "viz");
        assert_eq!(s.placement, "hybrid");
        assert_eq!(s.insitu_secs, 0.25);
        assert_eq!(s.movement_bytes, 4096);
        assert_eq!(s.aggregate_secs, 0.75);
        assert_eq!(s.bucket, Some(3));
        assert!(s.streamed);
        assert_eq!(s.latency_secs, 1.5);
        assert_eq!(r.other_events, 1);
        assert_eq!(r.analyses(), vec!["viz"]);
        assert_eq!(r.mean_insitu_secs("viz"), 0.25);
        assert_eq!(r.mean_aggregate_secs("viz"), 0.75);
    }

    #[test]
    fn insitu_placement_keeps_bucket_none() {
        let events = vec![ev(
            "driver",
            "analysis.aggregate",
            &[
                ("analysis", "stats"),
                ("step", "2"),
                ("aggregate_secs", "0.1"),
                ("bucket", "-"),
                ("streamed", "false"),
                ("latency_secs", "0"),
            ],
        )];
        let r = replay(&events);
        assert_eq!(r.stages[0].bucket, None);
        assert!(!r.stages[0].streamed);
    }

    #[test]
    fn degradation_events_mark_rows_in_any_order() {
        // step.degraded lands before its step event (in-step shed) for
        // step 1, and after all step events (drain) for step 2.
        let events = vec![
            ev(
                "driver",
                "analysis.degraded",
                &[
                    ("analysis", "viz"),
                    ("step", "1"),
                    ("reason", "shed"),
                    ("aggregate_secs", "0.125"),
                    ("latency_secs", "0.5"),
                ],
            ),
            ev("driver", "step.degraded", &[("step", "1")]),
            ev(
                "driver",
                "step",
                &[
                    ("step", "1"),
                    ("sim_secs", "2.0"),
                    ("ghost_secs", "0.25"),
                    ("blocked_secs", "0.375"),
                ],
            ),
            ev(
                "driver",
                "step",
                &[
                    ("step", "2"),
                    ("sim_secs", "2.0"),
                    ("ghost_secs", "0.25"),
                    ("blocked_secs", "0"),
                ],
            ),
            ev(
                "driver",
                "analysis.degraded",
                &[
                    ("analysis", "viz"),
                    ("step", "2"),
                    ("reason", "deadline"),
                    ("aggregate_secs", "0.25"),
                    ("latency_secs", "1.0"),
                ],
            ),
            ev("driver", "step.degraded", &[("step", "2")]),
        ];
        let r = replay(&events);
        assert_eq!(r.steps.len(), 2);
        assert!(r.steps.iter().all(|s| s.degraded));
        assert_eq!(r.steps[0].sim_secs, 2.0);
        assert_eq!(r.steps[0].blocked_secs, 0.375);
        assert_eq!(r.degraded_steps(), 2);
        assert_eq!(r.degraded_stages(), 2);
        let s = &r.stages[0];
        assert!(s.degraded);
        assert_eq!(s.aggregate_secs, 0.125);
        assert_eq!(s.latency_secs, 0.5);
        assert_eq!(r.other_events, 0);
    }

    #[test]
    fn abandoned_worker_aggregation_never_clobbers_a_degraded_row() {
        let degraded = ev(
            "driver",
            "analysis.degraded",
            &[
                ("analysis", "viz"),
                ("step", "1"),
                ("reason", "deadline"),
                ("aggregate_secs", "0.125"),
                ("latency_secs", "0.5"),
            ],
        );
        let abandoned = ev(
            "worker",
            "analysis.aggregate",
            &[
                ("analysis", "viz"),
                ("step", "1"),
                ("aggregate_secs", "9.0"),
                ("bucket", "3"),
                ("streamed", "true"),
                ("latency_secs", "9.0"),
            ],
        );
        // Either journal order — worker finished after the driver's
        // deadline (degraded first), or the degradation raced past an
        // already-journaled aggregation (aggregate first) — must
        // reconstruct the same driver-owned row.
        for events in [
            vec![degraded.clone(), abandoned.clone()],
            vec![abandoned.clone(), degraded.clone()],
        ] {
            let r = replay(&events);
            assert_eq!(r.stages.len(), 1);
            let s = &r.stages[0];
            assert!(s.degraded);
            assert_eq!(s.aggregate_secs, 0.125);
            assert_eq!(s.latency_secs, 0.5);
            assert_eq!(s.bucket, None);
            assert!(!s.streamed);
        }
    }

    #[test]
    fn tenant_table_rebuilds_from_sched_events() {
        let events = vec![
            ev(
                "sched",
                "tenant.register",
                &[("tenant", "acme"), ("weight", "3"), ("task_quota", "none")],
            ),
            ev(
                "sched",
                "tenant.register",
                &[("tenant", "hog"), ("weight", "1"), ("task_quota", "2")],
            ),
            ev(
                "sched",
                "tenant.admit",
                &[("tenant", "acme"), ("verdict", "accepted")],
            ),
            ev(
                "sched",
                "tenant.admit",
                &[("tenant", "acme"), ("verdict", "shed")],
            ),
            ev(
                "sched",
                "tenant.admit",
                &[("tenant", "hog"), ("verdict", "rejected")],
            ),
            ev("sched", "task.shed", &[("seq", "0"), ("tenant", "acme")]),
            ev(
                "sched",
                "tenant.assign",
                &[("tenant", "acme"), ("seq", "1")],
            ),
            ev(
                "sched",
                "tenant.requeue",
                &[("tenant", "acme"), ("seq", "1")],
            ),
            ev("driver", "step", &[("step", "1")]),
        ];
        let rows = replay_tenants(&events);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, DEFAULT_TENANT);
        assert_eq!(rows[0].stats, TenantSchedStats::default());
        let acme = &rows[1];
        assert_eq!(acme.name, "acme");
        assert_eq!(acme.weight, 3);
        assert_eq!(acme.task_quota, None);
        assert_eq!(acme.stats.tasks_submitted, 2);
        assert_eq!(acme.stats.tasks_assigned, 1);
        assert_eq!(acme.stats.tasks_requeued, 1);
        assert_eq!(acme.stats.tasks_shed, 1);
        // submitted 2 + requeued 1 == assigned 1 + shed 1 + queued 1
        assert_eq!(acme.queued, 1);
        let hog = &rows[2];
        assert_eq!(hog.task_quota, Some(2));
        assert_eq!(hog.stats.tasks_rejected, 1);
        assert_eq!(hog.queued, 0);
    }

    #[test]
    fn journal_roundtrip_through_file() {
        let path = std::env::temp_dir().join(format!("sitra-replay-{}.jsonl", std::process::id()));
        let e = ev("driver", "step", &[("step", "7"), ("sim_secs", "0.5")]);
        std::fs::write(&path, format!("{}\n\n", serde_json::to_string(&e).unwrap())).unwrap();
        let events = read_journal(&path).unwrap();
        assert_eq!(events, vec![e]);
        std::fs::write(&path, "not json\n").unwrap();
        assert!(read_journal(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
