//! Regenerates **Table I**: core allocations, data sizes, and per-step
//! simulation and I/O times for the 4896- and 9440-core configurations.
//!
//! The simulation compute model is calibrated on the paper's 4896-core
//! row (we do not have an S3D to time); its strong-scaling prediction for
//! the 9440-core row and the OST-limited I/O model are then *outputs*,
//! compared against the paper's values.

use serde::Serialize;
use sitra_bench::{paper, print_table, write_json};
use sitra_machine::cluster::ComputeModel;
use sitra_machine::{ClusterSpec, IoModel};

#[derive(Serialize)]
struct Table1Column {
    total_cores: usize,
    simulation_cores: usize,
    dataspaces_cores: usize,
    intransit_cores: usize,
    block: [usize; 3],
    volume: [usize; 3],
    n_vars: usize,
    data_size_gb: f64,
    sim_secs: f64,
    io_read_secs: f64,
    io_write_secs: f64,
    paper_sim_secs: f64,
    paper_io_read_secs: f64,
    paper_io_write_secs: f64,
}

fn column(
    spec: ClusterSpec,
    block: [usize; 3],
    compute: &ComputeModel,
    io: &IoModel,
    paper_sim: f64,
) -> Table1Column {
    let cells = paper::DIMS[0] * paper::DIMS[1] * paper::DIMS[2];
    let bytes = cells * paper::N_VARS * 8;
    Table1Column {
        total_cores: spec.total_cores(),
        simulation_cores: spec.simulation_cores,
        dataspaces_cores: spec.dataspaces_cores,
        intransit_cores: spec.intransit_cores,
        block,
        volume: paper::DIMS,
        n_vars: paper::N_VARS,
        data_size_gb: bytes as f64 / 1024.0 / 1024.0 / 1024.0,
        sim_secs: compute.step_time(block[0] * block[1] * block[2]),
        io_read_secs: io.read_time(bytes, spec.simulation_cores),
        io_write_secs: io.write_time(bytes, spec.simulation_cores),
        paper_sim_secs: paper_sim,
        paper_io_read_secs: 6.56,
        paper_io_write_secs: 3.28,
    }
}

fn main() {
    // Calibrate on the paper's first column, predict the second.
    let compute = ComputeModel::calibrate(
        paper::BLOCK_4896[0] * paper::BLOCK_4896[1] * paper::BLOCK_4896[2],
        paper::SIM_SECS_4896,
    );
    let io = IoModel::jaguar_lustre();
    let cols = [
        column(
            ClusterSpec::jaguar_4896(),
            paper::BLOCK_4896,
            &compute,
            &io,
            16.85,
        ),
        column(
            ClusterSpec::jaguar_9440(),
            paper::BLOCK_9440,
            &compute,
            &io,
            8.42,
        ),
    ];

    let rows: Vec<Vec<String>> = vec![
        vec![
            "No. of simulation/in-situ cores".into(),
            cols[0].simulation_cores.to_string(),
            cols[1].simulation_cores.to_string(),
        ],
        vec![
            "No. of DataSpaces-service cores".into(),
            cols[0].dataspaces_cores.to_string(),
            cols[1].dataspaces_cores.to_string(),
        ],
        vec![
            "No. of in-transit cores".into(),
            cols[0].intransit_cores.to_string(),
            cols[1].intransit_cores.to_string(),
        ],
        vec![
            "Volume size".into(),
            format!("{:?}", cols[0].volume),
            format!("{:?}", cols[1].volume),
        ],
        vec![
            "No. of variables".into(),
            cols[0].n_vars.to_string(),
            cols[1].n_vars.to_string(),
        ],
        vec![
            "Data size (GiB)".into(),
            format!("{:.1}", cols[0].data_size_gb),
            format!("{:.1}", cols[1].data_size_gb),
        ],
        vec![
            "Simulation time (sec.) [paper]".into(),
            format!("{:.2} [{}]", cols[0].sim_secs, cols[0].paper_sim_secs),
            format!("{:.2} [{}]", cols[1].sim_secs, cols[1].paper_sim_secs),
        ],
        vec![
            "I/O read time (sec.) [paper]".into(),
            format!(
                "{:.2} [{}]",
                cols[0].io_read_secs, cols[0].paper_io_read_secs
            ),
            format!(
                "{:.2} [{}]",
                cols[1].io_read_secs, cols[1].paper_io_read_secs
            ),
        ],
        vec![
            "I/O write time (sec.) [paper]".into(),
            format!(
                "{:.2} [{}]",
                cols[0].io_write_secs, cols[0].paper_io_write_secs
            ),
            format!(
                "{:.2} [{}]",
                cols[1].io_write_secs, cols[1].paper_io_write_secs
            ),
        ],
    ];
    print_table(
        "Table I — core allocations, data sizes, per-step times",
        &["", "4896 cores", "9440 cores"],
        &rows,
    );
    println!(
        "\nModel: simulation calibrated on the 4896-core row; the 9440-core \
         prediction and both I/O rows are model outputs."
    );
    write_json("table1", &cols);
}
