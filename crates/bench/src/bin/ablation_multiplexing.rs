//! Ablation: temporal multiplexing — sustainable analysis frequency vs.
//! staging-bucket count.
//!
//! The paper's pull scheduler maps in-transit work for successive steps
//! onto different buckets, so an analysis whose in-transit stage takes
//! far longer than a simulation step still keeps up. The discrete-event
//! pipeline model sweeps bucket counts at the paper-scale hybrid-topology
//! timings (Table II) and reports the highest sustainable frequency and
//! the backlog behaviour.

use serde::Serialize;
use sitra_bench::{paper, print_table, write_json};
use sitra_machine::{simulate_pipeline, PipelineModel};

#[derive(Serialize)]
struct Row {
    buckets: usize,
    min_sustainable_interval: Option<usize>,
    backlog_at_interval_1: usize,
    latency_at_best: f64,
    utilization_at_best: f64,
}

fn model(buckets: usize, interval: usize) -> PipelineModel {
    // Hybrid topology at 4896 cores (Table II): 16.85 s steps, 2.72 s
    // in-situ, 2.06 s async movement, 119.81 s in-transit.
    PipelineModel {
        n_buckets: buckets,
        sim_step_time: paper::SIM_SECS_4896,
        insitu_time: 2.72,
        movement_blocking: 0.05,
        movement_async: 2.06,
        intransit_time: 119.81,
        analysis_interval: interval,
        n_steps: 400,
    }
}

fn main() {
    let mut rows = Vec::new();
    for &buckets in &[1usize, 2, 4, 6, 8, 16, 32, 64, 128, 256] {
        let mut min_interval = None;
        for interval in 1..=32usize {
            let r = simulate_pipeline(&model(buckets, interval));
            if r.sustainable {
                min_interval = Some(interval);
                break;
            }
        }
        let at1 = simulate_pipeline(&model(buckets, 1));
        let best = simulate_pipeline(&model(buckets, min_interval.unwrap_or(32)));
        rows.push(Row {
            buckets,
            min_sustainable_interval: min_interval,
            backlog_at_interval_1: at1.max_backlog,
            latency_at_best: best.mean_latency,
            utilization_at_best: best.bucket_utilization,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.buckets.to_string(),
                r.min_sustainable_interval
                    .map(|i| format!("every {i} step(s)"))
                    .unwrap_or_else(|| ">32".into()),
                r.backlog_at_interval_1.to_string(),
                format!("{:.1}", r.latency_at_best),
                format!("{:.1}%", 100.0 * r.utilization_at_best),
            ]
        })
        .collect();
    print_table(
        "Temporal multiplexing — hybrid topology (120 s in-transit vs 19.6 s step)",
        &[
            "buckets",
            "max sustainable frequency",
            "backlog @ every-step",
            "latency (s)",
            "bucket util.",
        ],
        &table,
    );

    // The paper's configuration must be comfortably sustainable.
    let every_step = rows
        .iter()
        .find(|r| r.min_sustainable_interval == Some(1))
        .expect("some bucket count sustains every-step analysis");
    println!(
        "\n≥{} buckets sustain per-step topology analysis; the paper provisioned 256.",
        every_step.buckets
    );
    println!(
        "the in-transit stage is ~7x the effective step period, so ~7 buckets are \
         the theoretical minimum — the scheduler's multiplexing achieves it."
    );
    write_json("ablation_multiplexing", &rows);
}
