//! Regenerates **Fig. 1**: short-lived, advected features (ignition
//! kernels, lifetime ≈ 10 steps) are trackable when analyzed at high
//! temporal frequency and lost at post-processing cadence.
//!
//! The experiment runs the proxy simulation, segments the temperature
//! field with merge-tree machinery at a sequence of save intervals, and
//! tracks features by segmentation overlap. At Δ=1..5 steps tracks span
//! multiple observations (the five left frames of Fig. 1); once the save
//! interval exceeds the feature lifetime every observation is an
//! isolated single-frame track — the "connectivity indicators are lost"
//! failure mode of conventional post-processing.

use serde::Serialize;
use sitra_bench::{print_table, write_json};
use sitra_mesh::ScalarField;
use sitra_sim::{SimConfig, Simulation, Variable};
use sitra_topology::{segment_superlevel, track_features, Connectivity, Segmentation};

#[derive(Serialize)]
struct IntervalResult {
    save_interval: usize,
    observations: usize,
    tracks: usize,
    multi_step_tracks: usize,
    mean_track_len: f64,
    max_track_len: usize,
}

const STEPS: usize = 120;
const THRESHOLD: f64 = 2650.0; // above the background flame: kernels only

fn snapshots() -> Vec<ScalarField> {
    let mut sim = Simulation::new(SimConfig {
        kernel_spawn_rate: 0.6,
        kernel_lifetime: 10,
        kernel_amplitude: 900.0,
        ..SimConfig::small([48, 32, 32], 2024)
    });
    let g = sim.global();
    (0..STEPS)
        .map(|_| {
            sim.advance();
            sim.block_field(Variable::Temperature, &g)
        })
        .collect()
}

fn main() {
    println!("running {STEPS} proxy steps (kernel lifetime = 10 steps) ...");
    let snaps = snapshots();
    let g = snaps[0].bbox();

    let mut results = Vec::new();
    for &interval in &[1usize, 2, 5, 10, 20, 40] {
        let segs: Vec<Segmentation> = snaps
            .iter()
            .step_by(interval)
            .map(|f| segment_superlevel(f, &g, THRESHOLD, Connectivity::TwentySix, None))
            .collect();
        let tracks = track_features(&segs, 2);
        let lens: Vec<usize> = tracks.iter().map(|t| t.length()).collect();
        let observations: usize = lens.iter().sum();
        results.push(IntervalResult {
            save_interval: interval,
            observations,
            tracks: tracks.len(),
            multi_step_tracks: lens.iter().filter(|&&l| l >= 2).count(),
            mean_track_len: if tracks.is_empty() {
                0.0
            } else {
                observations as f64 / tracks.len() as f64
            },
            max_track_len: lens.iter().copied().max().unwrap_or(0),
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.save_interval.to_string(),
                r.observations.to_string(),
                r.tracks.to_string(),
                r.multi_step_tracks.to_string(),
                format!("{:.2}", r.mean_track_len),
                r.max_track_len.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 1 — feature tracking vs. analysis cadence (kernel lifetime = 10 steps)",
        &[
            "save interval",
            "feature obs.",
            "tracks",
            "multi-step tracks",
            "mean len",
            "max len",
        ],
        &rows,
    );

    let fine = &results[0];
    let coarse = results.last().unwrap();
    println!(
        "\nat Δ=1 the mean track spans {:.1} observations; at Δ={} every \
         feature is an isolated observation (mean {:.1}) — temporal \
         connectivity is lost, as in the paper's Fig. 1.",
        fine.mean_track_len, coarse.save_interval, coarse.mean_track_len
    );
    write_json("fig1_tracking", &results);
}
