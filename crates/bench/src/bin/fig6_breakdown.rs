//! Regenerates **Fig. 6**: the per-step timing breakdown of simulation
//! vs. in-situ, data-movement, and in-transit stages for every analytics
//! variant at 4896 cores — the same data as Table II, presented relative
//! to the simulation step time (the paper quotes in-situ visualization
//! at ≈4.33% and in-situ statistics at ≈9.73% of simulation time).

use serde::Serialize;
use sitra_bench::{calibrate, paper, print_table, project_table2, write_json, MovementModel};

#[derive(Serialize)]
struct Bar {
    label: String,
    insitu_pct: f64,
    movement_pct: f64,
    intransit_pct: f64,
    blocking_pct: f64,
}

fn bar(pct: f64) -> String {
    let n = (pct / 2.0).round().clamp(0.0, 60.0) as usize;
    "#".repeat(n.max(usize::from(pct > 0.0)))
}

fn main() {
    let rates = calibrate([96, 96, 96], 42);
    let rows = project_table2(&rates, &MovementModel::default());
    let sim = paper::SIM_SECS_4896;

    let bars: Vec<Bar> = rows
        .iter()
        .map(|r| Bar {
            label: r.label.clone(),
            insitu_pct: 100.0 * r.insitu_secs / sim,
            movement_pct: 100.0 * r.movement_secs / sim,
            intransit_pct: 100.0 * r.intransit_secs / sim,
            // Only the in-situ stage and the (cheap) send block the
            // simulation; movement and in-transit run asynchronously.
            blocking_pct: 100.0 * r.insitu_secs / sim,
        })
        .collect();

    let table: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.label.clone(),
                format!("{:6.2}%  {}", b.insitu_pct, bar(b.insitu_pct)),
                format!("{:6.2}%  {}", b.movement_pct, bar(b.movement_pct)),
                format!("{:6.2}%  {}", b.intransit_pct, bar(b.intransit_pct)),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — stage times relative to one simulation step (16.85 s)",
        &["variant", "in-situ", "movement", "in-transit (async)"],
        &table,
    );

    println!("\nsimulation-blocking overhead per variant (the paper's key claim:");
    println!("hybrid variants block the simulation far less than full in-situ):");
    for b in &bars {
        println!("  {:38} {:6.2}%", b.label, b.blocking_pct);
    }
    write_json("fig6_breakdown", &bars);
}
