//! Elastic bucket-pool scenario: locality-aware placement versus FCFS
//! on a three-member ring shape, and the autoscaler recovering tail
//! latency under a backlog burst.
//!
//! ```text
//! cargo run --release -p sitra-bench --bin buckets_scenario
//! ```
//!
//! Two shapes, one workload each:
//!
//! * **locality** — three schedulers (one per ring member), each with
//!   one bucket worker *at* every member's endpoint, fed a seeded task
//!   stream whose input shards are owned by the real consistent-hash
//!   ring. The identical stream runs once under FCFS and once under
//!   [`LocalityPlacement`]; the moved-byte count is recomputed from
//!   each run's assignment log (task bytes minus whatever was resident
//!   at the chosen bucket's location), so FCFS gets credit for its
//!   accidental co-locations too.
//! * **autoscale** — a burst of tasks floods a pool pinned at one
//!   bucket, followed by a steady trickle. With the autoscaler on, the
//!   pool grows toward `max` and the tail of the steady phase waits
//!   almost nothing; with the pool fixed at `min`, the backlog eats the
//!   steady phase alive. The p99 queue-wait of the last quarter of the
//!   stream is the score.
//!
//! Emits the same `{"group","id","mean_ns","iters"}` rows the criterion
//! benches write to `BENCH_buckets.json` (override with
//! `BENCH_JSON=path`). Movement/saved rows carry bytes and wait rows
//! carry microseconds in `mean_ns`; `locality_saved_bytes`,
//! `autoscale_peak_buckets`, and `slo_recovered` are the CI floor
//! gates. `BUCKETS_SMOKE=1` shrinks both shapes for the CI smoke job.

use bytes::Bytes;
use sitra_cluster::{HashRing, ShardKey, DEFAULT_SEED, DEFAULT_VNODES};
use sitra_dataspaces::{
    AutoscaleConfig, Autoscaler, Lease, LocalityPlacement, ResidencyHint, ScaleDecision, Scheduler,
    DEFAULT_TENANT,
};
use sitra_mesh::BBox3;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const MEMBERS: usize = 3;
/// Every member's scheduler gets one bucket at each member's endpoint,
/// so placement always has a co-located candidate to find.
const PARTS_PER_TASK: usize = 4;
const PART_BYTES: u64 = 256 * 1024;

fn endpoints() -> Vec<String> {
    (0..MEMBERS).map(|i| format!("tcp://m{i}:7000")).collect()
}

/// Simulated aggregation time per task — long enough that busy buckets
/// are observable, short enough that the bench stays fast.
const WORK: Duration = Duration::from_micros(150);

/// Shared `(task index, queue wait)` log plus the scenario epoch the
/// waits are measured against.
type WaitLog = (Arc<Mutex<Vec<(u64, Duration)>>>, Instant);

/// One bucket worker: polls until the scheduler closes or the pool
/// controller retires its bucket, simulating `WORK` per task.
fn spawn_bucket(
    sched: Scheduler<Bytes>,
    id: u32,
    location: Option<String>,
    waits: Option<WaitLog>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let handle = sched.register_bucket_at(id, location.as_deref());
        loop {
            match handle.poll_task(Some(Duration::from_millis(20))) {
                Lease::Assigned { task, .. } => {
                    if let Some((waits, t0)) = &waits {
                        // The payload is the task's submit offset in
                        // microseconds since the scenario started.
                        let submitted = u64::from_le_bytes(task[..8].try_into().expect("payload"));
                        let wait = t0
                            .elapsed()
                            .saturating_sub(Duration::from_micros(submitted));
                        let idx = u64::from_le_bytes(task[8..16].try_into().expect("payload"));
                        waits.lock().expect("waits").push((idx, wait));
                    }
                    std::thread::sleep(WORK);
                }
                Lease::Empty => continue,
                Lease::Closed | Lease::Retire => break,
            }
        }
    })
}

/// One locality run: the seeded task stream through three per-member
/// schedulers under the given placement. Returns
/// `(moved_bytes, saved_bytes)`, with `moved` recomputed from the
/// assignment logs so both policies are scored by what they actually
/// did, not by what they reported.
fn run_locality(tasks: usize, locality: bool) -> (u64, u64) {
    let eps = endpoints();
    let ring = HashRing::new(DEFAULT_SEED, DEFAULT_VNODES, eps.clone());
    let scheds: Vec<Scheduler<Bytes>> = (0..MEMBERS)
        .map(|_| {
            let s = Scheduler::new();
            if locality {
                s.set_placement(Arc::new(LocalityPlacement));
            }
            s
        })
        .collect();
    // Bucket id == index of the endpoint the bucket lives at.
    let workers: Vec<_> = scheds
        .iter()
        .flat_map(|s| {
            eps.iter()
                .enumerate()
                .map(|(i, ep)| spawn_bucket(s.clone(), i as u32, Some(ep.clone()), None))
        })
        .collect();

    // Seeded stream: each task's input shards are owned by the real
    // ring, and the task itself is routed the way `submit_task_routed`
    // routes — by `(route, step)`, which is independent of residency.
    let mut hints: Vec<HashMap<u64, HashMap<String, u64>>> = vec![HashMap::new(); MEMBERS];
    for t in 0..tasks {
        let var = format!("field{}", t % 5);
        let version = (t / 5) as u64;
        let mut bytes_at: HashMap<String, u64> = HashMap::new();
        for part in 0..PARTS_PER_TASK {
            let base = (t * PARTS_PER_TASK + part) % 64;
            let bbox = BBox3::new([base, 0, 0], [base + 1, 1, 1]);
            let owner = ring
                .owner_index(&ShardKey::new(&var, version, &bbox))
                .expect("non-empty ring");
            *bytes_at.entry(eps[owner].clone()).or_insert(0) += PART_BYTES;
        }
        let member = ring
            .task_owner_index(&var, version)
            .expect("non-empty ring");
        let hint = ResidencyHint {
            bytes_at: bytes_at.iter().map(|(l, b)| (l.clone(), *b)).collect(),
        };
        let verdict = scheds[member].submit_admission_hinted_as(
            DEFAULT_TENANT,
            Bytes::from(vec![0u8; 16]),
            Some(hint),
        );
        let seq = verdict.seq().expect("unbounded scheduler admits");
        hints[member].insert(seq, bytes_at);
        // Pace submissions so buckets park between tasks and placement
        // has a genuine choice more often than not.
        std::thread::sleep(WORK * 2);
    }

    // Let the tail drain, then close and score.
    loop {
        if scheds.iter().all(|s| s.pool_snapshot().queue_depth == 0) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(WORK * 4);
    for s in &scheds {
        s.close();
    }
    for w in workers {
        w.join().expect("bucket worker");
    }

    let task_bytes = PARTS_PER_TASK as u64 * PART_BYTES;
    let mut moved = 0u64;
    let mut saved = 0u64;
    for (m, s) in scheds.iter().enumerate() {
        let stats = s.stats();
        saved += stats.locality_bytes_saved;
        for (seq, bucket) in &stats.assignment_log {
            let resident = hints[m]
                .get(seq)
                .and_then(|h| h.get(&eps[*bucket as usize]))
                .copied()
                .unwrap_or(0);
            moved += task_bytes - resident;
        }
    }
    (moved, saved)
}

/// One autoscale run: a burst then a steady trickle through a pool
/// that starts at one bucket. Returns `(tail_p99_us, peak_buckets)` —
/// the p99 queue-wait over the last quarter of the stream and the
/// largest live pool the run reached.
fn run_autoscale(burst: usize, steady: usize, elastic: bool) -> (u64, usize) {
    let slo = Duration::from_millis(20);
    let cfg = AutoscaleConfig::new(1, 8, slo);
    let sched: Scheduler<Bytes> = Scheduler::new();
    let waits: Arc<Mutex<Vec<(u64, Duration)>>> = Arc::new(Mutex::new(Vec::new()));
    let t0 = Instant::now();
    let workers = Arc::new(Mutex::new(vec![spawn_bucket(
        sched.clone(),
        0,
        None,
        Some((Arc::clone(&waits), t0)),
    )]));
    sched.set_pool_target(Some(cfg.min_buckets));

    // The elastic controller: the same decide→grow/drain loop the
    // in-process staging backend runs, at a bench-friendly tick.
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(Mutex::new(1usize));
    let controller = elastic.then(|| {
        let sched = sched.clone();
        let workers = Arc::clone(&workers);
        let waits = Arc::clone(&waits);
        let stop = Arc::clone(&stop);
        let peak = Arc::clone(&peak);
        std::thread::spawn(move || {
            let mut scaler = Autoscaler::new(cfg);
            let mut next_id = 1u32;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
                let snap = sched.pool_snapshot();
                {
                    let mut p = peak.lock().expect("peak");
                    *p = (*p).max(snap.buckets);
                }
                match scaler.decide(&snap) {
                    ScaleDecision::Grow(k) => {
                        let mut pool = workers.lock().expect("workers");
                        for _ in 0..k {
                            pool.push(spawn_bucket(
                                sched.clone(),
                                next_id,
                                None,
                                Some((Arc::clone(&waits), t0)),
                            ));
                            next_id += 1;
                        }
                        sched.set_pool_target(Some(snap.buckets + k));
                    }
                    ScaleDecision::Shrink(k) => {
                        let mut drained = 0;
                        for _ in 0..k {
                            if sched.drain_one_bucket().is_some() {
                                drained += 1;
                            }
                        }
                        sched.set_pool_target(Some(snap.buckets.saturating_sub(drained).max(1)));
                    }
                    ScaleDecision::Hold => {}
                }
            }
        })
    });

    let total = burst + steady;
    let submit = |idx: usize| {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&(t0.elapsed().as_micros() as u64).to_le_bytes());
        payload.extend_from_slice(&(idx as u64).to_le_bytes());
        sched.submit(Bytes::from(payload));
    };
    // Burst: far faster than one bucket can serve.
    for idx in 0..burst {
        submit(idx);
        std::thread::sleep(Duration::from_micros(30));
    }
    // Steady trickle: within one bucket's rate, but the backlog is not.
    for idx in burst..total {
        submit(idx);
        std::thread::sleep(WORK * 3);
    }

    // Drain, stop the controller, close, join.
    while sched.pool_snapshot().queue_depth > 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(WORK * 4);
    stop.store(true, Ordering::SeqCst);
    if let Some(c) = controller {
        c.join().expect("controller");
    }
    sched.close();
    let pool: Vec<_> = workers.lock().expect("workers").drain(..).collect();
    for w in pool {
        w.join().expect("bucket worker");
    }

    // Score: p99 queue-wait over the last quarter of the stream — the
    // part a recovered pool serves promptly and a fixed pool serves
    // from under the backlog.
    let cutoff = (total - total / 4) as u64;
    let mut tail: Vec<Duration> = waits
        .lock()
        .expect("waits")
        .iter()
        .filter(|(idx, _)| *idx >= cutoff)
        .map(|(_, w)| *w)
        .collect();
    assert!(!tail.is_empty(), "no tail samples — stream too short");
    tail.sort();
    let p99 = tail[(tail.len() - 1) * 99 / 100];
    let peak_buckets = *peak.lock().expect("peak");
    (p99.as_micros() as u64, peak_buckets)
}

fn main() {
    let smoke = std::env::var_os("BUCKETS_SMOKE").is_some();
    let (tasks, burst, steady) = if smoke { (90, 80, 40) } else { (240, 160, 80) };
    let json_path = std::env::var_os("BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| "BENCH_buckets.json".into());
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&json_path)
        .expect("open BENCH_JSON");
    let mut row = |id: &str, value: u64| {
        writeln!(
            out,
            "{{\"group\":\"buckets\",\"id\":\"{id}\",\"mean_ns\":{value},\"iters\":1}}"
        )
        .expect("write row");
    };

    println!("buckets scenario: {tasks} locality tasks, {burst}+{steady} autoscale tasks");

    let (fcfs_moved, fcfs_saved) = run_locality(tasks, false);
    let (loc_moved, loc_saved) = run_locality(tasks, true);
    assert_eq!(fcfs_saved, 0, "FCFS must never report locality savings");
    assert!(loc_saved > 0, "locality placement saved nothing");
    assert!(
        loc_moved < fcfs_moved,
        "locality moved {loc_moved} B, FCFS moved {fcfs_moved} B — no reduction"
    );
    println!(
        "  locality: FCFS moved {:.1} MiB, locality moved {:.1} MiB (saved {:.1} MiB)",
        fcfs_moved as f64 / (1 << 20) as f64,
        loc_moved as f64 / (1 << 20) as f64,
        loc_saved as f64 / (1 << 20) as f64,
    );
    row("fcfs_movement_bytes", fcfs_moved);
    row("locality_movement_bytes", loc_moved);
    row("locality_saved_bytes", loc_saved);

    let (fixed_p99_us, _) = run_autoscale(burst, steady, false);
    let (auto_p99_us, peak) = run_autoscale(burst, steady, true);
    let slo_us = 20_000u64;
    let recovered = u64::from(auto_p99_us <= slo_us);
    assert!(peak > 1, "autoscaler never grew the pool");
    assert_eq!(recovered, 1, "tail p99 {auto_p99_us}us missed the SLO");
    println!(
        "  autoscale: fixed tail p99 {:.1} ms, elastic tail p99 {:.1} ms (peak {peak} buckets)",
        fixed_p99_us as f64 / 1e3,
        auto_p99_us as f64 / 1e3,
    );
    row("fixed_tail_p99_us", fixed_p99_us);
    row("autoscale_tail_p99_us", auto_p99_us);
    row("autoscale_peak_buckets", peak as u64);
    row("slo_recovered", recovered);

    println!("rows appended to {}", json_path.display());
}
