//! Regenerates **Fig. 3**: the merge tree of a small 2D example —
//! contours appear at maxima as the isovalue sweeps downward and merge
//! at saddles; branches correspond to regions of the domain.
//!
//! The figure's two-peak landscape is reconstructed as an analytic 2D
//! field; the tree is computed with the same code the full pipeline
//! uses, printed as text, and the branch↔region correspondence (the
//! figure's color coding) is shown as segmentation sizes per threshold.

use sitra_bench::{print_table, write_json};
use sitra_mesh::{BBox3, ScalarField};
use sitra_topology::distributed::serial_merge_tree;
use sitra_topology::{segment_superlevel, Connectivity};

fn two_peak_field() -> ScalarField {
    // A 2D landscape (z extent 1) with two Gaussian peaks of different
    // heights, like the figure.
    let b = BBox3::from_dims([48, 32, 1]);
    ScalarField::from_fn(b, |p| {
        let x = p[0] as f64;
        let y = p[1] as f64;
        let peak = |cx: f64, cy: f64, h: f64, w: f64| {
            h * (-((x - cx).powi(2) + (y - cy).powi(2)) / (2.0 * w * w)).exp()
        };
        peak(14.0, 16.0, 10.0, 5.0) + peak(34.0, 16.0, 7.0, 5.5)
    })
}

fn main() {
    let f = two_peak_field();
    let g = f.bbox();
    let tree = serial_merge_tree(&f, Connectivity::TwentySix);
    let canon = tree.canonical();

    println!("merge tree of the two-peak example:");
    println!("  nodes (id, value):");
    for (id, v) in &canon.nodes {
        let p = g.coord_of(*id as usize);
        println!("    {:5}  f = {v:7.3}  at ({}, {})", id, p[0], p[1]);
    }
    println!("  arcs (upper -> lower):");
    for (a, b) in &canon.arcs {
        println!("    {a} -> {b}");
    }

    let branches = tree.branch_decomposition();
    println!("\nbranch decomposition (elder rule):");
    for br in &branches {
        match br.dies_at {
            Some((s, sv)) => println!(
                "  max {} (f={:.3}) merges at saddle {} (f={:.3}), persistence {:.3}",
                br.leaf, br.leaf_value, s, sv, br.persistence
            ),
            None => println!(
                "  max {} (f={:.3}) is the elder branch (infinite persistence)",
                br.leaf, br.leaf_value
            ),
        }
    }

    // The family of segmentations the tree encodes (the figure's color
    // coding): sweep the isovalue and report the regions.
    let mut rows = Vec::new();
    for &t in &[8.0, 5.0, 2.0, 0.5] {
        let seg = segment_superlevel(&f, &g, t, Connectivity::TwentySix, None);
        let feats = seg.features();
        let sizes: Vec<String> = feats
            .iter()
            .map(|&l| format!("max {} : {} cells", l, seg.feature_size(l)))
            .collect();
        rows.push(vec![
            format!("{t}"),
            feats.len().to_string(),
            sizes.join(", "),
        ]);
    }
    print_table(
        "threshold sweep — contours appear at maxima and merge at the saddle",
        &["isovalue", "contours", "regions"],
        &rows,
    );

    // Invariants of the figure.
    assert_eq!(tree.maxima().len(), 2, "two peaks, two leaves");
    let saddles = canon.nodes.len() - tree.maxima().len() - tree.roots().len();
    assert_eq!(saddles, 1, "one merge saddle");
    println!("\nfigure invariants verified: 2 maxima, 1 saddle, 1 root.");
    write_json("fig3_mergetree", &canon.nodes);
}
