//! Ablation: the DART SMSG/BTE message-size crossover.
//!
//! DART on Gemini selects the FMA/SMSG path for small messages and the
//! BTE bulk path for large transfers. This sweep shows why: modeled
//! transfer time per path across message sizes, the analytic crossover,
//! and a live check that the fabric's automatic selection routes
//! messages to the right path.

use bytes::Bytes;
use serde::Serialize;
use sitra_bench::{print_table, write_json};
use sitra_dart::{Fabric, NetworkModel, Path};

#[derive(Serialize)]
struct Row {
    bytes: usize,
    smsg_us: f64,
    bte_us: f64,
    chosen: String,
}

fn main() {
    let model = NetworkModel::gemini();
    let mut rows = Vec::new();
    let mut size = 64usize;
    while size <= 64 << 20 {
        rows.push(Row {
            bytes: size,
            smsg_us: model.transfer_time(size, Path::Smsg) * 1e6,
            bte_us: model.transfer_time(size, Path::Bte) * 1e6,
            chosen: format!("{:?}", model.path_for(size)),
        });
        size *= 4;
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                if r.bytes < 1 << 20 {
                    format!("{} KiB", r.bytes / 1024)
                } else {
                    format!("{} MiB", r.bytes >> 20)
                },
                format!("{:.2}", r.smsg_us),
                format!("{:.2}", r.bte_us),
                r.chosen.clone(),
            ]
        })
        .collect();
    print_table(
        "DART path selection — modeled transfer time per path",
        &["size", "SMSG (µs)", "BTE (µs)", "selected"],
        &table,
    );
    println!(
        "\nanalytic crossover: {:.0} bytes (threshold set to {} bytes)",
        model.crossover_bytes(),
        model.smsg_threshold
    );

    // Live check: the fabric routes by size and the counters agree.
    let fabric = Fabric::new(model);
    let a = fabric.register();
    let b = fabric.register();
    let mut expected_bte = 0;
    for r in &rows {
        let path = a
            .send_auto(b.id(), r.bytes as u64, Bytes::from(vec![0u8; r.bytes]))
            .unwrap();
        assert_eq!(format!("{path:?}"), r.chosen, "live routing disagrees");
        if path == Path::Bte {
            expected_bte += 1;
        }
    }
    // Bulk puts complete asynchronously: wait for the destination events
    // before reading the counters.
    let mut received = 0;
    while received < expected_bte {
        match b.poll_event(std::time::Duration::from_secs(10)) {
            Some(sitra_dart::Event::PutReceived { .. }) => received += 1,
            Some(_) => {}
            None => panic!("timed out waiting for BTE completions"),
        }
    }
    let stats = fabric.stats();
    println!(
        "live fabric: {} SMSG messages ({} B), {} BTE transfers ({} B) — routing verified",
        stats.smsg_messages, stats.smsg_bytes, stats.bte_transfers, stats.bte_bytes
    );
    fabric.shutdown();
    write_json("ablation_dart_threshold", &rows);
}
