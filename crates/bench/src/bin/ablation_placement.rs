//! Ablation: in-situ vs. hybrid placement across the reduction spectrum.
//!
//! "Our framework covers the entire spectrum, from pure in-situ to pure
//! in-transit analysis": which placement blocks the simulation least
//! depends on how much the in-situ stage reduces the data and how
//! expensive the aggregation is. This sweep runs the *live* pipeline
//! with both placements of the statistics analysis while scaling the
//! aggregation cost, and reports the measured simulation-blocking time —
//! locating the crossover empirically.

use bytes::Bytes;
use serde::Serialize;
use sitra_bench::{print_table, write_json};
use sitra_core::{
    run_pipeline, Analysis, AnalysisOutput, AnalysisSpec, HybridStats, InSituCtx, PipelineConfig,
    Placement,
};
use sitra_sim::{SimConfig, Simulation};
use std::sync::Arc;

/// Statistics with an aggregation stage padded to a configurable cost —
/// standing in for analyses whose aggregation is genuinely expensive.
struct PaddedStats {
    inner: HybridStats,
    pad_iters: u64,
}

impl Analysis for PaddedStats {
    fn name(&self) -> &str {
        "padded-stats"
    }
    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        self.inner.in_situ(ctx)
    }
    fn aggregate(&self, step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        // Busy work proportional to pad_iters (not sleep: we model CPU
        // cost, and it must burn the core like a real aggregation).
        let mut acc = 0u64;
        for i in 0..self.pad_iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        self.inner.aggregate(step, parts)
    }
}

#[derive(Serialize)]
struct Row {
    pad_iters: u64,
    insitu_blocking_ms: f64,
    hybrid_blocking_ms: f64,
    hybrid_latency_ms: f64,
    winner: String,
}

fn run(placement: Placement, pad_iters: u64) -> (f64, f64) {
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, 6);
    cfg.analyses = vec![AnalysisSpec::new(
        Arc::new(PaddedStats {
            inner: HybridStats::default(),
            pad_iters,
        }),
        placement,
        1,
    )];
    let mut sim = Simulation::new(SimConfig::small([24, 20, 16], 5));
    let result = run_pipeline(&mut sim, &cfg).expect("valid config");
    let blocking: f64 = result
        .metrics
        .steps
        .iter()
        .map(|s| s.blocked_secs)
        .sum::<f64>()
        / result.metrics.steps.len() as f64;
    let latency: f64 = result
        .metrics
        .for_analysis("padded-stats")
        .iter()
        .map(|r| r.completion_latency_secs)
        .sum::<f64>()
        / result.metrics.for_analysis("padded-stats").len().max(1) as f64;
    (blocking * 1e3, latency * 1e3)
}

fn main() {
    let mut rows = Vec::new();
    for &pad in &[0u64, 1_000_000, 10_000_000, 100_000_000, 400_000_000] {
        let (insitu_blocking_ms, _) = run(Placement::InSitu, pad);
        let (hybrid_blocking_ms, hybrid_latency_ms) = run(Placement::Hybrid, pad);
        rows.push(Row {
            pad_iters: pad,
            insitu_blocking_ms,
            hybrid_blocking_ms,
            hybrid_latency_ms,
            winner: if insitu_blocking_ms <= hybrid_blocking_ms {
                "in-situ".into()
            } else {
                "hybrid".into()
            },
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0e}", r.pad_iters as f64),
                format!("{:.2}", r.insitu_blocking_ms),
                format!("{:.2}", r.hybrid_blocking_ms),
                format!("{:.2}", r.hybrid_latency_ms),
                r.winner.clone(),
            ]
        })
        .collect();
    print_table(
        "Placement crossover — measured simulation-blocking time per step (live pipeline)",
        &[
            "aggregation cost (iters)",
            "in-situ blocks (ms)",
            "hybrid blocks (ms)",
            "hybrid latency (ms)",
            "less blocking",
        ],
        &table,
    );
    println!(
        "\nwith a cheap aggregation the placements tie (the intermediate is tiny); \
         as aggregation cost grows, in-situ blocking grows linearly while hybrid \
         blocking stays flat — the analysis latency absorbs the cost instead. \
         This is the paper's placement spectrum, measured."
    );
    write_json("ablation_placement", &rows);
}
