//! Multi-tenant staging scenario: one staging service shared by many
//! concurrent tenant producers (DRR weights cycling 1..=4) plus a
//! quota-capped `hog`, drained by one bucket worker.
//!
//! ```text
//! cargo run --release -p sitra-bench --bin tenants_scenario \
//!     [-- --tenants N] [--tasks M] [--iters I] [--duration-secs S]
//! ```
//!
//! Defaults drive 100 concurrent producers — each a small pipeline
//! reduced to its staging interactions: connect, declare its tenant,
//! submit timestamped tasks, racing the other 99 — through a single
//! `SpaceServer`. The CI `tenant-smoke` job runs the reduced scale
//! (`--tenants 10 --duration-secs 30`), which keeps iterating full
//! scenarios until the wall-clock budget is spent.
//!
//! Three things are measured and asserted per iteration:
//!
//! * **Quota** — the hog (task quota 16, `RejectNew` override) fires
//!   100 submissions at an idle queue: exactly 16 admit, 84 reject.
//!   Its admitted tasks drain *during* the fairness window, so fairness
//!   is measured while a quota-saturating neighbour competes.
//! * **Fairness** — every producer's backlog is staged before the
//!   worker starts, so the DRR rotation runs fully loaded. Over a
//!   window of whole rotations, no tenant's observed share may fall
//!   below [`FAIRNESS_FLOOR_PCT`] of its weight share; the CI gate
//!   re-checks the emitted row with `bench_gate --floor`.
//! * **Replay** — a [`sitra_obs::VecSink`] captures the journal for the
//!   whole run and [`sitra_bench::replay::replay_tenants`] must rebuild
//!   the per-tenant table bit-identical to the live
//!   `Scheduler::tenant_stats` snapshot.
//!
//! Emits the criterion-style `{"group","id","mean_ns","iters"}` rows to
//! `BENCH_tenants.json` (override with `BENCH_JSON=path`): queue-wait
//! p50/p99 per weight class (`w1_p50_ns` … `w4_p99_ns`, stable ids at
//! any `--tenants` scale) and `fairness_min_share_pct`, which reuses
//! the `mean_ns` field as a dimensionless percentage (higher is better
//! — gate it with `bench_gate --floor`, not the regression comparison).

use sitra_bench::replay::replay_tenants;
use sitra_dataspaces::{
    Admission, AdmissionPolicy, RemoteSpace, SpaceServer, TaskPoll, TenantSpec,
};
use sitra_obs::VecSink;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// DRR weights cycle through 1..=WEIGHT_CLASSES across the tenants.
const WEIGHT_CLASSES: u32 = 4;
/// In-binary fairness assertion: no tenant below this percentage of its
/// weight share inside the measurement window. The full-scale gate
/// floor is 80 ("weight share − 20%"); the window cutting mid-rotation
/// can legitimately cost a low-weight tenant one assignment, so the
/// binary asserts the CI smoke floor and leaves the tighter check to
/// `bench_gate --floor` against the emitted row.
const FAIRNESS_FLOOR_PCT: u64 = 60;
/// The hog's task quota and how many submissions it fires at it.
const HOG_QUOTA: usize = 16;
const HOG_SUBMITS: usize = 100;

#[derive(Clone, Copy)]
struct Opts {
    tenants: usize,
    tasks_per_tenant: usize,
    iters: u32,
    /// Keep iterating until this much wall clock has elapsed (0 = run
    /// exactly `iters`).
    duration: Duration,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            tenants: 100,
            tasks_per_tenant: 40,
            iters: 3,
            duration: Duration::ZERO,
        }
    }
}

fn tenant_weight(i: usize) -> u32 {
    (i as u32 % WEIGHT_CLASSES) + 1
}

fn tenant_name(i: usize) -> String {
    format!("t{i:03}")
}

struct IterOutcome {
    /// `min_i(observed_share_i / weight_share_i) * 100` over the window.
    fairness_pct: u64,
    /// Queue-wait nanoseconds per weight class (index = weight − 1),
    /// full drain.
    latencies: Vec<Vec<u64>>,
}

fn run_once(opts: &Opts, iter: u32) -> IterOutcome {
    static UNIQ: AtomicUsize = AtomicUsize::new(0);
    let uniq = UNIQ.fetch_add(1, Ordering::Relaxed);
    let addr: sitra_net::Addr = format!("inproc://tenants-bench-{uniq}-{iter}")
        .parse()
        .expect("addr");

    // Capture the journal for the whole service lifetime so replay sees
    // every registration and admission.
    let sink = Arc::new(VecSink::new());
    let prev_sink = sitra_obs::install_sink(Some(sink.clone()));

    let server = SpaceServer::start(&addr, 2).expect("start server");
    let t0 = Arc::new(Instant::now());
    let stamp =
        |t0: &Instant| bytes::Bytes::from((t0.elapsed().as_nanos() as u64).to_le_bytes().to_vec());

    // Register every tenant up front, in index order, so the live
    // tenant table's row order is deterministic.
    for i in 0..opts.tenants {
        let conn = RemoteSpace::connect(&addr).expect("connect");
        conn.set_tenant(&TenantSpec::new(tenant_name(i)).with_weight(tenant_weight(i)))
            .expect("set_tenant");
        conn.close();
    }
    let hog = RemoteSpace::connect(&addr).expect("connect hog");
    hog.set_tenant(
        &TenantSpec::new("hog")
            .with_task_quota(HOG_QUOTA)
            .with_policy(AdmissionPolicy::RejectNew),
    )
    .expect("set_tenant hog");

    // Phase A — quota: the hog hammers an idle queue. Its quota admits
    // exactly HOG_QUOTA tasks; RejectNew refuses the rest. The admitted
    // tasks stay queued into phase B, so the fairness window below runs
    // against a neighbour sitting at its quota.
    let (mut admitted, mut rejected) = (0usize, 0usize);
    for _ in 0..HOG_SUBMITS {
        match hog.submit_task_admission(stamp(&t0)).expect("hog submit") {
            Admission::Accepted { .. } | Admission::AcceptedShed { .. } => admitted += 1,
            Admission::Rejected | Admission::TimedOut => rejected += 1,
            Admission::Closed => panic!("scheduler closed mid-bench"),
        }
    }
    assert_eq!(
        (admitted, rejected),
        (HOG_QUOTA, HOG_SUBMITS - HOG_QUOTA),
        "hog quota must admit exactly its quota and reject the rest"
    );

    // Phase B — every producer stages its backlog concurrently with the
    // other producers (each its own connection and thread), before any
    // worker exists. Payloads carry their submit time (ns since t0) so
    // the drain can compute queue-wait latency without a side channel.
    let producers: Vec<std::thread::JoinHandle<()>> = (0..opts.tenants)
        .map(|i| {
            let addr = addr.clone();
            let t0 = Arc::clone(&t0);
            let tasks = opts.tasks_per_tenant;
            std::thread::spawn(move || {
                let conn = RemoteSpace::connect(&addr).expect("producer connect");
                conn.set_tenant(&TenantSpec::new(tenant_name(i)).with_weight(tenant_weight(i)))
                    .expect("producer set_tenant");
                for _ in 0..tasks {
                    conn.submit_task(bytes::Bytes::from(
                        (t0.elapsed().as_nanos() as u64).to_le_bytes().to_vec(),
                    ))
                    .expect("producer submit");
                }
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer thread");
    }

    // Drain: one worker, one bucket — every assignment in one global
    // order, which is exactly the DRR rotation under full backlog.
    let worker = RemoteSpace::connect(&addr).expect("connect worker");
    let total = HOG_QUOTA + opts.tenants * opts.tasks_per_tenant;
    let mut order: Vec<(String, u64)> = Vec::with_capacity(total);
    while order.len() < total {
        match worker
            .request_task(0, Duration::from_millis(100))
            .expect("request_task")
        {
            TaskPoll::Assigned { data, tenant, .. } => {
                let sent = u64::from_le_bytes(data[..8].try_into().expect("stamp payload"));
                let waited = (t0.elapsed().as_nanos() as u64).saturating_sub(sent);
                order.push((tenant, waited));
            }
            TaskPoll::Empty => continue,
            TaskPoll::Closed | TaskPoll::Retire => {
                panic!("scheduler closed with tasks outstanding")
            }
        }
    }

    // Replay identity: the journal alone must rebuild the per-tenant
    // table the live scheduler reports.
    let live = server.scheduler().tenant_stats();
    let replayed = replay_tenants(&sink.events());
    assert_eq!(
        replayed, live,
        "journal replay must be bit-identical to the live tenant table"
    );
    sitra_obs::install_sink(prev_sink);

    // Fairness over a window of whole DRR rotations (so expected shares
    // are exact), capped at half the staged tasks so no tenant's queue
    // can run dry inside the window — an empty queue leaves the
    // rotation and would legitimately skew shares.
    let weight_sum: u64 = (0..opts.tenants).map(|i| tenant_weight(i) as u64).sum();
    let window_len = (opts.tenants * opts.tasks_per_tenant / 2) as u64 / weight_sum * weight_sum;
    assert!(
        window_len >= weight_sum,
        "--tasks too small for a whole-rotation fairness window"
    );
    let window: Vec<&str> = order
        .iter()
        .map(|(t, _)| t.as_str())
        .filter(|t| *t != "hog")
        .take(window_len as usize)
        .collect();
    let fairness_pct = (0..opts.tenants)
        .map(|i| {
            let name = tenant_name(i);
            let got = window.iter().filter(|t| **t == name).count() as f64;
            let expected = window_len as f64 * tenant_weight(i) as f64 / weight_sum as f64;
            (100.0 * got / expected) as u64
        })
        .min()
        .expect("at least one tenant");
    assert!(
        fairness_pct >= FAIRNESS_FLOOR_PCT,
        "fairness floor violated: min share {fairness_pct}% of weight share \
         (floor {FAIRNESS_FLOOR_PCT}%)"
    );

    let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); WEIGHT_CLASSES as usize];
    for (tenant, waited) in &order {
        if let Some(i) = tenant
            .strip_prefix('t')
            .and_then(|n| n.parse::<usize>().ok())
        {
            latencies[(tenant_weight(i) - 1) as usize].push(*waited);
        }
    }

    hog.close();
    worker.close();
    server.shutdown();
    IterOutcome {
        fairness_pct,
        latencies,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn parse_opts() -> Opts {
    let mut opts = Opts::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut it = argv.iter().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} wants a number"))
        };
        match flag.as_str() {
            "--tenants" => opts.tenants = value("--tenants").max(1),
            "--tasks" => opts.tasks_per_tenant = value("--tasks").max(1),
            "--iters" => opts.iters = value("--iters").max(1) as u32,
            "--duration-secs" => {
                opts.duration = Duration::from_secs(value("--duration-secs") as u64)
            }
            other => panic!(
                "unknown flag {other}\n\
                 usage: tenants_scenario [--tenants N] [--tasks M] [--iters I] [--duration-secs S]"
            ),
        }
    }
    opts
}

fn main() {
    let opts = parse_opts();
    let json_path = std::env::var_os("BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| "BENCH_tenants.json".into());
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&json_path)
        .expect("open BENCH_JSON");

    println!(
        "tenants scenario: {} tenants (weights cycling 1..={WEIGHT_CLASSES}), \
         {} tasks each, hog quota {HOG_QUOTA}/{HOG_SUBMITS}",
        opts.tenants, opts.tasks_per_tenant
    );
    let started = Instant::now();
    let mut fairness_min = u64::MAX;
    let mut per_class: Vec<Vec<u64>> = vec![Vec::new(); WEIGHT_CLASSES as usize];
    let mut iters = 0u32;
    while iters < opts.iters || started.elapsed() < opts.duration {
        let outcome = run_once(&opts, iters);
        println!(
            "  iter {iters}: min share {}% of weight share",
            outcome.fairness_pct
        );
        fairness_min = fairness_min.min(outcome.fairness_pct);
        for (all, one) in per_class.iter_mut().zip(outcome.latencies) {
            all.extend(one);
        }
        iters += 1;
    }

    for (class, lat) in per_class.iter_mut().enumerate() {
        if lat.is_empty() {
            continue;
        }
        lat.sort_unstable();
        let (p50, p99) = (percentile(lat, 0.50), percentile(lat, 0.99));
        println!(
            "  w{}: p50 {:8.2} ms  p99 {:8.2} ms  ({} samples)",
            class + 1,
            p50 as f64 / 1e6,
            p99 as f64 / 1e6,
            lat.len()
        );
        for (tag, v) in [("p50", p50), ("p99", p99)] {
            writeln!(
                out,
                "{{\"group\":\"tenants\",\"id\":\"w{}_{tag}_ns\",\"mean_ns\":{v},\"iters\":{iters}}}",
                class + 1
            )
            .expect("write row");
        }
    }
    println!("  fairness: min share {fairness_min}% of weight share (floor {FAIRNESS_FLOOR_PCT}%)");
    writeln!(
        out,
        "{{\"group\":\"tenants\",\"id\":\"fairness_min_share_pct\",\"mean_ns\":{fairness_min},\"iters\":{iters}}}"
    )
    .expect("write row");
    println!("rows appended to {}", json_path.display());
}
