//! Regenerates **Fig. 2**: image quality of the fully in-situ
//! full-resolution rendering vs. the hybrid pipeline that down-samples
//! in-situ (the paper uses every 8th grid point) and renders in-transit
//! through the block lookup table.
//!
//! Writes the overview and zoom images of both paths as PPM files under
//! `target/fig2/` and reports RMSE/PSNR and payload sizes per stride.

use serde::Serialize;
use sitra_bench::{print_table, write_json};
use sitra_mesh::{downsample, BBox3, Decomposition};
use sitra_sim::{SimConfig, Simulation, Variable};
use sitra_viz::{render_serial, HybridRenderer, TransferFunction, View, ViewAxis};

#[derive(Serialize)]
struct StrideResult {
    stride: usize,
    payload_bytes: usize,
    rmse_overview: f64,
    psnr_overview: f64,
    rmse_zoom: f64,
    psnr_zoom: f64,
}

fn main() {
    const DIMS: [usize; 3] = [128, 96, 64];
    let mut sim = Simulation::new(SimConfig {
        kernel_spawn_rate: 1.0,
        ..SimConfig::small(DIMS, 7)
    });
    for _ in 0..8 {
        sim.advance();
    }
    let g = sim.global();
    let field = sim.block_field(Variable::Temperature, &g);
    let (mn, mx) = field.min_max().unwrap();
    let tf = TransferFunction::hot(mn, mx);
    let decomp = Decomposition::new(g, [4, 4, 2]);

    let overview = View::full_res(g, ViewAxis::Z, false);
    // Zoom on the flame-base region where kernels live.
    let zoom_box = BBox3::new([8, 24, 16], [72, 72, 48]);
    let zoom = View {
        width: 2 * zoom_box.dims()[0],
        height: 2 * zoom_box.dims()[1],
        ..View::full_res(zoom_box, ViewAxis::Z, false)
    };

    let out_dir = std::path::Path::new("target/fig2");
    let _ = std::fs::create_dir_all(out_dir);
    let bg = [0.0, 0.0, 0.0];

    let full_overview = render_serial(&field, &overview, &tf);
    let full_zoom = render_serial(&field, &zoom, &tf);
    full_overview
        .write_ppm(out_dir.join("a_insitu_overview.ppm"), bg)
        .unwrap();
    full_zoom
        .write_ppm(out_dir.join("c_insitu_zoom.ppm"), bg)
        .unwrap();

    let mut results = Vec::new();
    for &stride in &[2usize, 4, 8] {
        // In-situ: every rank down-samples its block.
        let blocks: Vec<_> = (0..decomp.rank_count())
            .map(|r| downsample(&field.extract(&decomp.block(r)), stride))
            .collect();
        let payload: usize = blocks.iter().map(|b| b.bytes()).sum();
        // In-transit: one serial renderer over the lookup table.
        let hr = HybridRenderer::new(blocks);
        let h_overview = hr.render(&overview, &tf);
        let h_zoom = hr.render(&zoom, &tf);
        if stride == 8 {
            h_overview
                .write_ppm(out_dir.join("b_hybrid8_overview.ppm"), bg)
                .unwrap();
            h_zoom
                .write_ppm(out_dir.join("d_hybrid8_zoom.ppm"), bg)
                .unwrap();
        }
        results.push(StrideResult {
            stride,
            payload_bytes: payload,
            rmse_overview: h_overview.rmse(&full_overview),
            psnr_overview: h_overview.psnr(&full_overview),
            rmse_zoom: h_zoom.rmse(&full_zoom),
            psnr_zoom: h_zoom.psnr(&full_zoom),
        });
    }

    let full_bytes = g.count() * 8;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.stride),
                format!(
                    "{:.1} KiB ({}x less)",
                    r.payload_bytes as f64 / 1024.0,
                    full_bytes / r.payload_bytes.max(1)
                ),
                format!("{:.4}", r.rmse_overview),
                format!("{:.1} dB", r.psnr_overview),
                format!("{:.4}", r.rmse_zoom),
                format!("{:.1} dB", r.psnr_zoom),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — hybrid (down-sampled) vs in-situ (full-res) image quality",
        &[
            "stride",
            "payload",
            "RMSE ovw",
            "PSNR ovw",
            "RMSE zoom",
            "PSNR zoom",
        ],
        &rows,
    );
    println!("\nimages written to target/fig2/ (a,c: in-situ; b,d: hybrid, stride 8)");
    println!(
        "as in the paper: the down-sampled images remain usable for monitoring \
         while the payload shrinks by the stride cubed."
    );
    write_json("fig2_viz", &results);
}
