//! `bench_gate` — the CI bench-regression gate.
//!
//! ```text
//! bench_gate --baseline crates/bench/baseline.json \
//!            --current  BENCH_pipeline.json \
//!            [--threshold-pct 25]
//! ```
//!
//! ```text
//! bench_gate --current BENCH_tenants.json \
//!            --floor tenants/fairness_min_share_pct:60
//! ```
//!
//! Both files are the JSON-lines format the vendored criterion appends
//! under `BENCH_JSON` (one `{"group","id","mean_ns","iters"}` object per
//! line). The gate compares every benchmark present in both files and
//! exits non-zero when any regresses by more than the threshold.
//! Benchmarks only in one file are reported but never fail the gate
//! (new benches appear before the baseline is refreshed; retired ones
//! linger in it until then). Refresh the baseline by committing a new
//! file — CI's `[bench-reset]` commit tag skips the gate for exactly
//! that commit.
//!
//! `--floor group/id:MIN` (repeatable) asserts an absolute minimum
//! instead: the gate fails when the current value is below MIN or the
//! row is absent. Floored rows are higher-is-better quality scores
//! (e.g. the tenancy bench's fairness percentage riding in `mean_ns`),
//! so they are excluded from the lower-is-better regression comparison.
//! With `--floor`, `--baseline` becomes optional.

use serde::Deserialize;
use std::collections::BTreeMap;
use std::path::Path;

#[derive(Debug, Deserialize)]
struct BenchLine {
    group: String,
    id: String,
    mean_ns: u64,
    #[allow(dead_code)]
    iters: u64,
}

fn read_bench_json(path: &Path) -> Result<BTreeMap<String, u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let l: BenchLine = serde_json::from_str(line)
            .map_err(|e| format!("{}:{}: bad bench line: {e}", path.display(), i + 1))?;
        // Re-running a bench binary appends again; last write wins.
        out.insert(format!("{}/{}", l.group, l.id), l.mean_ns);
    }
    Ok(out)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let program = argv.first().map(String::as_str).unwrap_or("bench_gate");
    let usage = format!(
        "usage: {program} [--baseline FILE] --current FILE [--threshold-pct N] \
         [--floor group/id:MIN]..."
    );
    let mut baseline_path = None;
    let mut current_path = None;
    let mut threshold_pct = 25.0f64;
    let mut floors: Vec<(String, u64)> = Vec::new();
    let mut it = argv.iter().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{program}: missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--current" => current_path = Some(value("--current")),
            "--threshold-pct" => {
                threshold_pct = value("--threshold-pct").parse().unwrap_or_else(|_| {
                    eprintln!("{program}: --threshold-pct must be a number");
                    std::process::exit(2);
                })
            }
            "--floor" => {
                let spec = value("--floor");
                let parsed = spec
                    .rsplit_once(':')
                    .and_then(|(name, min)| Some((name.to_string(), min.parse().ok()?)));
                match parsed {
                    Some(floor) => floors.push(floor),
                    None => {
                        eprintln!("{program}: --floor wants group/id:MIN, got `{spec}`");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("{usage}\n{program}: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(current_path) = current_path else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    if baseline_path.is_none() && floors.is_empty() {
        eprintln!("{usage}");
        std::process::exit(2);
    }
    let baseline = match &baseline_path {
        Some(path) => read_bench_json(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{program}: {e}");
            std::process::exit(1);
        }),
        None => BTreeMap::new(),
    };
    let current = read_bench_json(Path::new(&current_path)).unwrap_or_else(|e| {
        eprintln!("{program}: {e}");
        std::process::exit(1);
    });

    let mut floor_failures = Vec::new();
    for (name, min) in &floors {
        match current.get(name) {
            Some(cur) if cur >= min => println!("  FLOOR ok {name}: {cur} >= {min}"),
            Some(cur) => {
                println!("  FLOOR    {name}: {cur} < {min}");
                floor_failures.push(format!("{name}: {cur} below floor {min}"));
            }
            None => {
                println!("  FLOOR    {name}: missing from this run");
                floor_failures.push(format!("{name}: missing from this run"));
            }
        }
    }
    if !floor_failures.is_empty() {
        eprintln!("\n{program}: {} floor failure(s):", floor_failures.len());
        for f in &floor_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }

    let Some(baseline_path) = baseline_path else {
        println!(
            "bench gate: {} floor(s) hold, no baseline given",
            floors.len()
        );
        return;
    };
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    println!("bench gate: threshold +{threshold_pct:.0}% vs {baseline_path}");
    for (name, cur) in &current {
        if floors.iter().any(|(f, _)| f == name) {
            // Floored rows are higher-is-better scores; the regression
            // comparison would fire on improvement.
            continue;
        }
        let Some(base) = baseline.get(name) else {
            println!("  NEW      {name}: {cur} ns/iter (not in baseline)");
            continue;
        };
        compared += 1;
        let delta_pct = if *base == 0 {
            0.0
        } else {
            100.0 * (*cur as f64 - *base as f64) / *base as f64
        };
        let verdict = if delta_pct > threshold_pct {
            regressions.push((name.clone(), *base, *cur, delta_pct));
            "REGRESS"
        } else {
            "ok"
        };
        println!("  {verdict:8} {name}: {base} -> {cur} ns/iter ({delta_pct:+.1}%)");
    }
    for name in baseline.keys() {
        if !current.contains_key(name) {
            println!("  MISSING  {name}: in baseline but not in this run");
        }
    }
    if compared == 0 && floors.is_empty() {
        eprintln!("{program}: no benchmarks in common — wrong files?");
        std::process::exit(1);
    }
    if !regressions.is_empty() {
        eprintln!(
            "\n{program}: {} regression(s) beyond +{threshold_pct:.0}%:",
            regressions.len()
        );
        for (name, base, cur, pct) in &regressions {
            eprintln!("  {name}: {base} -> {cur} ns/iter ({pct:+.1}%)");
        }
        eprintln!(
            "If this slowdown is intended, refresh crates/bench/baseline.json and \
             tag the commit message with [bench-reset]."
        );
        std::process::exit(1);
    }
    println!("bench gate: {compared} benchmark(s) within threshold");
}
