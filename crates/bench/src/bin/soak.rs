//! `soak` — the connection-scale soak harness: one release
//! `sitra-staged` process, ten thousand concurrent clients.
//!
//! Spawns (or connects to) a staging service and drives `--conns`
//! concurrent [`AsyncConnection`]s against it for `--duration` seconds,
//! each running a put/get/submit/poll mix of real staging RPCs. Every
//! request is tagged with the connection id and iteration number, and
//! every response is checked against the exact request that solicited
//! it — the protocol is strict request/response lockstep per
//! connection, so a *lost* response surfaces as a timeout and a
//! *duplicated* (or misrouted) response surfaces as a type or payload
//! mismatch on the very next exchange. Zero tolerance for either.
//!
//! ```text
//! soak [--conns N] [--duration SECS] [--payload BYTES]
//!      [--staged PATH | --endpoint ADDR] [--journal PATH]
//! ```
//!
//! With `--journal`, the spawned `sitra-staged` writes its span journal
//! to PATH; CI uploads it as an artifact when the soak fails. Exits 0
//! only if every connection completed its run with zero mismatches,
//! zero lost responses, and the staged process shut down cleanly.

use bytes::Bytes;
use sitra_dataspaces::remote::{decode_response, encode_request, Request, Response, TaskPoll};
use sitra_mesh::BBox3;
use sitra_net::{rt, Addr, AsyncConnection};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long one response may take before it is declared lost. Generous:
/// with 10k lockstep connections multiplexed onto a small runtime and a
/// single service process, per-operation latency under full load is
/// seconds, not microseconds — but a *lost* response never arrives at
/// all, and that is the failure this bound detects.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(60);

struct Opts {
    conns: usize,
    duration: Duration,
    payload: usize,
    /// Path to the `sitra-staged` binary (default: next to our own).
    staged: Option<String>,
    /// Drive an already-running service instead of spawning one.
    endpoint: Option<String>,
    journal: Option<String>,
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: soak [--conns N] [--duration SECS] [--payload BYTES]\n\
         \x20           [--staged PATH | --endpoint ADDR] [--journal PATH]\n\
         \n\
         --conns N        concurrent connections (default 10000)\n\
         --duration SECS  load phase length (default 60)\n\
         --payload BYTES  put payload size per connection (default 256)\n\
         --staged PATH    sitra-staged binary to spawn (default: sibling of this binary)\n\
         --endpoint ADDR  drive an already-running service at ADDR instead of spawning\n\
         --journal PATH   pass --journal PATH to the spawned sitra-staged"
    );
    std::process::exit(code);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        conns: 10_000,
        duration: Duration::from_secs(60),
        payload: 256,
        staged: None,
        endpoint: None,
        journal: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut it = argv.iter().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("soak: missing value for {name}");
                usage(2)
            })
        };
        match flag.as_str() {
            "--conns" => match value("--conns").parse() {
                Ok(n) if n > 0 => opts.conns = n,
                _ => usage(2),
            },
            "--duration" => match value("--duration").parse() {
                Ok(s) => opts.duration = Duration::from_secs(s),
                Err(_) => usage(2),
            },
            "--payload" => match value("--payload").parse() {
                Ok(n) if n >= 16 => opts.payload = n,
                _ => {
                    eprintln!("soak: --payload must be at least 16 (room for the tag)");
                    usage(2)
                }
            },
            "--staged" => opts.staged = Some(value("--staged")),
            "--endpoint" => opts.endpoint = Some(value("--endpoint")),
            "--journal" => opts.journal = Some(value("--journal")),
            "--help" | "-h" => usage(0),
            other => {
                eprintln!("soak: unknown flag {other}");
                usage(2)
            }
        }
    }
    opts
}

/// Spawn `sitra-staged --listen tcp://127.0.0.1:0`, parse the bound
/// address off its stdout banner, and keep draining its output on a
/// background thread (a full pipe would wedge the service).
fn spawn_staged(opts: &Opts) -> (Child, Addr) {
    let bin = opts.staged.clone().unwrap_or_else(|| {
        let me = std::env::current_exe().expect("current_exe");
        me.parent()
            .expect("exe dir")
            .join("sitra-staged")
            .to_string_lossy()
            .into_owned()
    });
    let mut cmd = Command::new(&bin);
    cmd.args(["--listen", "tcp://127.0.0.1:0"]);
    if let Some(journal) = &opts.journal {
        cmd.args(["--journal", journal]);
    }
    let mut child = match cmd.stdout(Stdio::piped()).spawn() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("soak: cannot spawn {bin}: {e}");
            std::process::exit(1);
        }
    };
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                println!("[staged] {line}");
                // "sitra-staged: serving N space shard(s) on ADDR"
                if let Some(rest) = line.split(" on ").nth(1) {
                    if line.contains("serving") {
                        break rest
                            .trim()
                            .parse::<Addr>()
                            .expect("staged printed its address");
                    }
                }
            }
            _ => {
                eprintln!("soak: sitra-staged exited before announcing its address");
                std::process::exit(1);
            }
        }
    };
    std::thread::spawn(move || {
        for line in lines.map_while(Result::ok) {
            println!("[staged] {line}");
        }
    });
    (child, addr)
}

/// One request/response exchange; every error is rendered as the
/// string recorded against the connection.
async fn rpc(conn: &mut AsyncConnection, req: &Request) -> Result<Response, String> {
    conn.send(encode_request(req))
        .await
        .map_err(|e| format!("send: {e}"))?;
    let frame = rt::timeout(RESPONSE_TIMEOUT, conn.recv())
        .await
        .map_err(|_| format!("lost response (no frame within {RESPONSE_TIMEOUT:?})"))?
        .map_err(|e| format!("recv: {e}"))?;
    decode_response(frame).map_err(|e| format!("decode: {e}"))
}

/// The deterministic payload for (connection, iteration): a 16-byte
/// tag followed by LCG filler, so a get can verify byte integrity and
/// a stale duplicate from an earlier iteration cannot pass as current.
fn payload_for(id: u64, iter: u64, len: usize) -> Bytes {
    let mut buf = Vec::with_capacity(len);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&iter.to_le_bytes());
    let mut x = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ iter;
    while buf.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        buf.push((x >> 56) as u8);
    }
    Bytes::from(buf)
}

/// One connection's lockstep loop: put → get-verify → submit → poll(+ack),
/// repeated until the deadline. Returns ops completed, or the first
/// protocol violation observed.
async fn drive(
    mut conn: AsyncConnection,
    id: u64,
    deadline: Instant,
    payload_len: usize,
    ops_total: Arc<AtomicU64>,
) -> Result<u64, String> {
    let var = format!("soak-{id}");
    let bbox = BBox3::new([0, 0, 0], [1, 1, 1]);
    let mut iter = 0u64;
    let mut last_put: Option<Bytes> = None;
    while Instant::now() < deadline {
        match iter % 4 {
            0 => {
                let data = payload_for(id, iter, payload_len);
                let req = Request::Put {
                    var: var.clone(),
                    version: 1,
                    bbox,
                    data: data.clone(),
                };
                match rpc(&mut conn, &req)
                    .await
                    .map_err(|e| format!("iter {iter} put: {e}"))?
                {
                    Response::Ok => last_put = Some(data),
                    other => return Err(format!("put answered {other:?}")),
                }
            }
            1 => {
                let req = Request::Get {
                    var: var.clone(),
                    version: 1,
                    bbox,
                };
                match rpc(&mut conn, &req)
                    .await
                    .map_err(|e| format!("iter {iter} get: {e}"))?
                {
                    Response::Pieces(pieces) => {
                        let want = last_put.as_ref().expect("get follows put");
                        if pieces.len() != 1 || &pieces[0].1 != want {
                            return Err(format!(
                                "get returned {} piece(s), integrity mismatch at iter {iter}",
                                pieces.len()
                            ));
                        }
                    }
                    other => return Err(format!("get answered {other:?}")),
                }
            }
            2 => {
                let req = Request::SubmitTask {
                    data: payload_for(id, iter, 24),
                };
                match rpc(&mut conn, &req)
                    .await
                    .map_err(|e| format!("iter {iter} submit: {e}"))?
                {
                    Response::Seq(_) => {}
                    other => return Err(format!("submit answered {other:?}")),
                }
            }
            _ => {
                // A small but nonzero wait: the server only looks at
                // the queue while the deadline has time left, so 0
                // would always answer Empty.
                let req = Request::RequestTask {
                    bucket_id: id as u32,
                    timeout_ms: 2,
                };
                match rpc(&mut conn, &req)
                    .await
                    .map_err(|e| format!("iter {iter} poll: {e}"))?
                {
                    Response::Task(TaskPoll::Assigned { seq, .. }) => {
                        // The two-phase hand-off ack is one-way: the
                        // server requeues on a missing/bad ack but
                        // never answers a good one.
                        conn.send(encode_request(&Request::AckTask { seq }))
                            .await
                            .map_err(|e| format!("ack send: {e}"))?;
                        ops_total.fetch_add(1, Ordering::Relaxed);
                    }
                    Response::Task(TaskPoll::Empty) => {}
                    other => return Err(format!("poll answered {other:?}")),
                }
            }
        }
        ops_total.fetch_add(1, Ordering::Relaxed);
        iter += 1;
    }
    conn.close();
    Ok(iter)
}

fn main() {
    let opts = parse_opts();
    let spawned = if opts.endpoint.is_none() {
        Some(spawn_staged(&opts))
    } else {
        None
    };
    let addr: Addr = match &opts.endpoint {
        Some(ep) => ep.parse().unwrap_or_else(|e| {
            eprintln!("soak: bad --endpoint: {e}");
            std::process::exit(2);
        }),
        None => spawned.as_ref().expect("spawned").1.clone(),
    };

    // Dial storm: sequential on this thread (the reactor carries the
    // I/O tasks; the dial itself is a blocking loopback connect). A
    // listener backlog overflow shows up as refused/reset dials, so
    // each dial gets a short retry budget.
    println!("soak: dialing {} connection(s) to {addr} ...", opts.conns);
    let t_dial = Instant::now();
    let mut conns = Vec::with_capacity(opts.conns);
    for i in 0..opts.conns {
        let mut attempts = 0;
        let conn = loop {
            match AsyncConnection::connect(&addr) {
                Ok(c) => break c,
                Err(e) if attempts < 100 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(20));
                    let _ = e;
                }
                Err(e) => {
                    eprintln!("soak: dial {i} failed after {attempts} retries: {e}");
                    std::process::exit(1);
                }
            }
        };
        conns.push(conn);
        if (i + 1) % 2000 == 0 {
            println!("soak: {} connection(s) up", i + 1);
        }
    }
    println!(
        "soak: all {} connection(s) up in {:.1}s; load phase {}s",
        opts.conns,
        t_dial.elapsed().as_secs_f64(),
        opts.duration.as_secs()
    );

    let ops_total = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + opts.duration;
    let payload = opts.payload;
    let failures: Vec<(u64, String)> = rt::block_on(async {
        let tasks: Vec<_> = conns
            .into_iter()
            .enumerate()
            .map(|(i, conn)| {
                let ops = Arc::clone(&ops_total);
                rt::spawn(drive(conn, i as u64, deadline, payload, ops))
            })
            .collect();
        let mut failures = Vec::new();
        for (i, task) in tasks.into_iter().enumerate() {
            match task.await {
                Ok(Ok(_ops)) => {}
                Ok(Err(msg)) => failures.push((i as u64, msg)),
                Err(_) => failures.push((i as u64, "driver task panicked".into())),
            }
        }
        failures
    });
    let total = ops_total.load(Ordering::Relaxed);
    println!(
        "soak: load phase done: {} op(s) total, {:.0} op/s, {} failed connection(s)",
        total,
        total as f64 / opts.duration.as_secs_f64(),
        failures.len()
    );
    for (id, msg) in failures.iter().take(10) {
        eprintln!("soak: conn {id}: {msg}");
    }
    if failures.len() > 10 {
        eprintln!("soak: ... and {} more", failures.len() - 10);
    }

    // Shut the service down through the protocol (the driver's own
    // path), then — if we spawned it — require a clean exit.
    let shutdown_ok = rt::block_on(async {
        match AsyncConnection::connect(&addr) {
            Ok(mut c) => matches!(rpc(&mut c, &Request::CloseSched).await, Ok(Response::Ok)),
            Err(_) => false,
        }
    });
    if !shutdown_ok {
        eprintln!("soak: CloseSched failed");
    }
    let staged_ok = match spawned {
        Some((mut child, _)) => {
            if !shutdown_ok {
                let _ = child.kill();
            }
            let t0 = Instant::now();
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => break status.success(),
                    Ok(None) if t0.elapsed() > Duration::from_secs(30) => {
                        eprintln!("soak: sitra-staged did not exit; killing");
                        let _ = child.kill();
                        let _ = child.wait();
                        break false;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                    Err(e) => {
                        eprintln!("soak: wait on sitra-staged: {e}");
                        break false;
                    }
                }
            }
        }
        None => shutdown_ok,
    };

    if failures.is_empty() && staged_ok {
        println!("soak: PASS");
    } else {
        eprintln!(
            "soak: FAIL ({} bad connection(s), staged clean exit: {staged_ok})",
            failures.len()
        );
        std::process::exit(1);
    }
}
