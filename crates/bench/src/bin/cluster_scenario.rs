//! Cluster scaling scenario: end-to-end pipeline wall time through a
//! 1-, 2-, and 3-member staging cluster, plus a 3-member run with one
//! member killed mid-run — the cost of surviving an instance loss.
//!
//! ```text
//! cargo run --release -p sitra-bench --bin cluster_scenario
//! ```
//!
//! Emits one JSON line per scenario (the same
//! `{"group","id","mean_ns","iters"}` rows the criterion benches
//! write) to `BENCH_cluster.json` — override with `BENCH_JSON=path`.
//! `inproc://` endpoints keep the numbers transport-stable; the
//! absolute times are host-dependent, the member-count *ratios* are
//! the result.

use sitra_cluster::{Bootstrap, ClusterNode, ClusterNodeOpts};
use sitra_core::remote::{run_cluster_bucket_worker, BucketWorkerOpts};
use sitra_core::{run_pipeline, AnalysisSpec, HybridStats, HybridViz, PipelineConfig, Placement};
use sitra_mesh::BBox3;
use sitra_sim::{SimConfig, Simulation};
use sitra_viz::{TransferFunction, View, ViewAxis};
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const DIMS: [usize; 3] = [32, 24, 20];
const STEPS: usize = 6;
const ITERS: u32 = 3;

fn specs() -> Vec<AnalysisSpec> {
    vec![
        AnalysisSpec::new(
            Arc::new(HybridViz {
                stride: 2,
                view: View::full_res(BBox3::from_dims(DIMS), ViewAxis::Z, false),
                tf: TransferFunction::hot(250.0, 2500.0),
            }),
            Placement::Hybrid,
            1,
        ),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::Hybrid, 2),
    ]
}

fn config(endpoints: &[String]) -> PipelineConfig {
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, STEPS)
        .with_staging_cluster(endpoints.iter().cloned())
        .with_staging_deadline(std::time::Duration::from_millis(1000));
    cfg.analyses = specs();
    cfg
}

/// One full pipeline run through an `n`-member cluster; when `kill_one`
/// is set, the last member dies after the second collected output.
/// Returns (elapsed ns, degraded tasks, dropped tasks).
fn run_once(n: usize, seed: u64, iter: u32, kill_one: bool) -> (u64, usize, usize) {
    static UNIQ: AtomicUsize = AtomicUsize::new(0);
    let uniq = UNIQ.fetch_add(1, Ordering::Relaxed);
    let endpoints: Vec<String> = (0..n)
        .map(|i| format!("inproc://cluster-bench-{uniq}-{iter}-{i}"))
        .collect();
    let nodes: Vec<ClusterNode> = endpoints
        .iter()
        .map(|e| {
            ClusterNode::start(
                &e.parse().expect("addr"),
                Bootstrap::Seeds(endpoints.clone()),
                ClusterNodeOpts::default(),
            )
            .expect("start member")
        })
        .collect();
    let worker = {
        let eps = endpoints.clone();
        std::thread::spawn(move || {
            // A short poll quantum: a blocking wait on one member's
            // empty queue must not sit out a task landing on another.
            let opts = BucketWorkerOpts {
                request_timeout: std::time::Duration::from_millis(60),
                ..BucketWorkerOpts::default()
            };
            run_cluster_bucket_worker(&eps, &specs(), 0, &opts).expect("cluster worker")
        })
    };

    let mut nodes: Vec<Option<ClusterNode>> = nodes.into_iter().map(Some).collect();
    let mut cfg = config(&endpoints);
    let victim = Arc::new(Mutex::new(if kill_one {
        nodes[n - 1].take()
    } else {
        None
    }));
    if kill_one {
        let victim = Arc::clone(&victim);
        let collected = Arc::new(AtomicUsize::new(0));
        cfg = cfg.with_staging_output_hook(Arc::new(move |_l, _s| {
            if collected.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
                if let Some(node) = victim.lock().unwrap().take() {
                    node.kill();
                }
            }
        }));
    }

    let mut sim = Simulation::new(SimConfig::small(DIMS, seed));
    let t0 = Instant::now();
    let result = run_pipeline(&mut sim, &cfg).expect("cluster config");
    let elapsed = t0.elapsed().as_nanos() as u64;

    if let Some(node) = victim.lock().unwrap().take() {
        node.kill();
    }
    for node in nodes.iter_mut().filter_map(Option::take) {
        node.shutdown();
    }
    worker.join().expect("worker thread");
    (elapsed, result.degraded_tasks, result.dropped_tasks)
}

fn main() {
    let json_path = std::env::var_os("BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| "BENCH_cluster.json".into());
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&json_path)
        .expect("open BENCH_JSON");

    let scenarios: [(&str, usize, bool); 4] = [
        ("members_1_e2e", 1, false),
        ("members_2_e2e", 2, false),
        ("members_3_e2e", 3, false),
        ("members_3_kill_e2e", 3, true),
    ];
    println!("cluster scenario: {STEPS} steps, 2 hybrid analyses, {ITERS} iters each");
    for (id, n, kill) in scenarios {
        let mut total_ns = 0u64;
        let mut degraded = 0usize;
        let mut dropped = 0usize;
        for iter in 0..ITERS {
            let (ns, deg, drop) = run_once(n, 42, iter, kill);
            total_ns += ns;
            degraded += deg;
            dropped += drop;
        }
        let mean_ns = total_ns / ITERS as u64;
        assert_eq!(dropped, 0, "{id}: a task was lost");
        println!(
            "  {id:>20}: {:8.2} ms/run  (degraded {degraded}, dropped {dropped})",
            mean_ns as f64 / 1e6
        );
        writeln!(
            out,
            "{{\"group\":\"cluster\",\"id\":\"{id}\",\"mean_ns\":{mean_ns},\"iters\":{ITERS}}}"
        )
        .expect("write row");
    }
    println!("rows appended to {}", json_path.display());
}
