//! `obs_report` — replay an observability journal into the paper-style
//! per-stage breakdown.
//!
//! ```text
//! obs_report target/journal.jsonl
//! ```
//!
//! Reads the JSONL journal a run wrote (`sitra-staged --journal`, or any
//! process that installed a journal sink), reconstructs the per-step and
//! per-(analysis, step) timings from the `driver`/`worker` span events,
//! and prints the same tables `fig6_breakdown` derives from live
//! `PipelineMetrics` — plus a per-analysis mean summary. Because kv
//! values are journaled with `Display` (exact for `f64`), the replayed
//! numbers match the live run bit-for-bit.

use sitra_bench::print_table;
use sitra_bench::replay::{read_journal, replay};

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let program = argv.first().map(String::as_str).unwrap_or("obs_report");
    let Some(path) = argv.get(1).filter(|a| !a.starts_with('-')) else {
        eprintln!("usage: {program} JOURNAL.jsonl");
        std::process::exit(2);
    };
    let events = match read_journal(std::path::Path::new(path)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{program}: {e}");
            std::process::exit(1);
        }
    };
    let r = replay(&events);
    println!(
        "{} event(s): {} step(s), {} stage row(s), {} other",
        events.len(),
        r.steps.len(),
        r.stages.len(),
        r.other_events
    );
    if r.degraded_stages() > 0 {
        println!(
            "{} task(s) on {} step(s) degraded to in-situ fallback (staging path failed)",
            r.degraded_stages(),
            r.degraded_steps()
        );
    }

    if !r.steps.is_empty() {
        let rows: Vec<Vec<String>> = r
            .steps
            .iter()
            .map(|s| {
                vec![
                    s.step.to_string(),
                    format!("{:.6}", s.sim_secs),
                    format!("{:.6}", s.ghost_secs),
                    format!("{:.6}", s.blocked_secs),
                ]
            })
            .collect();
        print_table(
            "per-step timings (s)",
            &[
                "step",
                "simulation",
                "ghost exchange",
                "blocked on analysis",
            ],
            &rows,
        );
    }

    if !r.stages.is_empty() {
        let rows: Vec<Vec<String>> = r
            .stages
            .iter()
            .map(|s| {
                vec![
                    s.analysis.clone(),
                    s.step.to_string(),
                    s.placement.clone(),
                    format!("{:.6}", s.insitu_secs),
                    human_bytes(s.movement_bytes),
                    format!("{:.6}", s.movement_sim_secs),
                    format!("{:.6}", s.aggregate_secs),
                    s.bucket
                        .map(|b| b.to_string())
                        .unwrap_or_else(|| "-".into()),
                    format!("{:.6}", s.latency_secs),
                    if s.degraded { "yes" } else { "-" }.to_string(),
                ]
            })
            .collect();
        print_table(
            "per-stage breakdown (the paper's Table II columns, per step)",
            &[
                "analysis",
                "step",
                "placement",
                "in-situ s",
                "movement",
                "movement sim s",
                "in-transit s",
                "bucket",
                "latency s",
                "degraded",
            ],
            &rows,
        );

        let means: Vec<Vec<String>> = r
            .analyses()
            .iter()
            .map(|a| {
                vec![
                    a.to_string(),
                    format!("{:.6}", r.mean_insitu_secs(a)),
                    format!("{:.6}", r.mean_aggregate_secs(a)),
                ]
            })
            .collect();
        print_table(
            "per-analysis means across steps (s)",
            &["analysis", "mean in-situ", "mean in-transit"],
            &means,
        );
    }
}
