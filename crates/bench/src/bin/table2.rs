//! Regenerates **Table II**: per-step timing and data movement of the
//! five analytics variants at the 4896-core configuration.
//!
//! The analytics kernels are the real implementations, timed on this
//! host over a calibration block, then projected to the paper's per-core
//! block size (100×49×43) and rank count (4480). The paper's values are
//! printed alongside for shape comparison.

use serde::Serialize;
use sitra_bench::{calibrate, paper, print_table, project_table2, write_json, MovementModel};

#[derive(Serialize)]
struct Output {
    rates: sitra_bench::KernelRates,
    rows: Vec<sitra_bench::Table2Row>,
}

fn main() {
    println!("calibrating kernels on a 96^3 proxy domain (2x2x2 ranks, 48^3 blocks) ...");
    let rates = calibrate([96, 96, 96], 42);
    println!("{rates:#?}");
    let rows = project_table2(&rates, &MovementModel::default());

    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper::TABLE2.iter())
        .map(|(r, p)| {
            vec![
                r.label.clone(),
                format!("{:.2} [{}]", r.insitu_secs, p.1),
                if r.movement_secs > 0.0 {
                    format!("{:.3} [{}]", r.movement_secs, p.2)
                } else {
                    "—".into()
                },
                if r.movement_mb > 0.0 {
                    format!("{:.2} [{}]", r.movement_mb, p.3)
                } else {
                    "—".into()
                },
                if r.intransit_secs > 0.0 {
                    format!("{:.2} [{}]", r.intransit_secs, p.4)
                } else {
                    "—".into()
                },
            ]
        })
        .collect();
    print_table(
        "Table II — analytics timing & movement at 4896 cores ([paper] values bracketed)",
        &[
            "variant",
            "in-situ (s)",
            "movement (s)",
            "movement (MB)",
            "in-transit (s)",
        ],
        &table,
    );

    // The qualitative claims the reproduction must preserve.
    let get = |label: &str| rows.iter().find(|r| r.label.contains(label)).unwrap();
    println!("\nshape checks:");
    println!(
        "  hybrid viz in-situ stage is {:.0}x cheaper than full in-situ rendering",
        get("in-situ visualization").insitu_secs / get("hybrid visualization").insitu_secs
    );
    println!(
        "  topology moves {:.1}x more intermediate data than hybrid stats",
        get("hybrid topology").movement_mb / get("hybrid descriptive").movement_mb
    );
    println!(
        "  topology in-transit stage is {:.0}x its in-situ stage (async, off the critical path)",
        get("hybrid topology").intransit_secs / get("hybrid topology").insitu_secs
    );
    write_json("table2", &Output { rates, rows });
}
