//! Agreement test: a journal replayed by `sitra_bench::replay` must
//! reproduce the `PipelineMetrics` of the live run *exactly* — same
//! steps, same per-(analysis, step) rows, bit-identical floats. This is
//! the contract `obs_report` relies on: kv values are journaled with
//! `Display`, which round-trips `f64`, so nothing is lost between the
//! driver's measurement and the offline report.

use sitra_bench::replay::replay;
use sitra_core::{run_pipeline, AnalysisSpec, HybridStats, HybridViz, PipelineConfig, Placement};
use sitra_mesh::BBox3;
use sitra_obs::VecSink;
use sitra_sim::{SimConfig, Simulation};
use sitra_viz::{TransferFunction, View, ViewAxis};
use std::sync::Arc;

const DIMS: [usize; 3] = [16, 12, 8];

fn config() -> PipelineConfig {
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, 3);
    cfg.analyses = vec![
        AnalysisSpec::new(
            Arc::new(HybridViz {
                stride: 2,
                view: View::full_res(BBox3::from_dims(DIMS), ViewAxis::Z, false),
                tf: TransferFunction::hot(250.0, 2500.0),
            }),
            Placement::Hybrid,
            1,
        ),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::InSitu, 1),
    ];
    cfg
}

#[test]
fn replayed_journal_agrees_with_live_pipeline_metrics() {
    // Isolated registry (serializes against other obs-global tests) and
    // a capturing sink instead of a journal file.
    let _obs = sitra_obs::isolate();
    let sink = Arc::new(VecSink::new());
    let previous = sitra_obs::install_sink(Some(sink.clone()));

    let mut sim = Simulation::new(SimConfig::small(DIMS, 7));
    let result = run_pipeline(&mut sim, &config()).expect("valid config");
    let events = sink.take();
    sitra_obs::install_sink(previous);

    assert_eq!(result.dropped_tasks, 0);
    let m = &result.metrics;
    let r = replay(&events);

    // Step rows: same count, and every field bit-identical.
    assert_eq!(r.steps.len(), m.steps.len());
    for (got, want) in r.steps.iter().zip(&m.steps) {
        assert_eq!(got.step, want.step);
        assert_eq!(got.sim_secs, want.sim_secs, "step {}", want.step);
        assert_eq!(got.ghost_secs, want.ghost_secs, "step {}", want.step);
        assert_eq!(got.blocked_secs, want.blocked_secs, "step {}", want.step);
    }

    // Stage rows: one per (analysis, step), every measured field
    // bit-identical to the live AnalysisMetrics row.
    assert_eq!(r.stages.len(), m.analyses.len());
    for want in &m.analyses {
        let got = r
            .stages
            .iter()
            .find(|s| s.analysis == want.analysis && s.step == want.step)
            .unwrap_or_else(|| panic!("no replayed row for {}@{}", want.analysis, want.step));
        let at = format!("{}@{}", want.analysis, want.step);
        assert_eq!(got.insitu_secs, want.insitu_secs, "{at}");
        assert_eq!(got.insitu_core_secs, want.insitu_core_secs, "{at}");
        assert_eq!(got.movement_bytes, want.movement_bytes, "{at}");
        assert_eq!(got.movement_sim_secs, want.movement_sim_secs, "{at}");
        assert_eq!(got.aggregate_secs, want.aggregate_secs, "{at}");
        assert_eq!(got.bucket, want.bucket, "{at}");
        assert_eq!(got.streamed, want.streamed, "{at}");
        assert_eq!(got.latency_secs, want.completion_latency_secs, "{at}");
        let expected_placement = if want.aggregated_in_transit {
            "hybrid"
        } else {
            "insitu"
        };
        assert_eq!(got.placement, expected_placement, "{at}");
    }

    // The derived means agree too (same arithmetic over the same rows).
    for analysis in r.analyses() {
        assert_eq!(
            r.mean_insitu_secs(analysis),
            m.mean_insitu_secs(analysis),
            "mean in-situ for {analysis}"
        );
    }
}
