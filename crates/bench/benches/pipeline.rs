//! Criterion benchmark of the complete live pipeline: per-step cost with
//! all five analysis variants registered, at laptop scale.

use criterion::{criterion_group, criterion_main, Criterion};
use sitra_core::{
    run_pipeline, AnalysisSpec, HybridStats, HybridTopology, HybridViz, InSituViz,
    LagrangianFlowMap, PipelineConfig, Placement,
};
use sitra_mesh::BBox3;
use sitra_sim::{SimConfig, Simulation, Variable};
use sitra_viz::{TransferFunction, View, ViewAxis};
use std::hint::black_box;
use std::sync::Arc;

const DIMS: [usize; 3] = [24, 20, 16];

fn config(steps: usize) -> PipelineConfig {
    let view = View::full_res(BBox3::from_dims(DIMS), ViewAxis::Z, false);
    let tf = TransferFunction::hot(250.0, 2500.0);
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, steps);
    cfg.analyses = vec![
        AnalysisSpec::new(
            Arc::new(InSituViz {
                view: view.clone(),
                tf: tf.clone(),
            }),
            Placement::InSitu,
            1,
        ),
        AnalysisSpec::new(
            Arc::new(HybridViz {
                stride: 2,
                view,
                tf,
            }),
            Placement::Hybrid,
            1,
        ),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::InSitu, 1)
            .with_label("stats-insitu"),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::Hybrid, 1)
            .with_label("stats-hybrid"),
        AnalysisSpec::new(Arc::new(HybridTopology::default()), Placement::Hybrid, 1),
    ];
    cfg
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("live_4ranks_5analyses_2steps", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::small(DIMS, 3));
            let result = run_pipeline(&mut sim, &config(2)).expect("valid config");
            assert_eq!(result.dropped_tasks, 0);
            black_box(result.outputs.len())
        })
    });
    // The Lagrangian flow-map workload in isolation: compute-heavy
    // in-situ advection with tiny in-transit intermediates — the
    // opposite cost shape from the viz/topology roster above. Gated in
    // CI with `bench_gate --floor pipeline/flowmap_4ranks_2steps:1` so
    // the row cannot silently vanish from the report.
    group.bench_function("flowmap_4ranks_2steps", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::small(DIMS, 3));
            let mut cfg = PipelineConfig::new([2, 2, 1], 2, 2);
            cfg.analyses = vec![AnalysisSpec::new(
                Arc::new(LagrangianFlowMap::default()),
                Placement::Hybrid,
                1,
            )];
            cfg.extra_variables = vec![Variable::VelU, Variable::VelV, Variable::VelW];
            let result = run_pipeline(&mut sim, &cfg).expect("valid config");
            assert_eq!(result.dropped_tasks, 0);
            black_box(result.outputs.len())
        })
    });
    group.bench_function("sim_only_2steps", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::small(DIMS, 3));
            let result = run_pipeline(&mut sim, &PipelineConfig::new([2, 2, 1], 1, 2))
                .expect("valid config");
            black_box(result.metrics.total_secs)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
