//! Criterion microbenchmarks of the analysis kernels: the in-situ stages
//! (render, down-sample, learn, subtree) and the in-transit stages
//! (coarse render, streaming glue, derive) on a fixed proxy block.

use criterion::{criterion_group, criterion_main, Criterion};
use sitra_mesh::{downsample, exchange_ghosts, Decomposition, ScalarField};
use sitra_sim::{SimConfig, Simulation, Variable};
use sitra_stats::MultiModel;
use sitra_topology::distributed::{glue_subtrees, in_situ_subtrees, BoundaryPolicy};
use sitra_topology::Connectivity;
use sitra_viz::{render_block, HybridRenderer, TransferFunction, View, ViewAxis};
use std::hint::black_box;

const DIMS: [usize; 3] = [48, 48, 48];

fn fixture() -> (ScalarField, TransferFunction) {
    let mut sim = Simulation::new(SimConfig::small(DIMS, 42));
    for _ in 0..3 {
        sim.advance();
    }
    let f = sim.block_field(Variable::Temperature, &sim.global());
    let (mn, mx) = f.min_max().unwrap();
    (f, TransferFunction::hot(mn, mx))
}

fn bench_insitu(c: &mut Criterion) {
    let (field, tf) = fixture();
    let g = field.bbox();
    let view = View::full_res(g, ViewAxis::Z, false);
    let mut group = c.benchmark_group("insitu");
    group.sample_size(10);
    group.bench_function("render_48cube", |b| {
        b.iter(|| black_box(render_block(&field, &g, &view, &tf)))
    });
    group.bench_function("downsample_48cube_s8", |b| {
        b.iter(|| black_box(downsample(&field, 8)))
    });
    group.bench_function("stats_learn_48cube", |b| {
        b.iter(|| black_box(MultiModel::learn(&[("T", field.as_slice())])))
    });
    let d = Decomposition::new(g, [2, 2, 2]);
    let blocks: Vec<ScalarField> = (0..8).map(|r| field.extract(&d.block(r))).collect();
    let (ghosted, _) = exchange_ghosts(&d, &blocks, 1);
    group.bench_function("topo_subtree_24cube", |b| {
        b.iter(|| {
            black_box(sitra_topology::distributed::rank_subtree(
                &d,
                0,
                &ghosted[0],
                Connectivity::Six,
                BoundaryPolicy::BoundaryMaxima,
            ))
        })
    });
    group.finish();
}

fn bench_intransit(c: &mut Criterion) {
    let (field, tf) = fixture();
    let g = field.bbox();
    let d = Decomposition::new(g, [2, 2, 2]);
    let blocks: Vec<ScalarField> = (0..8).map(|r| field.extract(&d.block(r))).collect();
    let (ghosted, _) = exchange_ghosts(&d, &blocks, 1);
    let subs = in_situ_subtrees(
        &d,
        &ghosted,
        Connectivity::Six,
        BoundaryPolicy::BoundaryMaxima,
    );
    let coarse: Vec<_> = (0..8)
        .map(|r| downsample(&field.extract(&d.block(r)), 4))
        .collect();
    let view = View::full_res(g, ViewAxis::Z, false);

    let mut group = c.benchmark_group("intransit");
    group.sample_size(10);
    group.bench_function("topo_glue_8_subtrees", |b| {
        b.iter(|| black_box(glue_subtrees(&subs)))
    });
    group.bench_function("hybrid_render_s4", |b| {
        let hr = HybridRenderer::new(coarse.clone());
        b.iter(|| black_box(hr.render(&view, &tf)))
    });
    let model = MultiModel::learn(
        &sitra_sim::ALL_VARIABLES
            .iter()
            .map(|v| (v.name(), field.as_slice()))
            .collect::<Vec<_>>(),
    );
    group.bench_function("stats_merge_derive_4480", |b| {
        // Merge 4480 partial models (the paper's rank count) + derive.
        b.iter(|| {
            let mut acc = MultiModel::default();
            for _ in 0..4480 {
                acc.merge(black_box(&model));
            }
            black_box(
                acc.vars
                    .iter()
                    .map(|(_, m)| sitra_stats::derive(m).unwrap())
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("proxy_step_48cube", |b| {
        let mut sim = Simulation::new(SimConfig::small(DIMS, 7));
        let g = sim.global();
        b.iter(|| {
            sim.advance();
            black_box(sim.block_field(Variable::Temperature, &g))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_insitu, bench_intransit, bench_sim);
criterion_main!(benches);
