//! Criterion benchmarks of the sitra-net socket transport and the
//! remote staging RPC layer: framed round-trips on both backends and
//! space put/get through a `SpaceServer`.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use sitra_dataspaces::remote::RemoteSpace;
use sitra_dataspaces::SpaceServer;
use sitra_mesh::BBox3;
use sitra_net::{connect, serve, Addr, Listener};
use std::hint::black_box;

fn echo_server(addr: &Addr) -> (sitra_net::ServerHandle, Addr) {
    let listener = Listener::bind(addr).expect("bind");
    let bound = listener.local_addr();
    let handle = serve(listener, |conn| {
        while let Ok(frame) = conn.recv() {
            if conn.send(frame).is_err() {
                break;
            }
        }
    });
    (handle, bound)
}

fn bench_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    group.sample_size(30);

    for (label, addr) in [
        ("inproc", "inproc://bench-echo".to_string()),
        ("tcp", "tcp://127.0.0.1:0".to_string()),
        // Unique per run: the rendezvous segment lives in /dev/shm.
        ("shm", format!("shm://bench-echo-{}", std::process::id())),
    ] {
        let (handle, bound) = echo_server(&addr.parse().expect("addr"));
        let conn = connect(&bound).expect("connect");

        group.bench_function(&format!("{label}_roundtrip_64B"), |b| {
            let payload = Bytes::from(vec![1u8; 64]);
            b.iter(|| {
                conn.send(payload.clone()).unwrap();
                black_box(conn.recv().unwrap());
            })
        });

        group.bench_function(&format!("{label}_roundtrip_1MiB"), |b| {
            let payload = Bytes::from(vec![2u8; 1 << 20]);
            b.iter(|| {
                conn.send(payload.clone()).unwrap();
                black_box(conn.recv().unwrap());
            })
        });

        conn.close();
        handle.shutdown();
    }
    group.finish();
}

fn bench_remote_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_space");
    group.sample_size(30);

    for (label, addr) in [
        ("inproc", "inproc://bench-space".to_string()),
        ("tcp", "tcp://127.0.0.1:0".to_string()),
        ("shm", format!("shm://bench-space-{}", std::process::id())),
    ] {
        let server = SpaceServer::start(&addr.parse().expect("addr"), 4).expect("start");
        let client = RemoteSpace::connect(&server.addr()).expect("connect");
        let bbox = BBox3::from_dims([16, 16, 16]);
        let payload = Bytes::from(vec![3u8; 16 * 16 * 16 * 8]);

        group.bench_function(&format!("{label}_put_32KiB"), |b| {
            let mut version = 0u64;
            b.iter(|| {
                version += 1;
                client.put("bench", version, bbox, payload.clone()).unwrap();
            })
        });

        client.put("read", 1, bbox, payload.clone()).unwrap();
        group.bench_function(&format!("{label}_get_32KiB"), |b| {
            b.iter(|| {
                black_box(client.get("read", 1, &bbox).unwrap());
            })
        });

        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_frames, bench_remote_space);
criterion_main!(benches);
