//! Criterion benchmarks of the data-movement substrates: DART transfers
//! on both paths and DataSpaces put/get/query.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use sitra_dart::{Event, Fabric, NetworkModel};
use sitra_dataspaces::DataSpaces;
use sitra_mesh::{BBox3, Decomposition, ScalarField};
use std::hint::black_box;
use std::time::Duration;

fn bench_dart(c: &mut Criterion) {
    let mut group = c.benchmark_group("dart");
    group.sample_size(20);
    let fabric = Fabric::new(NetworkModel::gemini());
    let a = fabric.register();
    let b = fabric.register();

    group.bench_function("smsg_roundtrip_64B", |bch| {
        let payload = Bytes::from(vec![1u8; 64]);
        bch.iter(|| {
            a.smsg_send(b.id(), payload.clone()).unwrap();
            black_box(b.poll_event(Duration::from_secs(5)).unwrap());
        })
    });

    group.bench_function("rdma_get_1MiB", |bch| {
        b.export(7, Bytes::from(vec![2u8; 1 << 20]));
        bch.iter(|| {
            a.rdma_get(b.id(), 7).unwrap();
            loop {
                match a.poll_event(Duration::from_secs(5)) {
                    Some(Event::GetComplete { data, .. }) => {
                        black_box(data);
                        break;
                    }
                    Some(_) => {}
                    None => panic!("timeout"),
                }
            }
        })
    });
    group.finish();
    fabric.shutdown();
}

fn bench_dataspaces(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataspaces");
    group.sample_size(20);
    let g = BBox3::from_dims([64, 64, 32]);
    let whole = ScalarField::from_fn(g, |p| (p[0] + p[1] * 2 + p[2] * 3) as f64);
    let d = Decomposition::new(g, [4, 4, 2]);

    group.bench_function("put_32_blocks", |bch| {
        bch.iter(|| {
            let ds = DataSpaces::new(4);
            for r in 0..d.rank_count() {
                ds.put_field("T", 1, &whole.extract(&d.block(r)));
            }
            black_box(ds.stats().resident_bytes)
        })
    });

    let ds = DataSpaces::new(4);
    for r in 0..d.rank_count() {
        ds.put_field("T", 1, &whole.extract(&d.block(r)));
    }
    group.bench_function("get_assembled_center_query", |bch| {
        let q = BBox3::new([16, 16, 8], [48, 48, 24]);
        bch.iter(|| black_box(ds.get_assembled("T", 1, &q, f64::NAN)))
    });
    group.finish();
}

criterion_group!(benches, bench_dart, bench_dataspaces);
criterion_main!(benches);
