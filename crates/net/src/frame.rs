//! The wire framing, factored out of the socket loop so it is a pure,
//! fuzzable state machine: 4-byte little-endian length prefix, then
//! the payload, with frames arriving in arbitrarily batched or
//! coalesced reads.
//!
//! The decoder is **zero-copy for coalesced frames**: a frame lying
//! entirely inside one fed chunk is sliced out of it (sharing the
//! chunk's allocation), never copied. A frame spanning chunks is
//! assembled into an exact-size buffer — one copy, no reallocation —
//! and a hostile length prefix is rejected *before* any allocation.

use crate::{NetError, MAX_FRAME_LEN};
use bytes::Bytes;

/// Length-prefix size in bytes.
pub const HEADER_LEN: usize = 4;

/// Encode the length prefix for a payload of `len` bytes.
///
/// # Panics
/// Panics when `len` exceeds [`MAX_FRAME_LEN`] — callers validate
/// before framing.
pub fn encode_header(len: usize) -> [u8; HEADER_LEN] {
    assert!(len <= MAX_FRAME_LEN, "frame of {len} bytes exceeds cap");
    (len as u32).to_le_bytes()
}

/// A frame mid-assembly: spans chunk boundaries, so it gets its own
/// exact-size buffer.
struct Partial {
    buf: Vec<u8>,
    /// Total payload length (== final `buf.len()`).
    want: usize,
    /// Bytes of `buf`'s allocation known to be initialized; lets
    /// [`FrameDecoder::pending_space`] zero the tail exactly once.
    init: usize,
}

/// Incremental frame decoder. Feed it reads as they arrive; it yields
/// complete frames in order and fails exactly once on a corrupt
/// length prefix (after which the stream is desynchronized and the
/// decoder refuses further input).
#[derive(Default)]
pub struct FrameDecoder {
    /// Partially received header bytes (< 4).
    header: [u8; HEADER_LEN],
    header_len: usize,
    partial: Option<Partial>,
    poisoned: bool,
}

impl FrameDecoder {
    /// A fresh decoder at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Feed one read's worth of bytes; complete frames are appended to
    /// `out`. Frames fully contained in `chunk` share its allocation.
    pub fn feed(&mut self, chunk: Bytes, out: &mut Vec<Bytes>) -> Result<(), NetError> {
        if self.poisoned {
            return Err(NetError::FrameTooLarge(0));
        }
        let mut cursor = chunk;
        while !cursor.is_empty() {
            // Continue an in-flight spanning frame first.
            if let Some(partial) = &mut self.partial {
                let take = (partial.want - partial.buf.len()).min(cursor.len());
                partial.buf.extend_from_slice(&cursor.as_slice()[..take]);
                partial.init = partial.init.max(partial.buf.len());
                cursor.advance_by(take);
                if partial.buf.len() == partial.want {
                    let done = self.partial.take().expect("partial present");
                    out.push(Bytes::from(done.buf));
                }
                continue;
            }
            // Assemble the 4-byte header (it too can split across reads).
            if self.header_len < HEADER_LEN {
                let take = (HEADER_LEN - self.header_len).min(cursor.len());
                self.header[self.header_len..self.header_len + take]
                    .copy_from_slice(&cursor.as_slice()[..take]);
                self.header_len += take;
                cursor.advance_by(take);
                if self.header_len < HEADER_LEN {
                    return Ok(());
                }
            }
            let len = u32::from_le_bytes(self.header) as usize;
            if len > MAX_FRAME_LEN {
                // Reject before allocating; the stream is now desynced
                // for good.
                self.poisoned = true;
                return Err(NetError::FrameTooLarge(len));
            }
            self.header_len = 0;
            if cursor.len() >= len {
                // Whole payload already here: zero-copy slice.
                out.push(cursor.slice(0..len));
                cursor.advance_by(len);
            } else {
                // Spans reads: exact-size assembly buffer.
                let mut buf = Vec::with_capacity(len);
                buf.extend_from_slice(cursor.as_slice());
                cursor.advance_by(cursor.len());
                let init = buf.len();
                self.partial = Some(Partial {
                    buf,
                    want: len,
                    init,
                });
            }
        }
        Ok(())
    }

    /// Direct-fill window for a large spanning frame: the unfilled tail
    /// of the assembly buffer, so a reader can `read(2)` straight into
    /// it and skip the scratch-buffer copy. `None` when no spanning
    /// frame is in flight (or it is nearly done).
    pub fn pending_space(&mut self) -> Option<&mut [u8]> {
        const DIRECT_MIN: usize = 4096;
        let partial = self.partial.as_mut()?;
        let filled = partial.buf.len();
        if partial.want - filled < DIRECT_MIN {
            return None;
        }
        // Zero the uninitialized tail exactly once so the spare region
        // can be handed out as `&mut [u8]`.
        if partial.init < partial.want {
            partial.buf.resize(partial.want, 0);
            partial.buf.truncate(filled);
            partial.init = partial.want;
        }
        let spare = partial.buf.spare_capacity_mut();
        // Safety: every byte of the spare region was initialized above.
        Some(unsafe { &mut *(spare as *mut [std::mem::MaybeUninit<u8>] as *mut [u8]) })
    }

    /// Record `n` bytes read directly into [`FrameDecoder::pending_space`];
    /// pushes the frame once complete.
    pub fn commit_direct(&mut self, n: usize, out: &mut Vec<Bytes>) {
        let partial = self.partial.as_mut().expect("no pending frame");
        let filled = partial.buf.len();
        assert!(filled + n <= partial.want, "direct fill overruns frame");
        // Safety: the bytes were just written by the caller (and the
        // region was zero-initialized by `pending_space`).
        unsafe { partial.buf.set_len(filled + n) };
        if partial.buf.len() == partial.want {
            let done = self.partial.take().expect("partial present");
            out.push(Bytes::from(done.buf));
        }
    }

    /// True at a clean frame boundary (no partial header or payload).
    pub fn is_at_boundary(&self) -> bool {
        !self.poisoned && self.header_len == 0 && self.partial.is_none()
    }
}

/// Tiny extension: advance a `Bytes` cursor in place.
trait AdvanceBy {
    fn advance_by(&mut self, n: usize);
}

impl AdvanceBy for Bytes {
    fn advance_by(&mut self, n: usize) {
        let _ = self.split_to(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut v = encode_header(payload.len()).to_vec();
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn coalesced_frames_decode_zero_copy() {
        let mut wire = frame(b"alpha");
        wire.extend_from_slice(&frame(b""));
        wire.extend_from_slice(&frame(b"beta"));
        let chunk = Bytes::from(wire);
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        dec.feed(chunk.clone(), &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], b"alpha"[..]);
        assert_eq!(out[1], b""[..]);
        assert_eq!(out[2], b"beta"[..]);
        // Zero-copy: the first frame's bytes live inside the fed chunk.
        assert_eq!(out[0].as_ptr(), chunk.as_slice()[HEADER_LEN..].as_ptr());
        assert!(dec.is_at_boundary());
    }

    #[test]
    fn byte_by_byte_arrival_decodes_identically() {
        let mut wire = frame(b"drip-fed payload");
        wire.extend_from_slice(&frame(&[7u8; 300]));
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in wire {
            dec.feed(Bytes::from(vec![b]), &mut out).unwrap();
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], b"drip-fed payload"[..]);
        assert_eq!(out[1], vec![7u8; 300]);
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocating() {
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        let err = dec.feed(Bytes::from(u32::MAX.to_le_bytes().to_vec()), &mut out);
        assert!(matches!(err, Err(NetError::FrameTooLarge(_))));
        assert!(out.is_empty());
        // Poisoned: refuses further input rather than resyncing wrong.
        assert!(dec.feed(Bytes::from_static(b"junk"), &mut out).is_err());
    }

    #[test]
    fn direct_fill_path_assembles_large_frames() {
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let wire = frame(&payload);
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        // First read delivers the header + a sliver.
        dec.feed(Bytes::from(wire[..HEADER_LEN + 100].to_vec()), &mut out)
            .unwrap();
        assert!(out.is_empty());
        let mut offset = HEADER_LEN + 100;
        while out.is_empty() {
            let space = dec.pending_space().expect("large frame pending");
            let n = space.len().min(wire.len() - offset).min(8192);
            space[..n].copy_from_slice(&wire[offset..offset + n]);
            offset += n;
            dec.commit_direct(n, &mut out);
            if out.is_empty() && wire.len() - offset < 4096 {
                // Tail smaller than the direct threshold: feed normally.
                dec.feed(Bytes::from(wire[offset..].to_vec()), &mut out)
                    .unwrap();
                break;
            }
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_slice(), payload.as_slice());
    }
}
