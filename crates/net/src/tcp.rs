//! Async TCP connection internals: a reader task and a writer task per
//! connection, both on the shared [`crate::rt`] runtime, bridged to
//! callers over hybrid channels.
//!
//! The writer is the single owner of the socket's send side. Everything
//! a connection wants written goes through its bounded queue — frames,
//! fault-injected holds, and the close itself — which gives three
//! properties for free:
//!
//! * **Batching**: whatever has accumulated in the queue when the
//!   writer wakes goes out as one vectored write (`[hdr, payload,
//!   hdr, payload, ...]`), so bursts of small frames coalesce into a
//!   single syscall without any Nagle-style delay.
//! * **Backpressure**: the queue is bounded; senders wait (blocking or
//!   async) when the peer falls behind, instead of buffering without
//!   limit.
//! * **Flush-then-close**: `Close` is an ordinary queue item, so every
//!   frame sent before `close()` reaches the wire before the FIN.
//!
//! The reader owns the receive side: it awaits readiness, feeds raw
//! reads through the [`crate::frame::FrameDecoder`], and hands whole
//! frames to a bounded inbound channel. Not draining that channel
//! stops the reads, which turns consumer backpressure into TCP window
//! backpressure end to end. Large spanning frames are read directly
//! into their exact-size buffer via the decoder's direct-fill window,
//! skipping the scratch copy.

use crate::frame::{encode_header, FrameDecoder, HEADER_LEN};
use crate::NetError;
use bytes::Bytes;
use std::io::{self, IoSlice};
use std::net::Shutdown;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::net::TcpStream;
use tokio::sync::mpsc;

/// Outbound queue depth (frames). Bounded: senders feel backpressure.
const WRITE_QUEUE: usize = 256;
/// Inbound queue depth (frames). Bounded: slow consumers stall reads.
const READ_QUEUE: usize = 256;
/// Scratch read size for the coalescing read path.
const READ_CHUNK: usize = 16 * 1024;
/// IOV_MAX on Linux: cap a single vectored write's slice count.
const MAX_SLICES: usize = 1024;

/// One unit of work for the writer task.
pub(crate) enum WriteItem {
    /// Write a frame (header + payload).
    Frame(Bytes),
    /// Fault injection `Delay`: flush everything queued so far, hold
    /// the line until `deadline`, then write this frame. Later frames
    /// queue *behind* the hold — an in-order stall, not a reorder.
    Held(Bytes, Instant),
    /// Flush, then FIN both directions.
    Close,
}

/// The channel ends a connection facade needs to drive one TCP link.
pub(crate) struct TcpParts {
    pub(crate) outbound: mpsc::Sender<WriteItem>,
    pub(crate) inbound: mpsc::Receiver<Result<Bytes, NetError>>,
    /// Set by `close()`; the writer consults it to cancel parked holds.
    pub(crate) closed: Arc<AtomicBool>,
    /// The stream itself, for a direct shutdown when the writer queue
    /// is wedged (stalled peer) and `Close` cannot be enqueued.
    pub(crate) stream: Arc<TcpStream>,
}

/// Adopt a connected std stream: register it with the shared runtime
/// and spawn its reader/writer task pair.
pub(crate) fn spawn_io(std: std::net::TcpStream) -> io::Result<TcpParts> {
    let _ = std.set_nodelay(true);
    let handle = crate::rt::handle();
    let stream = Arc::new(TcpStream::from_std_on(&handle, std)?);
    let (out_tx, out_rx) = mpsc::channel(WRITE_QUEUE);
    let (in_tx, in_rx) = mpsc::channel(READ_QUEUE);
    let closed = Arc::new(AtomicBool::new(false));
    handle.spawn(reader(Arc::clone(&stream), in_tx));
    handle.spawn(writer(Arc::clone(&stream), out_rx, Arc::clone(&closed)));
    Ok(TcpParts {
        outbound: out_tx,
        inbound: in_rx,
        closed,
        stream,
    })
}

/// An async connection: the same reader/writer task machinery as the
/// blocking [`crate::Connection`], exposed to async callers directly.
/// One task can hold thousands of these — the soak harness drives 10k
/// concurrently from a single process.
///
/// TCP only (the in-process and shared-memory backends are served by
/// the blocking facade), and the fault-injection seam is not consulted
/// on this path: it exists for load generation, not chaos testing.
pub struct AsyncConnection {
    outbound: mpsc::Sender<WriteItem>,
    inbound: mpsc::Receiver<Result<Bytes, NetError>>,
}

impl AsyncConnection {
    /// Adopt an already connected std TCP stream.
    pub fn from_std(stream: std::net::TcpStream) -> Result<AsyncConnection, NetError> {
        let parts = spawn_io(stream)?;
        Ok(AsyncConnection {
            outbound: parts.outbound,
            inbound: parts.inbound,
        })
    }

    /// Dial a `tcp://` address (blocking dial, async I/O thereafter).
    pub fn connect(addr: &crate::Addr) -> Result<AsyncConnection, NetError> {
        match addr {
            crate::Addr::Tcp(sa) => match std::net::TcpStream::connect(sa) {
                Ok(s) => AsyncConnection::from_std(s),
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                    Err(NetError::Refused(sa.to_string()))
                }
                Err(e) => Err(e.into()),
            },
            other => Err(NetError::BadAddr(format!(
                "async connections are tcp-only, got `{other}`"
            ))),
        }
    }

    /// Queue one frame; waits only when the writer queue is full.
    pub async fn send(&self, payload: Bytes) -> Result<(), NetError> {
        if payload.len() > crate::MAX_FRAME_LEN {
            return Err(NetError::FrameTooLarge(payload.len()));
        }
        self.outbound
            .send(WriteItem::Frame(payload))
            .await
            .map_err(|_| NetError::Closed)
    }

    /// Await the next frame.
    pub async fn recv(&mut self) -> Result<Bytes, NetError> {
        match self.inbound.recv().await {
            Some(result) => result,
            None => Err(NetError::Closed),
        }
    }

    /// Flush queued frames, then close both directions.
    pub fn close(&self) {
        let _ = self.outbound.try_send(WriteItem::Close);
    }
}

/// Reader task body: readiness loop -> decoder -> inbound channel.
/// Exits (dropping the channel sender, which surfaces as `Closed` to
/// the consumer) on EOF, on local close, or after reporting an error.
async fn reader(stream: Arc<TcpStream>, tx: mpsc::Sender<Result<Bytes, NetError>>) {
    let mut dec = FrameDecoder::new();
    let mut frames: Vec<Bytes> = Vec::new();
    'io: loop {
        // Direct-fill: a large frame mid-assembly reads straight into
        // its own buffer, no scratch hop.
        while let Some(space) = dec.pending_space() {
            match stream.try_read(space) {
                Ok(0) => break 'io,
                Ok(n) => dec.commit_direct(n, &mut frames),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !frames.is_empty() {
                        break;
                    }
                    if stream.readable().await.is_err() {
                        break 'io;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(NetError::from(e))).await;
                    return;
                }
            }
        }
        if frames.is_empty() {
            let mut buf = vec![0u8; READ_CHUNK];
            match stream.try_read(&mut buf) {
                Ok(0) => break 'io,
                Ok(n) => {
                    buf.truncate(n);
                    // `Bytes::from(Vec)` adopts the allocation; frames
                    // wholly inside this read are sliced, not copied.
                    if let Err(e) = dec.feed(Bytes::from(buf), &mut frames) {
                        let _ = tx.send(Err(e)).await;
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if stream.readable().await.is_err() {
                        break 'io;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(NetError::from(e))).await;
                    return;
                }
            }
        }
        for frame in frames.drain(..) {
            if tx.send(Ok(frame)).await.is_err() {
                // Consumer hung up; stop reading.
                return;
            }
        }
    }
    // EOF (or torn stream): deliver any frame completed by the final
    // read, then drop `tx` so the consumer observes `Closed`.
    for frame in frames.drain(..) {
        if tx.send(Ok(frame)).await.is_err() {
            return;
        }
    }
}

/// Writer task body: drain the queue, batch, write vectored.
async fn writer(
    stream: Arc<TcpStream>,
    mut rx: mpsc::Receiver<WriteItem>,
    closed: Arc<AtomicBool>,
) {
    let mut batch: Vec<Bytes> = Vec::new();
    loop {
        let first = match rx.recv().await {
            Some(item) => item,
            None => {
                // Facade dropped without close(); still send FIN.
                let _ = stream.shutdown_std(Shutdown::Write);
                return;
            }
        };
        let mut items = vec![first];
        while let Ok(item) = rx.try_recv() {
            items.push(item);
        }
        let mut do_close = false;
        for item in items {
            match item {
                WriteItem::Frame(b) => batch.push(b),
                WriteItem::Held(b, deadline) => {
                    // Everything queued before the hold goes out first.
                    if flush(&stream, &mut batch).await.is_err() {
                        return;
                    }
                    tokio::time::sleep_until(deadline).await;
                    if closed.load(Ordering::Acquire) {
                        // close() cancels parked frames.
                        continue;
                    }
                    batch.push(b);
                }
                WriteItem::Close => {
                    do_close = true;
                    break;
                }
            }
        }
        if flush(&stream, &mut batch).await.is_err() {
            return;
        }
        if do_close {
            let _ = stream.shutdown_std(Shutdown::Both);
            return;
        }
    }
}

/// Write the whole batch as (a minimal number of) vectored writes.
async fn flush(stream: &TcpStream, batch: &mut Vec<Bytes>) -> io::Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let headers: Vec<[u8; HEADER_LEN]> = batch.iter().map(|b| encode_header(b.len())).collect();
    let total: usize = batch.iter().map(|b| HEADER_LEN + b.len()).sum();
    let mut written = 0usize;
    while written < total {
        // Rebuild the slice list past what has already gone out; cheap
        // relative to the syscall it feeds.
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity((batch.len() * 2).min(MAX_SLICES));
        let mut skip = written;
        'build: for (i, b) in batch.iter().enumerate() {
            for part in [&headers[i][..], b.as_slice()] {
                if skip >= part.len() {
                    skip -= part.len();
                    continue;
                }
                slices.push(IoSlice::new(&part[skip..]));
                skip = 0;
                if slices.len() == MAX_SLICES {
                    break 'build;
                }
            }
        }
        match stream.try_write_vectored(&slices) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => stream.writable().await?,
            Err(e) => return Err(e),
        }
    }
    batch.clear();
    Ok(())
}
