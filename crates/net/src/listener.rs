//! Listening sockets: the in-process registry and the TCP acceptor,
//! plus [`serve`] — the threaded acceptor/dispatcher servers build on.

use crate::conn::Connection;
use crate::{Addr, NetError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-global registry of in-proc listeners: name → channel on
/// which the listener receives the server half of each new connection.
fn registry() -> &'static Mutex<HashMap<String, Sender<Connection>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Sender<Connection>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

pub(crate) fn inproc_connect(name: &str) -> Result<Connection, NetError> {
    // A fault injector can refuse the dial outright — a partition.
    if !crate::fault::connect_allowed(&format!("inproc://{name}")) {
        return Err(NetError::Refused(format!("inproc://{name}")));
    }
    let guard = registry().lock();
    let tx = guard
        .get(name)
        .ok_or_else(|| NetError::Refused(format!("inproc://{name}")))?;
    let (client, server) = Connection::inproc_pair();
    tx.send(server)
        .map_err(|_| NetError::Refused(format!("inproc://{name}")))?;
    Ok(client)
}

enum ListenerInner {
    InProc {
        name: String,
        rx: Receiver<Connection>,
    },
    Tcp(TcpListener),
    // Arc so `serve` can keep a shutdown handle (marking the control
    // segment closed wakes a blocked accept) after the listener moves
    // into the acceptor thread.
    Shm(Arc<crate::shm::ShmListener>),
}

/// A bound listening endpoint producing [`Connection`]s.
pub struct Listener {
    inner: ListenerInner,
}

impl Listener {
    /// Bind to `addr`. For `tcp://host:0` the OS picks a free port —
    /// read it back with [`Listener::local_addr`].
    pub fn bind(addr: &Addr) -> Result<Listener, NetError> {
        match addr {
            Addr::InProc(name) => {
                let mut guard = registry().lock();
                if guard.contains_key(name) {
                    return Err(NetError::BadAddr(format!("inproc://{name} already bound")));
                }
                let (tx, rx) = unbounded();
                guard.insert(name.clone(), tx);
                Ok(Listener {
                    inner: ListenerInner::InProc {
                        name: name.clone(),
                        rx,
                    },
                })
            }
            Addr::Tcp(sa) => {
                let l = TcpListener::bind(sa)?;
                Ok(Listener {
                    inner: ListenerInner::Tcp(l),
                })
            }
            Addr::Shm(name) => {
                let l = crate::shm::ShmListener::bind(name)?;
                Ok(Listener {
                    inner: ListenerInner::Shm(Arc::new(l)),
                })
            }
        }
    }

    /// The bound address (with the OS-assigned port for TCP).
    pub fn local_addr(&self) -> Addr {
        match &self.inner {
            ListenerInner::InProc { name, .. } => Addr::InProc(name.clone()),
            ListenerInner::Tcp(l) => Addr::Tcp(l.local_addr().expect("bound socket has addr")),
            ListenerInner::Shm(l) => Addr::Shm(l.name().to_string()),
        }
    }

    /// Accept the next inbound connection, blocking. While a fault
    /// injector partitions this endpoint, inbound connections are
    /// closed on arrival instead of being handed out (the accept keeps
    /// blocking for the next one).
    pub fn accept(&self) -> Result<Connection, NetError> {
        let local = self.local_addr().to_string();
        loop {
            let conn = match &self.inner {
                ListenerInner::InProc { rx, .. } => rx.recv().map_err(|_| NetError::Closed)?,
                ListenerInner::Tcp(l) => {
                    let (stream, _) = l.accept()?;
                    Connection::from_tcp(stream)?
                }
                ListenerInner::Shm(l) => {
                    let io = l.accept()?;
                    Connection::from_shm(io, format!("shm://{}", l.name()))
                }
            };
            if crate::fault::connect_allowed(&local) {
                return Ok(conn);
            }
            conn.close();
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let ListenerInner::InProc { name, .. } = &self.inner {
            registry().lock().remove(name);
        }
    }
}

/// Handle to a running [`serve`] loop; dropping it does NOT stop the
/// server — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: Addr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    /// Shutdown handle for an shm listener (the listener itself lives
    /// in the acceptor thread).
    shm: Option<Arc<crate::shm::ShmListener>>,
}

impl ServerHandle {
    /// Where the server is listening.
    pub fn addr(&self) -> Addr {
        self.addr.clone()
    }

    /// Stop accepting and join the acceptor thread. Connections already
    /// dispatched run to completion on their own threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake a blocking accept.
        match &self.addr {
            Addr::InProc(name) => {
                registry().lock().remove(name);
            }
            Addr::Tcp(sa) => {
                let _ = TcpStream::connect(sa);
            }
            Addr::Shm(_) => {
                if let Some(l) = &self.shm {
                    l.shutdown();
                }
            }
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Spawn the acceptor/dispatcher pattern: an acceptor thread takes
/// inbound connections from `listener` and hands each to `handler` on
/// its own named thread. Returns immediately.
pub fn serve<F>(listener: Listener, handler: F) -> ServerHandle
where
    F: Fn(Connection) + Send + Sync + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr();
    let shm = match &listener.inner {
        ListenerInner::Shm(l) => Some(Arc::clone(l)),
        _ => None,
    };
    let stop2 = Arc::clone(&stop);
    let handler = Arc::new(handler);
    let acceptor = std::thread::Builder::new()
        .name("net-acceptor".into())
        .spawn(move || {
            let mut conn_no = 0u64;
            while !stop2.load(Ordering::SeqCst) {
                let conn = match listener.accept() {
                    Ok(c) => c,
                    Err(_) => break, // listener torn down
                };
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                conn_no += 1;
                let h = Arc::clone(&handler);
                let _ = std::thread::Builder::new()
                    .name(format!("net-conn-{conn_no}"))
                    .spawn(move || h(conn));
            }
        })
        .expect("spawn acceptor");
    ServerHandle {
        stop,
        addr,
        acceptor: Some(acceptor),
        shm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connect, Backoff};
    use bytes::Bytes;
    use std::time::Duration;

    #[test]
    fn inproc_bind_conflict() {
        let a: Addr = "inproc://conflict".parse().unwrap();
        let _l = Listener::bind(&a).unwrap();
        assert!(matches!(Listener::bind(&a), Err(NetError::BadAddr(_))));
    }

    #[test]
    fn unbinding_refuses_new_connections() {
        let a: Addr = "inproc://transient".parse().unwrap();
        {
            let l = Listener::bind(&a).unwrap();
            drop(l);
        }
        assert!(matches!(connect(&a), Err(NetError::Refused(_))));
    }

    #[test]
    fn serve_echo_inproc_many_clients() {
        let a: Addr = "inproc://echo-farm".parse().unwrap();
        let l = Listener::bind(&a).unwrap();
        let server = serve(l, |conn| {
            while let Ok(m) = conn.recv() {
                if conn.send(m).is_err() {
                    break;
                }
            }
        });
        let clients: Vec<_> = (0..6)
            .map(|i| {
                let a = a.clone();
                std::thread::spawn(move || {
                    let c = connect(&a).unwrap();
                    for round in 0..20u32 {
                        let msg = Bytes::from(format!("client-{i}-{round}"));
                        c.send(msg.clone()).unwrap();
                        assert_eq!(c.recv().unwrap(), msg);
                    }
                    c.stats().frames_recv
                })
            })
            .collect();
        for h in clients {
            assert_eq!(h.join().unwrap(), 20);
        }
        server.shutdown();
        assert!(matches!(connect(&a), Err(NetError::Refused(_))));
    }

    #[test]
    fn serve_echo_shm() {
        let bind: Addr = format!("shm://echo-{}", std::process::id())
            .parse()
            .unwrap();
        let l = Listener::bind(&bind).unwrap();
        let server = serve(l, |conn| {
            while let Ok(m) = conn.recv() {
                if conn.send(m).is_err() {
                    break;
                }
            }
        });
        let addr = server.addr();
        let clients: Vec<_> = (0..4)
            .map(|i| {
                let a = addr.clone();
                std::thread::spawn(move || {
                    let c = connect(&a).unwrap();
                    for round in 0..10u32 {
                        let msg = Bytes::from(format!("shm-client-{i}-{round}"));
                        c.send(msg.clone()).unwrap();
                        assert_eq!(c.recv_timeout(Duration::from_secs(5)).unwrap(), msg);
                    }
                    c.close();
                })
            })
            .collect();
        for h in clients {
            h.join().unwrap();
        }
        server.shutdown();
        assert!(matches!(connect(&addr), Err(NetError::Refused(_))));
    }

    #[test]
    fn serve_echo_tcp() {
        let bind: Addr = "tcp://127.0.0.1:0".parse().unwrap();
        let l = Listener::bind(&bind).unwrap();
        let server = serve(l, |conn| {
            while let Ok(m) = conn.recv() {
                if conn.send(m).is_err() {
                    break;
                }
            }
        });
        let addr = server.addr();
        let c = crate::connect_retry(&addr, &Backoff::default()).unwrap();
        c.send(Bytes::from_static(b"over tcp")).unwrap();
        assert_eq!(
            c.recv_timeout(Duration::from_secs(5)).unwrap(),
            Bytes::from_static(b"over tcp")
        );
        server.shutdown();
    }
}
