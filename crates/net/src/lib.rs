//! # sitra-net
//!
//! A framed, connection-oriented message transport for the remote
//! staging deployment mode: the same staging framework the paper runs
//! over DART/Gemini, carried here over plain sockets so the staging
//! area can live in a different process (or machine) from the
//! simulation.
//!
//! Three pluggable backends behind one [`Connection`] / [`Listener`]
//! API:
//!
//! * **`inproc://name`** — crossbeam channels through a process-global
//!   registry. Deterministic, zero-syscall; what unit tests use.
//! * **`tcp://host:port`** — sockets driven by an async reactor: each
//!   connection is a reader task plus a writer task on one shared
//!   runtime, frames are [`bytes::Bytes`] end to end (zero-copy slices
//!   out of coalesced reads), and bursts of small frames batch into
//!   single vectored writes. The blocking [`Connection`] API is a thin
//!   facade over those tasks.
//! * **`shm://name`** — shared-memory FIFOs through `/dev/shm`, the
//!   same-node fast path (the stand-in for the paper's DART RDMA
//!   transport): a descriptor ring plus a block-store arena per
//!   direction, synchronized with futexes, no sockets at all.
//!
//! Every connection carries [`ConnStats`] counters (frames/bytes in
//! each direction), and [`connect_retry`] layers bounded
//! exponential-backoff reconnection over any backend — the
//! mechanism remote staging clients use to survive a dropped
//! connection without losing tasks (the server side requeues any task
//! whose hand-off was never acknowledged).

mod conn;
pub mod fault;
pub mod frame;
mod listener;
pub mod rt;
mod shm;
mod tcp;

pub use conn::{ConnStats, Connection, MAX_FRAME_LEN};
pub use fault::{install_fault_injector, FaultAction, FaultInjector};
pub use listener::{serve, Listener, ServerHandle};
pub use tcp::AsyncConnection;

use std::net::SocketAddr;
use std::time::Duration;

/// Transport-layer failure.
#[derive(Debug)]
pub enum NetError {
    /// Peer closed the connection (or it was closed locally).
    Closed,
    /// A timed operation elapsed without completing.
    Timeout,
    /// A frame exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// An address string did not parse.
    BadAddr(String),
    /// No listener at the target address.
    Refused(String),
    /// Underlying socket error.
    Io(std::io::Error),
}

impl NetError {
    /// Whether the failure is transient: reconnecting (or simply
    /// retrying) can succeed. A closed or refused connection may come
    /// back (server restart), and a timeout may clear; a bad address or
    /// an oversized frame will fail identically every time.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Closed | NetError::Timeout | NetError::Refused(_) | NetError::Io(_) => true,
            NetError::FrameTooLarge(_) | NetError::BadAddr(_) => false,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Closed => write!(f, "connection closed"),
            NetError::Timeout => write!(f, "operation timed out"),
            NetError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds the frame cap"),
            NetError::BadAddr(s) => write!(f, "unparseable address `{s}`"),
            NetError::Refused(s) => write!(f, "connection to `{s}` refused"),
            NetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::NotConnected => NetError::Closed,
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout,
            _ => NetError::Io(e),
        }
    }
}

/// A transport address: which backend, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// In-process endpoint named in the global registry.
    InProc(String),
    /// TCP socket address.
    Tcp(SocketAddr),
    /// Shared-memory endpoint named in `/dev/shm` (same-node only).
    Shm(String),
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::InProc(name) => write!(f, "inproc://{name}"),
            Addr::Tcp(sa) => write!(f, "tcp://{sa}"),
            Addr::Shm(name) => write!(f, "shm://{name}"),
        }
    }
}

impl std::str::FromStr for Addr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, NetError> {
        if let Some(name) = s.strip_prefix("inproc://") {
            if name.is_empty() {
                return Err(NetError::BadAddr(s.to_string()));
            }
            return Ok(Addr::InProc(name.to_string()));
        }
        if let Some(sa) = s.strip_prefix("tcp://") {
            return sa
                .parse::<SocketAddr>()
                .map(Addr::Tcp)
                .map_err(|_| NetError::BadAddr(s.to_string()));
        }
        if let Some(name) = s.strip_prefix("shm://") {
            if name.is_empty() {
                return Err(NetError::BadAddr(s.to_string()));
            }
            return Ok(Addr::Shm(name.to_string()));
        }
        Err(NetError::BadAddr(s.to_string()))
    }
}

/// Bounded exponential backoff policy for [`connect_retry`].
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Ceiling on any single delay.
    pub max: Duration,
    /// Total connection attempts (>= 1).
    pub attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(10),
            max: Duration::from_millis(500),
            attempts: 8,
        }
    }
}

/// Open a connection to `addr` with a single attempt.
pub fn connect(addr: &Addr) -> Result<Connection, NetError> {
    match addr {
        Addr::InProc(name) => listener::inproc_connect(name),
        Addr::Tcp(sa) => conn::tcp_connect(*sa),
        Addr::Shm(name) => conn::shm_connect(name),
    }
}

/// Open a connection, retrying with bounded exponential backoff
/// (doubling from `initial` up to `max`, at most `attempts` tries).
///
/// Reconnection is observable: every failed attempt increments
/// `net.connect.failures{peer=…}`, and a success after at least one
/// failure increments `net.connect.reconnects{peer=…}` — the signal a
/// live deployment watches to spot flapping staging links.
pub fn connect_retry(addr: &Addr, backoff: &Backoff) -> Result<Connection, NetError> {
    let reg = sitra_obs::global();
    let failures = reg.counter(&format!("net.connect.failures{{peer={addr}}}"));
    let reconnects = reg.counter(&format!("net.connect.reconnects{{peer={addr}}}"));
    let mut delay = backoff.initial;
    let mut last = NetError::Refused(addr.to_string());
    for attempt in 0..backoff.attempts.max(1) {
        match connect(addr) {
            Ok(c) => {
                if attempt > 0 {
                    reconnects.inc();
                }
                return Ok(c);
            }
            Err(e) => {
                failures.inc();
                last = e;
            }
        }
        if attempt + 1 < backoff.attempts.max(1) {
            std::thread::sleep(delay);
            delay = (delay * 2).min(backoff.max);
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn addr_parse_roundtrip() {
        let a: Addr = "inproc://stage-0".parse().unwrap();
        assert_eq!(a, Addr::InProc("stage-0".into()));
        assert_eq!(a.to_string(), "inproc://stage-0");
        let t: Addr = "tcp://127.0.0.1:9000".parse().unwrap();
        assert_eq!(t.to_string(), "tcp://127.0.0.1:9000");
        let s: Addr = "shm://stage-0".parse().unwrap();
        assert_eq!(s, Addr::Shm("stage-0".into()));
        assert_eq!(s.to_string(), "shm://stage-0");
        assert!("shm://".parse::<Addr>().is_err());
        assert!("inproc://".parse::<Addr>().is_err());
        assert!("udp://x".parse::<Addr>().is_err());
        assert!("tcp://nonsense".parse::<Addr>().is_err());
    }

    #[test]
    fn connect_retry_eventually_succeeds() {
        let addr: Addr = "inproc://late-bind".parse().unwrap();
        let a2 = addr.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            let l = Listener::bind(&a2).unwrap();
            let c = l.accept().unwrap();
            let m = c.recv().unwrap();
            c.send(m).unwrap();
        });
        let c = connect_retry(
            &addr,
            &Backoff {
                initial: Duration::from_millis(5),
                max: Duration::from_millis(50),
                attempts: 20,
            },
        )
        .unwrap();
        c.send(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(c.recv().unwrap(), Bytes::from_static(b"ping"));
        h.join().unwrap();
    }

    #[test]
    fn connect_retry_gives_up() {
        let addr: Addr = "inproc://nobody-home".parse().unwrap();
        let err = connect_retry(
            &addr,
            &Backoff {
                initial: Duration::from_millis(1),
                max: Duration::from_millis(2),
                attempts: 3,
            },
        );
        assert!(matches!(err, Err(NetError::Refused(_))));
    }

    #[test]
    fn error_classification_retryable_vs_fatal() {
        assert!(NetError::Closed.is_retryable());
        assert!(NetError::Timeout.is_retryable());
        assert!(NetError::Refused("tcp://x:1".into()).is_retryable());
        assert!(NetError::Io(std::io::Error::other("transient")).is_retryable());
        assert!(!NetError::FrameTooLarge(1 << 40).is_retryable());
        assert!(!NetError::BadAddr("garbage://".into()).is_retryable());
    }
}
