//! Raw syscalls for the shared-memory transport: `mmap`/`munmap` for
//! mapping `/dev/shm` segments, and cross-process `futex` wait/wake
//! for ring synchronization. Invoked directly (inline asm) because the
//! workspace links no libc-wrapping crates; file creation and sizing
//! go through `std::fs`, which covers everything else this module
//! would need.

use std::io;
use std::sync::atomic::AtomicU32;
use std::time::Duration;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const MMAP: usize = 9;
    pub const MUNMAP: usize = 11;
    pub const FUTEX: usize = 202;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const MMAP: usize = 222;
    pub const MUNMAP: usize = 215;
    pub const FUTEX: usize = 98;
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
compile_error!("sitra-net shm transport supports x86_64 and aarch64 Linux only");

#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") nr as isize => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a as isize => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        options(nostack),
    );
    ret
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

const PROT_READ: usize = 1;
const PROT_WRITE: usize = 2;
const MAP_SHARED: usize = 1;

/// Map `len` bytes of `fd` shared read-write.
pub(crate) fn mmap_shared(fd: i32, len: usize) -> io::Result<*mut u8> {
    let ret = unsafe {
        syscall6(
            nr::MMAP,
            0,
            len,
            PROT_READ | PROT_WRITE,
            MAP_SHARED,
            fd as usize,
            0,
        )
    };
    check(ret).map(|addr| addr as *mut u8)
}

/// Unmap a region mapped with [`mmap_shared`].
pub(crate) fn munmap(ptr: *mut u8, len: usize) {
    unsafe {
        let _ = syscall6(nr::MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }
}

// Deliberately NOT the `_PRIVATE` variants: these words live in
// MAP_SHARED memory and must wake waiters in other processes.
const FUTEX_WAIT: usize = 0;
const FUTEX_WAKE: usize = 1;

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// Outcome of a [`futex_wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitOutcome {
    /// Woken, value changed, or interrupted — re-check the condition.
    Check,
    /// The timeout elapsed.
    TimedOut,
}

/// Sleep while `*word == expected`, up to `timeout` (forever if
/// `None`). The caller must read `expected` *before* re-checking its
/// wakeup condition, in that order, or wakes can be lost.
pub(crate) fn futex_wait(
    word: &AtomicU32,
    expected: u32,
    timeout: Option<Duration>,
) -> WaitOutcome {
    let ts = timeout.map(|d| Timespec {
        tv_sec: d.as_secs() as i64,
        tv_nsec: d.subsec_nanos() as i64,
    });
    let ts_ptr = ts
        .as_ref()
        .map(|t| t as *const Timespec as usize)
        .unwrap_or(0);
    let ret = unsafe {
        syscall6(
            nr::FUTEX,
            word.as_ptr() as usize,
            FUTEX_WAIT,
            expected as usize,
            ts_ptr,
            0,
            0,
        )
    };
    // ETIMEDOUT = 110. EAGAIN (value already changed) and EINTR both
    // mean "go re-check".
    if ret == -110 {
        WaitOutcome::TimedOut
    } else {
        WaitOutcome::Check
    }
}

/// Wake up to `n` waiters on `word`.
pub(crate) fn futex_wake(word: &AtomicU32, n: i32) {
    unsafe {
        let _ = syscall6(
            nr::FUTEX,
            word.as_ptr() as usize,
            FUTEX_WAKE,
            n as usize,
            0,
            0,
            0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn futex_wait_times_out_and_wakes() {
        let word = Arc::new(AtomicU32::new(0));
        // Timeout path.
        let t0 = std::time::Instant::now();
        assert_eq!(
            futex_wait(&word, 0, Some(Duration::from_millis(20))),
            WaitOutcome::TimedOut
        );
        assert!(t0.elapsed() >= Duration::from_millis(15));
        // Value-changed path returns immediately.
        assert_eq!(
            futex_wait(&word, 1, Some(Duration::from_secs(5))),
            WaitOutcome::Check
        );
        // Cross-thread wake path.
        let w2 = Arc::clone(&word);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            w2.store(1, Ordering::Release);
            futex_wake(&w2, 1);
        });
        while word.load(Ordering::Acquire) == 0 {
            futex_wait(&word, 0, Some(Duration::from_secs(5)));
        }
        h.join().unwrap();
    }

    #[test]
    fn mmap_roundtrip_through_dev_shm() {
        let path = format!("/dev/shm/sitra-net-sys-test-{}", std::process::id());
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .unwrap();
        file.set_len(8192).unwrap();
        let ptr = {
            use std::os::fd::AsRawFd;
            mmap_shared(file.as_raw_fd(), 8192).unwrap()
        };
        drop(file);
        std::fs::remove_file(&path).unwrap();
        // The mapping outlives both the fd and the directory entry.
        unsafe {
            ptr.write(0xAB);
            ptr.add(8191).write(0xCD);
            assert_eq!(ptr.read(), 0xAB);
            assert_eq!(ptr.add(8191).read(), 0xCD);
        }
        munmap(ptr, 8192);
    }
}
