//! The `shm://` backend: shared-memory FIFOs through `/dev/shm`, the
//! same-node fast path and this codebase's stand-in for the paper's
//! DART RDMA transport.
//!
//! ## Anatomy
//!
//! A connection is one file in `/dev/shm` holding two independent SPSC
//! channels (client→server and server→client). Each channel is:
//!
//! * a **descriptor ring** ([`fifo::Ring`]): `NDESC` entries of
//!   `{len, flags}`, driven by monotonic head/tail counters;
//! * a **block-store arena** ([`fifo::Arena`]): a power-of-two byte
//!   region carved sequentially by the same discipline — a chunk that
//!   would straddle the wrap point is preceded by a `PAD` descriptor
//!   covering the tail (the rsm shared-memory BTL's trick), so every
//!   chunk is contiguous and a frame is one `memcpy` in, one out;
//! * two **futex words** (`data` for the consumer, `space` for the
//!   producer), each bumped-then-woken after publishing, with a
//!   spin-then-wait strategy on the waiting side.
//!
//! Frames longer than `CHUNK_MAX` stream through the arena as multiple
//! descriptors; only the last carries `LAST`. Offsets are implicit —
//! both sides advance the same monotonic byte cursors, so descriptors
//! need no offset field and the consumer frees space strictly in
//! order, exactly like the transport's TCP framing but with the kernel
//! out of the data path entirely.
//!
//! ## Rendezvous
//!
//! A listener owns a small control segment (`sitra-shm-<name>.ctl`): a
//! ticket-claimed slot ring where connectors publish the file name of
//! a connection segment they created. The listener maps the segment,
//! unlinks the file (the mapping keeps it alive — no directory litter
//! survives a crash of either side), and flips the segment's `attach`
//! futex to complete the handshake.

mod fifo;
mod sys;

use crate::NetError;
use bytes::Bytes;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Descriptor ring entries per channel.
const NDESC: u64 = 1024;
/// Arena bytes per channel.
const ARENA: u64 = 1 << 22;
/// Max payload bytes per descriptor; larger frames are chunked.
const CHUNK_MAX: usize = 1 << 20;
/// Slice size `send` actually streams frames in. This is sender
/// policy, not wire format (the consumer accepts any chunk pattern up
/// to [`CHUNK_MAX`]): small enough that the consumer starts copying a
/// large frame out while the producer is still writing the rest of it
/// in, large enough that the per-slice descriptor and wake costs stay
/// negligible. Monolithic 1 MiB chunks serialized the two copies
/// end-to-end — the consumer sat parked through the producer's entire
/// memcpy — which is exactly backwards on a low-core host, where the
/// parked side also has to win the scheduler back afterwards.
const PIPE_CHUNK: usize = 128 << 10;

/// Descriptor flag: final chunk of a frame.
const FLAG_LAST: u32 = 1;
/// Descriptor flag: padding emitted to reach the arena wrap point.
const FLAG_PAD: u32 = 2;

const SEG_MAGIC: u64 = 0x5349_5452_4153_4853; // "SITRASHS"
const CTL_MAGIC: u64 = 0x5349_5452_4153_4843; // "SITRASHC"
const VERSION: u32 = 1;

// Connection-segment layout. All field offsets are 64-bit aligned and
// the hot producer/consumer counters sit on separate cache lines.
const SEG_HDR: usize = 64;
const SEG_MAGIC_OFF: usize = 0;
const SEG_VERSION_OFF: usize = 8;
/// Futex word: 0 until the server maps the segment, then 1.
const SEG_ATTACH_OFF: usize = 12;

// Channel-relative offsets.
const CH_DESC_HEAD: usize = 0; // AtomicU64, producer-published
const CH_DESC_TAIL: usize = 64; // AtomicU64, consumer-published
const CH_DATA_TAIL: usize = 128; // AtomicU64, consumer-published
const CH_CLOSED: usize = 192; // AtomicU32, either side
const CH_DATA_FUTEX: usize = 196; // AtomicU32, producer bumps
const CH_SPACE_FUTEX: usize = 256; // AtomicU32, consumer bumps
const CH_HDR: usize = 320;
const CH_RING: usize = NDESC as usize * 8;
const CH_SIZE: usize = CH_HDR + CH_RING + ARENA as usize;

/// Whole connection segment: header + two channels.
const SEG_SIZE: usize = SEG_HDR + 2 * CH_SIZE;

// Control-segment layout.
const CTL_MAGIC_OFF: usize = 0;
const CTL_VERSION_OFF: usize = 8;
const CTL_CLOSED_OFF: usize = 12;
const CTL_ACCEPT_FUTEX_OFF: usize = 16;
const CTL_HEAD_OFF: usize = 64; // AtomicU64, ticket counter (connectors)
const CTL_TAIL_OFF: usize = 128; // AtomicU64, listener's cursor
const CTL_SLOTS_OFF: usize = 192;
const CTL_NSLOTS: u64 = 64;
const CTL_SLOT_SIZE: usize = 128;
/// Slot-relative: 0=free, 1=published.
const SLOT_STATE: usize = 0;
const SLOT_PATH_LEN: usize = 4;
const SLOT_PATH: usize = 8;
const SLOT_PATH_MAX: usize = CTL_SLOT_SIZE - SLOT_PATH;
const CTL_SIZE: usize = CTL_SLOTS_OFF + CTL_NSLOTS as usize * CTL_SLOT_SIZE;

/// Spins before parking on a futex; tuned for "peer is mid-memcpy".
const SPIN: usize = 200;
/// Additional `yield_now` rounds a waiter spends when the peer is
/// *known* to be mid-frame (a started frame's remaining chunks, or
/// arena space mid-drain) before parking. A `spin_loop` hint never
/// releases the core, so on a one-CPU host the spinning side just
/// burns its quantum while the side it is waiting for sits runnable;
/// yielding hands the core over and typically comes back with the next
/// chunk already published. Parking stays the backstop so an absent
/// peer still costs no CPU.
const YIELDS: usize = 256;

/// The tiered wait budget shared by the channel wait loops:
/// [`SPIN`] pipelined spins, then up to `yields` scheduler yields,
/// then the caller parks on its futex.
struct WaitBudget {
    steps: usize,
}

impl WaitBudget {
    fn new() -> WaitBudget {
        WaitBudget { steps: 0 }
    }

    /// Burn one step of the budget; returns `false` once exhausted
    /// (the caller should park).
    fn step(&mut self, yields: usize) -> bool {
        if self.steps < SPIN {
            self.steps += 1;
            std::hint::spin_loop();
            true
        } else if self.steps < SPIN + yields {
            self.steps += 1;
            std::thread::yield_now();
            true
        } else {
            false
        }
    }
}

/// A mapped shared-memory region (or, in tests, a heap stand-in that
/// exercises the identical channel code).
pub(crate) struct Mapping {
    ptr: *mut u8,
    len: usize,
    /// Owns the allocation when heap-backed; `None` means mmap'd.
    heap: Option<Vec<u8>>,
}

// Safety: all cross-thread access goes through atomics at fixed
// offsets or through raw byte copies whose ordering those atomics
// establish (SPSC ring protocol).
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Drop for Mapping {
    fn drop(&mut self) {
        if self.heap.is_none() {
            sys::munmap(self.ptr, self.len);
        }
    }
}

impl Mapping {
    /// Create the backing file (exclusively), size it, and map it.
    fn create_file(path: &Path, len: usize) -> io::Result<Mapping> {
        use std::os::fd::AsRawFd;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.set_len(len as u64)?;
        let ptr = sys::mmap_shared(file.as_raw_fd(), len)?;
        // The fd is not needed once mapped.
        Ok(Mapping {
            ptr,
            len,
            heap: None,
        })
    }

    /// Map an existing backing file.
    fn open_file(path: &Path, len: usize) -> io::Result<Mapping> {
        use std::os::fd::AsRawFd;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        if file.metadata()?.len() < len as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "shm segment shorter than its declared layout",
            ));
        }
        let ptr = sys::mmap_shared(file.as_raw_fd(), len)?;
        Ok(Mapping {
            ptr,
            len,
            heap: None,
        })
    }

    /// Heap-backed stand-in for unit tests: same layout, same code
    /// paths, no files.
    #[cfg(test)]
    fn heap(len: usize) -> Mapping {
        let mut buf = vec![0u8; len];
        let ptr = buf.as_mut_ptr();
        Mapping {
            ptr,
            len,
            heap: Some(buf),
        }
    }

    fn u32_at(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= self.len && off.is_multiple_of(4));
        unsafe { &*(self.ptr.add(off) as *const AtomicU32) }
    }

    fn u64_at(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= self.len && off.is_multiple_of(8));
        unsafe { &*(self.ptr.add(off) as *const AtomicU64) }
    }

    fn byte_ptr(&self, off: usize) -> *mut u8 {
        debug_assert!(off <= self.len);
        unsafe { self.ptr.add(off) }
    }
}

/// Offsets of one channel inside a mapping.
#[derive(Clone, Copy)]
struct Ch {
    base: usize,
}

impl Ch {
    fn desc_head<'m>(&self, m: &'m Mapping) -> &'m AtomicU64 {
        m.u64_at(self.base + CH_DESC_HEAD)
    }
    fn desc_tail<'m>(&self, m: &'m Mapping) -> &'m AtomicU64 {
        m.u64_at(self.base + CH_DESC_TAIL)
    }
    fn data_tail<'m>(&self, m: &'m Mapping) -> &'m AtomicU64 {
        m.u64_at(self.base + CH_DATA_TAIL)
    }
    fn closed<'m>(&self, m: &'m Mapping) -> &'m AtomicU32 {
        m.u32_at(self.base + CH_CLOSED)
    }
    fn data_futex<'m>(&self, m: &'m Mapping) -> &'m AtomicU32 {
        m.u32_at(self.base + CH_DATA_FUTEX)
    }
    fn space_futex<'m>(&self, m: &'m Mapping) -> &'m AtomicU32 {
        m.u32_at(self.base + CH_SPACE_FUTEX)
    }

    /// Plain (non-atomic) descriptor access; ordering is established
    /// by the Release store of `desc_head` / Acquire load on the
    /// consumer side.
    fn write_desc(&self, m: &Mapping, slot: usize, len: u32, flags: u32) {
        let p = m.byte_ptr(self.base + CH_HDR + slot * 8);
        unsafe {
            (p as *mut u32).write(len.to_le());
            (p.add(4) as *mut u32).write(flags.to_le());
        }
    }

    fn read_desc(&self, m: &Mapping, slot: usize) -> (u32, u32) {
        let p = m.byte_ptr(self.base + CH_HDR + slot * 8);
        unsafe {
            (
                u32::from_le((p as *const u32).read()),
                u32::from_le((p.add(4) as *const u32).read()),
            )
        }
    }

    fn arena_ptr(&self, m: &Mapping, off: usize) -> *mut u8 {
        debug_assert!(off < ARENA as usize);
        m.byte_ptr(self.base + CH_HDR + CH_RING + off)
    }

    /// Sever the channel and wake everyone parked on it.
    fn close(&self, m: &Mapping) {
        self.closed(m).store(1, Ordering::Release);
        self.data_futex(m).fetch_add(1, Ordering::Release);
        self.space_futex(m).fetch_add(1, Ordering::Release);
        sys::futex_wake(self.data_futex(m), i32::MAX);
        sys::futex_wake(self.space_futex(m), i32::MAX);
    }
}

/// Producer half of one channel. Keeps its own monotonic cursors; only
/// `desc_head` is published (the consumer derives arena offsets from
/// its own mirror of the byte cursor).
pub(crate) struct Producer {
    map: Arc<Mapping>,
    ch: Ch,
    ring: fifo::Ring,
    arena: fifo::Arena,
    desc_head: u64,
    data_head: u64,
}

impl Producer {
    /// Write one frame into the ring, blocking (spin, yield, then
    /// futex) while the consumer catches up. Frames beyond
    /// [`PIPE_CHUNK`] stream through as multiple chunks, so the
    /// consumer's copy-out overlaps the rest of the copy-in.
    pub(crate) fn send(&mut self, payload: &[u8]) -> Result<(), NetError> {
        let mut sent = 0;
        loop {
            let chunk = (payload.len() - sent).min(PIPE_CHUNK);
            let last = sent + chunk == payload.len();
            self.emit_chunk(&payload[sent..sent + chunk], last)?;
            sent += chunk;
            if last {
                return Ok(());
            }
        }
    }

    fn emit_chunk(&mut self, chunk: &[u8], last: bool) -> Result<(), NetError> {
        if self.ch.closed(&self.map).load(Ordering::Acquire) != 0 {
            return Err(NetError::Closed);
        }
        let pad = self.arena.pad_before(self.data_head, chunk.len() as u64);
        let descs = 1 + u64::from(pad > 0);
        self.wait_capacity(pad + chunk.len() as u64, descs)?;
        if pad > 0 {
            self.ch.write_desc(
                &self.map,
                self.ring.slot(self.desc_head),
                pad as u32,
                FLAG_PAD,
            );
            self.desc_head += 1;
            self.data_head += pad;
        }
        let off = self.arena.offset(self.data_head);
        unsafe {
            std::ptr::copy_nonoverlapping(
                chunk.as_ptr(),
                self.ch.arena_ptr(&self.map, off),
                chunk.len(),
            );
        }
        self.ch.write_desc(
            &self.map,
            self.ring.slot(self.desc_head),
            chunk.len() as u32,
            if last { FLAG_LAST } else { 0 },
        );
        self.desc_head += 1;
        self.data_head += chunk.len() as u64;
        // One publish for pad+chunk: payload and descriptor writes
        // happen-before this Release store.
        self.ch
            .desc_head(&self.map)
            .store(self.desc_head, Ordering::Release);
        self.ch
            .data_futex(&self.map)
            .fetch_add(1, Ordering::Release);
        sys::futex_wake(self.ch.data_futex(&self.map), 1);
        Ok(())
    }

    fn wait_capacity(&self, bytes: u64, descs: u64) -> Result<(), NetError> {
        let mut budget = WaitBudget::new();
        loop {
            // Futex value FIRST, condition second — the consumer bumps
            // the word after publishing, so a stale read here makes the
            // wait return immediately rather than miss the wake.
            let fval = self.ch.space_futex(&self.map).load(Ordering::Acquire);
            let data_tail = self.ch.data_tail(&self.map).load(Ordering::Acquire);
            let desc_tail = self.ch.desc_tail(&self.map).load(Ordering::Acquire);
            if self.arena.fits(self.data_head, data_tail, bytes)
                && self.ring.occupied(self.desc_head, desc_tail) + descs <= self.ring.slots
            {
                return Ok(());
            }
            if self.ch.closed(&self.map).load(Ordering::Acquire) != 0 {
                return Err(NetError::Closed);
            }
            // Full ring/arena means the consumer is mid-drain: yield it
            // the core before parking.
            if budget.step(YIELDS) {
                continue;
            }
            sys::futex_wait(
                self.ch.space_futex(&self.map),
                fval,
                Some(Duration::from_millis(50)),
            );
        }
    }
}

/// Consumer half of one channel.
pub(crate) struct Consumer {
    map: Arc<Mapping>,
    ch: Ch,
    ring: fifo::Ring,
    arena: fifo::Arena,
    desc_tail: u64,
    data_tail: u64,
}

impl Consumer {
    /// Read the next frame. `timeout` applies to the *start* of a
    /// frame; once the first chunk has landed the remainder is read to
    /// completion (matching the TCP facade's contract).
    pub(crate) fn recv(&mut self, timeout: Option<Duration>) -> Result<Bytes, NetError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut out: Option<Vec<u8>> = None;
        loop {
            // Mid-frame (`out` armed), the producer is by protocol
            // still copying the rest of this frame in: wait with the
            // yield tier so the next chunk is met awake instead of
            // through a park/wake cycle per chunk.
            self.wait_desc(if out.is_none() { deadline } else { None }, out.is_some())?;
            let slot = self.ring.slot(self.desc_tail);
            let (len, flags) = self.ch.read_desc(&self.map, slot);
            let len = len as usize;
            if flags & FLAG_PAD != 0 {
                self.data_tail += len as u64;
                self.release();
                continue;
            }
            if len > CHUNK_MAX {
                // No producer emits a chunk past CHUNK_MAX, so this
                // descriptor is corrupt: poison the link.
                self.ch.close(&self.map);
                return Err(NetError::FrameTooLarge(len));
            }
            let buf = out.get_or_insert_with(|| Vec::with_capacity(len));
            if buf.len() + len > crate::MAX_FRAME_LEN {
                // Desynchronized (corrupt descriptor): poison the link.
                self.ch.close(&self.map);
                return Err(NetError::FrameTooLarge(buf.len() + len));
            }
            let off = self.arena.offset(self.data_tail);
            unsafe {
                let src = self.ch.arena_ptr(&self.map, off);
                let start = buf.len();
                buf.reserve(len);
                std::ptr::copy_nonoverlapping(src, buf.as_mut_ptr().add(start), len);
                buf.set_len(start + len);
            }
            self.data_tail += len as u64;
            let done = flags & FLAG_LAST != 0;
            self.release();
            if done {
                return Ok(Bytes::from(out.take().expect("frame in progress")));
            }
        }
    }

    fn wait_desc(&self, deadline: Option<Instant>, mid_frame: bool) -> Result<(), NetError> {
        let mut budget = WaitBudget::new();
        // Waiting for a frame to *start* parks promptly (idle
        // connections must not burn a core); waiting for the rest of a
        // started frame yields first — the producer is mid-memcpy.
        let yields = if mid_frame { YIELDS } else { 0 };
        loop {
            let fval = self.ch.data_futex(&self.map).load(Ordering::Acquire);
            let head = self.ch.desc_head(&self.map).load(Ordering::Acquire);
            if head != self.desc_tail {
                return Ok(());
            }
            // Closed and drained: end of stream.
            if self.ch.closed(&self.map).load(Ordering::Acquire) != 0 {
                return Err(NetError::Closed);
            }
            let wait = match deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(NetError::Timeout);
                    }
                    left.min(Duration::from_millis(50))
                }
                None => Duration::from_millis(50),
            };
            if budget.step(yields) {
                continue;
            }
            sys::futex_wait(self.ch.data_futex(&self.map), fval, Some(wait));
        }
    }

    /// Publish consumption of one descriptor (and its bytes).
    fn release(&mut self) {
        self.desc_tail += 1;
        self.ch
            .desc_tail(&self.map)
            .store(self.desc_tail, Ordering::Release);
        self.ch
            .data_tail(&self.map)
            .store(self.data_tail, Ordering::Release);
        self.ch
            .space_futex(&self.map)
            .fetch_add(1, Ordering::Release);
        sys::futex_wake(self.ch.space_futex(&self.map), 1);
    }
}

fn producer(map: &Arc<Mapping>, ch: Ch) -> Producer {
    Producer {
        map: Arc::clone(map),
        ch,
        ring: fifo::Ring::new(NDESC),
        arena: fifo::Arena::new(ARENA),
        desc_head: 0,
        data_head: 0,
    }
}

fn consumer(map: &Arc<Mapping>, ch: Ch) -> Consumer {
    Consumer {
        map: Arc::clone(map),
        ch,
        ring: fifo::Ring::new(NDESC),
        arena: fifo::Arena::new(ARENA),
        desc_tail: 0,
        data_tail: 0,
    }
}

/// Both halves of one attached connection, as the facade consumes it.
pub(crate) struct ShmConn {
    pub(crate) producer: parking_lot::Mutex<Producer>,
    pub(crate) consumer: parking_lot::Mutex<Consumer>,
    map: Arc<Mapping>,
    out_ch: Ch,
    in_ch: Ch,
}

impl ShmConn {
    fn new(map: Arc<Mapping>, out_ch: Ch, in_ch: Ch) -> ShmConn {
        ShmConn {
            producer: parking_lot::Mutex::new(producer(&map, out_ch)),
            consumer: parking_lot::Mutex::new(consumer(&map, in_ch)),
            map,
            out_ch,
            in_ch,
        }
    }

    /// Sever both directions and wake every parked futex waiter —
    /// deliberately lock-free so a close lands even while a send or
    /// recv is blocked inside the ring.
    pub(crate) fn close(&self) {
        self.out_ch.close(&self.map);
        self.in_ch.close(&self.map);
    }
}

const CH0: Ch = Ch { base: SEG_HDR }; // client -> server
const CH1: Ch = Ch {
    base: SEG_HDR + CH_SIZE,
}; // server -> client

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .take(64)
        .collect()
}

fn ctl_file_name(name: &str) -> String {
    format!("sitra-shm-{}.ctl", sanitize(name))
}

fn shm_dir() -> PathBuf {
    PathBuf::from("/dev/shm")
}

/// Monotonic per-process suffix for connection-segment file names.
static SEG_SEQ: AtomicU64 = AtomicU64::new(0);

/// Dial a listener by name: create a connection segment, publish it in
/// the listener's control ring, and wait for the attach handshake.
pub(crate) fn shm_connect(name: &str) -> Result<ShmConn, NetError> {
    let label = format!("shm://{name}");
    if !crate::fault::connect_allowed(&label) {
        return Err(NetError::Refused(label));
    }
    let ctl_path = shm_dir().join(ctl_file_name(name));
    let ctl = match Mapping::open_file(&ctl_path, CTL_SIZE) {
        Ok(m) => Arc::new(m),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(NetError::Refused(label)),
        Err(e) => return Err(e.into()),
    };
    if ctl.u64_at(CTL_MAGIC_OFF).load(Ordering::Acquire) != CTL_MAGIC
        || ctl.u32_at(CTL_VERSION_OFF).load(Ordering::Acquire) != VERSION
    {
        return Err(NetError::BadAddr(format!(
            "{label}: control segment is not a sitra-net endpoint"
        )));
    }
    let ctl_closed = ctl.u32_at(CTL_CLOSED_OFF);
    if ctl_closed.load(Ordering::Acquire) != 0 {
        return Err(NetError::Refused(label));
    }

    // Create and initialize this connection's segment.
    let seg_name = format!(
        "sitra-shm-{}.c{}-{}",
        sanitize(name),
        std::process::id(),
        SEG_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let seg_path = shm_dir().join(&seg_name);
    let seg = Arc::new(Mapping::create_file(&seg_path, SEG_SIZE)?);
    seg.u32_at(SEG_VERSION_OFF)
        .store(VERSION, Ordering::Release);
    seg.u64_at(SEG_MAGIC_OFF)
        .store(SEG_MAGIC, Ordering::Release);

    let cleanup = |e: NetError| {
        let _ = std::fs::remove_file(&seg_path);
        e
    };

    // Claim a ticket and wait for our slot to free up (it cycles fast;
    // contention here means >NSLOTS concurrent dials).
    let ticket = ctl.u64_at(CTL_HEAD_OFF).fetch_add(1, Ordering::AcqRel);
    let slot_base = CTL_SLOTS_OFF + (ticket % CTL_NSLOTS) as usize * CTL_SLOT_SIZE;
    let state = ctl.u32_at(slot_base + SLOT_STATE);
    let deadline = Instant::now() + Duration::from_secs(5);
    while state.load(Ordering::Acquire) != 0 {
        if ctl_closed.load(Ordering::Acquire) != 0 || Instant::now() > deadline {
            return Err(cleanup(NetError::Refused(label)));
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    // Publish the segment file name.
    let bytes = seg_name.as_bytes();
    assert!(bytes.len() <= SLOT_PATH_MAX, "segment name fits the slot");
    unsafe {
        std::ptr::copy_nonoverlapping(
            bytes.as_ptr(),
            ctl.byte_ptr(slot_base + SLOT_PATH),
            bytes.len(),
        );
    }
    ctl.u32_at(slot_base + SLOT_PATH_LEN)
        .store(bytes.len() as u32, Ordering::Release);
    state.store(1, Ordering::Release);
    let accept_futex = ctl.u32_at(CTL_ACCEPT_FUTEX_OFF);
    accept_futex.fetch_add(1, Ordering::Release);
    sys::futex_wake(accept_futex, i32::MAX);

    // Wait for the listener to attach.
    let attach = seg.u32_at(SEG_ATTACH_OFF);
    loop {
        if attach.load(Ordering::Acquire) == 1 {
            break;
        }
        if ctl_closed.load(Ordering::Acquire) != 0 || Instant::now() > deadline {
            return Err(cleanup(NetError::Refused(label)));
        }
        sys::futex_wait(attach, 0, Some(Duration::from_millis(50)));
    }
    // Attached: the file name is no longer needed (the listener may
    // have unlinked it already).
    let _ = std::fs::remove_file(&seg_path);
    Ok(ShmConn::new(seg, CH0, CH1))
}

/// The listening side: owns the control segment.
pub(crate) struct ShmListener {
    ctl: Arc<Mapping>,
    ctl_path: PathBuf,
    name: String,
}

impl ShmListener {
    pub(crate) fn bind(name: &str) -> Result<ShmListener, NetError> {
        let ctl_path = shm_dir().join(ctl_file_name(name));
        let ctl = match Mapping::create_file(&ctl_path, CTL_SIZE) {
            Ok(m) => m,
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                // A cleanly shut-down (or crashed-and-closed) listener
                // leaves a closed control segment behind; reclaim it.
                // A live one is a genuine conflict.
                let stale = Mapping::open_file(&ctl_path, CTL_SIZE)
                    .map(|m| {
                        m.u64_at(CTL_MAGIC_OFF).load(Ordering::Acquire) != CTL_MAGIC
                            || m.u32_at(CTL_CLOSED_OFF).load(Ordering::Acquire) != 0
                    })
                    .unwrap_or(true);
                if !stale {
                    return Err(NetError::BadAddr(format!("shm://{name} already bound")));
                }
                let _ = std::fs::remove_file(&ctl_path);
                Mapping::create_file(&ctl_path, CTL_SIZE)?
            }
            Err(e) => return Err(e.into()),
        };
        ctl.u32_at(CTL_VERSION_OFF)
            .store(VERSION, Ordering::Release);
        ctl.u64_at(CTL_MAGIC_OFF)
            .store(CTL_MAGIC, Ordering::Release);
        Ok(ShmListener {
            ctl: Arc::new(ctl),
            ctl_path,
            name: name.to_string(),
        })
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    /// Accept the next connection (blocking).
    pub(crate) fn accept(&self) -> Result<ShmConn, NetError> {
        let accept_futex = self.ctl.u32_at(CTL_ACCEPT_FUTEX_OFF);
        let closed = self.ctl.u32_at(CTL_CLOSED_OFF);
        let tail_word = self.ctl.u64_at(CTL_TAIL_OFF);
        loop {
            let fval = accept_futex.load(Ordering::Acquire);
            let tail = tail_word.load(Ordering::Relaxed);
            let slot_base = CTL_SLOTS_OFF + (tail % CTL_NSLOTS) as usize * CTL_SLOT_SIZE;
            let state = self.ctl.u32_at(slot_base + SLOT_STATE);
            if state.load(Ordering::Acquire) == 1 {
                let len = self
                    .ctl
                    .u32_at(slot_base + SLOT_PATH_LEN)
                    .load(Ordering::Acquire) as usize;
                let mut name_buf = vec![0u8; len.min(SLOT_PATH_MAX)];
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        self.ctl.byte_ptr(slot_base + SLOT_PATH),
                        name_buf.as_mut_ptr(),
                        name_buf.len(),
                    );
                }
                // Free the slot for the next connector before the
                // (potentially slow) segment attach.
                state.store(0, Ordering::Release);
                tail_word.store(tail + 1, Ordering::Release);
                let seg_name = String::from_utf8_lossy(&name_buf).into_owned();
                let seg_path = shm_dir().join(&seg_name);
                let seg = match Mapping::open_file(&seg_path, SEG_SIZE) {
                    Ok(m) => Arc::new(m),
                    // Connector gave up (timeout) and unlinked: skip.
                    Err(_) => continue,
                };
                let _ = std::fs::remove_file(&seg_path);
                if seg.u64_at(SEG_MAGIC_OFF).load(Ordering::Acquire) != SEG_MAGIC {
                    continue;
                }
                let attach = seg.u32_at(SEG_ATTACH_OFF);
                attach.store(1, Ordering::Release);
                sys::futex_wake(attach, i32::MAX);
                return Ok(ShmConn::new(seg, CH1, CH0));
            }
            if closed.load(Ordering::Acquire) != 0 {
                return Err(NetError::Closed);
            }
            sys::futex_wait(accept_futex, fval, Some(Duration::from_millis(100)));
        }
    }

    /// Stop accepting: refuse future dials and wake a blocked accept.
    pub(crate) fn shutdown(&self) {
        let closed = self.ctl.u32_at(CTL_CLOSED_OFF);
        closed.store(1, Ordering::Release);
        let accept_futex = self.ctl.u32_at(CTL_ACCEPT_FUTEX_OFF);
        accept_futex.fetch_add(1, Ordering::Release);
        sys::futex_wake(accept_futex, i32::MAX);
    }
}

impl Drop for ShmListener {
    fn drop(&mut self) {
        self.shutdown();
        let _ = std::fs::remove_file(&self.ctl_path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A heap-backed channel pair: the exact production code paths with
    /// no files involved.
    fn heap_channel() -> (Producer, Consumer) {
        let map = Arc::new(Mapping::heap(CH_SIZE));
        let ch = Ch { base: 0 };
        (producer(&map, ch), consumer(&map, ch))
    }

    #[test]
    fn roundtrip_including_empty_and_wrapping_frames() {
        let (mut p, mut c) = heap_channel();
        p.send(b"first").unwrap();
        p.send(b"").unwrap();
        assert_eq!(c.recv(None).unwrap().as_slice(), b"first");
        assert_eq!(c.recv(None).unwrap().len(), 0);
        // Interleaved sends/recvs of ~1MB frames force the 4MiB arena
        // to wrap (and emit PAD descriptors) several times over.
        let big: Vec<u8> = (0..1_000_001u32).map(|i| (i % 241) as u8).collect();
        for _ in 0..10 {
            p.send(&big).unwrap();
            assert_eq!(c.recv(None).unwrap().as_slice(), big.as_slice());
        }
    }

    #[test]
    fn frame_larger_than_the_arena_streams_through() {
        // 10 MiB frame vs a 4 MiB arena: production must interleave
        // with consumption, proving chunked streaming works.
        let (mut p, mut c) = heap_channel();
        let huge: Vec<u8> = (0..10 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
        let expect = huge.clone();
        let h = std::thread::spawn(move || p.send(&huge));
        let got = c.recv(None).unwrap();
        h.join().unwrap().unwrap();
        assert_eq!(got.len(), expect.len());
        assert_eq!(got.as_slice(), expect.as_slice());
    }

    #[test]
    fn recv_timeout_applies_to_frame_start_only() {
        let (mut p, mut c) = heap_channel();
        assert!(matches!(
            c.recv(Some(Duration::from_millis(20))),
            Err(NetError::Timeout)
        ));
        p.send(b"late").unwrap();
        assert_eq!(
            c.recv(Some(Duration::from_secs(5))).unwrap().as_slice(),
            b"late"
        );
    }

    #[test]
    fn close_wakes_blocked_consumer_and_fails_producer() {
        let map = Arc::new(Mapping::heap(CH_SIZE));
        let ch = Ch { base: 0 };
        let mut c = consumer(&map, ch);
        let map2 = Arc::clone(&map);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            ch.close(&map2);
        });
        assert!(matches!(c.recv(None), Err(NetError::Closed)));
        h.join().unwrap();
        let mut p = producer(&map, ch);
        assert!(matches!(p.send(b"x"), Err(NetError::Closed)));
    }

    #[test]
    fn two_thread_stress_preserves_order_and_content() {
        // The loom-style interleaving test: a fast producer and a
        // deliberately bursty consumer force every ring condition
        // (full, empty, wrap, pad) under real concurrency; contents
        // are seed-derived so any corruption or reorder is caught.
        let (mut p, mut c) = heap_channel();
        const FRAMES: u64 = 4000;
        fn frame_body(i: u64) -> Vec<u8> {
            let mut x = i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            // Sizes sweep 0..~200KiB, biased small with periodic spikes.
            let len = if i.is_multiple_of(97) {
                180_000 + (x % 20_000) as usize
            } else {
                (x % 600) as usize
            };
            (0..len)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 33) as u8
                })
                .collect()
        }
        let prod = std::thread::spawn(move || {
            for i in 0..FRAMES {
                p.send(&frame_body(i)).unwrap();
            }
        });
        for i in 0..FRAMES {
            if i % 512 == 0 {
                // Let the ring fill right up.
                std::thread::sleep(Duration::from_millis(2));
            }
            let got = c.recv(Some(Duration::from_secs(30))).unwrap();
            let want = frame_body(i);
            assert_eq!(got.len(), want.len(), "frame {i} length");
            assert_eq!(got.as_slice(), want.as_slice(), "frame {i} content");
        }
        prod.join().unwrap();
    }

    #[test]
    fn rendezvous_attach_and_bidirectional_traffic() {
        let name = format!("modtest-{}", std::process::id());
        let listener = ShmListener::bind(&name).unwrap();
        // Live listener: rebinding the same name is a conflict.
        assert!(matches!(
            ShmListener::bind(&name),
            Err(NetError::BadAddr(_))
        ));
        let server = std::thread::spawn({
            let name = name.clone();
            move || {
                let client = shm_connect(&name).unwrap();
                client.producer.lock().send(b"ping").unwrap();
                let echo = client.consumer.lock().recv(Some(Duration::from_secs(5)));
                client.close();
                echo
            }
        });
        let conn = listener.accept().unwrap();
        let got = conn
            .consumer
            .lock()
            .recv(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(got.as_slice(), b"ping");
        conn.producer.lock().send(&got).unwrap();
        assert_eq!(server.join().unwrap().unwrap().as_slice(), b"ping");
        // Shut down: dials are refused and accept unblocks.
        drop(listener);
        assert!(matches!(shm_connect(&name), Err(NetError::Refused(_))));
    }
}
