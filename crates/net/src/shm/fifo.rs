//! Pure index arithmetic for the shared-memory SPSC rings — the part
//! of the FIFO most worth proving, separated from the unsafe mapped
//! memory it steers so it can be tested exhaustively in isolation
//! (the loom-style interleaving coverage lives in `mod.rs`'s
//! two-thread stress tests over a heap-backed segment).
//!
//! Both rings use *monotonic* u64 producer/consumer counters: a slot
//! index is `counter % capacity` (capacity a power of two), occupancy
//! is `head - tail`, and nothing is ever reset — which removes the
//! classic full-vs-empty ambiguity and every wraparound special case
//! except the (theoretical) u64 overflow, handled by wrapping
//! subtraction.

/// Geometry of a power-of-two slot ring driven by monotonic counters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Ring {
    /// Slot count; must be a power of two.
    pub slots: u64,
}

impl Ring {
    pub(crate) fn new(slots: u64) -> Ring {
        assert!(slots.is_power_of_two(), "ring size must be a power of two");
        Ring { slots }
    }

    /// The slot a monotonic sequence number lands in.
    pub(crate) fn slot(&self, seq: u64) -> usize {
        (seq & (self.slots - 1)) as usize
    }

    /// Entries currently in flight.
    pub(crate) fn occupied(&self, head: u64, tail: u64) -> u64 {
        head.wrapping_sub(tail)
    }

    /// Whether a producer at `head` may claim another slot. (The
    /// production path asks the multi-slot form of this question
    /// directly: `occupied + descs <= slots`.)
    #[cfg(test)]
    pub(crate) fn has_space(&self, head: u64, tail: u64) -> bool {
        self.occupied(head, tail) < self.slots
    }
}

/// Geometry of a power-of-two byte arena carved by a monotonic cursor.
/// Chunks must be contiguous in the arena; when one would straddle the
/// wrap point, the producer emits a PAD descriptor covering the tail
/// and the chunk starts at offset 0.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Arena {
    /// Capacity in bytes; must be a power of two.
    pub bytes: u64,
}

impl Arena {
    pub(crate) fn new(bytes: u64) -> Arena {
        assert!(bytes.is_power_of_two(), "arena size must be a power of two");
        Arena { bytes }
    }

    /// Byte offset a monotonic cursor maps to.
    pub(crate) fn offset(&self, cursor: u64) -> usize {
        (cursor & (self.bytes - 1)) as usize
    }

    /// Padding the producer must emit before a `len`-byte chunk fits
    /// contiguously at `cursor` (0 when it already does).
    pub(crate) fn pad_before(&self, cursor: u64, len: u64) -> u64 {
        debug_assert!(len <= self.bytes);
        let off = cursor & (self.bytes - 1);
        if off + len <= self.bytes {
            0
        } else {
            self.bytes - off
        }
    }

    /// Whether `need` more bytes fit given producer cursor `head` and
    /// consumer cursor `tail`.
    pub(crate) fn fits(&self, head: u64, tail: u64, need: u64) -> bool {
        head.wrapping_sub(tail) + need <= self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_slots_wrap_and_occupancy_tracks() {
        let r = Ring::new(8);
        assert_eq!(r.slot(0), 0);
        assert_eq!(r.slot(7), 7);
        assert_eq!(r.slot(8), 0);
        assert_eq!(r.slot(8 * 1000 + 3), 3);
        assert_eq!(r.occupied(0, 0), 0);
        assert_eq!(r.occupied(13, 6), 7);
        assert!(r.has_space(13, 6));
        assert!(!r.has_space(14, 6)); // exactly full
    }

    #[test]
    fn ring_survives_u64_counter_overflow() {
        // Counters never reach u64::MAX in practice; the math must not
        // care anyway.
        let r = Ring::new(16);
        let tail = u64::MAX - 3;
        let head = tail.wrapping_add(5);
        assert_eq!(r.occupied(head, tail), 5);
        assert!(r.has_space(head, tail));
        assert!(!r.has_space(tail.wrapping_add(16), tail));
    }

    #[test]
    fn arena_pad_rules() {
        let a = Arena::new(1024);
        // Fits flush against the end: no pad.
        assert_eq!(a.pad_before(1024 - 100, 100), 0);
        // One byte over: pad out the whole tail.
        assert_eq!(a.pad_before(1024 - 100, 101), 100);
        // At the wrap point exactly: offset 0, no pad.
        assert_eq!(a.pad_before(2048, 512), 0);
        // Zero-length chunk never needs a pad.
        assert_eq!(a.pad_before(1023, 0), 0);
        // Full-arena chunk at offset 0.
        assert_eq!(a.pad_before(1024, 1024), 0);
    }

    #[test]
    fn arena_space_accounting() {
        let a = Arena::new(1024);
        assert!(a.fits(0, 0, 1024));
        assert!(!a.fits(1, 0, 1024));
        assert!(a.fits(5000, 5000 - 1000, 24));
        assert!(!a.fits(5000, 5000 - 1000, 25));
        // Overflow-adjacent cursors.
        let tail = u64::MAX - 10;
        assert!(a.fits(tail.wrapping_add(100), tail, 924));
        assert!(!a.fits(tail.wrapping_add(100), tail, 925));
    }

    #[test]
    fn simulated_producer_consumer_never_overlaps() {
        // Drive the exact allocation discipline the shm channel uses
        // over a model arena, asserting a producer chunk never lands on
        // bytes the consumer has not yet released.
        let a = Arena::new(256);
        let r = Ring::new(8);
        let mut head = 0u64; // producer byte cursor
        let mut tail = 0u64; // consumer byte cursor
        let mut desc: std::collections::VecDeque<(u64, bool)> = Default::default();
        let mut desc_head = 0u64;
        let mut desc_tail = 0u64;
        let mut rng = 0x9E3779B97F4A7C15u64;
        for _ in 0..10_000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let len = rng % 100;
            // Produce when there is room, else consume.
            let pad = a.pad_before(head, len);
            let need = pad + len;
            let descs_needed = 1 + u64::from(pad > 0);
            if a.fits(head, tail, need)
                && r.occupied(desc_head, desc_tail) + descs_needed <= r.slots
            {
                if pad > 0 {
                    desc.push_back((pad, true));
                    desc_head += 1;
                    head += pad;
                    assert_eq!(a.offset(head), 0, "pad must land on the wrap point");
                }
                let off = a.offset(head);
                assert!(
                    off as u64 + len <= a.bytes,
                    "chunk straddles the wrap: off={off} len={len}"
                );
                desc.push_back((len, false));
                desc_head += 1;
                head += len;
                assert!(a.fits(head, tail, 0), "producer overran the consumer");
            } else {
                // Consume one descriptor.
                let (len, _is_pad) = desc.pop_front().expect("full ring implies pending descs");
                tail += len;
                desc_tail += 1;
                assert!(tail <= head, "consumer overran the producer");
            }
        }
    }
}
