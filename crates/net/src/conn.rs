//! The connection handle: length-prefixed frames over any backend,
//! with per-connection traffic counters.
//!
//! This is a *blocking facade over asynchronous plumbing*. A TCP
//! connection's socket lives with a reader task and a writer task on
//! the shared transport runtime ([`crate::rt`]); `send` enqueues onto
//! the writer's bounded queue and `recv` dequeues whole frames from
//! the reader's — both ends of hybrid channels that work from plain
//! threads and async tasks alike. The in-process backend stays a pair
//! of channels, and the shared-memory backend a pair of SPSC rings;
//! all three meet the same contract, so everything above `sitra-net`
//! is transport-agnostic.
//!
//! Fault injection rides the same seam: the injector is consulted
//! synchronously in `send` (keeping scheduled-fault decision streams
//! deterministic), but `Delay`/`Reorder` are realized with *runtime
//! timers*, not sender sleeps — a delayed frame parks in the outbound
//! queue (or a timer task) while the sender carries on immediately.

use crate::fault::{self, FaultAction};
use crate::shm;
use crate::tcp::{self, WriteItem};
use crate::NetError;
use bytes::Bytes;
use crossbeam::channel::{
    Receiver as CbReceiver, RecvTimeoutError as CbRecvTimeoutError, Sender as CbSender,
};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::sync::mpsc;
use tokio::sync::mpsc::error::RecvTimeoutError as ChanRecvTimeoutError;

/// Process-unique connection ids, assigned at construction. Fault
/// injectors key their per-connection decision streams on this.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// Frames larger than this are rejected on both send and receive — a
/// corrupt or hostile length prefix must not drive an allocation.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Per-connection traffic counters (monotonic snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames successfully sent.
    pub frames_sent: u64,
    /// Frames successfully received.
    pub frames_recv: u64,
    /// Payload bytes sent (excluding the 4-byte header).
    pub bytes_sent: u64,
    /// Payload bytes received (excluding the 4-byte header).
    pub bytes_recv: u64,
}

#[derive(Default)]
struct Counters {
    frames_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
}

/// Global-registry handles for this connection, resolved once at
/// creation so the per-frame cost is a pair of relaxed atomic adds.
/// Series are labelled by peer (`net.conn.frames_sent{peer=…}`).
struct ObsCounters {
    frames_sent: sitra_obs::Counter,
    frames_recv: sitra_obs::Counter,
    bytes_sent: sitra_obs::Counter,
    bytes_recv: sitra_obs::Counter,
    timeouts: sitra_obs::Counter,
    desyncs: sitra_obs::Counter,
}

impl ObsCounters {
    fn resolve(peer: &str) -> ObsCounters {
        let reg = sitra_obs::global();
        let named = |metric: &str| reg.counter(&format!("net.conn.{metric}{{peer={peer}}}"));
        reg.counter(&format!("net.conn.opened{{peer={peer}}}"))
            .inc();
        ObsCounters {
            frames_sent: named("frames_sent"),
            frames_recv: named("frames_recv"),
            bytes_sent: named("bytes_sent"),
            bytes_recv: named("bytes_recv"),
            timeouts: named("timeouts"),
            desyncs: named("desyncs"),
        }
    }
}

/// One unit of work for an in-process outbound sequencer task.
enum SeqItem {
    /// Forward now (in queue order).
    Now(Bytes),
    /// Hold the queue until the deadline, then forward.
    Held(Bytes, Instant),
}

/// Spawn the outbound sequencer for a channel-like backend: a runtime
/// task that forwards frames in queue order, sleeping through holds.
/// Exists only while a fault injector wants `Delay`/`Reorder` timing;
/// fault-free connections never pay for it.
fn spawn_sequencer<F>(forward: F) -> mpsc::UnboundedSender<SeqItem>
where
    F: Fn(Bytes) + Send + 'static,
{
    let (tx, mut rx) = mpsc::unbounded_channel();
    crate::rt::handle().spawn(async move {
        while let Some(item) = rx.recv().await {
            match item {
                SeqItem::Now(b) => forward(b),
                SeqItem::Held(b, deadline) => {
                    tokio::time::sleep_until(deadline).await;
                    forward(b);
                }
            }
        }
    });
    tx
}

enum Inner {
    InProc {
        // `Option` so close() can drop the halves, which is how the
        // peer observes the hangup.
        tx: Mutex<Option<CbSender<Bytes>>>,
        rx: Mutex<Option<CbReceiver<Bytes>>>,
        /// Outbound sequencer, created by the first held send; once it
        /// exists every delivery routes through it so held frames keep
        /// their place in the order.
        seq: Mutex<Option<mpsc::UnboundedSender<SeqItem>>>,
    },
    Tcp {
        outbound: mpsc::Sender<WriteItem>,
        inbound: Mutex<mpsc::Receiver<Result<Bytes, NetError>>>,
        /// Direct handle for close() when the writer queue is wedged.
        stream: Arc<tokio::net::TcpStream>,
        /// Shared with the writer task: cancels parked holds on close.
        writer_closed: Arc<AtomicBool>,
        peer: SocketAddr,
    },
    Shm {
        /// Both ring halves; `close()` severs them lock-free, so it
        /// lands even mid-send/mid-recv.
        io: Arc<shm::ShmConn>,
        /// Outbound sequencer for fault `Delay`/`Reorder` timing, same
        /// lifecycle as the in-process one.
        seq: Mutex<Option<mpsc::UnboundedSender<SeqItem>>>,
        peer: String,
    },
}

/// One frame-oriented, bidirectional connection.
pub struct Connection {
    id: u64,
    peer_label: String,
    inner: Inner,
    counters: Counters,
    obs: ObsCounters,
    /// Local close() latch: operations after close fail fast.
    closed: AtomicBool,
}

impl Connection {
    pub(crate) fn inproc_pair() -> (Connection, Connection) {
        let (a2b_tx, a2b_rx) = crossbeam::channel::unbounded();
        let (b2a_tx, b2a_rx) = crossbeam::channel::unbounded();
        let mk = |tx, rx| Connection {
            id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
            peer_label: "inproc".to_string(),
            inner: Inner::InProc {
                tx: Mutex::new(Some(tx)),
                rx: Mutex::new(Some(rx)),
                seq: Mutex::new(None),
            },
            counters: Counters::default(),
            obs: ObsCounters::resolve("inproc"),
            closed: AtomicBool::new(false),
        };
        (mk(a2b_tx, b2a_rx), mk(b2a_tx, a2b_rx))
    }

    pub(crate) fn from_tcp(stream: std::net::TcpStream) -> Result<Connection, NetError> {
        let peer = stream.peer_addr()?;
        let parts = tcp::spawn_io(stream)?;
        Ok(Connection {
            id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
            peer_label: peer.to_string(),
            inner: Inner::Tcp {
                outbound: parts.outbound,
                inbound: Mutex::new(parts.inbound),
                stream: parts.stream,
                writer_closed: parts.closed,
                peer,
            },
            counters: Counters::default(),
            obs: ObsCounters::resolve(&peer.to_string()),
            closed: AtomicBool::new(false),
        })
    }

    pub(crate) fn from_shm(io: shm::ShmConn, peer: String) -> Connection {
        Connection {
            id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
            peer_label: peer.clone(),
            obs: ObsCounters::resolve(&peer),
            inner: Inner::Shm {
                io: Arc::new(io),
                seq: Mutex::new(None),
                peer,
            },
            counters: Counters::default(),
            closed: AtomicBool::new(false),
        }
    }

    /// This connection's process-unique id (stable for its lifetime;
    /// what fault injectors key their decision streams on).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Send one frame. When a [`crate::fault::FaultInjector`] is
    /// installed it decides this frame's fate first; see the fault
    /// module docs for each action's semantics.
    pub fn send(&self, payload: Bytes) -> Result<(), NetError> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLarge(payload.len()));
        }
        if self.closed.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        match fault::frame_action(self.id, &self.peer_label, payload.len()) {
            FaultAction::Deliver => self.enqueue(payload, None),
            FaultAction::Drop => {
                // Loss on a reliable transport: the frame vanishes and
                // the link dies with it (see fault module docs). The
                // sender believes the send succeeded.
                self.close();
                Ok(())
            }
            FaultAction::Delay(d) => self.enqueue(payload, Some(Instant::now() + d)),
            FaultAction::Reorder(d) => self.enqueue_reordered(payload, d),
            FaultAction::Duplicate => {
                self.enqueue(payload.clone(), None)?;
                self.enqueue(payload, None)
            }
            FaultAction::Cut => {
                self.close();
                Err(NetError::Closed)
            }
        }
    }

    /// Queue one frame for delivery, optionally held until a deadline
    /// (fault `Delay`: the queue stalls behind it, the sender does not).
    fn enqueue(&self, payload: Bytes, hold_until: Option<Instant>) -> Result<(), NetError> {
        let len = payload.len();
        match &self.inner {
            Inner::InProc { tx, seq, .. } => {
                let guard = tx.lock();
                let sender = guard.as_ref().ok_or(NetError::Closed)?;
                let mut seq_guard = seq.lock();
                if hold_until.is_some() && seq_guard.is_none() {
                    let fwd = sender.clone();
                    *seq_guard = Some(spawn_sequencer(move |b| {
                        let _ = fwd.send(b);
                    }));
                }
                match (&*seq_guard, hold_until) {
                    (Some(s), Some(deadline)) => s
                        .send(SeqItem::Held(payload, deadline))
                        .map_err(|_| NetError::Closed)?,
                    (Some(s), None) => s
                        .send(SeqItem::Now(payload))
                        .map_err(|_| NetError::Closed)?,
                    // Fault-free fast path: straight into the channel.
                    (None, _) => sender.send(payload).map_err(|_| NetError::Closed)?,
                }
            }
            Inner::Tcp { outbound, .. } => {
                let item = match hold_until {
                    Some(deadline) => WriteItem::Held(payload, deadline),
                    None => WriteItem::Frame(payload),
                };
                outbound.blocking_send(item).map_err(|_| NetError::Closed)?;
            }
            Inner::Shm { io, seq, .. } => {
                let mut seq_guard = seq.lock();
                if hold_until.is_some() && seq_guard.is_none() {
                    let fwd = Arc::clone(io);
                    *seq_guard = Some(spawn_sequencer(move |b: Bytes| {
                        let _ = fwd.producer.lock().send(&b);
                    }));
                }
                match (&*seq_guard, hold_until) {
                    (Some(s), Some(deadline)) => s
                        .send(SeqItem::Held(payload, deadline))
                        .map_err(|_| NetError::Closed)?,
                    (Some(s), None) => s
                        .send(SeqItem::Now(payload))
                        .map_err(|_| NetError::Closed)?,
                    // Fault-free fast path: straight into the ring.
                    (None, _) => io.producer.lock().send(&payload)?,
                }
            }
        }
        self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_sent
            .fetch_add(len as u64, Ordering::Relaxed);
        self.obs.frames_sent.inc();
        self.obs.bytes_sent.add(len as u64);
        Ok(())
    }

    /// Fault `Reorder`: park the frame on a runtime timer and return
    /// immediately; frames sent in the meantime overtake it.
    fn enqueue_reordered(&self, payload: Bytes, delay: Duration) -> Result<(), NetError> {
        let len = payload.len();
        match &self.inner {
            Inner::InProc { tx, seq, .. } => {
                let guard = tx.lock();
                let sender = guard.as_ref().ok_or(NetError::Closed)?;
                let mut seq_guard = seq.lock();
                if seq_guard.is_none() {
                    let fwd = sender.clone();
                    *seq_guard = Some(spawn_sequencer(move |b| {
                        let _ = fwd.send(b);
                    }));
                }
                let seq_tx = seq_guard.as_ref().expect("sequencer just created").clone();
                crate::rt::handle().spawn(async move {
                    tokio::time::sleep(delay).await;
                    let _ = seq_tx.send(SeqItem::Now(payload));
                });
            }
            Inner::Tcp { outbound, .. } => {
                let out = outbound.clone();
                crate::rt::handle().spawn(async move {
                    tokio::time::sleep(delay).await;
                    let _ = out.send(WriteItem::Frame(payload)).await;
                });
            }
            Inner::Shm { io, seq, .. } => {
                let mut seq_guard = seq.lock();
                if seq_guard.is_none() {
                    let fwd = Arc::clone(io);
                    *seq_guard = Some(spawn_sequencer(move |b: Bytes| {
                        let _ = fwd.producer.lock().send(&b);
                    }));
                }
                let seq_tx = seq_guard.as_ref().expect("sequencer just created").clone();
                crate::rt::handle().spawn(async move {
                    tokio::time::sleep(delay).await;
                    let _ = seq_tx.send(SeqItem::Now(payload));
                });
            }
        }
        self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_sent
            .fetch_add(len as u64, Ordering::Relaxed);
        self.obs.frames_sent.inc();
        self.obs.bytes_sent.add(len as u64);
        Ok(())
    }

    /// Receive the next frame, blocking until one arrives or the peer
    /// hangs up.
    pub fn recv(&self) -> Result<Bytes, NetError> {
        let payload = match &self.inner {
            Inner::InProc { rx, .. } => {
                let guard = rx.lock();
                let receiver = guard.as_ref().ok_or(NetError::Closed)?;
                receiver.recv().map_err(|_| NetError::Closed)?
            }
            Inner::Tcp { inbound, .. } => {
                let mut rx = inbound.lock();
                match rx.blocking_recv() {
                    Some(Ok(b)) => b,
                    Some(Err(e)) => {
                        self.obs_classify(&e);
                        return Err(e);
                    }
                    None => return Err(NetError::Closed),
                }
            }
            Inner::Shm { io, .. } => io.consumer.lock().recv(None).inspect_err(|e| {
                self.obs_classify(e);
            })?,
        };
        self.counters.frames_recv.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_recv
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.obs.frames_recv.inc();
        self.obs.bytes_recv.add(payload.len() as u64);
        Ok(payload)
    }

    /// Route an error into the right observability counter: a frame cap
    /// violation means the stream is desynchronized (corrupt or hostile
    /// length prefix); a timeout is a timeout.
    fn obs_classify(&self, e: &NetError) {
        match e {
            NetError::FrameTooLarge(_) => self.obs.desyncs.inc(),
            NetError::Timeout => self.obs.timeouts.inc(),
            _ => {}
        }
    }

    /// Receive the next frame, giving up after `timeout`. The timeout
    /// applies to the *start* of a frame; the reader task assembles
    /// partial frames off to the side, so a timeout here never leaves
    /// the stream desynchronized mid-frame.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Bytes, NetError> {
        let payload = self
            .recv_timeout_inner(timeout)
            .inspect_err(|e| self.obs_classify(e))?;
        self.counters.frames_recv.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_recv
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.obs.frames_recv.inc();
        self.obs.bytes_recv.add(payload.len() as u64);
        Ok(payload)
    }

    fn recv_timeout_inner(&self, timeout: Duration) -> Result<Bytes, NetError> {
        match &self.inner {
            Inner::InProc { rx, .. } => {
                let guard = rx.lock();
                let receiver = guard.as_ref().ok_or(NetError::Closed)?;
                receiver.recv_timeout(timeout).map_err(|e| match e {
                    CbRecvTimeoutError::Timeout => NetError::Timeout,
                    CbRecvTimeoutError::Disconnected => NetError::Closed,
                })
            }
            Inner::Tcp { inbound, .. } => {
                let mut rx = inbound.lock();
                match rx.blocking_recv_timeout(timeout) {
                    Ok(Ok(b)) => Ok(b),
                    Ok(Err(e)) => Err(e),
                    Err(ChanRecvTimeoutError::Timeout) => Err(NetError::Timeout),
                    Err(ChanRecvTimeoutError::Disconnected) => Err(NetError::Closed),
                }
            }
            Inner::Shm { io, .. } => io.consumer.lock().recv(Some(timeout)),
        }
    }

    /// Close the connection. Frames already queued are flushed first
    /// (`Close` travels the writer queue behind them); parked holds are
    /// cancelled. The peer's pending and future receives fail with
    /// [`NetError::Closed`]; local operations do too.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        match &self.inner {
            Inner::InProc { tx, rx, seq } => {
                // Dropping the sequencer sender lets its task drain the
                // queued frames, then release its channel clone — the
                // same flush-then-close the TCP writer provides.
                seq.lock().take();
                tx.lock().take();
                rx.lock().take();
            }
            Inner::Tcp {
                outbound,
                stream,
                writer_closed,
                ..
            } => {
                writer_closed.store(true, Ordering::Release);
                if outbound.try_send(WriteItem::Close).is_err() {
                    // Writer queue full (wedged peer) or writer gone:
                    // close the socket out from under it.
                    let _ = stream.shutdown_std(std::net::Shutdown::Both);
                }
            }
            Inner::Shm { io, seq, .. } => {
                // Everything sent is already in the ring, so severing
                // the channels *is* flush-then-close; parked holds on
                // the sequencer die with it.
                seq.lock().take();
                io.close();
            }
        }
    }

    /// Snapshot of this connection's traffic counters.
    pub fn stats(&self) -> ConnStats {
        ConnStats {
            frames_sent: self.counters.frames_sent.load(Ordering::Relaxed),
            frames_recv: self.counters.frames_recv.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.counters.bytes_recv.load(Ordering::Relaxed),
        }
    }

    /// Peer description for diagnostics.
    pub fn peer(&self) -> String {
        match &self.inner {
            Inner::InProc { .. } => "inproc".to_string(),
            Inner::Tcp { peer, .. } => peer.to_string(),
            Inner::Shm { peer, .. } => peer.clone(),
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

pub(crate) fn shm_connect(name: &str) -> Result<Connection, NetError> {
    // The fault-injection partition check happens inside the
    // rendezvous (it needs the label anyway).
    let io = shm::shm_connect(name)?;
    Ok(Connection::from_shm(io, format!("shm://{name}")))
}

pub(crate) fn tcp_connect(sa: SocketAddr) -> Result<Connection, NetError> {
    // A fault injector can refuse the dial outright — a partition.
    if !fault::connect_allowed(&format!("tcp://{sa}")) {
        return Err(NetError::Refused(sa.to_string()));
    }
    match std::net::TcpStream::connect(sa) {
        Ok(s) => Connection::from_tcp(s),
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
            Err(NetError::Refused(sa.to_string()))
        }
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Arc as StdArc;

    #[test]
    fn inproc_roundtrip_and_counters() {
        let (a, b) = Connection::inproc_pair();
        a.send(Bytes::from_static(b"hello")).unwrap();
        a.send(Bytes::new()).unwrap();
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(b.recv().unwrap(), Bytes::new());
        b.send(Bytes::from_static(b"yo")).unwrap();
        assert_eq!(a.recv().unwrap(), Bytes::from_static(b"yo"));
        let sa = a.stats();
        assert_eq!((sa.frames_sent, sa.bytes_sent), (2, 5));
        assert_eq!((sa.frames_recv, sa.bytes_recv), (1, 2));
        let sb = b.stats();
        assert_eq!((sb.frames_sent, sb.frames_recv), (1, 2));
    }

    #[test]
    fn inproc_close_wakes_peer() {
        let (a, b) = Connection::inproc_pair();
        let h = std::thread::spawn(move || b.recv());
        std::thread::sleep(Duration::from_millis(20));
        a.close();
        assert!(matches!(h.join().unwrap(), Err(NetError::Closed)));
        assert!(matches!(a.send(Bytes::new()), Err(NetError::Closed)));
    }

    #[test]
    fn inproc_recv_timeout() {
        let (a, b) = Connection::inproc_pair();
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        ));
        a.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(100)).unwrap(),
            Bytes::from_static(b"x")
        );
    }

    #[test]
    fn hostile_length_prefix_rejected_without_allocating() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let sa = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // A header claiming a 4 GiB-1 frame.
            s.write_all(&u32::MAX.to_le_bytes()).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(50));
        });
        let c = tcp_connect(sa).unwrap();
        assert!(matches!(c.recv(), Err(NetError::FrameTooLarge(_))));
        server.join().unwrap();
    }

    #[test]
    fn tcp_roundtrip_large_frame() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let sa = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let c = Connection::from_tcp(s).unwrap();
            let m = c.recv().unwrap();
            c.send(m).unwrap();
            let stats = c.stats();
            // Flush before the connection drops: wait for the peer to
            // hang up after reading our echo.
            let _ = c.recv();
            stats
        });
        let c = tcp_connect(sa).unwrap();
        // Larger than any socket buffer so the write exercises partial
        // progress on both sides.
        let big = Bytes::from((0..1_000_000u32).map(|i| i as u8).collect::<Vec<_>>());
        c.send(big.clone()).unwrap();
        assert_eq!(c.recv().unwrap(), big);
        c.close();
        let stats = server.join().unwrap();
        assert_eq!(stats.bytes_recv, 1_000_000);
        assert_eq!(stats.frames_sent, 1);
    }

    #[test]
    fn tcp_peer_close_is_observed() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let sa = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let c = Connection::from_tcp(s).unwrap();
            drop(c); // hang up immediately
        });
        let c = tcp_connect(sa).unwrap();
        server.join().unwrap();
        assert!(matches!(c.recv(), Err(NetError::Closed)));
    }

    #[test]
    fn tcp_recv_timeout_preserves_framing() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let sa = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(60));
            // Write the frame in two chunks with a pause in between so a
            // client timeout can land mid-header.
            let payload = b"delayed";
            let header = (payload.len() as u32).to_le_bytes();
            s.write_all(&header[..2]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(40));
            s.write_all(&header[2..]).unwrap();
            s.write_all(payload).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(100));
        });
        let c = StdArc::new(tcp_connect(sa).unwrap());
        // First waits time out without consuming header bytes...
        assert!(matches!(
            c.recv_timeout(Duration::from_millis(15)),
            Err(NetError::Timeout)
        ));
        // ...so the frame still arrives intact afterwards.
        assert_eq!(
            c.recv_timeout(Duration::from_millis(500)).unwrap(),
            Bytes::from_static(b"delayed")
        );
        server.join().unwrap();
    }

    #[test]
    fn tcp_send_then_close_still_delivers() {
        // The close travels the writer queue behind queued frames, so
        // nothing sent before close() is lost.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let sa = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let c = Connection::from_tcp(s).unwrap();
            let mut got = Vec::new();
            while let Ok(m) = c.recv() {
                got.push(m);
            }
            got
        });
        let c = tcp_connect(sa).unwrap();
        for i in 0..64u8 {
            c.send(Bytes::from(vec![i; 100])).unwrap();
        }
        c.close();
        let got = server.join().unwrap();
        assert_eq!(got.len(), 64);
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m.as_slice(), &vec![i as u8; 100][..]);
        }
    }
}
