//! The connection handle: length-prefixed frames over either backend,
//! with per-connection traffic counters.

use crate::fault::{self, FaultAction};
use crate::NetError;
use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-unique connection ids, assigned at construction. Fault
/// injectors key their per-connection decision streams on this.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// Frames larger than this are rejected on both send and receive — a
/// corrupt or hostile length prefix must not drive an allocation.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Per-connection traffic counters (monotonic snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames successfully sent.
    pub frames_sent: u64,
    /// Frames successfully received.
    pub frames_recv: u64,
    /// Payload bytes sent (excluding the 4-byte header).
    pub bytes_sent: u64,
    /// Payload bytes received (excluding the 4-byte header).
    pub bytes_recv: u64,
}

#[derive(Default)]
struct Counters {
    frames_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
}

/// Global-registry handles for this connection, resolved once at
/// creation so the per-frame cost is a pair of relaxed atomic adds.
/// Series are labelled by peer (`net.conn.frames_sent{peer=…}`).
struct ObsCounters {
    frames_sent: sitra_obs::Counter,
    frames_recv: sitra_obs::Counter,
    bytes_sent: sitra_obs::Counter,
    bytes_recv: sitra_obs::Counter,
    timeouts: sitra_obs::Counter,
    desyncs: sitra_obs::Counter,
}

impl ObsCounters {
    fn resolve(peer: &str) -> ObsCounters {
        let reg = sitra_obs::global();
        let named = |metric: &str| reg.counter(&format!("net.conn.{metric}{{peer={peer}}}"));
        reg.counter(&format!("net.conn.opened{{peer={peer}}}"))
            .inc();
        ObsCounters {
            frames_sent: named("frames_sent"),
            frames_recv: named("frames_recv"),
            bytes_sent: named("bytes_sent"),
            bytes_recv: named("bytes_recv"),
            timeouts: named("timeouts"),
            desyncs: named("desyncs"),
        }
    }
}

enum Inner {
    InProc {
        // `Option` so close() can drop the halves, which is how the
        // peer observes the hangup.
        tx: Mutex<Option<Sender<Bytes>>>,
        rx: Mutex<Option<Receiver<Bytes>>>,
    },
    Tcp {
        // Separate read/write halves (try_clone) so full-duplex use
        // from two threads does not serialize.
        reader: Mutex<TcpStream>,
        writer: Mutex<TcpStream>,
        peer: SocketAddr,
    },
}

/// One frame-oriented, bidirectional connection.
pub struct Connection {
    id: u64,
    peer_label: String,
    inner: Inner,
    counters: Counters,
    obs: ObsCounters,
}

impl Connection {
    pub(crate) fn inproc_pair() -> (Connection, Connection) {
        let (a2b_tx, a2b_rx) = crossbeam::channel::unbounded();
        let (b2a_tx, b2a_rx) = crossbeam::channel::unbounded();
        let mk = |tx, rx| Connection {
            id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
            peer_label: "inproc".to_string(),
            inner: Inner::InProc {
                tx: Mutex::new(Some(tx)),
                rx: Mutex::new(Some(rx)),
            },
            counters: Counters::default(),
            obs: ObsCounters::resolve("inproc"),
        };
        (mk(a2b_tx, b2a_rx), mk(b2a_tx, a2b_rx))
    }

    pub(crate) fn from_tcp(stream: TcpStream) -> Result<Connection, NetError> {
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr()?;
        let reader = stream.try_clone()?;
        Ok(Connection {
            id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
            peer_label: peer.to_string(),
            inner: Inner::Tcp {
                reader: Mutex::new(reader),
                writer: Mutex::new(stream),
                peer,
            },
            counters: Counters::default(),
            obs: ObsCounters::resolve(&peer.to_string()),
        })
    }

    /// This connection's process-unique id (stable for its lifetime;
    /// what fault injectors key their decision streams on).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Send one frame. When a [`crate::fault::FaultInjector`] is
    /// installed it decides this frame's fate first; see the fault
    /// module docs for each action's semantics.
    pub fn send(&self, payload: Bytes) -> Result<(), NetError> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLarge(payload.len()));
        }
        match fault::frame_action(self.id, &self.peer_label, payload.len()) {
            FaultAction::Deliver => {}
            FaultAction::Drop => {
                // Loss on a reliable transport: the frame vanishes and
                // the link dies with it (see fault module docs). The
                // sender believes the send succeeded.
                self.close();
                return Ok(());
            }
            FaultAction::Delay(d) | FaultAction::Reorder(d) => std::thread::sleep(d),
            FaultAction::Duplicate => self.send_raw(&payload)?,
            FaultAction::Cut => {
                self.close();
                return Err(NetError::Closed);
            }
        }
        self.send_raw(&payload)
    }

    fn send_raw(&self, payload: &Bytes) -> Result<(), NetError> {
        match &self.inner {
            Inner::InProc { tx, .. } => {
                let guard = tx.lock();
                let sender = guard.as_ref().ok_or(NetError::Closed)?;
                sender.send(payload.clone()).map_err(|_| NetError::Closed)?;
            }
            Inner::Tcp { writer, .. } => {
                let mut w = writer.lock();
                let header = (payload.len() as u32).to_le_bytes();
                w.write_all(&header)?;
                w.write_all(payload)?;
                w.flush()?;
            }
        }
        self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.obs.frames_sent.inc();
        self.obs.bytes_sent.add(payload.len() as u64);
        Ok(())
    }

    /// Receive the next frame, blocking until one arrives or the peer
    /// hangs up.
    pub fn recv(&self) -> Result<Bytes, NetError> {
        let payload = match &self.inner {
            Inner::InProc { rx, .. } => {
                let guard = rx.lock();
                let receiver = guard.as_ref().ok_or(NetError::Closed)?;
                receiver.recv().map_err(|_| NetError::Closed)?
            }
            Inner::Tcp { reader, .. } => {
                let mut r = reader.lock();
                read_frame(&mut r).inspect_err(|e| self.obs_classify(e))?
            }
        };
        self.counters.frames_recv.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_recv
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.obs.frames_recv.inc();
        self.obs.bytes_recv.add(payload.len() as u64);
        Ok(payload)
    }

    /// Route an error into the right observability counter: a frame cap
    /// violation means the stream is desynchronized (corrupt or hostile
    /// length prefix); a timeout is a timeout.
    fn obs_classify(&self, e: &NetError) {
        match e {
            NetError::FrameTooLarge(_) => self.obs.desyncs.inc(),
            NetError::Timeout => self.obs.timeouts.inc(),
            _ => {}
        }
    }

    /// Receive the next frame, giving up after `timeout`. The timeout
    /// applies to the *start* of a frame; once its header is seen the
    /// remainder is read to completion.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Bytes, NetError> {
        let payload = self
            .recv_timeout_inner(timeout)
            .inspect_err(|e| self.obs_classify(e))?;
        self.counters.frames_recv.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_recv
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.obs.frames_recv.inc();
        self.obs.bytes_recv.add(payload.len() as u64);
        Ok(payload)
    }

    fn recv_timeout_inner(&self, timeout: Duration) -> Result<Bytes, NetError> {
        let payload = match &self.inner {
            Inner::InProc { rx, .. } => {
                let guard = rx.lock();
                let receiver = guard.as_ref().ok_or(NetError::Closed)?;
                receiver.recv_timeout(timeout).map_err(|e| match e {
                    RecvTimeoutError::Timeout => NetError::Timeout,
                    RecvTimeoutError::Disconnected => NetError::Closed,
                })?
            }
            Inner::Tcp { reader, .. } => {
                let mut r = reader.lock();
                // Peek until a whole header is buffered so a timeout
                // never leaves the stream desynchronized mid-frame.
                let deadline = Instant::now() + timeout;
                let mut probe = [0u8; 4];
                loop {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(NetError::Timeout);
                    }
                    r.set_read_timeout(Some(left)).ok();
                    match r.peek(&mut probe) {
                        Ok(0) => {
                            r.set_read_timeout(None).ok();
                            return Err(NetError::Closed);
                        }
                        Ok(n) if n >= 4 => break,
                        // Header partially arrived; let the rest land.
                        Ok(_) => std::thread::sleep(Duration::from_micros(200)),
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            r.set_read_timeout(None).ok();
                            return Err(NetError::Timeout);
                        }
                        Err(e) => {
                            r.set_read_timeout(None).ok();
                            return Err(e.into());
                        }
                    }
                }
                r.set_read_timeout(None).ok();
                read_frame(&mut r)?
            }
        };
        Ok(payload)
    }

    /// Close the connection. The peer's pending and future receives
    /// fail with [`NetError::Closed`]; local operations do too.
    pub fn close(&self) {
        match &self.inner {
            Inner::InProc { tx, rx } => {
                tx.lock().take();
                rx.lock().take();
            }
            Inner::Tcp { writer, .. } => {
                let w = writer.lock();
                w.shutdown(std::net::Shutdown::Both).ok();
            }
        }
    }

    /// Snapshot of this connection's traffic counters.
    pub fn stats(&self) -> ConnStats {
        ConnStats {
            frames_sent: self.counters.frames_sent.load(Ordering::Relaxed),
            frames_recv: self.counters.frames_recv.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.counters.bytes_recv.load(Ordering::Relaxed),
        }
    }

    /// Peer description for diagnostics.
    pub fn peer(&self) -> String {
        match &self.inner {
            Inner::InProc { .. } => "inproc".to_string(),
            Inner::Tcp { peer, .. } => peer.to_string(),
        }
    }
}

fn read_frame(r: &mut TcpStream) -> Result<Bytes, NetError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Bytes::from(payload))
}

pub(crate) fn tcp_connect(sa: SocketAddr) -> Result<Connection, NetError> {
    // A fault injector can refuse the dial outright — a partition.
    if !fault::connect_allowed(&format!("tcp://{sa}")) {
        return Err(NetError::Refused(sa.to_string()));
    }
    match TcpStream::connect(sa) {
        Ok(s) => Connection::from_tcp(s),
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
            Err(NetError::Refused(sa.to_string()))
        }
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn inproc_roundtrip_and_counters() {
        let (a, b) = Connection::inproc_pair();
        a.send(Bytes::from_static(b"hello")).unwrap();
        a.send(Bytes::new()).unwrap();
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(b.recv().unwrap(), Bytes::new());
        b.send(Bytes::from_static(b"yo")).unwrap();
        assert_eq!(a.recv().unwrap(), Bytes::from_static(b"yo"));
        let sa = a.stats();
        assert_eq!((sa.frames_sent, sa.bytes_sent), (2, 5));
        assert_eq!((sa.frames_recv, sa.bytes_recv), (1, 2));
        let sb = b.stats();
        assert_eq!((sb.frames_sent, sb.frames_recv), (1, 2));
    }

    #[test]
    fn inproc_close_wakes_peer() {
        let (a, b) = Connection::inproc_pair();
        let h = std::thread::spawn(move || b.recv());
        std::thread::sleep(Duration::from_millis(20));
        a.close();
        assert!(matches!(h.join().unwrap(), Err(NetError::Closed)));
        assert!(matches!(a.send(Bytes::new()), Err(NetError::Closed)));
    }

    #[test]
    fn inproc_recv_timeout() {
        let (a, b) = Connection::inproc_pair();
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        ));
        a.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(100)).unwrap(),
            Bytes::from_static(b"x")
        );
    }

    #[test]
    fn hostile_length_prefix_rejected_without_allocating() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let sa = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // A header claiming a 4 GiB-1 frame.
            s.write_all(&u32::MAX.to_le_bytes()).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(50));
        });
        let c = tcp_connect(sa).unwrap();
        assert!(matches!(c.recv(), Err(NetError::FrameTooLarge(_))));
        server.join().unwrap();
    }

    #[test]
    fn tcp_roundtrip_large_frame() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let sa = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let c = Connection::from_tcp(s).unwrap();
            let m = c.recv().unwrap();
            c.send(m).unwrap();
            c.stats()
        });
        let c = tcp_connect(sa).unwrap();
        // Larger than any socket buffer so the write exercises partial
        // progress on both sides.
        let big = Bytes::from((0..1_000_000u32).map(|i| i as u8).collect::<Vec<_>>());
        c.send(big.clone()).unwrap();
        assert_eq!(c.recv().unwrap(), big);
        let stats = server.join().unwrap();
        assert_eq!(stats.bytes_recv, 1_000_000);
        assert_eq!(stats.frames_sent, 1);
    }

    #[test]
    fn tcp_peer_close_is_observed() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let sa = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let c = Connection::from_tcp(s).unwrap();
            drop(c); // hang up immediately
        });
        let c = tcp_connect(sa).unwrap();
        server.join().unwrap();
        assert!(matches!(c.recv(), Err(NetError::Closed)));
    }

    #[test]
    fn tcp_recv_timeout_preserves_framing() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let sa = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(60));
            // Write the frame in two chunks with a pause in between so a
            // client timeout can land mid-header.
            let payload = b"delayed";
            let header = (payload.len() as u32).to_le_bytes();
            s.write_all(&header[..2]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(40));
            s.write_all(&header[2..]).unwrap();
            s.write_all(payload).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(100));
        });
        let c = StdArc::new(tcp_connect(sa).unwrap());
        // First waits time out without consuming header bytes...
        assert!(matches!(
            c.recv_timeout(Duration::from_millis(15)),
            Err(NetError::Timeout)
        ));
        // ...so the frame still arrives intact afterwards.
        assert_eq!(
            c.recv_timeout(Duration::from_millis(500)).unwrap(),
            Bytes::from_static(b"delayed")
        );
        server.join().unwrap();
    }
}
