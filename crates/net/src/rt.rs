//! The shared transport reactor: one lazily started multi-threaded
//! runtime that every connection's reader and writer task lives on.
//!
//! A process gets exactly one of these regardless of how many
//! connections, listeners, or servers it opens — connections are
//! tasks, not threads, which is what lets a single staging server
//! carry tens of thousands of concurrent links.

use std::future::Future;
use std::sync::OnceLock;
use tokio::runtime::{Builder, Handle, Runtime};
use tokio::task::JoinHandle;

static RT: OnceLock<Runtime> = OnceLock::new();

/// Handle to the shared transport runtime, starting it on first use.
/// The runtime lives for the rest of the process; its worker threads
/// are named `sitra-net-rt-*`.
pub(crate) fn handle() -> Handle {
    RT.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 4);
        Builder::new_multi_thread()
            .worker_threads(workers)
            .thread_name("sitra-net-rt")
            .enable_all()
            .build()
            .expect("sitra-net: failed to start transport runtime")
    })
    .handle()
}

/// Deadline combinator re-exported for reactor clients, so driving an
/// [`AsyncConnection`](crate::AsyncConnection) with timeouts does not
/// require a direct dependency on the runtime crate.
pub use tokio::time::{timeout, Elapsed};

/// Run a future to completion on the shared transport runtime. This is
/// the entry point for binaries (load generators, soak harnesses) that
/// drive many [`AsyncConnection`](crate::AsyncConnection)s directly
/// instead of going through the blocking facade: their futures run on
/// the same reactor the connection I/O tasks live on.
pub fn block_on<F: Future>(future: F) -> F::Output {
    handle().block_on(future)
}

/// Spawn a task onto the shared transport runtime.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    handle().spawn(future)
}
