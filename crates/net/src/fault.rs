//! The fault-injection seam: an optional, process-global hook the
//! transport consults on every frame and every connection attempt.
//!
//! Production runs never install an injector and pay one relaxed atomic
//! load per frame. Test harnesses (`sitra-testkit`) install a seeded
//! [`FaultInjector`] to subject the whole staging stack — driver,
//! space server, bucket workers — to drops, delays, duplicates,
//! reorders, link cuts, and partitions, deterministically from a seed.
//!
//! Semantics are those of a *reliable, connection-oriented* transport
//! under an adversarial network, chosen so every action preserves
//! liveness for request/response protocols built on blocking `recv`:
//!
//! * [`FaultAction::Drop`] — the frame is discarded **and the
//!   connection is severed**. On a reliable transport a lost frame is
//!   indistinguishable from infinite delay, which would hang a blocking
//!   peer forever; severing the link turns the loss into
//!   [`NetError::Closed`](crate::NetError::Closed) on the next
//!   operation, which callers already treat as retryable.
//! * [`FaultAction::Delay`] / [`FaultAction::Reorder`] — realized with
//!   *runtime timers* at the frame boundary, never a sender sleep: the
//!   send returns immediately in both cases. `Delay` parks the frame
//!   in the outbound queue holding the line, so traffic behind it on
//!   the same connection stalls in order (link latency). `Reorder`
//!   parks the frame on a timer off to the side, so frames sent after
//!   it overtake (packet-level reordering). Sibling connections are
//!   never stalled by either.
//! * [`FaultAction::Duplicate`] — the frame is written twice; a framed
//!   RPC peer sees a stale extra frame and must fail cleanly (protocol
//!   error → degraded task), never hang or panic.
//! * [`FaultAction::Cut`] — the connection is severed and the send
//!   fails immediately with `Closed` (the sender *knows*, unlike
//!   `Drop`).
//! * [`FaultInjector::allow_connect`] returning `false` — the dial is
//!   refused ([`NetError::Refused`](crate::NetError::Refused)), which
//!   models a network partition; `connect_retry` keeps retrying, so
//!   partitions heal when the injector says so.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The fate the injector assigns to one outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the frame untouched.
    Deliver,
    /// Discard the frame and sever the connection (see module docs for
    /// why loss implies severing on a reliable transport).
    Drop,
    /// Hold the outbound queue this long, then deliver; later frames
    /// on this connection wait in order behind the hold. The sender
    /// returns immediately.
    Delay(Duration),
    /// Deliver the frame twice.
    Duplicate,
    /// Park the frame on a timer for this long while later frames
    /// overtake it. The sender returns immediately.
    Reorder(Duration),
    /// Sever the connection; the send fails with `Closed`.
    Cut,
}

/// A process-global hook deciding the fate of frames and dials.
///
/// Implementations must be deterministic functions of their own state
/// plus the arguments if they want reproducible fault schedules —
/// `sitra-testkit`'s plan injector derives every decision from
/// `(seed, connection id, per-connection frame index)` alone.
pub trait FaultInjector: Send + Sync {
    /// The fate of one outbound frame. `conn` is the process-unique id
    /// of the sending [`Connection`](crate::Connection), `peer` its
    /// peer description, `len` the payload length.
    fn on_frame(&self, conn: u64, peer: &str, len: usize) -> FaultAction;

    /// Whether a new connection to `addr` may be opened right now.
    /// `false` refuses the dial — a network partition.
    fn allow_connect(&self, addr: &str) -> bool {
        let _ = addr;
        true
    }
}

/// Fast-path flag: `true` iff an injector is installed. Lets the
/// per-frame check be one relaxed load when fault injection is off.
static INSTALLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static parking_lot::Mutex<Option<Arc<dyn FaultInjector>>> {
    static SLOT: OnceLock<parking_lot::Mutex<Option<Arc<dyn FaultInjector>>>> = OnceLock::new();
    SLOT.get_or_init(|| parking_lot::Mutex::new(None))
}

/// Install (or with `None`, remove) the process-global fault injector,
/// returning the previous one so callers can restore it — the same
/// install/restore discipline as `sitra_obs::install_sink`.
pub fn install_fault_injector(
    injector: Option<Arc<dyn FaultInjector>>,
) -> Option<Arc<dyn FaultInjector>> {
    let mut guard = slot().lock();
    INSTALLED.store(injector.is_some(), Ordering::Release);
    std::mem::replace(&mut *guard, injector)
}

/// The currently installed injector, if any.
pub(crate) fn active() -> Option<Arc<dyn FaultInjector>> {
    if !INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    slot().lock().clone()
}

/// The fate of one outbound frame under the installed injector
/// (`Deliver` when none is installed).
pub(crate) fn frame_action(conn: u64, peer: &str, len: usize) -> FaultAction {
    match active() {
        Some(inj) => inj.on_frame(conn, peer, len),
        None => FaultAction::Deliver,
    }
}

/// Whether the installed injector permits dialling `addr` (`true` when
/// none is installed).
pub(crate) fn connect_allowed(addr: &str) -> bool {
    match active() {
        Some(inj) => inj.allow_connect(addr),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::Connection;
    use crate::{connect, Addr, Listener, NetError};
    use bytes::Bytes;

    /// The injector is process-global; these tests serialize on this.
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    /// Applies a scripted action sequence to exactly one connection id,
    /// delivering everything else untouched (so concurrently running
    /// tests in this binary are unaffected).
    struct Script {
        conn: u64,
        actions: parking_lot::Mutex<Vec<FaultAction>>,
    }

    impl FaultInjector for Script {
        fn on_frame(&self, conn: u64, _peer: &str, _len: usize) -> FaultAction {
            if conn != self.conn {
                return FaultAction::Deliver;
            }
            self.actions.lock().pop().unwrap_or(FaultAction::Deliver)
        }
    }

    fn with_script(conn: u64, mut actions: Vec<FaultAction>) -> Option<Arc<dyn FaultInjector>> {
        actions.reverse(); // popped back-to-front
        install_fault_injector(Some(Arc::new(Script {
            conn,
            actions: parking_lot::Mutex::new(actions),
        })))
    }

    #[test]
    fn duplicate_delivers_twice_and_drop_severs() {
        let _g = LOCK.lock();
        let (a, b) = Connection::inproc_pair();
        let prev = with_script(a.id(), vec![FaultAction::Duplicate, FaultAction::Drop]);
        a.send(Bytes::from_static(b"dup")).unwrap();
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"dup"));
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"dup"));
        // Drop: the sender believes the send succeeded, the frame is
        // gone, and the link is dead.
        a.send(Bytes::from_static(b"lost")).unwrap();
        assert!(matches!(b.recv(), Err(NetError::Closed)));
        assert!(matches!(
            a.send(Bytes::from_static(b"after")),
            Err(NetError::Closed)
        ));
        install_fault_injector(prev);
    }

    #[test]
    fn cut_fails_the_send_and_severs() {
        let _g = LOCK.lock();
        let (a, b) = Connection::inproc_pair();
        let prev = with_script(a.id(), vec![FaultAction::Cut]);
        assert!(matches!(
            a.send(Bytes::from_static(b"x")),
            Err(NetError::Closed)
        ));
        assert!(matches!(b.recv(), Err(NetError::Closed)));
        install_fault_injector(prev);
    }

    #[test]
    fn delay_still_delivers() {
        let _g = LOCK.lock();
        let (a, b) = Connection::inproc_pair();
        let prev = with_script(
            a.id(),
            vec![
                FaultAction::Delay(Duration::from_millis(5)),
                FaultAction::Reorder(Duration::from_millis(5)),
            ],
        );
        a.send(Bytes::from_static(b"slow")).unwrap();
        a.send(Bytes::from_static(b"jitter")).unwrap();
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"slow"));
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"jitter"));
        install_fault_injector(prev);
    }

    #[test]
    fn delay_is_asynchronous() {
        let _g = LOCK.lock();
        let (a, b) = Connection::inproc_pair();
        let prev = with_script(a.id(), vec![FaultAction::Delay(Duration::from_millis(150))]);
        // The frame is held by a runtime timer, not a sender sleep:
        // send() must return long before the 150ms hold elapses.
        let t0 = std::time::Instant::now();
        a.send(Bytes::from_static(b"held")).unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "send blocked for {:?}; Delay must not stall the sender",
            t0.elapsed()
        );
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"held"));
        assert!(t0.elapsed() >= Duration::from_millis(140));
        install_fault_injector(prev);
    }

    #[test]
    fn reorder_lets_later_frames_overtake() {
        let _g = LOCK.lock();
        let (a, b) = Connection::inproc_pair();
        let prev = with_script(
            a.id(),
            vec![
                FaultAction::Reorder(Duration::from_millis(80)),
                FaultAction::Deliver,
            ],
        );
        a.send(Bytes::from_static(b"late")).unwrap();
        a.send(Bytes::from_static(b"first")).unwrap();
        // The reordered frame parks off to the side; the frame sent
        // after it arrives first.
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"first"));
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"late"));
        install_fault_injector(prev);
    }

    #[test]
    fn partition_refuses_dials_until_healed() {
        let _g = LOCK.lock();
        struct Deny(String);
        impl FaultInjector for Deny {
            fn on_frame(&self, _: u64, _: &str, _: usize) -> FaultAction {
                FaultAction::Deliver
            }
            fn allow_connect(&self, addr: &str) -> bool {
                addr != self.0
            }
        }
        let addr: Addr = "inproc://fault-partition-test".parse().unwrap();
        let _l = Listener::bind(&addr).unwrap();
        let prev = install_fault_injector(Some(Arc::new(Deny(addr.to_string()))));
        assert!(matches!(connect(&addr), Err(NetError::Refused(_))));
        // Healing the partition (removing the injector) lets the same
        // dial through.
        install_fault_injector(prev);
        assert!(connect(&addr).is_ok());
    }

    #[test]
    fn no_injector_means_zero_interference() {
        let _g = LOCK.lock();
        let prev = install_fault_injector(None);
        let (a, b) = Connection::inproc_pair();
        a.send(Bytes::from_static(b"clean")).unwrap();
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"clean"));
        assert_eq!(a.stats().frames_sent, 1);
        install_fault_injector(prev);
    }
}
