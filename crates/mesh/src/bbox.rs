//! Axis-aligned integer bounding boxes over the global grid.

use serde::{Deserialize, Serialize};

/// A half-open axis-aligned box of grid points: `lo` inclusive, `hi`
/// exclusive, per axis. The unit of both bounds is global grid coordinates.
///
/// `BBox3` is the descriptor attached to every block of field data that
/// moves through the system — the simulation's block decomposition, ghost
/// regions, downsampled tiles, and the DataSpaces spatial index all speak
/// in terms of these boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BBox3 {
    /// Inclusive lower corner `(i, j, k)`.
    pub lo: [usize; 3],
    /// Exclusive upper corner `(i, j, k)`.
    pub hi: [usize; 3],
}

impl BBox3 {
    /// Create a box from corners. Panics if `hi < lo` on any axis.
    pub fn new(lo: [usize; 3], hi: [usize; 3]) -> Self {
        for a in 0..3 {
            assert!(lo[a] <= hi[a], "BBox3: lo > hi on axis {a}: {lo:?} {hi:?}");
        }
        Self { lo, hi }
    }

    /// The box covering `[0, dims)` on each axis.
    pub fn from_dims(dims: [usize; 3]) -> Self {
        Self::new([0, 0, 0], dims)
    }

    /// Extent (number of grid points) along each axis.
    pub fn dims(&self) -> [usize; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }

    /// Total number of grid points contained in the box.
    pub fn count(&self) -> usize {
        let d = self.dims();
        d[0] * d[1] * d[2]
    }

    /// True if the box contains no points.
    pub fn is_empty(&self) -> bool {
        (0..3).any(|a| self.hi[a] == self.lo[a])
    }

    /// True if the global coordinate `p` lies inside the box.
    pub fn contains(&self, p: [usize; 3]) -> bool {
        (0..3).all(|a| p[a] >= self.lo[a] && p[a] < self.hi[a])
    }

    /// True if `other` is entirely inside `self`.
    pub fn contains_box(&self, other: &BBox3) -> bool {
        other.is_empty() || ((0..3).all(|a| other.lo[a] >= self.lo[a] && other.hi[a] <= self.hi[a]))
    }

    /// Intersection of two boxes, or `None` if they do not overlap in at
    /// least one grid point.
    pub fn intersect(&self, other: &BBox3) -> Option<BBox3> {
        let mut lo = [0; 3];
        let mut hi = [0; 3];
        for a in 0..3 {
            lo[a] = self.lo[a].max(other.lo[a]);
            hi[a] = self.hi[a].min(other.hi[a]);
            if hi[a] <= lo[a] {
                return None;
            }
        }
        Some(BBox3 { lo, hi })
    }

    /// Smallest box covering both inputs.
    pub fn cover(&self, other: &BBox3) -> BBox3 {
        let mut lo = [0; 3];
        let mut hi = [0; 3];
        for a in 0..3 {
            lo[a] = self.lo[a].min(other.lo[a]);
            hi[a] = self.hi[a].max(other.hi[a]);
        }
        BBox3 { lo, hi }
    }

    /// Expand by `h` points on every side, clamped to `clamp`.
    ///
    /// This is the "add a ghost halo of width `h`" operation: the result is
    /// the region a rank needs in order to run a stencil or build merge-tree
    /// boundary information, truncated at the physical domain boundary.
    pub fn grow_clamped(&self, h: usize, clamp: &BBox3) -> BBox3 {
        let mut lo = [0; 3];
        let mut hi = [0; 3];
        for a in 0..3 {
            lo[a] = self.lo[a].saturating_sub(h).max(clamp.lo[a]);
            hi[a] = (self.hi[a] + h).min(clamp.hi[a]);
        }
        BBox3 { lo, hi }
    }

    /// Linear index of global coordinate `p` relative to this box
    /// (x fastest). Panics in debug builds if `p` is outside.
    pub fn local_index(&self, p: [usize; 3]) -> usize {
        debug_assert!(self.contains(p), "{p:?} outside {self:?}");
        let d = self.dims();
        let i = p[0] - self.lo[0];
        let j = p[1] - self.lo[1];
        let k = p[2] - self.lo[2];
        (k * d[1] + j) * d[0] + i
    }

    /// Inverse of [`BBox3::local_index`].
    pub fn coord_of(&self, idx: usize) -> [usize; 3] {
        let d = self.dims();
        debug_assert!(idx < self.count());
        let i = idx % d[0];
        let j = (idx / d[0]) % d[1];
        let k = idx / (d[0] * d[1]);
        [self.lo[0] + i, self.lo[1] + j, self.lo[2] + k]
    }

    /// Iterate over all global coordinates in the box, x fastest.
    pub fn iter(&self) -> impl Iterator<Item = [usize; 3]> + '_ {
        let b = *self;
        (b.lo[2]..b.hi[2]).flat_map(move |k| {
            (b.lo[1]..b.hi[1]).flat_map(move |j| (b.lo[0]..b.hi[0]).map(move |i| [i, j, k]))
        })
    }

    /// Number of bytes occupied by one double-precision variable over this
    /// region.
    pub fn bytes(&self) -> usize {
        self.count() * crate::BYTES_PER_VALUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_count() {
        let b = BBox3::new([1, 2, 3], [4, 6, 9]);
        assert_eq!(b.dims(), [3, 4, 6]);
        assert_eq!(b.count(), 72);
        assert!(!b.is_empty());
        assert_eq!(b.bytes(), 72 * 8);
    }

    #[test]
    fn empty_box() {
        let b = BBox3::new([5, 5, 5], [5, 9, 9]);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert!(!b.contains([5, 5, 5]));
    }

    #[test]
    #[should_panic]
    fn inverted_box_panics() {
        let _ = BBox3::new([2, 0, 0], [1, 1, 1]);
    }

    #[test]
    fn contains_half_open() {
        let b = BBox3::from_dims([2, 2, 2]);
        assert!(b.contains([0, 0, 0]));
        assert!(b.contains([1, 1, 1]));
        assert!(!b.contains([2, 0, 0]));
        assert!(!b.contains([0, 2, 1]));
    }

    #[test]
    fn intersect_overlap() {
        let a = BBox3::new([0, 0, 0], [4, 4, 4]);
        let b = BBox3::new([2, 2, 2], [6, 6, 6]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, BBox3::new([2, 2, 2], [4, 4, 4]));
        // Intersection is symmetric.
        assert_eq!(b.intersect(&a).unwrap(), i);
    }

    #[test]
    fn intersect_disjoint_and_touching() {
        let a = BBox3::new([0, 0, 0], [2, 2, 2]);
        let b = BBox3::new([2, 0, 0], [4, 2, 2]); // shares a face, no points
        assert!(a.intersect(&b).is_none());
        let c = BBox3::new([3, 3, 3], [5, 5, 5]);
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn cover_is_superset() {
        let a = BBox3::new([0, 0, 0], [2, 2, 2]);
        let b = BBox3::new([5, 1, 0], [6, 9, 1]);
        let c = a.cover(&b);
        assert!(c.contains_box(&a));
        assert!(c.contains_box(&b));
        assert_eq!(c, BBox3::new([0, 0, 0], [6, 9, 2]));
    }

    #[test]
    fn grow_clamps_at_domain() {
        let dom = BBox3::from_dims([10, 10, 10]);
        let b = BBox3::new([0, 4, 8], [2, 6, 10]);
        let g = b.grow_clamped(2, &dom);
        assert_eq!(g, BBox3::new([0, 2, 6], [4, 8, 10]));
    }

    #[test]
    fn local_index_roundtrip() {
        let b = BBox3::new([3, 5, 7], [6, 9, 12]);
        for (n, p) in b.iter().enumerate() {
            assert_eq!(b.local_index(p), n);
            assert_eq!(b.coord_of(n), p);
        }
        assert_eq!(b.iter().count(), b.count());
    }

    #[test]
    fn contains_box_edge_cases() {
        let a = BBox3::from_dims([4, 4, 4]);
        assert!(a.contains_box(&a));
        assert!(a.contains_box(&BBox3::new([1, 1, 1], [1, 2, 2]))); // empty
        assert!(!a.contains_box(&BBox3::new([1, 1, 1], [5, 2, 2])));
    }
}
