//! Dense scalar fields over rectangular blocks of the global grid.

use crate::BBox3;
use serde::{Deserialize, Serialize};

/// A dense array of `f64` values covering the grid points of a [`BBox3`].
///
/// The field remembers the global region it covers, so values can be read
/// and written by *global* coordinates; this is what makes block extraction,
/// ghost filling, and spatial-query assembly composable without manual
/// index arithmetic at every call site.
///
/// Layout is row-major, x fastest (see crate docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarField {
    bbox: BBox3,
    data: Vec<f64>,
}

impl ScalarField {
    /// A field over `bbox` filled with `value`.
    pub fn new_fill(bbox: BBox3, value: f64) -> Self {
        Self {
            bbox,
            data: vec![value; bbox.count()],
        }
    }

    /// A field over `bbox` with zeros.
    pub fn zeros(bbox: BBox3) -> Self {
        Self::new_fill(bbox, 0.0)
    }

    /// A field computed from a function of the global coordinate.
    pub fn from_fn(bbox: BBox3, mut f: impl FnMut([usize; 3]) -> f64) -> Self {
        let mut data = Vec::with_capacity(bbox.count());
        data.extend(bbox.iter().map(&mut f));
        Self { bbox, data }
    }

    /// Wrap an existing buffer. Panics unless `data.len() == bbox.count()`.
    pub fn from_vec(bbox: BBox3, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            bbox.count(),
            "buffer length does not match bbox"
        );
        Self { bbox, data }
    }

    /// The global region this field covers.
    pub fn bbox(&self) -> BBox3 {
        self.bbox
    }

    /// Extents of the covered region.
    pub fn dims(&self) -> [usize; 3] {
        self.bbox.dims()
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the covered region is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw values, x fastest.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values, x fastest.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Value at global coordinate `p`.
    #[inline]
    pub fn get(&self, p: [usize; 3]) -> f64 {
        self.data[self.bbox.local_index(p)]
    }

    /// Set value at global coordinate `p`.
    #[inline]
    pub fn set(&mut self, p: [usize; 3], v: f64) {
        let i = self.bbox.local_index(p);
        self.data[i] = v;
    }

    /// Value by local linear index (x fastest within the bbox).
    #[inline]
    pub fn get_linear(&self, idx: usize) -> f64 {
        self.data[idx]
    }

    /// Minimum and maximum stored value. Returns `None` for empty fields;
    /// NaNs are ignored (a field of only NaNs also yields `None`).
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut it = self.data.iter().copied().filter(|v| !v.is_nan());
        let first = it.next()?;
        let mut mn = first;
        let mut mx = first;
        for v in it {
            if v < mn {
                mn = v;
            }
            if v > mx {
                mx = v;
            }
        }
        Some((mn, mx))
    }

    /// Extract a copy of the sub-region `region`, which must lie inside the
    /// field. Rows are copied with `copy_from_slice` (contiguous in x).
    pub fn extract(&self, region: &BBox3) -> ScalarField {
        assert!(
            self.bbox.contains_box(region),
            "extract region {region:?} outside field {:?}",
            self.bbox
        );
        let mut out = ScalarField::zeros(*region);
        let sd = self.bbox.dims();
        let rd = region.dims();
        for k in region.lo[2]..region.hi[2] {
            for j in region.lo[1]..region.hi[1] {
                let src0 = ((k - self.bbox.lo[2]) * sd[1] + (j - self.bbox.lo[1])) * sd[0]
                    + (region.lo[0] - self.bbox.lo[0]);
                let dst0 = ((k - region.lo[2]) * rd[1] + (j - region.lo[1])) * rd[0];
                out.data[dst0..dst0 + rd[0]].copy_from_slice(&self.data[src0..src0 + rd[0]]);
            }
        }
        out
    }

    /// Copy the overlapping region of `src` into `self`. Regions of `self`
    /// not covered by `src` are left untouched. Returns the number of
    /// points copied.
    pub fn paste(&mut self, src: &ScalarField) -> usize {
        let Some(overlap) = self.bbox.intersect(&src.bbox) else {
            return 0;
        };
        let sd = src.bbox.dims();
        let dd = self.bbox.dims();
        let od = overlap.dims();
        for k in overlap.lo[2]..overlap.hi[2] {
            for j in overlap.lo[1]..overlap.hi[1] {
                let src0 = ((k - src.bbox.lo[2]) * sd[1] + (j - src.bbox.lo[1])) * sd[0]
                    + (overlap.lo[0] - src.bbox.lo[0]);
                let dst0 = ((k - self.bbox.lo[2]) * dd[1] + (j - self.bbox.lo[1])) * dd[0]
                    + (overlap.lo[0] - self.bbox.lo[0]);
                self.data[dst0..dst0 + od[0]].copy_from_slice(&src.data[src0..src0 + od[0]]);
            }
        }
        overlap.count()
    }

    /// Apply `f` to every value in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Pointwise combination with another field over the same bbox.
    pub fn zip_in_place(&mut self, other: &ScalarField, mut f: impl FnMut(f64, f64) -> f64) {
        assert_eq!(self.bbox, other.bbox, "zip requires identical regions");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, *b);
        }
    }
}

/// Assemble one field over `target` from a set of (possibly overlapping)
/// pieces. Points covered by no piece are `fill`; where pieces overlap,
/// later pieces win.
///
/// This is the receive-side of a DataSpaces `get`: the staging service
/// returns the intersecting stored objects and the client stitches them
/// into the requested box.
pub fn assemble(target: BBox3, pieces: &[ScalarField], fill: f64) -> ScalarField {
    let mut out = ScalarField::new_fill(target, fill);
    for p in pieces {
        out.paste(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord_field(b: BBox3) -> ScalarField {
        // Unique value per coordinate so copies are traceable.
        ScalarField::from_fn(b, |p| (p[0] * 10_000 + p[1] * 100 + p[2]) as f64)
    }

    #[test]
    fn get_set_by_global_coords() {
        let b = BBox3::new([2, 3, 4], [5, 6, 7]);
        let mut f = ScalarField::zeros(b);
        f.set([4, 5, 6], 9.5);
        assert_eq!(f.get([4, 5, 6]), 9.5);
        assert_eq!(f.get([2, 3, 4]), 0.0);
    }

    #[test]
    fn from_fn_matches_iter_order() {
        let b = BBox3::new([1, 1, 1], [3, 4, 5]);
        let f = coord_field(b);
        for p in b.iter() {
            assert_eq!(f.get(p), (p[0] * 10_000 + p[1] * 100 + p[2]) as f64);
        }
    }

    #[test]
    fn extract_preserves_values() {
        let b = BBox3::from_dims([6, 5, 4]);
        let f = coord_field(b);
        let r = BBox3::new([2, 1, 1], [5, 4, 3]);
        let e = f.extract(&r);
        assert_eq!(e.bbox(), r);
        for p in r.iter() {
            assert_eq!(e.get(p), f.get(p));
        }
    }

    #[test]
    #[should_panic]
    fn extract_outside_panics() {
        let f = ScalarField::zeros(BBox3::from_dims([3, 3, 3]));
        let _ = f.extract(&BBox3::new([1, 1, 1], [4, 2, 2]));
    }

    #[test]
    fn paste_partial_overlap() {
        let mut dst = ScalarField::new_fill(BBox3::from_dims([4, 4, 4]), -1.0);
        let src = coord_field(BBox3::new([2, 2, 2], [6, 6, 6]));
        let n = dst.paste(&src);
        assert_eq!(n, 8); // 2×2×2 overlap
        assert_eq!(dst.get([3, 3, 3]), src.get([3, 3, 3]));
        assert_eq!(dst.get([0, 0, 0]), -1.0);
    }

    #[test]
    fn paste_disjoint_is_noop() {
        let mut dst = ScalarField::new_fill(BBox3::from_dims([2, 2, 2]), 7.0);
        let src = ScalarField::zeros(BBox3::new([5, 5, 5], [6, 6, 6]));
        assert_eq!(dst.paste(&src), 0);
        assert!(dst.as_slice().iter().all(|&v| v == 7.0));
    }

    #[test]
    fn assemble_from_decomposed_blocks() {
        use crate::Decomposition;
        let g = BBox3::from_dims([7, 6, 5]);
        let f = coord_field(g);
        let d = Decomposition::new(g, [2, 3, 2]);
        let pieces: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| f.extract(&d.block(r)))
            .collect();
        let back = assemble(g, &pieces, f64::NAN);
        assert_eq!(back, f);
    }

    #[test]
    fn min_max_ignores_nan() {
        let mut f =
            ScalarField::from_vec(BBox3::from_dims([4, 1, 1]), vec![3.0, f64::NAN, -2.0, 1.0]);
        assert_eq!(f.min_max(), Some((-2.0, 3.0)));
        f.map_in_place(|_| f64::NAN);
        assert_eq!(f.min_max(), None);
        let empty = ScalarField::zeros(BBox3::new([0, 0, 0], [0, 1, 1]));
        assert_eq!(empty.min_max(), None);
    }

    #[test]
    fn zip_and_map() {
        let b = BBox3::from_dims([2, 2, 1]);
        let mut a = ScalarField::new_fill(b, 2.0);
        let c = ScalarField::new_fill(b, 3.0);
        a.zip_in_place(&c, |x, y| x * y);
        assert!(a.as_slice().iter().all(|&v| v == 6.0));
        a.map_in_place(|v| v - 1.0);
        assert!(a.as_slice().iter().all(|&v| v == 5.0));
    }
}
