//! Regular block decomposition of a global grid across ranks.

use crate::BBox3;
use serde::{Deserialize, Serialize};

/// A Cartesian decomposition of a global grid into `px × py × pz`
/// rectangular blocks, one per rank.
///
/// This mirrors S3D's topology: in the paper, the 1600×1372×430 grid is
/// split into per-core blocks of 100×49×43 (4480 ranks) or 50×49×43 (8960
/// ranks). When an axis length does not divide evenly, the remainder points
/// are distributed one-per-block to the lowest-indexed blocks of that axis,
/// so block sizes differ by at most one point per axis.
///
/// Rank numbering is x-fastest: `rank = (pz_idx * py + py_idx) * px + px_idx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition {
    global: BBox3,
    parts: [usize; 3],
}

impl Decomposition {
    /// Decompose `global` into `parts[0] × parts[1] × parts[2]` blocks.
    ///
    /// Panics if any axis has more parts than points (which would force
    /// empty blocks) or zero parts.
    pub fn new(global: BBox3, parts: [usize; 3]) -> Self {
        let d = global.dims();
        for a in 0..3 {
            assert!(parts[a] > 0, "decomposition needs >= 1 part per axis");
            assert!(
                parts[a] <= d[a],
                "axis {a}: {} parts > {} points",
                parts[a],
                d[a]
            );
        }
        Self { global, parts }
    }

    /// The full domain being decomposed.
    pub fn global(&self) -> BBox3 {
        self.global
    }

    /// Number of blocks along each axis.
    pub fn parts(&self) -> [usize; 3] {
        self.parts
    }

    /// Total number of ranks (blocks).
    pub fn rank_count(&self) -> usize {
        self.parts[0] * self.parts[1] * self.parts[2]
    }

    /// Split point: where block `b` of `n` blocks starts on an axis of
    /// `len` points (offset from the axis origin).
    fn axis_start(len: usize, n: usize, b: usize) -> usize {
        // First `len % n` blocks get `len/n + 1` points.
        let base = len / n;
        let rem = len % n;
        b * base + b.min(rem)
    }

    /// Per-axis block index of a rank.
    pub fn coords_of_rank(&self, rank: usize) -> [usize; 3] {
        assert!(rank < self.rank_count(), "rank {rank} out of range");
        let [px, py, _] = self.parts;
        [rank % px, (rank / px) % py, rank / (px * py)]
    }

    /// Rank owning the block with per-axis block indices `c`.
    pub fn rank_of_coords(&self, c: [usize; 3]) -> usize {
        let [px, py, pz] = self.parts;
        assert!(c[0] < px && c[1] < py && c[2] < pz, "block coords {c:?}");
        (c[2] * py + c[1]) * px + c[0]
    }

    /// The block of grid points owned by `rank`.
    pub fn block(&self, rank: usize) -> BBox3 {
        let c = self.coords_of_rank(rank);
        let d = self.global.dims();
        let mut lo = [0; 3];
        let mut hi = [0; 3];
        for a in 0..3 {
            lo[a] = self.global.lo[a] + Self::axis_start(d[a], self.parts[a], c[a]);
            hi[a] = self.global.lo[a] + Self::axis_start(d[a], self.parts[a], c[a] + 1);
        }
        BBox3::new(lo, hi)
    }

    /// The rank whose block contains global coordinate `p`.
    pub fn rank_of_point(&self, p: [usize; 3]) -> usize {
        assert!(self.global.contains(p), "{p:?} outside global domain");
        let d = self.global.dims();
        let mut c = [0; 3];
        for a in 0..3 {
            let off = p[a] - self.global.lo[a];
            // Invert axis_start: blocks of size base+1 come first.
            let base = d[a] / self.parts[a];
            let rem = d[a] % self.parts[a];
            let big = rem * (base + 1);
            c[a] = if off < big {
                off / (base + 1)
            } else {
                rem + (off - big) / base
            };
        }
        self.rank_of_coords(c)
    }

    /// Ranks whose blocks intersect `query`, with the intersection regions.
    ///
    /// This is the primitive behind DataSpaces-style spatial queries: given
    /// a requested bbox, which writers contributed data to it?
    pub fn ranks_overlapping(&self, query: &BBox3) -> Vec<(usize, BBox3)> {
        // Cheap pruning: compute block-index ranges per axis from the two
        // corners rather than scanning every rank.
        let Some(q) = query.intersect(&self.global) else {
            return Vec::new();
        };
        let lo_c = self.coords_of_rank(self.rank_of_point(q.lo));
        let hi_pt = [q.hi[0] - 1, q.hi[1] - 1, q.hi[2] - 1];
        let hi_c = self.coords_of_rank(self.rank_of_point(hi_pt));
        let mut out = Vec::new();
        for cz in lo_c[2]..=hi_c[2] {
            for cy in lo_c[1]..=hi_c[1] {
                for cx in lo_c[0]..=hi_c[0] {
                    let r = self.rank_of_coords([cx, cy, cz]);
                    if let Some(isect) = self.block(r).intersect(&q) {
                        out.push((r, isect));
                    }
                }
            }
        }
        out
    }

    /// Neighbor ranks of `rank`: all ranks whose block-index coordinates
    /// differ by at most 1 on each axis (26-neighborhood), excluding `rank`
    /// itself. Returned with their block-index offset.
    pub fn neighbors(&self, rank: usize) -> Vec<(usize, [isize; 3])> {
        let c = self.coords_of_rank(rank);
        let mut out = Vec::new();
        for dz in -1isize..=1 {
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let n = [c[0] as isize + dx, c[1] as isize + dy, c[2] as isize + dz];
                    if (0..3).all(|a| n[a] >= 0 && (n[a] as usize) < self.parts[a]) {
                        let nc = [n[0] as usize, n[1] as usize, n[2] as usize];
                        out.push((self.rank_of_coords(nc), [dx, dy, dz]));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_partition_domain_exactly() {
        let g = BBox3::from_dims([10, 7, 5]);
        let d = Decomposition::new(g, [3, 2, 2]);
        assert_eq!(d.rank_count(), 12);
        let total: usize = (0..12).map(|r| d.block(r).count()).sum();
        assert_eq!(total, g.count());
        // Every point belongs to exactly one block.
        for p in g.iter() {
            let r = d.rank_of_point(p);
            assert!(d.block(r).contains(p));
        }
    }

    #[test]
    fn uneven_axis_sizes_differ_by_at_most_one() {
        let g = BBox3::from_dims([11, 4, 4]);
        let d = Decomposition::new(g, [4, 1, 1]);
        let sizes: Vec<usize> = (0..4).map(|r| d.block(r).dims()[0]).collect();
        assert_eq!(sizes, vec![3, 3, 3, 2]);
    }

    #[test]
    fn paper_scale_block_dims() {
        // Paper: 1600×1372×430 over 16×28×10 => 100×49×43 per core.
        let g = BBox3::from_dims([1600, 1372, 430]);
        let d = Decomposition::new(g, [16, 28, 10]);
        assert_eq!(d.rank_count(), 4480);
        assert_eq!(d.block(0).dims(), [100, 49, 43]);
        // And 32×28×10 => 50×49×43.
        let d2 = Decomposition::new(g, [32, 28, 10]);
        assert_eq!(d2.rank_count(), 8960);
        assert_eq!(d2.block(0).dims(), [50, 49, 43]);
    }

    #[test]
    fn rank_coords_roundtrip() {
        let d = Decomposition::new(BBox3::from_dims([8, 8, 8]), [2, 3, 4]);
        for r in 0..d.rank_count() {
            assert_eq!(d.rank_of_coords(d.coords_of_rank(r)), r);
        }
    }

    #[test]
    fn offset_global_domain() {
        let g = BBox3::new([100, 200, 300], [110, 210, 310]);
        let d = Decomposition::new(g, [2, 2, 2]);
        assert_eq!(d.block(0).lo, [100, 200, 300]);
        assert_eq!(d.rank_of_point([109, 209, 309]), 7);
    }

    #[test]
    fn overlapping_ranks_cover_query() {
        let g = BBox3::from_dims([20, 20, 20]);
        let d = Decomposition::new(g, [4, 4, 4]);
        let q = BBox3::new([3, 3, 3], [12, 9, 17]);
        let hits = d.ranks_overlapping(&q);
        let covered: usize = hits.iter().map(|(_, b)| b.count()).sum();
        assert_eq!(covered, q.count());
        for (r, b) in &hits {
            assert!(d.block(*r).contains_box(b));
            assert!(q.contains_box(b));
        }
    }

    #[test]
    fn overlapping_ranks_outside_domain_is_empty() {
        let d = Decomposition::new(BBox3::from_dims([4, 4, 4]), [2, 2, 2]);
        let q = BBox3::new([10, 10, 10], [12, 12, 12]);
        assert!(d.ranks_overlapping(&q).is_empty());
    }

    #[test]
    fn neighbors_corner_and_center() {
        let d = Decomposition::new(BBox3::from_dims([9, 9, 9]), [3, 3, 3]);
        // Corner block has 7 neighbors; center block has 26.
        assert_eq!(d.neighbors(0).len(), 7);
        let center = d.rank_of_coords([1, 1, 1]);
        assert_eq!(d.neighbors(center).len(), 26);
        // Neighbor relation is symmetric.
        for r in 0..d.rank_count() {
            for (n, _) in d.neighbors(r) {
                assert!(d.neighbors(n).iter().any(|(m, _)| *m == r));
            }
        }
    }

    #[test]
    #[should_panic]
    fn too_many_parts_panics() {
        let _ = Decomposition::new(BBox3::from_dims([2, 2, 2]), [3, 1, 1]);
    }
}
