//! Downsampling and interpolation.
//!
//! The hybrid visualization pipeline of the paper down-samples the
//! full-resolution field in-situ (e.g. every 8th grid point) and ships the
//! reduced blocks to the staging area, where a serial ray caster samples
//! them through a block-bounds lookup table. The helpers here implement
//! both halves of that data path: grid-aligned strided extraction and
//! trilinear reconstruction.

use crate::{BBox3, ScalarField};
use serde::{Deserialize, Serialize};

/// A strided sample of a block, aligned to the *global* downsample lattice.
///
/// Points are kept where every global coordinate is a multiple of
/// `stride`; this makes samples taken independently on different ranks
/// line up into one consistent coarse grid (no seams at block boundaries),
/// exactly what the in-transit renderer's lookup table relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledBlock {
    /// The full-resolution region this sample was taken from.
    pub src_bbox: BBox3,
    /// Sampling stride in full-resolution grid points.
    pub stride: usize,
    /// Covered region in *coarse* coordinates: coarse point `c` corresponds
    /// to global point `c * stride`.
    pub coarse_bbox: BBox3,
    /// Sampled values over `coarse_bbox`, x fastest.
    pub data: Vec<f64>,
}

impl SampledBlock {
    /// The sampled values as a [`ScalarField`] over the coarse lattice.
    pub fn as_field(&self) -> ScalarField {
        ScalarField::from_vec(self.coarse_bbox, self.data.clone())
    }

    /// Size of the payload in bytes (what actually crosses the network).
    pub fn bytes(&self) -> usize {
        self.data.len() * crate::BYTES_PER_VALUE
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Coarse-lattice region covered by a full-resolution `bbox` at `stride`.
pub fn coarse_region(bbox: &BBox3, stride: usize) -> BBox3 {
    assert!(stride > 0);
    let mut lo = [0; 3];
    let mut hi = [0; 3];
    for a in 0..3 {
        lo[a] = div_ceil(bbox.lo[a], stride);
        hi[a] = div_ceil(bbox.hi[a], stride);
    }
    // A block may contain no lattice point on some axis; represent that as
    // an empty (lo == hi) box rather than an inverted one.
    for a in 0..3 {
        hi[a] = hi[a].max(lo[a]);
    }
    BBox3::new(lo, hi)
}

/// Downsample `field` onto the global `stride` lattice.
///
/// Returns the sampled block; `coarse_bbox` may be empty when the block is
/// thinner than the stride and contains no lattice point.
pub fn downsample(field: &ScalarField, stride: usize) -> SampledBlock {
    let src = field.bbox();
    let coarse = coarse_region(&src, stride);
    let mut data = Vec::with_capacity(coarse.count());
    for c in coarse.iter() {
        data.push(field.get([c[0] * stride, c[1] * stride, c[2] * stride]));
    }
    SampledBlock {
        src_bbox: src,
        stride,
        coarse_bbox: coarse,
        data,
    }
}

/// Trilinear interpolation of `field` at a continuous global position.
///
/// The position is clamped to the field's region, so callers may sample
/// right up to (and slightly past) the boundary without special-casing.
pub fn sample_trilinear(field: &ScalarField, pos: [f64; 3]) -> f64 {
    let b = field.bbox();
    debug_assert!(!b.is_empty());
    let mut i0 = [0usize; 3];
    let mut frac = [0f64; 3];
    for a in 0..3 {
        let lo = b.lo[a] as f64;
        let hi = (b.hi[a] - 1) as f64;
        let x = pos[a].clamp(lo, hi);
        let base = x.floor();
        i0[a] = base as usize;
        // Keep the +1 sample inside the box.
        if i0[a] + 1 >= b.hi[a] {
            i0[a] = b.hi[a] - 1;
            frac[a] = 0.0;
        } else {
            frac[a] = x - base;
        }
    }
    let mut acc = 0.0;
    for dz in 0..2usize {
        for dy in 0..2usize {
            for dx in 0..2usize {
                let p = [
                    (i0[0] + dx).min(b.hi[0] - 1),
                    (i0[1] + dy).min(b.hi[1] - 1),
                    (i0[2] + dz).min(b.hi[2] - 1),
                ];
                let w = (if dx == 1 { frac[0] } else { 1.0 - frac[0] })
                    * (if dy == 1 { frac[1] } else { 1.0 - frac[1] })
                    * (if dz == 1 { frac[2] } else { 1.0 - frac[2] });
                acc += w * field.get(p);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Decomposition;

    fn linear_field(b: BBox3) -> ScalarField {
        ScalarField::from_fn(b, |p| p[0] as f64 + 2.0 * p[1] as f64 + 4.0 * p[2] as f64)
    }

    #[test]
    fn stride_one_is_identity() {
        let f = linear_field(BBox3::new([2, 0, 1], [5, 4, 3]));
        let s = downsample(&f, 1);
        assert_eq!(s.coarse_bbox, f.bbox());
        assert_eq!(s.as_field(), f);
    }

    #[test]
    fn downsample_picks_lattice_points() {
        let f = linear_field(BBox3::from_dims([9, 9, 9]));
        let s = downsample(&f, 4);
        // Lattice points 0,4,8 per axis.
        assert_eq!(s.coarse_bbox, BBox3::from_dims([3, 3, 3]));
        for c in s.coarse_bbox.iter() {
            assert_eq!(s.as_field().get(c), f.get([c[0] * 4, c[1] * 4, c[2] * 4]));
        }
    }

    #[test]
    fn downsampled_blocks_tile_coarse_grid() {
        // Samples taken per-rank must assemble seamlessly into the sample
        // of the whole domain.
        let g = BBox3::from_dims([20, 14, 11]);
        let whole = linear_field(g);
        let d = Decomposition::new(g, [3, 2, 2]);
        let stride = 3;
        let global_sample = downsample(&whole, stride);
        let mut acc = ScalarField::new_fill(global_sample.coarse_bbox, f64::NAN);
        let mut covered = 0;
        for r in 0..d.rank_count() {
            let piece = downsample(&whole.extract(&d.block(r)), stride);
            covered += piece.coarse_bbox.count();
            acc.paste(&piece.as_field());
        }
        // Blocks partition the domain, lattice points partition the lattice.
        assert_eq!(covered, global_sample.coarse_bbox.count());
        assert_eq!(acc, global_sample.as_field());
    }

    #[test]
    fn thin_block_can_be_empty() {
        let f = linear_field(BBox3::new([1, 1, 1], [3, 3, 3]));
        let s = downsample(&f, 5);
        assert!(s.coarse_bbox.is_empty());
        assert!(s.data.is_empty());
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn trilinear_reproduces_linear_function() {
        let f = linear_field(BBox3::new([1, 2, 3], [6, 7, 8]));
        // Interior fractional positions: linear functions are reproduced
        // exactly by trilinear interpolation.
        for &pos in &[[2.5, 3.25, 4.75], [1.0, 2.0, 3.0], [4.9, 6.0, 7.0]] {
            let expect = pos[0] + 2.0 * pos[1] + 4.0 * pos[2];
            assert!((sample_trilinear(&f, pos) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn trilinear_clamps_outside() {
        let f = linear_field(BBox3::new([0, 0, 0], [4, 4, 4]));
        let inside = sample_trilinear(&f, [3.0, 3.0, 3.0]);
        assert_eq!(sample_trilinear(&f, [10.0, 3.0, 3.0]), inside);
        assert_eq!(sample_trilinear(&f, [-5.0, 0.0, 0.0]), f.get([0, 0, 0]));
    }

    #[test]
    fn trilinear_at_upper_corner() {
        let f = linear_field(BBox3::from_dims([3, 3, 3]));
        let v = sample_trilinear(&f, [2.0, 2.0, 2.0]);
        assert!((v - f.get([2, 2, 2])).abs() < 1e-12);
    }
}
