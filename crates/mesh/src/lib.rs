//! # sitra-mesh
//!
//! Structured 3D grid infrastructure shared by every other crate in the
//! workspace: axis-aligned integer bounding boxes, regular block
//! decompositions of a global grid across ranks, dense scalar fields over
//! blocks, ghost-layer exchange, and sampling/downsampling utilities.
//!
//! All analyses in the SC'12 hybrid in-situ/in-transit paper operate on
//! rectilinear blocks of a domain-decomposed structured grid (the S3D
//! combustion mesh). This crate is the in-memory equivalent of that
//! substrate: it knows nothing about simulation physics, transport, or
//! analysis — only geometry and data layout.
//!
//! Conventions:
//! * Global grid coordinates are `[usize; 3]` triples `(i, j, k)` for the
//!   x/y/z axes.
//! * Bounding boxes are *half-open*: `lo` inclusive, `hi` exclusive.
//! * Field storage is row-major with x fastest:
//!   `index = (k * ny + j) * nx + i` in local block coordinates.

pub mod bbox;
pub mod decomp;
pub mod field;
pub mod ghost;
pub mod sample;

pub use bbox::BBox3;
pub use decomp::Decomposition;
pub use field::ScalarField;
pub use ghost::{exchange_ghosts, ghost_requests, GhostRequest};
pub use sample::{downsample, sample_trilinear, SampledBlock};

/// Number of bytes in one double-precision grid value, used throughout the
/// workspace when converting cell counts to data-movement sizes.
pub const BYTES_PER_VALUE: usize = 8;
