//! Ghost-layer exchange between the blocks of a decomposition.
//!
//! The in-situ merge-tree stage needs each rank's block extended by a
//! one-point halo (the "topological ghost cells" of the paper) so that
//! neighboring subtrees share boundary vertices and can be glued
//! in-transit. Stencil-based simulation kernels need the same thing.
//!
//! The exchange is expressed in two layers so both live execution and
//! cost accounting can use it:
//!
//! * [`ghost_requests`] computes, for one rank, exactly which remote
//!   regions it must fetch from which neighbors — the *message plan*.
//! * [`exchange_ghosts`] executes the plan for all ranks given all block
//!   fields (the in-process stand-in for an MPI halo exchange), returning
//!   per-rank ghosted fields.

use crate::{BBox3, Decomposition, ScalarField};

/// One ghost-exchange message: `rank` must receive the points of `region`
/// from `owner`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhostRequest {
    /// The rank that owns (and will send) the data.
    pub owner: usize,
    /// The region of global grid points to transfer.
    pub region: BBox3,
}

/// Compute the message plan for `rank` to assemble a halo of width `h`.
///
/// The returned regions are pairwise disjoint, lie outside `rank`'s own
/// block, and together with the block exactly tile the grown (clamped)
/// bbox. Each region is owned entirely by a single neighbor.
pub fn ghost_requests(decomp: &Decomposition, rank: usize, h: usize) -> Vec<GhostRequest> {
    let own = decomp.block(rank);
    let grown = own.grow_clamped(h, &decomp.global());
    // A halo wider than a neighboring block can reach past the immediate
    // 26-neighborhood, so resolve owners with a spatial query rather than
    // the neighbor list.
    decomp
        .ranks_overlapping(&grown)
        .into_iter()
        .filter(|(owner, _)| *owner != rank)
        .map(|(owner, region)| GhostRequest { owner, region })
        .collect()
}

/// Execute a full halo exchange of width `h` over all ranks.
///
/// `fields[r]` must cover exactly `decomp.block(r)`. The result for rank
/// `r` covers `block(r).grow_clamped(h, global)` with interior values
/// copied from its own field and halo values copied from the owning
/// neighbors. Returns one ghosted field per rank plus the total number of
/// grid points moved between ranks (for data-movement accounting).
pub fn exchange_ghosts(
    decomp: &Decomposition,
    fields: &[ScalarField],
    h: usize,
) -> (Vec<ScalarField>, usize) {
    assert_eq!(
        fields.len(),
        decomp.rank_count(),
        "one field per rank required"
    );
    for (r, f) in fields.iter().enumerate() {
        assert_eq!(f.bbox(), decomp.block(r), "field {r} does not match block");
    }
    let mut moved = 0usize;
    let mut out = Vec::with_capacity(fields.len());
    for rank in 0..decomp.rank_count() {
        let grown = decomp.block(rank).grow_clamped(h, &decomp.global());
        let mut g = ScalarField::new_fill(grown, f64::NAN);
        g.paste(&fields[rank]);
        for req in ghost_requests(decomp, rank, h) {
            let piece = fields[req.owner].extract(&req.region);
            moved += piece.len();
            g.paste(&piece);
        }
        out.push(g);
    }
    (out, moved)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord_field(b: BBox3) -> ScalarField {
        ScalarField::from_fn(b, |p| (p[0] * 10_000 + p[1] * 100 + p[2]) as f64)
    }

    fn block_fields(d: &Decomposition) -> Vec<ScalarField> {
        let whole = coord_field(d.global());
        (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect()
    }

    #[test]
    fn requests_tile_grown_box() {
        let d = Decomposition::new(BBox3::from_dims([8, 8, 8]), [2, 2, 2]);
        for rank in 0..d.rank_count() {
            let own = d.block(rank);
            let grown = own.grow_clamped(1, &d.global());
            let reqs = ghost_requests(&d, rank, 1);
            let halo_points: usize = reqs.iter().map(|r| r.region.count()).sum();
            assert_eq!(halo_points, grown.count() - own.count());
            // Regions are disjoint and owned by the sender.
            for (a, ra) in reqs.iter().enumerate() {
                assert!(d.block(ra.owner).contains_box(&ra.region));
                assert!(own.intersect(&ra.region).is_none());
                for rb in &reqs[a + 1..] {
                    assert!(ra.region.intersect(&rb.region).is_none());
                }
            }
        }
    }

    #[test]
    fn ghosts_match_owner_values() {
        let d = Decomposition::new(BBox3::from_dims([9, 7, 6]), [3, 2, 2]);
        let whole = coord_field(d.global());
        let fields = block_fields(&d);
        let (ghosted, moved) = exchange_ghosts(&d, &fields, 1);
        assert!(moved > 0);
        for (rank, g) in ghosted.iter().enumerate() {
            assert_eq!(g.bbox(), d.block(rank).grow_clamped(1, &d.global()));
            for p in g.bbox().iter() {
                assert_eq!(g.get(p), whole.get(p), "rank {rank} point {p:?}");
            }
        }
    }

    #[test]
    fn wide_halo() {
        let d = Decomposition::new(BBox3::from_dims([12, 12, 4]), [3, 3, 1]);
        let whole = coord_field(d.global());
        let fields = block_fields(&d);
        let (ghosted, _) = exchange_ghosts(&d, &fields, 3);
        for g in &ghosted {
            for p in g.bbox().iter() {
                assert_eq!(g.get(p), whole.get(p));
            }
        }
    }

    #[test]
    fn single_rank_has_no_requests() {
        let d = Decomposition::new(BBox3::from_dims([4, 4, 4]), [1, 1, 1]);
        assert!(ghost_requests(&d, 0, 2).is_empty());
        let fields = block_fields(&d);
        let (ghosted, moved) = exchange_ghosts(&d, &fields, 2);
        assert_eq!(moved, 0);
        assert_eq!(ghosted[0], fields[0]);
    }

    #[test]
    fn zero_width_halo_is_identity() {
        let d = Decomposition::new(BBox3::from_dims([6, 6, 6]), [2, 1, 3]);
        let fields = block_fields(&d);
        let (ghosted, moved) = exchange_ghosts(&d, &fields, 0);
        assert_eq!(moved, 0);
        assert_eq!(ghosted, fields);
    }
}
