//! Property-based tests for the mesh substrate: decomposition coverage,
//! extract/paste round-trips, ghost correctness, and downsample alignment.

use proptest::prelude::*;
use sitra_mesh::{
    downsample, exchange_ghosts, field::assemble, ghost_requests, BBox3, Decomposition, ScalarField,
};

/// Strategy: a small global domain plus a valid parts vector.
fn domain_and_parts() -> impl Strategy<Value = (BBox3, [usize; 3])> {
    (2usize..10, 2usize..9, 2usize..8, 0usize..50).prop_flat_map(|(nx, ny, nz, off)| {
        (1usize..=nx.min(4), 1usize..=ny.min(3), 1usize..=nz.min(3)).prop_map(
            move |(px, py, pz)| {
                (
                    BBox3::new([off, off, off], [off + nx, off + ny, off + nz]),
                    [px, py, pz],
                )
            },
        )
    })
}

fn hashed_field(b: BBox3) -> ScalarField {
    ScalarField::from_fn(b, |p| {
        let h =
            p[0].wrapping_mul(73856093) ^ p[1].wrapping_mul(19349663) ^ p[2].wrapping_mul(83492791);
        (h % 10_007) as f64
    })
}

proptest! {
    #[test]
    fn blocks_partition_every_point((g, parts) in domain_and_parts()) {
        let d = Decomposition::new(g, parts);
        let mut owners = 0usize;
        for p in g.iter() {
            let r = d.rank_of_point(p);
            prop_assert!(d.block(r).contains(p));
            owners += 1;
            // No other rank owns it.
            for other in 0..d.rank_count() {
                if other != r {
                    prop_assert!(!d.block(other).contains(p));
                }
            }
        }
        prop_assert_eq!(owners, g.count());
    }

    #[test]
    fn extract_then_assemble_roundtrip((g, parts) in domain_and_parts()) {
        let d = Decomposition::new(g, parts);
        let f = hashed_field(g);
        let pieces: Vec<ScalarField> =
            (0..d.rank_count()).map(|r| f.extract(&d.block(r))).collect();
        prop_assert_eq!(assemble(g, &pieces, f64::NAN), f);
    }

    #[test]
    fn spatial_query_matches_bruteforce((g, parts) in domain_and_parts(),
                                        corner in prop::array::uniform3(0usize..6),
                                        ext in prop::array::uniform3(1usize..6)) {
        let d = Decomposition::new(g, parts);
        let q = BBox3::new(
            [g.lo[0] + corner[0], g.lo[1] + corner[1], g.lo[2] + corner[2]],
            [g.lo[0] + corner[0] + ext[0], g.lo[1] + corner[1] + ext[1], g.lo[2] + corner[2] + ext[2]],
        );
        let hits = d.ranks_overlapping(&q);
        // Brute force: which ranks intersect?
        for r in 0..d.rank_count() {
            let expect = d.block(r).intersect(&q).and_then(|b| b.intersect(&g));
            let got = hits.iter().find(|(rr, _)| *rr == r).map(|(_, b)| *b);
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn ghost_exchange_matches_owner((g, parts) in domain_and_parts(), h in 0usize..3) {
        let d = Decomposition::new(g, parts);
        let whole = hashed_field(g);
        let fields: Vec<ScalarField> =
            (0..d.rank_count()).map(|r| whole.extract(&d.block(r))).collect();
        let (ghosted, moved) = exchange_ghosts(&d, &fields, h);
        let mut expect_moved = 0;
        for (rank, gf) in ghosted.iter().enumerate() {
            prop_assert_eq!(gf.bbox(), d.block(rank).grow_clamped(h, &g));
            for p in gf.bbox().iter() {
                prop_assert_eq!(gf.get(p), whole.get(p));
            }
            expect_moved += gf.bbox().count() - d.block(rank).count();
        }
        prop_assert_eq!(moved, expect_moved);
    }

    #[test]
    fn ghost_requests_are_disjoint_and_complete((g, parts) in domain_and_parts(), h in 1usize..3) {
        let d = Decomposition::new(g, parts);
        for rank in 0..d.rank_count() {
            let own = d.block(rank);
            let grown = own.grow_clamped(h, &g);
            let reqs = ghost_requests(&d, rank, h);
            let total: usize = reqs.iter().map(|r| r.region.count()).sum();
            prop_assert_eq!(total, grown.count() - own.count());
            for (i, a) in reqs.iter().enumerate() {
                prop_assert!(d.block(a.owner).contains_box(&a.region));
                for b in &reqs[i + 1..] {
                    prop_assert!(a.region.intersect(&b.region).is_none());
                }
            }
        }
    }

    #[test]
    fn per_rank_downsample_equals_global((g, parts) in domain_and_parts(), stride in 1usize..5) {
        let d = Decomposition::new(g, parts);
        let whole = hashed_field(g);
        let global = downsample(&whole, stride);
        if global.coarse_bbox.is_empty() {
            return Ok(());
        }
        let mut acc = ScalarField::new_fill(global.coarse_bbox, f64::NAN);
        for r in 0..d.rank_count() {
            let piece = downsample(&whole.extract(&d.block(r)), stride);
            if !piece.coarse_bbox.is_empty() {
                acc.paste(&piece.as_field());
            }
        }
        prop_assert_eq!(acc, global.as_field());
    }
}
