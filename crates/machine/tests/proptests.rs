//! Property-based tests for the discrete-event pipeline model: basic
//! conservation laws and the queueing-theory sanity conditions.

use proptest::prelude::*;
use sitra_machine::{simulate_pipeline, IoModel, PipelineModel};

fn arb_model() -> impl Strategy<Value = PipelineModel> {
    (
        1usize..16,
        0.5..50.0f64,
        0.0..5.0f64,
        0.0..0.5f64,
        0.0..5.0f64,
        0.0..200.0f64,
        1usize..8,
        4usize..120,
    )
        .prop_map(
            |(n_buckets, sim, insitu, blocking, asynch, intransit, interval, steps)| {
                PipelineModel {
                    n_buckets,
                    sim_step_time: sim,
                    insitu_time: insitu,
                    movement_blocking: blocking,
                    movement_async: asynch,
                    intransit_time: intransit,
                    analysis_interval: interval,
                    n_steps: steps,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn conservation_and_bounds(m in arb_model()) {
        let r = simulate_pipeline(&m);
        // Makespan covers the simulation and every task.
        prop_assert!(r.makespan >= r.sim_finish - 1e-9);
        // Utilization in [0, 1].
        prop_assert!(r.bucket_utilization >= 0.0 && r.bucket_utilization <= 1.0 + 1e-9);
        // One latency entry per analysis step.
        let due = m.n_steps / m.analysis_interval;
        prop_assert_eq!(r.latencies.len(), due);
        // Latency at least the data path length.
        for &l in &r.latencies {
            prop_assert!(l >= m.movement_async + m.intransit_time - 1e-9);
        }
        // Overhead fraction consistent with inputs.
        let per = m.insitu_time + m.movement_blocking;
        let expect = (due as f64 * per)
            / (m.n_steps as f64 * m.sim_step_time + due as f64 * per);
        prop_assert!((r.sim_overhead_fraction - expect).abs() < 1e-9);
    }

    #[test]
    fn capacity_rule_predicts_sustainability(m in arb_model()) {
        let r = simulate_pipeline(&m);
        let due = m.n_steps / m.analysis_interval;
        if due < 8 {
            return Ok(()); // too short to classify
        }
        let period = m.analysis_interval as f64 * m.sim_step_time
            + m.insitu_time
            + m.movement_blocking;
        let demand = m.intransit_time / period; // busy buckets needed
        let capacity = m.n_buckets as f64;
        // Comfortably under capacity must be sustainable; comfortably
        // over must not be.
        if demand < 0.8 * capacity {
            prop_assert!(r.sustainable,
                "demand {demand:.2} < capacity {capacity} but flagged unsustainable");
        }
        if demand > 1.25 * capacity && due >= 16 {
            prop_assert!(!r.sustainable,
                "demand {demand:.2} > capacity {capacity} but flagged sustainable");
        }
    }

    #[test]
    fn more_buckets_never_hurt(m in arb_model()) {
        let r1 = simulate_pipeline(&m);
        let r2 = simulate_pipeline(&PipelineModel {
            n_buckets: m.n_buckets * 2,
            ..m
        });
        prop_assert!(r2.makespan <= r1.makespan + 1e-9);
        prop_assert!(r2.max_backlog <= r1.max_backlog);
        prop_assert!(r2.mean_latency <= r1.mean_latency + 1e-9);
    }

    #[test]
    fn io_model_monotone(bytes_a in 1usize..1_000_000_000,
                         bytes_b in 1usize..1_000_000_000,
                         files in 1usize..10_000) {
        let io = IoModel::jaguar_lustre();
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(io.write_time(lo, files) <= io.write_time(hi, files));
        prop_assert!(io.read_time(lo, files) <= io.read_time(hi, files));
        prop_assert!(io.write_time(lo, files) > 0.0);
    }
}
