//! Discrete-event simulation of the staging pipeline: simulation steps,
//! in-situ stages, asynchronous movement, and FCFS bucket scheduling.
//!
//! This reproduces, at any scale, the temporal-multiplexing behaviour the
//! paper demonstrates: in-transit work for successive analysis steps
//! lands on different buckets, so an in-transit stage *much slower than
//! the simulation cadence* (the hybrid merge tree takes ~120 s per step
//! against a 17 s simulation step!) still keeps up as long as
//! `intransit_time ≤ interval × step_period × n_buckets`.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Inputs of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineModel {
    /// Staging buckets available for this analysis.
    pub n_buckets: usize,
    /// Simulation compute per step (seconds).
    pub sim_step_time: f64,
    /// Synchronous in-situ analysis time added to analysis steps.
    pub insitu_time: f64,
    /// Portion of data movement that blocks the simulation (initiating
    /// the asynchronous send — small).
    pub movement_blocking: f64,
    /// Time for the asynchronous transfer to complete after the step
    /// (data becomes pullable this long after the in-situ stage ends).
    pub movement_async: f64,
    /// In-transit service time per analysis task on one bucket.
    pub intransit_time: f64,
    /// Run the analysis every `analysis_interval` steps (1 = every step).
    pub analysis_interval: usize,
    /// Total simulation steps to run.
    pub n_steps: usize,
}

/// Outputs of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// When the simulation finished its last step.
    pub sim_finish: f64,
    /// When the last in-transit task finished.
    pub makespan: f64,
    /// Fraction of simulation wall time spent on in-situ work and
    /// blocking sends.
    pub sim_overhead_fraction: f64,
    /// Mean delay from step completion to analysis completion.
    pub mean_latency: f64,
    /// Worst such delay.
    pub max_latency: f64,
    /// Maximum number of tasks simultaneously waiting for a bucket.
    pub max_backlog: usize,
    /// Busy fraction of the staging buckets over the makespan.
    pub bucket_utilization: f64,
    /// True if the pipeline keeps up: the queueing delay of the last
    /// analysis steps is no worse than that of the first ones (backlog
    /// does not grow with time).
    pub sustainable: bool,
    /// Per-task completion latencies (step completion → analysis done).
    pub latencies: Vec<f64>,
}

/// Run the event simulation.
pub fn simulate_pipeline(m: &PipelineModel) -> PipelineReport {
    assert!(m.n_buckets > 0, "need at least one bucket");
    assert!(m.analysis_interval > 0, "interval must be positive");
    // Phase 1: advance the simulation clock, emitting analysis tasks.
    let mut t = 0.0;
    let mut overhead = 0.0;
    let mut ready: Vec<(f64, f64)> = Vec::new(); // (step done, data ready)
    for step in 1..=m.n_steps {
        t += m.sim_step_time;
        if step % m.analysis_interval == 0 {
            t += m.insitu_time + m.movement_blocking;
            overhead += m.insitu_time + m.movement_blocking;
            ready.push((t, t + m.movement_async));
        }
    }
    let sim_finish = t;

    // Phase 2: FCFS assignment over the bucket pool (min-heap of free
    // times; f64 packed via to_bits is fine as all times are >= 0).
    let mut buckets: BinaryHeap<Reverse<u64>> = (0..m.n_buckets).map(|_| Reverse(0u64)).collect();
    let mut latencies = Vec::with_capacity(ready.len());
    let mut busy = 0.0;
    let mut makespan = sim_finish;
    let mut intervals: Vec<(f64, f64)> = Vec::new(); // (ready, start) for backlog
    for &(done, rdy) in &ready {
        let Reverse(free_bits) = buckets.pop().expect("bucket pool");
        let free = f64::from_bits(free_bits);
        let start = free.max(rdy);
        let finish = start + m.intransit_time;
        buckets.push(Reverse(finish.to_bits()));
        busy += m.intransit_time;
        latencies.push(finish - done);
        makespan = makespan.max(finish);
        intervals.push((rdy, start));
    }

    // Backlog: max number of tasks in [ready, start) at any instant.
    let mut events: Vec<(f64, i64)> = Vec::new();
    for &(r, s) in &intervals {
        if s > r {
            events.push((r, 1));
            events.push((s, -1));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut cur = 0i64;
    let mut max_backlog = 0i64;
    for (_, d) in events {
        cur += d;
        max_backlog = max_backlog.max(cur);
    }

    // Sustainability: compare queueing delays (start - ready) of the
    // first and last quarters.
    let waits: Vec<f64> = intervals.iter().map(|(r, s)| s - r).collect();
    let sustainable = if waits.len() >= 8 {
        let q = waits.len() / 4;
        let head: f64 = waits[..q].iter().sum::<f64>() / q as f64;
        let tail: f64 = waits[waits.len() - q..].iter().sum::<f64>() / q as f64;
        tail <= head + 1e-9 + 0.05 * m.intransit_time
    } else {
        waits.iter().all(|w| *w <= m.intransit_time * 2.0)
    };

    let (mean_latency, max_latency) = if latencies.is_empty() {
        (0.0, 0.0)
    } else {
        (
            latencies.iter().sum::<f64>() / latencies.len() as f64,
            latencies.iter().cloned().fold(0.0, f64::max),
        )
    };

    PipelineReport {
        sim_finish,
        makespan,
        sim_overhead_fraction: if sim_finish > 0.0 {
            overhead / sim_finish
        } else {
            0.0
        },
        mean_latency,
        max_latency,
        max_backlog: max_backlog as usize,
        bucket_utilization: if makespan > 0.0 {
            busy / (m.n_buckets as f64 * makespan)
        } else {
            0.0
        },
        sustainable,
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PipelineModel {
        PipelineModel {
            n_buckets: 4,
            sim_step_time: 10.0,
            insitu_time: 1.0,
            movement_blocking: 0.1,
            movement_async: 0.5,
            intransit_time: 20.0,
            analysis_interval: 1,
            n_steps: 40,
        }
    }

    #[test]
    fn overhead_only_counts_insitu_and_blocking() {
        let r = simulate_pipeline(&base());
        // 40 steps × 10 s + 40 × 1.1 s overhead.
        assert!((r.sim_finish - (400.0 + 44.0)).abs() < 1e-9);
        assert!((r.sim_overhead_fraction - 44.0 / 444.0).abs() < 1e-9);
    }

    #[test]
    fn enough_buckets_keep_up() {
        // Service 20 s per task, one task per 11.1 s, 4 buckets: capacity
        // 4/20 = 0.2 tasks/s > demand 0.09 tasks/s: sustainable.
        let r = simulate_pipeline(&base());
        assert!(r.sustainable, "latencies {:?}", &r.latencies[..8]);
        assert!(r.max_backlog <= 4);
        // Analysis completes long after each step, but latency is flat.
        assert!(r.mean_latency >= 20.0);
    }

    #[test]
    fn too_few_buckets_backlog_grows() {
        let m = PipelineModel {
            n_buckets: 1,
            ..base()
        };
        // Demand 1/11.1 tasks/s > capacity 1/20: diverges.
        let r = simulate_pipeline(&m);
        assert!(!r.sustainable);
        assert!(r.max_backlog > 10);
        assert!(r.max_latency > 100.0);
    }

    #[test]
    fn lower_frequency_restores_sustainability() {
        let m = PipelineModel {
            n_buckets: 1,
            analysis_interval: 4,
            ..base()
        };
        // One task per ~44 s against 20 s service: fine on one bucket.
        let r = simulate_pipeline(&m);
        assert!(r.sustainable);
        assert!(r.max_backlog <= 1);
    }

    #[test]
    fn fully_insitu_variant_has_no_staging() {
        let m = PipelineModel {
            insitu_time: 3.0,
            movement_blocking: 0.0,
            movement_async: 0.0,
            intransit_time: 0.0,
            ..base()
        };
        let r = simulate_pipeline(&m);
        assert_eq!(r.max_backlog, 0);
        assert!((r.makespan - r.sim_finish).abs() < 1e-9);
        // All cost is on the simulation side.
        assert!(r.sim_overhead_fraction > 0.2);
    }

    #[test]
    fn paper_scale_hybrid_topology_is_sustainable() {
        // Table II at 4896 cores: sim 16.85 s/step, subtree 2.72 s,
        // movement 2.06 s async, global tree 119.81 s in-transit, 256
        // buckets, analysis every step. The paper's whole point: this
        // keeps up easily.
        let m = PipelineModel {
            n_buckets: 256,
            sim_step_time: 16.85,
            insitu_time: 2.72,
            movement_blocking: 0.05,
            movement_async: 2.06,
            intransit_time: 119.81,
            analysis_interval: 1,
            n_steps: 200,
        };
        let r = simulate_pipeline(&m);
        assert!(r.sustainable);
        assert_eq!(r.max_backlog, 0, "256 buckets absorb a 120 s task easily");
        // Only ~7 buckets are ever busy at once.
        assert!(r.bucket_utilization < 0.05);
        // And the simulation sees only the in-situ + blocking overhead.
        assert!(r.sim_overhead_fraction < 0.15);
    }

    #[test]
    fn utilization_bounded_by_one() {
        for buckets in [1, 2, 7] {
            let r = simulate_pipeline(&PipelineModel {
                n_buckets: buckets,
                ..base()
            });
            assert!(r.bucket_utilization <= 1.0 + 1e-9);
            assert!(r.bucket_utilization > 0.0);
        }
    }

    #[test]
    fn no_analysis_steps() {
        let m = PipelineModel {
            analysis_interval: 100,
            n_steps: 50,
            ..base()
        };
        let r = simulate_pipeline(&m);
        assert!(r.latencies.is_empty());
        assert_eq!(r.mean_latency, 0.0);
        assert_eq!(r.sim_overhead_fraction, 0.0);
    }

    #[test]
    fn makespan_at_least_sim_finish() {
        for buckets in [1, 3, 16] {
            let r = simulate_pipeline(&PipelineModel {
                n_buckets: buckets,
                ..base()
            });
            assert!(r.makespan >= r.sim_finish);
        }
    }
}
