//! Cluster and core-allocation arithmetic (the paper's Table I rows).

use serde::{Deserialize, Serialize};

/// A machine allocation split into simulation/in-situ cores, DataSpaces
/// service cores, and in-transit (staging bucket) cores — the three-way
/// split of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cores running the simulation + in-situ stages (one rank each).
    pub simulation_cores: usize,
    /// Cores running DataSpaces servers.
    pub dataspaces_cores: usize,
    /// Cores acting as staging buckets.
    pub intransit_cores: usize,
    /// Cores per node (16 on the XK6).
    pub cores_per_node: usize,
}

impl ClusterSpec {
    /// The paper's 4896-core configuration: 16×28×10 = 4480 simulation
    /// cores, 160 DataSpaces cores, 256 in-transit cores.
    pub fn jaguar_4896() -> Self {
        Self {
            simulation_cores: 16 * 28 * 10,
            dataspaces_cores: 160,
            intransit_cores: 256,
            cores_per_node: 16,
        }
    }

    /// The paper's 9440-core configuration: 32×28×10 = 8960 simulation
    /// cores, 256 DataSpaces cores, 224 in-transit cores.
    pub fn jaguar_9440() -> Self {
        Self {
            simulation_cores: 32 * 28 * 10,
            dataspaces_cores: 256,
            intransit_cores: 224,
            cores_per_node: 16,
        }
    }

    /// Total allocated cores.
    pub fn total_cores(&self) -> usize {
        self.simulation_cores + self.dataspaces_cores + self.intransit_cores
    }

    /// Nodes needed for the allocation.
    pub fn nodes(&self) -> usize {
        self.total_cores().div_ceil(self.cores_per_node)
    }

    /// Fraction of the allocation spent on secondary (staging) resources.
    pub fn staging_fraction(&self) -> f64 {
        (self.dataspaces_cores + self.intransit_cores) as f64 / self.total_cores() as f64
    }
}

/// Strong-scaling compute model: time = cells-per-core × seconds-per-cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Seconds of compute per grid cell per step for the simulation.
    pub sim_seconds_per_cell: f64,
}

impl ComputeModel {
    /// Calibrate from a known (cells/core, seconds/step) pair — e.g. the
    /// paper's 100×49×43 cells in 16.85 s.
    pub fn calibrate(cells_per_core: usize, seconds_per_step: f64) -> Self {
        Self {
            sim_seconds_per_cell: seconds_per_step / cells_per_core as f64,
        }
    }

    /// Per-step simulation time for a given per-core block size.
    pub fn step_time(&self, cells_per_core: usize) -> f64 {
        self.sim_seconds_per_cell * cells_per_core as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_allocations() {
        let a = ClusterSpec::jaguar_4896();
        assert_eq!(a.simulation_cores, 4480);
        assert_eq!(a.total_cores(), 4896);
        assert_eq!(a.nodes(), 306);
        let b = ClusterSpec::jaguar_9440();
        assert_eq!(b.simulation_cores, 8960);
        assert_eq!(b.total_cores(), 9440);
        // Staging overhead is a small fraction of the machine.
        assert!(a.staging_fraction() < 0.1);
        assert!(b.staging_fraction() < 0.06);
    }

    #[test]
    fn strong_scaling_halves_step_time() {
        // Calibrated on the paper's 4896-core row, the model must
        // reproduce the 9440-core row: half the cells per core, half the
        // time (16.85 s -> 8.42 s).
        let m = ComputeModel::calibrate(100 * 49 * 43, 16.85);
        let t1 = m.step_time(100 * 49 * 43);
        let t2 = m.step_time(50 * 49 * 43);
        assert!((t1 - 16.85).abs() < 1e-9);
        assert!((t2 - 8.425).abs() < 1e-9);
    }

    #[test]
    fn nodes_round_up() {
        let s = ClusterSpec {
            simulation_cores: 17,
            dataspaces_cores: 0,
            intransit_cores: 0,
            cores_per_node: 16,
        };
        assert_eq!(s.nodes(), 2);
    }
}
