//! OST-limited file-per-process I/O model (Lustre-like).

use serde::{Deserialize, Serialize};

/// The paper's I/O setup: single-file-per-process achieving near-peak
/// bandwidth, with aggregate throughput capped by the number of Object
/// Storage Targets — which is why Table I's read/write times do *not*
/// change between 4896 and 9440 cores (total data is constant and the
/// OSTs, not the clients, are the bottleneck).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoModel {
    /// Number of OSTs serving the job.
    pub osts: usize,
    /// Sustained bandwidth per OST for writes (bytes/second).
    pub ost_write_bandwidth: f64,
    /// Sustained bandwidth per OST for reads (bytes/second).
    pub ost_read_bandwidth: f64,
    /// Per-file metadata/open overhead (seconds), amortized across
    /// clients that operate concurrently.
    pub file_overhead: f64,
}

impl IoModel {
    /// Calibrated so that one 98.5 GB checkpoint matches the paper's
    /// Table I: 3.28 s write (≈30 GB/s aggregate) and 6.56 s read
    /// (≈15 GB/s aggregate), independent of core count.
    pub fn jaguar_lustre() -> Self {
        Self {
            osts: 96,
            ost_write_bandwidth: 30.0e9 / 96.0,
            ost_read_bandwidth: 15.0e9 / 96.0,
            file_overhead: 5e-3,
        }
    }

    /// Aggregate write bandwidth (bytes/second).
    pub fn write_bandwidth(&self) -> f64 {
        self.osts as f64 * self.ost_write_bandwidth
    }

    /// Aggregate read bandwidth (bytes/second).
    pub fn read_bandwidth(&self) -> f64 {
        self.osts as f64 * self.ost_read_bandwidth
    }

    /// Time to write `bytes` total from `files` concurrent
    /// file-per-process writers.
    pub fn write_time(&self, bytes: usize, files: usize) -> f64 {
        // Overhead is paid concurrently, but the OSTs serialize the
        // streams beyond their count.
        let waves = files.div_ceil(self.osts.max(1)) as f64;
        self.file_overhead * waves + bytes as f64 / self.write_bandwidth()
    }

    /// Time to read `bytes` total into `files` concurrent readers.
    pub fn read_time(&self, bytes: usize, files: usize) -> f64 {
        let waves = files.div_ceil(self.osts.max(1)) as f64;
        self.file_overhead * waves + bytes as f64 / self.read_bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: usize = 98_500_000_000; // 98.5 GB

    #[test]
    fn matches_paper_table1_write() {
        let m = IoModel::jaguar_lustre();
        let t1 = m.write_time(SNAPSHOT, 4480);
        let t2 = m.write_time(SNAPSHOT, 8960);
        assert!((t1 - 3.28).abs() < 0.5, "write {t1}");
        // Constant in core count (within overhead noise).
        assert!((t2 - t1).abs() / t1 < 0.1, "t1 {t1} t2 {t2}");
    }

    #[test]
    fn matches_paper_table1_read() {
        let m = IoModel::jaguar_lustre();
        let t = m.read_time(SNAPSHOT, 4480);
        assert!((t - 6.56).abs() < 0.5, "read {t}");
    }

    #[test]
    fn read_slower_than_write_here() {
        let m = IoModel::jaguar_lustre();
        assert!(m.read_time(SNAPSHOT, 1000) > m.write_time(SNAPSHOT, 1000));
    }

    #[test]
    fn time_scales_linearly_with_bytes() {
        let m = IoModel::jaguar_lustre();
        let t1 = m.write_time(10_000_000_000, 96);
        let t2 = m.write_time(20_000_000_000, 96);
        assert!((t2 - m.file_overhead) / (t1 - m.file_overhead) > 1.99);
    }

    #[test]
    fn overhead_grows_in_waves() {
        let m = IoModel::jaguar_lustre();
        let few = m.write_time(1, 96);
        let many = m.write_time(1, 9600);
        assert!(many > few);
        assert!((many - few) - m.file_overhead * 99.0 < 1e-9);
    }
}
