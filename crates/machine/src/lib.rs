//! # sitra-machine
//!
//! A discrete-event model of the machine the paper ran on (Jaguar, the
//! Cray XK6 at ORNL: 18,688 nodes × 16 cores, Gemini interconnect,
//! Lustre filesystem) — used to *replay* the hybrid pipeline at paper
//! scale (thousands of ranks) on a laptop.
//!
//! Nothing in the analytics crates depends on this model; the live
//! pipeline runs for real at small scale. The model exists so the
//! benchmark harness can regenerate Tables I/II and Fig. 6 at the
//! paper's 4896/9440-core configurations: per-kernel *rates* are
//! calibrated by timing our real Rust kernels, and the model supplies
//! the machine-level arithmetic (strong-scaling compute, OST-limited
//! I/O, Gemini transfer costs) plus an event-driven simulation of the
//! staging pipeline (bucket scheduling, temporal multiplexing,
//! backlog).
//!
//! Modules:
//! * [`cluster`] — core-allocation arithmetic of Table I.
//! * [`io`] — the OST-limited file-per-process I/O model.
//! * [`pipeline`] — the discrete-event staging-pipeline simulator.

pub mod cluster;
pub mod io;
pub mod pipeline;

pub use cluster::ClusterSpec;
pub use io::IoModel;
pub use pipeline::{simulate_pipeline, PipelineModel, PipelineReport};
pub use sitra_dart::NetworkModel;
