//! Remote staging for the pipeline: intermediates, tasks, and outputs
//! flow through a [`SpaceServer`](sitra_dataspaces::SpaceServer)
//! (typically the `sitra-staged` binary) instead of the in-process
//! scheduler and DART fabric.
//!
//! Division of labour, mirroring the paper's deployment:
//!
//! * The **driver** (simulation side) puts each rank's in-situ
//!   intermediate into the space under `sitra.i/{label}` at
//!   `version = step`, region `[rank,0,0]`, then submits a *data-ready*
//!   task descriptor ([`RemoteTask`]) to the remote scheduler.
//! * **Bucket workers** ([`run_bucket_worker`]) — separate threads or
//!   separate processes, connected over `inproc://` or `tcp://` — pull
//!   tasks FCFS, fetch every rank's piece, run the aggregation stage,
//!   and put the encoded [`AnalysisOutput`] back under
//!   `sitra.o/{label}`.
//! * The driver collects outputs by polling the space, which keeps the
//!   simulation loop free of any consumer bookkeeping.
//!
//! A worker whose connection dies mid-assignment is harmless: the
//! server requeues the unacknowledged task and the worker reconnects
//! with bounded backoff ([`BucketWorkerOpts::backoff`]) — the
//! integration test injects exactly this failure.

use crate::analysis::AnalysisOutput;
use crate::placement::AnalysisSpec;
use crate::wire::{decode_analysis_output, encode_analysis_output, WireError};
use bytes::{BufMut, Bytes, BytesMut};
use sitra_cluster::ClusterClient;
use sitra_dataspaces::remote::{RemoteError, RemoteSpace, TaskPoll};
use sitra_dataspaces::scoped_var;
use sitra_mesh::BBox3;
use sitra_net::{Addr, Backoff};
use std::time::Duration;

/// Variable prefix for in-situ intermediates in the remote space.
pub const INTERMEDIATE_PREFIX: &str = "sitra.i/";
/// Variable prefix for completed analysis outputs in the remote space.
pub const OUTPUT_PREFIX: &str = "sitra.o/";

/// The variable a rank's intermediate for `label` is stored under.
pub fn intermediate_var(label: &str) -> String {
    format!("{INTERMEDIATE_PREFIX}{label}")
}

/// The variable an analysis output for `label` is stored under.
pub fn output_var(label: &str) -> String {
    format!("{OUTPUT_PREFIX}{label}")
}

/// The unit region a rank's intermediate occupies: ranks are laid out
/// along the x axis so a whole-step query returns pieces in rank order
/// (the space sorts by `bbox.lo`).
pub fn rank_bbox(rank: usize) -> BBox3 {
    BBox3::new([rank, 0, 0], [rank + 1, 1, 1])
}

/// The unit region an analysis output occupies.
pub fn output_bbox() -> BBox3 {
    BBox3::new([0, 0, 0], [1, 1, 1])
}

/// A data-ready descriptor queued in the remote scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteTask {
    /// Index into the (shared) analysis list.
    pub analysis_idx: u32,
    /// Timestep, also the space version of the intermediates.
    pub step: u64,
    /// How many rank pieces make up the task's input.
    pub n_ranks: u32,
}

/// Encode a task descriptor (16 bytes, little-endian).
pub fn encode_task(t: &RemoteTask) -> Bytes {
    let mut buf = BytesMut::with_capacity(16);
    buf.put_u32_le(t.analysis_idx);
    buf.put_u64_le(t.step);
    buf.put_u32_le(t.n_ranks);
    buf.freeze()
}

/// Decode a task descriptor. Total: errors instead of panicking.
pub fn decode_task(b: &Bytes) -> Result<RemoteTask, WireError> {
    if b.len() != 16 {
        return Err(WireError::Truncated { field: "task" });
    }
    let le4 = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().unwrap());
    let le8 = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
    Ok(RemoteTask {
        analysis_idx: le4(0),
        step: le8(4),
        n_ranks: le4(12),
    })
}

/// Knobs of a remote bucket worker.
pub struct BucketWorkerOpts {
    /// Reconnect policy after a lost connection.
    pub backoff: Backoff,
    /// Server-side wait per bucket-ready request.
    pub request_timeout: Duration,
    /// Fault injection: after this many completed tasks, drop the
    /// connection once in the middle of a bucket-ready request (the
    /// worker then reconnects and carries on). The doomed request waits
    /// long enough server-side that a task **will** be assigned to the
    /// dead connection, forcing the requeue path. `None` disables it.
    pub drop_connection_after: Option<usize>,
    /// Where this bucket's results land (the worker's home endpoint):
    /// declared with every bucket-ready request so a locality-aware
    /// scheduler can steer co-resident tasks here. `None` keeps the
    /// legacy unlocated request verb — byte-identical on the wire.
    pub location: Option<String>,
}

impl Default for BucketWorkerOpts {
    fn default() -> Self {
        Self {
            backoff: Backoff::default(),
            request_timeout: Duration::from_millis(500),
            drop_connection_after: None,
            location: None,
        }
    }
}

/// One poll of a [`TaskSource`], transport noise already absorbed.
enum WorkerPoll {
    /// An assignment: the encoded [`RemoteTask`] and the tenant it
    /// belongs to.
    Task { data: Bytes, tenant: String },
    /// Nothing this round (timeout, skipped member, transient error
    /// already retried) — poll again.
    Idle,
    /// The worker is finished: every scheduler closed, or this bucket
    /// was drained and retired by the capacity controller.
    Done,
}

/// Where a bucket worker leases tasks from and stages data against —
/// the one seam between the single-space and cluster workers. The
/// shared core ([`run_worker_core`]) owns the whole task lifecycle
/// (lease → decode → fetch → aggregate → store → account); a source
/// only answers polls and moves bytes.
trait TaskSource {
    /// One bucket-ready poll. `completed` is the lifetime task count,
    /// which fault injection keys off. Transient transport failures are
    /// handled internally (reconnect, strike-out) and surface as
    /// [`WorkerPoll::Idle`]; only fatal errors propagate.
    fn poll(&mut self, completed: usize) -> Result<WorkerPoll, RemoteError>;

    /// Fetch input pieces intersecting `query`.
    fn get(
        &self,
        var: &str,
        version: u64,
        query: &BBox3,
    ) -> Result<Vec<(BBox3, Bytes)>, RemoteError>;

    /// Store an encoded output.
    fn put(&self, var: &str, version: u64, bbox: BBox3, data: Bytes) -> Result<(), RemoteError>;

    /// Whether a task whose inputs cannot be fully assembled (or whose
    /// output cannot be stored) is **skipped** instead of failing the
    /// worker. Cluster staging skips — a fan-out get can race a shard
    /// handoff, and a partial aggregation would poison the golden
    /// outputs, while a missing output merely degrades the task at the
    /// driver's deadline. Single-space staging has no handoff to race,
    /// so there an unreachable input is a real fault.
    fn lenient(&self) -> bool;
}

/// The task lifecycle shared by both staging flavours: lease, decode,
/// assemble rank pieces, aggregate, store, account. Returns the number
/// of tasks completed when the source reports [`WorkerPoll::Done`].
fn run_worker_core<S: TaskSource>(
    source: &mut S,
    analyses: &[AnalysisSpec],
    bucket_id: u32,
) -> Result<usize, RemoteError> {
    let reg = sitra_obs::global();
    let obs_completed = reg.counter(&format!("worker.tasks.completed{{bucket={bucket_id}}}"));
    let obs_skipped = reg.counter(&format!("worker.tasks.skipped{{bucket={bucket_id}}}"));
    let mut completed = 0usize;
    loop {
        // The bucket pool is shared across tenants, so the assignment
        // itself names the namespace: this worker's connection stays
        // unbound and every space access is scoped explicitly. For the
        // default tenant the scoped name is the bare name, so legacy
        // single-tenant traffic is byte-identical.
        let (data, tenant) = match source.poll(completed)? {
            WorkerPoll::Task { data, tenant } => (data, tenant),
            WorkerPoll::Idle => continue,
            WorkerPoll::Done => return Ok(completed),
        };
        let task = decode_task(&data)
            .map_err(|e| RemoteError::Proto(format!("bad task descriptor: {e}")))?;
        let spec = analyses.get(task.analysis_idx as usize).ok_or_else(|| {
            RemoteError::Proto(format!("task for unknown analysis {}", task.analysis_idx))
        })?;
        // All rank pieces of this step; the space returns them sorted
        // by bbox.lo, i.e. in rank order, so the aggregation sees the
        // byte-identical part list the in-process bucket would.
        let query = BBox3::new([0, 0, 0], [task.n_ranks.max(1) as usize, 1, 1]);
        let pieces = match source.get(
            &scoped_var(&tenant, &intermediate_var(&spec.label)),
            task.step,
            &query,
        ) {
            Ok(p) => p,
            Err(_) if source.lenient() => {
                // Every member failed the fan-out; the task's inputs are
                // unreachable right now. Skip — the driver degrades it.
                obs_skipped.inc();
                continue;
            }
            Err(e) => return Err(e),
        };
        let mut parts: Vec<(usize, Bytes)> = pieces
            .into_iter()
            .map(|(bbox, data)| (bbox.lo[0], data))
            .collect();
        // The space stores at most one piece per (var, step, rank), but
        // aggregation is order-sensitive (the streaming merge tree
        // panics on a re-declared source), so a same-rank duplicate
        // must fail here as a protocol error instead. Identical
        // payloads — a benign re-delivery — are collapsed.
        parts.dedup();
        if let Some(w) = parts.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(RemoteError::Proto(format!(
                "conflicting duplicate parts for rank {} of {}@{}",
                w[0].0, spec.label, task.step
            )));
        }
        if source.lenient() && parts.len() != task.n_ranks as usize {
            // Incomplete assembly (handoff race or lost member): never
            // aggregate short.
            obs_skipped.inc();
            continue;
        }
        let t_agg = std::time::Instant::now();
        let out = spec.analysis.aggregate(task.step, &parts);
        let aggregate_secs = t_agg.elapsed().as_secs_f64();
        match source.put(
            &scoped_var(&tenant, &output_var(&spec.label)),
            task.step,
            output_bbox(),
            encode_analysis_output(&out),
        ) {
            Ok(()) => {}
            Err(_) if source.lenient() => {
                // The output's ring owner is unreachable; without the put
                // the task is as good as skipped and the driver degrades it.
                obs_skipped.inc();
                continue;
            }
            Err(e) => return Err(e),
        }
        completed += 1;
        obs_completed.inc();
        crate::driver::emit_aggregate(
            "worker",
            &spec.label,
            task.step,
            aggregate_secs,
            Some(bucket_id),
            false,
            0.0,
            0.0,
        );
    }
}

/// [`TaskSource`] over one [`SpaceServer`](sitra_dataspaces::SpaceServer)
/// connection, reconnecting with bounded backoff on transient failures.
struct SingleSource<'a> {
    endpoint: &'a Addr,
    space: RemoteSpace,
    bucket_id: u32,
    opts: &'a BucketWorkerOpts,
    drop_budget: Option<usize>,
    obs_reconnects: sitra_obs::Counter,
}

impl TaskSource for SingleSource<'_> {
    fn poll(&mut self, completed: usize) -> Result<WorkerPoll, RemoteError> {
        if self.drop_budget == Some(completed) {
            self.drop_budget = None;
            // Crash at the worst moment: mid-request, response unread.
            // The long timeout keeps the server-side bucket parked until
            // a task is assigned to the now-dead connection; the server
            // notices the missing ack, requeues, and the task is handed
            // to a healthy bucket. We reconnect and pick up where we
            // left off.
            self.space
                .fault_drop_during_request(self.bucket_id, Duration::from_secs(30));
            self.space = RemoteSpace::connect_retry(self.endpoint, &self.opts.backoff)?;
            self.obs_reconnects.inc();
        }
        let poll = match &self.opts.location {
            Some(loc) => {
                self.space
                    .request_task_located(self.bucket_id, self.opts.request_timeout, loc)
            }
            None => self
                .space
                .request_task(self.bucket_id, self.opts.request_timeout),
        };
        match poll {
            Ok(TaskPoll::Assigned { data, tenant, .. }) => Ok(WorkerPoll::Task { data, tenant }),
            Ok(TaskPoll::Empty) => Ok(WorkerPoll::Idle),
            // Closed ends the run; Retire ends this bucket (the capacity
            // controller drained it) while the scheduler lives on.
            Ok(TaskPoll::Closed) | Ok(TaskPoll::Retire) => Ok(WorkerPoll::Done),
            Err(e) if e.is_retryable() => {
                // Transient failure (connection lost to a server restart,
                // network hiccup, elapsed wait): reconnect with backoff
                // and retry. Fatal errors (protocol violations,
                // server-reported failures) still abort the worker.
                self.space = RemoteSpace::connect_retry(self.endpoint, &self.opts.backoff)?;
                self.obs_reconnects.inc();
                Ok(WorkerPoll::Idle)
            }
            Err(e) => Err(e),
        }
    }

    fn get(
        &self,
        var: &str,
        version: u64,
        query: &BBox3,
    ) -> Result<Vec<(BBox3, Bytes)>, RemoteError> {
        self.space.get(var, version, query)
    }

    fn put(&self, var: &str, version: u64, bbox: BBox3, data: Bytes) -> Result<(), RemoteError> {
        self.space.put(var, version, bbox, data)
    }

    fn lenient(&self) -> bool {
        false
    }
}

/// Run one staging bucket against a remote
/// [`SpaceServer`](sitra_dataspaces::SpaceServer): request
/// tasks until the scheduler closes (or retires this bucket),
/// aggregating each and putting the encoded output back into the
/// space. Returns the number of tasks completed.
///
/// `analyses` must be the same list (same order) the driver was
/// configured with — the task descriptor carries an index into it.
pub fn run_bucket_worker(
    endpoint: &Addr,
    analyses: &[AnalysisSpec],
    bucket_id: u32,
    opts: &BucketWorkerOpts,
) -> Result<usize, RemoteError> {
    let mut source = SingleSource {
        endpoint,
        space: RemoteSpace::connect_retry(endpoint, &opts.backoff)?,
        bucket_id,
        opts,
        drop_budget: opts.drop_connection_after,
        obs_reconnects: sitra_obs::global()
            .counter(&format!("worker.reconnects{{bucket={bucket_id}}}")),
    };
    run_worker_core(&mut source, analyses, bucket_id)
}

/// Consecutive failed polls of one cluster member before the worker
/// writes that member off as net-dead. The member's own crash handling
/// (suspicion, handoff) and the driver's deadline degradation own
/// correctness; this bound only stops the worker from sleeping on a
/// corpse while the rest of the cluster has work.
const MEMBER_DEAD_STRIKES: u32 = 3;

/// How many round-robin visits to a net-dead member the worker skips
/// between revival probes. A written-off endpoint is not gone forever:
/// a crashed member may restart, and a joiner may come up on a seeded
/// endpoint mid-run — the occasional cheap probe picks either back up.
const MEMBER_REVIVE_EVERY: u32 = 4;

/// Liveness bookkeeping for the cluster worker's round-robin: which
/// members are closed (permanent), which are net-dead (re-probed for
/// revival), and how many consecutive failures each live member has
/// accumulated.
///
/// The transitions are deliberately explicit because the counters used
/// to be inlined in the poll loop and mis-accounted two edges: strikes
/// survived a death→revival→death flap (so a member flapping at exactly
/// [`MEMBER_DEAD_STRIKES`] was re-declared dead on its *first* failure
/// after revival, double-counting the pre-death strikes), and the poll
/// budget was split over the original membership instead of the live
/// one.
struct MemberHealth {
    /// Scheduler answered `Closed`: permanent, never polled again.
    closed: Vec<bool>,
    /// Net-unreachable after [`MEMBER_DEAD_STRIKES`] consecutive
    /// failures; skipped except for periodic revival probes.
    dead: Vec<bool>,
    /// Consecutive retryable failures while live. Reset on success and
    /// on *every* dead/alive transition, so each episode starts from a
    /// clean count.
    strikes: Vec<u32>,
    /// Round-robin visits while dead, for spacing revival probes.
    visits: Vec<u32>,
}

impl MemberHealth {
    fn new(n: usize) -> Self {
        MemberHealth {
            closed: vec![false; n],
            dead: vec![false; n],
            strikes: vec![0; n],
            visits: vec![0; n],
        }
    }

    fn closed(&self, m: usize) -> bool {
        self.closed[m]
    }

    /// Members worth polling at all (not closed, not written off).
    /// The idle-rotation poll budget is split over this count.
    fn live(&self) -> usize {
        self.closed
            .iter()
            .zip(&self.dead)
            .filter(|(c, d)| !**c && !**d)
            .count()
    }

    /// Keep polling while at least one member is live; once every
    /// member is closed or written off dead, the worker retires (a
    /// written-off member's own crash handling and the driver's
    /// deadline degradation own correctness past this point).
    fn any_pollable(&self) -> bool {
        self.live() > 0
    }

    /// Should this visit actually poll `m`? Live members always poll;
    /// dead ones only on every [`MEMBER_REVIVE_EVERY`]-th visit.
    fn should_probe(&mut self, m: usize) -> bool {
        if !self.dead[m] {
            return true;
        }
        self.visits[m] += 1;
        self.visits[m].is_multiple_of(MEMBER_REVIVE_EVERY)
    }

    fn note_ok(&mut self, m: usize) {
        self.strikes[m] = 0;
        self.visits[m] = 0;
        self.dead[m] = false;
    }

    fn note_closed(&mut self, m: usize) {
        self.closed[m] = true;
        self.dead[m] = false;
    }

    /// Record a retryable failure. Returns whether the caller should
    /// back off briefly before the next poll (live member, not yet
    /// written off). A failed revival probe keeps the member dead
    /// without accumulating strikes — probes are free retries.
    fn note_err(&mut self, m: usize) -> bool {
        if self.dead[m] {
            return false;
        }
        self.strikes[m] += 1;
        if self.strikes[m] >= MEMBER_DEAD_STRIKES {
            self.dead[m] = true;
            // A fresh episode: the member must earn a full strike count
            // again after revival, and probe spacing restarts.
            self.strikes[m] = 0;
            self.visits[m] = 0;
            false
        } else {
            true
        }
    }
}

/// [`TaskSource`] over a member cluster: polls every member's scheduler
/// round-robin with [`MemberHealth`] strike-out/revival bookkeeping,
/// fetches with fan-out gets, routes puts through the ring.
struct ClusterSource<'a> {
    client: ClusterClient,
    health: MemberHealth,
    member: usize,
    bucket_id: u32,
    opts: &'a BucketWorkerOpts,
}

impl TaskSource for ClusterSource<'_> {
    fn poll(&mut self, _completed: usize) -> Result<WorkerPoll, RemoteError> {
        // Once every member is closed or written off dead the worker
        // retires: a written-off member's own crash handling and the
        // driver's deadline degradation own correctness past this point.
        if !self.health.any_pollable() {
            return Ok(WorkerPoll::Done);
        }
        let n = self.client.member_count();
        self.member = (self.member + 1) % n;
        let member = self.member;
        if self.health.closed(member) {
            return Ok(WorkerPoll::Idle);
        }
        if !self.health.should_probe(member) {
            return Ok(WorkerPoll::Idle);
        }
        // One task request blocks until the member has work or the
        // timeout lapses. Round-robin must not multiply that wait — the
        // budget is split so a full idle rotation costs one
        // `request_timeout`, the same bound as the single-space worker.
        // Re-derived every poll over the *live* member count: once
        // members die or close, a stale full-membership split would
        // shrink the rotation far below the budget and the worker would
        // hammer the survivors with short polls.
        let poll_timeout = self.opts.request_timeout / self.health.live().max(1) as u32;
        let poll = match &self.opts.location {
            Some(loc) => {
                self.client
                    .request_task_located(member, self.bucket_id, poll_timeout, loc)
            }
            None => self
                .client
                .request_task(member, self.bucket_id, poll_timeout),
        };
        match poll {
            Ok(p) => {
                self.health.note_ok(member);
                match p {
                    TaskPoll::Assigned { data, tenant, .. } => {
                        Ok(WorkerPoll::Task { data, tenant })
                    }
                    TaskPoll::Empty => Ok(WorkerPoll::Idle),
                    TaskPoll::Closed => {
                        self.health.note_closed(member);
                        Ok(WorkerPoll::Idle)
                    }
                    // One member draining this bucket retires the whole
                    // worker: the capacity controller targeted it, and a
                    // half-retired worker that keeps polling the other
                    // members would never actually shrink the fleet.
                    TaskPoll::Retire => Ok(WorkerPoll::Done),
                }
            }
            Err(e) if e.is_retryable() => {
                // The member may be mid-restart or partitioned; a few
                // more chances (the client already reconnected once),
                // then it is written off until a revival probe answers.
                if self.health.note_err(member) {
                    std::thread::sleep(self.opts.backoff.initial);
                }
                Ok(WorkerPoll::Idle)
            }
            Err(e) => Err(e),
        }
    }

    fn get(
        &self,
        var: &str,
        version: u64,
        query: &BBox3,
    ) -> Result<Vec<(BBox3, Bytes)>, RemoteError> {
        self.client.get(var, version, query)
    }

    fn put(&self, var: &str, version: u64, bbox: BBox3, data: Bytes) -> Result<(), RemoteError> {
        self.client.put(var, version, bbox, data)
    }

    fn lenient(&self) -> bool {
        true
    }
}

/// Run one staging bucket against a member cluster: poll every member's
/// scheduler round-robin, fetch each task's rank pieces with a fan-out
/// get (they may live on any member, or be mid-handoff), aggregate, and
/// route the output back through the ring. Returns the number of tasks
/// completed when every member's scheduler has closed or died.
///
/// A task whose pieces cannot all be found — the get raced a shard
/// handoff, or a member crashed with pieces aboard — is **skipped**,
/// never aggregated short: a partial aggregation would put a
/// wrong-but-present output that poisons the golden-output oracle,
/// while a missing output merely trips the driver's deadline and
/// degrades the task to an in-situ re-aggregation.
pub fn run_cluster_bucket_worker(
    endpoints: &[String],
    analyses: &[AnalysisSpec],
    bucket_id: u32,
    opts: &BucketWorkerOpts,
) -> Result<usize, RemoteError> {
    let client = ClusterClient::new(
        sitra_cluster::DEFAULT_SEED,
        sitra_cluster::DEFAULT_VNODES,
        endpoints.iter().cloned(),
        opts.backoff,
    )?;
    let n = client.member_count();
    let mut source = ClusterSource {
        client,
        health: MemberHealth::new(n),
        member: 0,
        bucket_id,
        opts,
    };
    run_worker_core(&mut source, analyses, bucket_id)
}

/// The poll loop shared by [`await_output`] and
/// [`await_output_cluster`]: `get` is however the caller queries its
/// staging area for output pieces.
fn await_output_with<G>(
    get: G,
    label: &str,
    step: u64,
    deadline: std::time::Instant,
) -> Result<AnalysisOutput, RemoteError>
where
    G: Fn(&str, u64, &BBox3) -> Result<Vec<(BBox3, Bytes)>, RemoteError>,
{
    const FIRST_SLEEP: Duration = Duration::from_micros(500);
    const MAX_SLEEP: Duration = Duration::from_millis(20);
    let var = output_var(label);
    let q = output_bbox();
    let mut sleep = FIRST_SLEEP;
    loop {
        let pieces = get(&var, step, &q)?;
        if let Some((_, data)) = pieces.into_iter().next() {
            return decode_analysis_output(data)
                .map_err(|e| RemoteError::Proto(format!("bad output for {label}@{step}: {e}")));
        }
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            return Err(RemoteError::Timeout(format!(
                "waiting for output {label}@{step}"
            )));
        }
        std::thread::sleep(sleep.min(left));
        sleep = (sleep * 2).min(MAX_SLEEP);
    }
}

/// Poll the space until the output of `(label, step)` appears, decode
/// it, or give up at `deadline` with [`RemoteError::Timeout`].
///
/// The poll interval backs off exponentially (capped) so a long wait
/// does not hammer the server, and the final sleep is clamped to the
/// time remaining so the deadline is honoured instead of overslept.
pub fn await_output(
    space: &RemoteSpace,
    label: &str,
    step: u64,
    deadline: std::time::Instant,
) -> Result<AnalysisOutput, RemoteError> {
    await_output_with(|var, v, q| space.get(var, v, q), label, step, deadline)
}

/// [`await_output`] against a staging cluster: each poll fans the get
/// out to every member, so the output is found wherever its worker put
/// it — including mid-rebalance, when the owning member just changed.
pub fn await_output_cluster(
    client: &ClusterClient,
    label: &str,
    step: u64,
    deadline: std::time::Instant,
) -> Result<AnalysisOutput, RemoteError> {
    await_output_with(|var, v, q| client.get(var, v, q), label, step, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::HybridStats;
    use crate::placement::Placement;
    use sitra_dataspaces::SpaceServer;
    use std::sync::Arc;

    #[test]
    fn task_codec_roundtrip_and_totality() {
        let t = RemoteTask {
            analysis_idx: 3,
            step: 91,
            n_ranks: 8,
        };
        assert_eq!(decode_task(&encode_task(&t)).unwrap(), t);
        assert!(decode_task(&Bytes::new()).is_err());
        assert!(decode_task(&Bytes::from(vec![0u8; 15])).is_err());
        assert!(decode_task(&Bytes::from(vec![0u8; 17])).is_err());
    }

    #[test]
    fn await_output_deadline_returns_timeout_promptly() {
        let addr: Addr = "inproc://core-await-timeout".parse().unwrap();
        let server = SpaceServer::start(&addr, 1).unwrap();
        let client = RemoteSpace::connect(&server.addr()).unwrap();
        let t0 = std::time::Instant::now();
        let deadline = t0 + Duration::from_millis(60);
        let err = await_output(&client, "never", 1, deadline).unwrap_err();
        let elapsed = t0.elapsed();
        assert!(matches!(err, RemoteError::Timeout(_)), "got {err:?}");
        assert!(err.is_retryable());
        // The deadline is honoured: the final sleep is clamped to the
        // time remaining, so we return at the deadline, not after an
        // extra full poll interval.
        assert!(elapsed >= Duration::from_millis(60));
        assert!(
            elapsed < Duration::from_millis(500),
            "overslept the deadline: {elapsed:?}"
        );
        server.shutdown();
    }

    #[test]
    fn member_health_flap_at_threshold_needs_full_strike_count() {
        // The regression: a member that dies at exactly
        // MEMBER_DEAD_STRIKES, revives on a probe, then fails again used
        // to be re-declared dead on that *first* post-revival failure,
        // because the pre-death strikes survived the flap.
        let mut h = MemberHealth::new(2);
        for _ in 0..MEMBER_DEAD_STRIKES {
            h.note_err(0);
        }
        assert!(h.dead[0]);
        assert_eq!(h.live(), 1, "poll budget follows live membership");

        // Failed revival probes are free: no strikes accumulate while
        // dead, and the member stays dead.
        for _ in 0..10 {
            assert!(!h.note_err(0), "dead-member probe must not back off");
        }
        assert!(h.dead[0]);

        // A probe answers: fresh episode.
        h.note_ok(0);
        assert!(!h.dead[0]);
        assert_eq!(h.live(), 2);

        // The member must earn a full strike count again before being
        // written off — strictly fewer failures keep it live.
        for _ in 0..MEMBER_DEAD_STRIKES - 1 {
            assert!(h.note_err(0), "live member under threshold backs off");
            assert!(!h.dead[0], "flap must not double-count old strikes");
        }
        h.note_err(0);
        assert!(h.dead[0]);
    }

    #[test]
    fn member_health_probe_spacing_and_retirement() {
        let mut h = MemberHealth::new(1);
        for _ in 0..MEMBER_DEAD_STRIKES {
            h.note_err(0);
        }
        // Every member dead (none closed): the worker retires rather
        // than spinning on revival probes forever.
        assert!(!h.any_pollable());
        // Probes fire on every MEMBER_REVIVE_EVERY-th visit, not every
        // rotation.
        let probes = (0..MEMBER_REVIVE_EVERY * 3)
            .filter(|_| h.should_probe(0))
            .count();
        assert_eq!(probes as u32, 3);
        // Closing is permanent and distinct from death.
        h.note_ok(0);
        assert!(h.any_pollable());
        h.note_closed(0);
        assert!(h.closed(0));
        assert!(!h.any_pollable());
    }

    #[test]
    fn worker_aggregates_tasks_from_space() {
        let addr: Addr = "inproc://core-worker".parse().unwrap();
        let server = SpaceServer::start(&addr, 2).unwrap();
        let analyses = vec![AnalysisSpec::new(
            Arc::new(HybridStats::default()),
            Placement::Hybrid,
            1,
        )];
        let label = analyses[0].label.clone();

        // Producer side: two ranks' learned models for one step.
        let producer = RemoteSpace::connect(&server.addr()).unwrap();
        use crate::analysis::InSituCtx;
        use sitra_mesh::{Decomposition, ScalarField};
        let g = sitra_mesh::BBox3::from_dims([8, 4, 4]);
        let decomp = Decomposition::new(g, [2, 1, 1]);
        let whole = ScalarField::from_fn(g, |p| p[0] as f64 * 0.25);
        let mut local_parts = Vec::new();
        for r in 0..2 {
            let block = whole.extract(&decomp.block(r));
            let ghosted = block.clone();
            let vars = vec![("T".to_string(), block)];
            let ctx = InSituCtx {
                rank: r,
                step: 1,
                decomp: &decomp,
                ghosted: &ghosted,
                vars: &vars,
            };
            let payload = analyses[0].analysis.in_situ(&ctx);
            producer
                .put(&intermediate_var(&label), 1, rank_bbox(r), payload.clone())
                .unwrap();
            local_parts.push((r, payload));
        }
        producer
            .submit_task(encode_task(&RemoteTask {
                analysis_idx: 0,
                step: 1,
                n_ranks: 2,
            }))
            .unwrap();
        producer.close_sched().unwrap();

        let done =
            run_bucket_worker(&server.addr(), &analyses, 0, &BucketWorkerOpts::default()).unwrap();
        assert_eq!(done, 1);

        let got = await_output(
            &producer,
            &label,
            1,
            std::time::Instant::now() + Duration::from_secs(5),
        )
        .unwrap();
        let expect = analyses[0].analysis.aggregate(1, &local_parts);
        assert_eq!(got, expect);
        assert_eq!(
            encode_analysis_output(&got),
            encode_analysis_output(&expect)
        );
        server.shutdown();
    }
}
