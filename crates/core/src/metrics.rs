//! Per-stage timing and data-movement metrics of a pipeline run.

use serde::{Deserialize, Serialize};

/// Metrics of one analysis on one step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalysisMetrics {
    /// Analysis identifier.
    pub analysis: String,
    /// Simulation step.
    pub step: u64,
    /// Wall seconds of the in-situ stage (max over ranks, i.e. the time
    /// the simulation is blocked, since ranks run it concurrently).
    pub insitu_secs: f64,
    /// Wall seconds of the in-situ stage summed over ranks (total core
    /// time burned on primary resources).
    pub insitu_core_secs: f64,
    /// Bytes shipped to the aggregation stage.
    pub movement_bytes: u64,
    /// Simulated network seconds for the movement (from the DART model).
    pub movement_sim_secs: f64,
    /// Wall seconds of the aggregation stage.
    pub aggregate_secs: f64,
    /// True if the aggregation ran on a staging bucket (hybrid), false
    /// if synchronously in-situ.
    pub aggregated_in_transit: bool,
    /// Which bucket ran the aggregation (hybrid only).
    pub bucket: Option<u32>,
    /// True if the bucket used streaming aggregation (payloads combined
    /// as they arrived, overlapping the remaining transfers).
    #[serde(default)]
    pub streamed: bool,
    /// Delay from step completion to output availability (hybrid only;
    /// 0 for in-situ where the output is ready when the step ends).
    pub completion_latency_secs: f64,
    /// True when this analysis was meant to aggregate in-transit but the
    /// staging path failed (deadline missed, task refused, endpoint
    /// unreachable) and the driver re-ran the aggregation in-situ — the
    /// paper's fully-in-situ formulation as a degradation path.
    #[serde(default)]
    pub degraded: bool,
}

/// Metrics of one simulation step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// Step number.
    pub step: u64,
    /// Wall seconds of the simulation compute (field generation).
    pub sim_secs: f64,
    /// Wall seconds of the ghost exchange.
    pub ghost_secs: f64,
    /// Wall seconds the step spent blocked on synchronous analysis work
    /// (in-situ stages + in-situ aggregations + send initiation).
    pub blocked_secs: f64,
    /// True when at least one of this step's hybrid analyses fell back
    /// to in-situ aggregation because the staging path failed.
    #[serde(default)]
    pub degraded: bool,
}

/// Everything measured over a pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineMetrics {
    /// Per-step simulation metrics.
    pub steps: Vec<StepMetrics>,
    /// Per-(analysis, step) metrics.
    pub analyses: Vec<AnalysisMetrics>,
    /// Total wall seconds of the run.
    pub total_secs: f64,
    /// Messages on the small-message path.
    pub smsg_messages: u64,
    /// Bytes moved on the small-message path.
    pub smsg_bytes: u64,
    /// Transactions on the bulk path.
    pub bte_transfers: u64,
    /// Bytes moved on the bulk path.
    pub bte_bytes: u64,
    /// Scheduler queue high-water mark.
    pub max_queue_depth: usize,
}

impl PipelineMetrics {
    /// All metrics rows of one analysis.
    pub fn for_analysis(&self, name: &str) -> Vec<&AnalysisMetrics> {
        self.analyses
            .iter()
            .filter(|a| a.analysis == name)
            .collect()
    }

    /// Mean in-situ seconds of an analysis across steps.
    pub fn mean_insitu_secs(&self, name: &str) -> f64 {
        let rows = self.for_analysis(name);
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.insitu_secs).sum::<f64>() / rows.len() as f64
    }

    /// Mean aggregation seconds of an analysis across steps.
    pub fn mean_aggregate_secs(&self, name: &str) -> f64 {
        let rows = self.for_analysis(name);
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.aggregate_secs).sum::<f64>() / rows.len() as f64
    }

    /// Mean simulation compute seconds per step.
    pub fn mean_sim_secs(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.sim_secs).sum::<f64>() / self.steps.len() as f64
    }

    /// Total bytes shipped to aggregation stages across every analysis
    /// and step (the run's data-movement bill, before fabric framing).
    pub fn movement_bytes(&self) -> u64 {
        self.analyses.iter().map(|a| a.movement_bytes).sum()
    }

    /// Steps on which at least one hybrid analysis fell back to in-situ
    /// aggregation.
    pub fn degraded_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.degraded).count()
    }

    /// `(analysis, step)` rows that degraded to in-situ fallback.
    pub fn degraded_analyses(&self) -> Vec<&AnalysisMetrics> {
        self.analyses.iter().filter(|a| a.degraded).collect()
    }

    /// Mean bytes moved per analysis step.
    pub fn mean_movement_bytes(&self, name: &str) -> f64 {
        let rows = self.for_analysis(name);
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.movement_bytes as f64).sum::<f64>() / rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_helpers() {
        let m = PipelineMetrics {
            analyses: vec![
                AnalysisMetrics {
                    analysis: "a".into(),
                    insitu_secs: 1.0,
                    aggregate_secs: 4.0,
                    movement_bytes: 100,
                    ..Default::default()
                },
                AnalysisMetrics {
                    analysis: "a".into(),
                    insitu_secs: 3.0,
                    aggregate_secs: 6.0,
                    movement_bytes: 300,
                    ..Default::default()
                },
                AnalysisMetrics {
                    analysis: "b".into(),
                    insitu_secs: 9.0,
                    ..Default::default()
                },
            ],
            steps: vec![
                StepMetrics {
                    sim_secs: 2.0,
                    ..Default::default()
                },
                StepMetrics {
                    sim_secs: 4.0,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(m.mean_insitu_secs("a"), 2.0);
        assert_eq!(m.mean_aggregate_secs("a"), 5.0);
        assert_eq!(m.mean_movement_bytes("a"), 200.0);
        assert_eq!(m.movement_bytes(), 400);
        assert_eq!(m.mean_insitu_secs("b"), 9.0);
        assert_eq!(m.mean_insitu_secs("missing"), 0.0);
        assert_eq!(m.mean_sim_secs(), 3.0);
        assert_eq!(m.for_analysis("a").len(), 2);
    }

    #[test]
    fn serializes_to_json() {
        let m = PipelineMetrics::default();
        let s = serde_json::to_string(&m).unwrap();
        let back: PipelineMetrics = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
