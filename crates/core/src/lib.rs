//! # sitra-core
//!
//! The hybrid in-situ/in-transit analysis framework — the paper's primary
//! contribution, assembled from the workspace substrates:
//!
//! * [`analysis`] — the two-stage [`analysis::Analysis`] abstraction
//!   (a data-parallel in-situ stage producing small intermediates, and
//!   an aggregation stage) plus the five concrete configurations the
//!   paper evaluates: fully in-situ visualization and statistics, hybrid
//!   visualization (down-sample + in-transit render), hybrid statistics
//!   (in-situ learn + in-transit derive), and hybrid topology (in-situ
//!   subtrees + in-transit streaming merge).
//! * [`placement`] — where the aggregation stage runs: synchronously on
//!   the primary resources ([`placement::Placement::InSitu`]) or
//!   asynchronously on staging buckets ([`placement::Placement::Hybrid`]).
//! * [`wire`] — compact binary codecs for the intermediates (what
//!   actually crosses the transport, so data-movement accounting is
//!   honest).
//! * [`driver`] — the live pipeline: a simulation proxy stepping on the
//!   primary ranks, in-situ stages run data-parallel per rank, payloads
//!   exported through the DART fabric, *data-ready* tasks queued in the
//!   scheduler, staging-bucket threads pulling payloads via RDMA and
//!   running the aggregation, with per-stage metrics collected
//!   throughout.

pub mod analysis;
pub mod driver;
pub mod metrics;
pub mod placement;
pub mod remote;
pub mod wire;

pub use analysis::{
    Aggregator, Analysis, AnalysisOutput, AutoCorrelation, FeatureStats, HybridStats,
    HybridTopology, HybridViz, InSituCtx, InSituViz,
};
pub use driver::{run_pipeline, PipelineConfig, PipelineResult};
pub use metrics::{AnalysisMetrics, PipelineMetrics, StepMetrics};
pub use placement::{AnalysisSpec, Placement};
pub use remote::{run_bucket_worker, BucketWorkerOpts, RemoteTask};
