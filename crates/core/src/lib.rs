//! # sitra-core
//!
//! The hybrid in-situ/in-transit analysis framework — the paper's primary
//! contribution, assembled from the workspace substrates:
//!
//! * [`analysis`] — the two-stage [`analysis::Analysis`] abstraction
//!   (a data-parallel in-situ stage producing small intermediates, and
//!   an aggregation stage) plus the five concrete configurations the
//!   paper evaluates: fully in-situ visualization and statistics, hybrid
//!   visualization (down-sample + in-transit render), hybrid statistics
//!   (in-situ learn + in-transit derive), and hybrid topology (in-situ
//!   subtrees + in-transit streaming merge).
//! * [`placement`] — where the aggregation stage runs: synchronously on
//!   the primary resources ([`placement::Placement::InSitu`]) or
//!   asynchronously on staging buckets ([`placement::Placement::Hybrid`]).
//! * [`wire`] — compact binary codecs for the intermediates (what
//!   actually crosses the transport, so data-movement accounting is
//!   honest).
//! * [`driver`] — the live pipeline: a simulation proxy stepping on the
//!   primary ranks, in-situ stages run data-parallel per rank, and every
//!   due analysis handed to a pluggable
//!   [`driver::staging::StagingBackend`] (synchronous in-situ, in-process
//!   staging buckets over the DART fabric, or a remote staging service),
//!   with per-stage metrics and retirement accounting shared across all
//!   backends.

pub mod analysis;
pub mod driver;
pub mod metrics;
pub mod placement;
pub mod remote;
pub mod wire;

pub use analysis::{
    Aggregator, Analysis, AnalysisOutput, AutoCorrelation, FeatureStats, HybridStats,
    HybridTopology, HybridViz, InSituCtx, InSituViz, LagrangianFlowMap,
};
pub use driver::{run_pipeline, ConfigError, PipelineConfig, PipelineResult, StagingMode};
pub use metrics::{AnalysisMetrics, PipelineMetrics, StepMetrics};
pub use placement::{AnalysisSpec, Placement};
pub use remote::{run_bucket_worker, run_cluster_bucket_worker, BucketWorkerOpts, RemoteTask};
