//! Placement policies: where an analysis's aggregation stage runs.

use crate::analysis::Analysis;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Where the aggregation (second) stage of an analysis executes.
///
/// The same two-stage decomposition supports the whole spectrum the
/// paper describes — "from pure in-situ to pure in-transit":
///
/// * [`Placement::InSitu`] — aggregation runs synchronously on the
///   primary resources as part of the simulation step (the paper's
///   "in-situ visualization" / "in-situ descriptive statistics"
///   variants). The simulation pays the full cost but no data leaves the
///   node.
/// * [`Placement::Hybrid`] — intermediates are shipped asynchronously to
///   the staging area and aggregated on a bucket (the hybrid variants).
///   The simulation pays only the in-situ stage plus the send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Aggregate synchronously on the primary resources.
    InSitu,
    /// Ship intermediates and aggregate on a staging bucket.
    Hybrid,
}

/// One registered analysis: what to run, where to aggregate, how often.
#[derive(Clone)]
pub struct AnalysisSpec {
    /// The analysis implementation.
    pub analysis: Arc<dyn Analysis>,
    /// Where the aggregation stage runs.
    pub placement: Placement,
    /// Run every `interval` simulation steps.
    pub interval: usize,
    /// Unique label identifying this registration in metrics and outputs
    /// (the same algorithm may be registered under several placements).
    pub label: String,
}

impl AnalysisSpec {
    /// Convenience constructor; the label defaults to the analysis name.
    pub fn new(analysis: Arc<dyn Analysis>, placement: Placement, interval: usize) -> Self {
        assert!(interval > 0, "interval must be positive");
        let label = analysis.name().to_string();
        Self {
            analysis,
            placement,
            interval,
            label,
        }
    }

    /// Override the metrics/outputs label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Does this analysis run at `step`?
    pub fn due(&self, step: u64) -> bool {
        step > 0 && step.is_multiple_of(self.interval as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::HybridStats;

    #[test]
    fn due_respects_interval() {
        let spec = AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::Hybrid, 5);
        assert!(!spec.due(0));
        assert!(!spec.due(4));
        assert!(spec.due(5));
        assert!(spec.due(10));
        assert!(!spec.due(11));
    }

    #[test]
    #[should_panic]
    fn zero_interval_panics() {
        let _ = AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::InSitu, 0);
    }
}
