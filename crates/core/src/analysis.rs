//! The two-stage analysis abstraction and the paper's concrete analyses.
//!
//! Every analysis is decomposed per the paper's central idea: a
//! data-parallel, communication-free **in-situ stage** run independently
//! on each rank's block, producing an intermediate payload that is
//! orders of magnitude smaller than the raw block; and an **aggregation
//! stage** combining all ranks' intermediates. Where the aggregation
//! runs is a [`crate::Placement`] decision, not part of the algorithm —
//! the same code serves the fully in-situ and the hybrid variants.

use crate::wire;
use bytes::Bytes;
use sitra_flowmap::{advect_block, FlowMapOpts, FlowRecord};
use sitra_mesh::{downsample, Decomposition, ScalarField};
use sitra_stats::{derive, Derived, MultiModel};
use sitra_topology::distributed::{rank_subtree, BoundaryPolicy};
use sitra_topology::tree::CanonicalTree;
use sitra_topology::{Connectivity, StreamingMergeTree};
use sitra_viz::{render_block, HybridRenderer, Image, TransferFunction, View};

/// What one rank sees when running an in-situ stage.
pub struct InSituCtx<'a> {
    /// This rank.
    pub rank: usize,
    /// Current simulation step.
    pub step: u64,
    /// The domain decomposition.
    pub decomp: &'a Decomposition,
    /// The primary analysis variable over the rank's block grown by a
    /// one-point halo (from the ghost exchange).
    pub ghosted: &'a ScalarField,
    /// All simulation variables over the plain (un-ghosted) block, by
    /// name — multi-variable analyses (statistics) read these.
    pub vars: &'a [(String, ScalarField)],
}

impl InSituCtx<'_> {
    /// The rank's own block.
    pub fn block(&self) -> sitra_mesh::BBox3 {
        self.decomp.block(self.rank)
    }

    /// A named variable over the block.
    pub fn var(&self, name: &str) -> Option<&ScalarField> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }
}

/// Result of an aggregation stage.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisOutput {
    /// A composited or rendered image.
    Image(Image),
    /// The canonical global merge tree.
    Tree(CanonicalTree),
    /// Derived descriptive statistics per variable.
    Stats(Vec<(String, Derived)>),
    /// Named scalar results (e.g. correlations, test statistics).
    Scalars(Vec<(String, f64)>),
    /// Lagrangian flow-map termination records, sorted by seed id.
    FlowMap(Vec<FlowRecord>),
}

impl AnalysisOutput {
    /// The image, if this output is one.
    pub fn as_image(&self) -> Option<&Image> {
        match self {
            AnalysisOutput::Image(i) => Some(i),
            _ => None,
        }
    }

    /// The tree, if this output is one.
    pub fn as_tree(&self) -> Option<&CanonicalTree> {
        match self {
            AnalysisOutput::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// The statistics, if this output is them.
    pub fn as_stats(&self) -> Option<&[(String, Derived)]> {
        match self {
            AnalysisOutput::Stats(s) => Some(s),
            _ => None,
        }
    }

    /// The named scalars, if this output is them.
    pub fn as_scalars(&self) -> Option<&[(String, f64)]> {
        match self {
            AnalysisOutput::Scalars(s) => Some(s),
            _ => None,
        }
    }

    /// The flow-map records, if this output is them.
    pub fn as_flow_map(&self) -> Option<&[FlowRecord]> {
        match self {
            AnalysisOutput::FlowMap(r) => Some(r),
            _ => None,
        }
    }
}

/// An incremental aggregation in progress (one step, one bucket).
///
/// The paper's future-work item "process in-transit data in a streaming
/// fashion, starting as soon as the first data arrives" — implemented:
/// analyses that support it return one of these, the bucket feeds each
/// rank's payload the moment its RDMA pull completes, and the
/// aggregation cost overlaps the remaining transfers.
pub trait Aggregator: Send {
    /// Incorporate one rank's payload.
    fn feed(&mut self, rank: usize, payload: Bytes);
    /// All payloads delivered: produce the output.
    fn finish(self: Box<Self>) -> AnalysisOutput;
}

/// A two-stage (in-situ + aggregation) analysis.
pub trait Analysis: Send + Sync {
    /// Short identifier used in metrics and task descriptors.
    fn name(&self) -> &str;

    /// The data-parallel in-situ stage: runs on one rank, touches only
    /// local data, returns the encoded intermediate payload.
    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes;

    /// The aggregation stage: combines all ranks' payloads for one step.
    /// Runs either synchronously in-situ or on a staging bucket,
    /// depending on placement.
    fn aggregate(&self, step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput;

    /// Optional streaming aggregation: return an [`Aggregator`] to let
    /// the staging bucket start combining as soon as the first payload
    /// lands (instead of buffering everything first). Must produce the
    /// same output as [`Analysis::aggregate`] for any arrival order.
    fn streaming_aggregator(&self, step: u64) -> Option<Box<dyn Aggregator>> {
        let _ = step;
        None
    }
}

// ---------------------------------------------------------------------
// Visualization
// ---------------------------------------------------------------------

/// Fully in-situ visualization: every rank ray-casts its full-resolution
/// block; aggregation composites the partial images in visibility order.
pub struct InSituViz {
    /// The orthographic view.
    pub view: View,
    /// The transfer function.
    pub tf: TransferFunction,
}

impl Analysis for InSituViz {
    fn name(&self) -> &str {
        "viz-insitu"
    }

    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        let block = ctx.block();
        let img = render_block(ctx.ghosted, &block, &self.view, &self.tf);
        let (r, _, _) = self.view.axis.dims();
        let key = if self.view.flip {
            -(block.lo[r] as i64)
        } else {
            block.lo[r] as i64
        };
        wire::encode_partial_image(key, &img)
    }

    fn aggregate(&self, _step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        let mut imgs: Vec<(i64, Image)> = parts
            .iter()
            .map(|(_, b)| {
                wire::decode_partial_image(b.clone()).expect("valid in-process partial image")
            })
            .collect();
        imgs.sort_by_key(|(k, _)| *k);
        let mut out = Image::new(self.view.width, self.view.height);
        for (_, img) in &imgs {
            out.over(img);
        }
        AnalysisOutput::Image(out)
    }
}

/// Hybrid visualization: ranks down-sample in-situ; a single bucket
/// ray-casts the reduced blocks through the lookup table in-transit.
pub struct HybridViz {
    /// Down-sampling stride (the paper uses every 8th grid point).
    pub stride: usize,
    /// The orthographic view (full-resolution pixel geometry).
    pub view: View,
    /// The transfer function.
    pub tf: TransferFunction,
}

impl Analysis for HybridViz {
    fn name(&self) -> &str {
        "viz-hybrid"
    }

    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        // Down-sample the plain block (no halo needed: the global coarse
        // lattice is partitioned among ranks).
        let block = ctx.block();
        let own = ctx.ghosted.extract(&block);
        wire::encode_sampled_block(&downsample(&own, self.stride))
    }

    fn aggregate(&self, _step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        let blocks: Vec<_> = parts
            .iter()
            .map(|(_, b)| {
                wire::decode_sampled_block(b.clone()).expect("valid in-process sampled block")
            })
            .collect();
        let renderer = HybridRenderer::new(blocks);
        AnalysisOutput::Image(renderer.render(&self.view, &self.tf))
    }
}

// ---------------------------------------------------------------------
// Descriptive statistics
// ---------------------------------------------------------------------

/// Descriptive statistics with the learn/derive split: `learn` runs
/// in-situ per rank over all (or selected) variables; aggregation merges
/// the partial models and runs `derive`.
#[derive(Default)]
pub struct HybridStats {
    /// Restrict to these variables (all block variables when empty).
    pub variables: Vec<String>,
}

impl Analysis for HybridStats {
    fn name(&self) -> &str {
        "stats"
    }

    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        let selected: Vec<(&str, &[f64])> = ctx
            .vars
            .iter()
            .filter(|(n, _)| self.variables.is_empty() || self.variables.contains(n))
            .map(|(n, f)| (n.as_str(), f.as_slice()))
            .collect();
        assert!(!selected.is_empty(), "no variables to analyze");
        wire::encode_multimodel(&MultiModel::learn(&selected))
    }

    fn aggregate(&self, step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        let mut agg = self.streaming_aggregator(step).expect("always streams");
        for (rank, b) in parts {
            agg.feed(*rank, b.clone());
        }
        agg.finish()
    }

    /// Model merging is associative and commutative, so `derive` state
    /// builds up payload-by-payload.
    fn streaming_aggregator(&self, _step: u64) -> Option<Box<dyn Aggregator>> {
        struct Merge(MultiModel);
        impl Aggregator for Merge {
            fn feed(&mut self, _rank: usize, payload: Bytes) {
                let m = wire::decode_multimodel(payload).expect("valid in-process multimodel");
                self.0.merge(&m);
            }
            fn finish(self: Box<Self>) -> AnalysisOutput {
                let stats = self
                    .0
                    .vars
                    .iter()
                    .map(|(name, m)| (name.clone(), derive(m).expect("non-empty model")))
                    .collect();
                AnalysisOutput::Stats(stats)
            }
        }
        Some(Box::new(Merge(MultiModel::default())))
    }
}

// ---------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------

/// Hybrid merge-tree analysis: in-situ local subtrees (sorted union-find
/// sweep + boundary reduction), in-transit streaming gluing.
pub struct HybridTopology {
    /// Superlevel-set connectivity.
    pub conn: Connectivity,
    /// Interface reduction policy.
    pub policy: BoundaryPolicy,
}

impl Default for HybridTopology {
    fn default() -> Self {
        Self {
            conn: Connectivity::Six,
            policy: BoundaryPolicy::BoundaryMaxima,
        }
    }
}

impl Analysis for HybridTopology {
    fn name(&self) -> &str {
        "topology"
    }

    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        let sub = rank_subtree(ctx.decomp, ctx.rank, ctx.ghosted, self.conn, self.policy);
        wire::encode_subtree(&sub)
    }

    fn aggregate(&self, step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        let mut agg = self.streaming_aggregator(step).expect("always streams");
        for (rank, b) in parts {
            agg.feed(*rank, b.clone());
        }
        agg.finish()
    }

    /// The merge-tree gluer is inherently streaming: subtrees are
    /// incorporated (and interior vertices finalized and evicted) as
    /// they arrive.
    fn streaming_aggregator(&self, _step: u64) -> Option<Box<dyn Aggregator>> {
        struct Glue(StreamingMergeTree);
        impl Aggregator for Glue {
            fn feed(&mut self, _rank: usize, payload: Bytes) {
                wire::decode_subtree(payload)
                    .expect("valid in-process subtree")
                    .stream_into(&mut self.0);
            }
            fn finish(self: Box<Self>) -> AnalysisOutput {
                let (tree, _) = self.0.finish();
                AnalysisOutput::Tree(tree.canonical())
            }
        }
        Some(Box::new(Glue(StreamingMergeTree::new())))
    }
}

// ---------------------------------------------------------------------
// Auto-correlative statistics (the paper's stated future work: "a
// hybrid in-situ/in-transit auto-correlative statistical technique")
// ---------------------------------------------------------------------

/// Temporal autocorrelation of one variable at a fixed step lag.
///
/// Each rank keeps a short ring of its past blocks (in-situ state — the
/// same scratch-memory budget discussion as the paper's in-situ stages);
/// when a lagged block is available it learns a bivariate
/// [`sitra_stats::CoMoments`] model between the block `lag` steps ago
/// and now, and ships the 48-byte model. The in-transit stage merges the
/// partials and derives the global lag-`lag` Pearson autocorrelation.
///
/// Before `lag` steps have elapsed, ranks ship empty models and the
/// output correlation is reported as NaN.
pub struct AutoCorrelation {
    /// Step lag.
    pub lag: usize,
    /// The variable name (must be materialized in `ctx.vars`).
    pub variable: String,
    history: parking_lot::Mutex<
        std::collections::HashMap<usize, std::collections::VecDeque<(u64, ScalarField)>>,
    >,
}

impl AutoCorrelation {
    /// Autocorrelation of `variable` at `lag` steps.
    pub fn new(lag: usize, variable: impl Into<String>) -> Self {
        assert!(lag > 0, "lag must be positive");
        Self {
            lag,
            variable: variable.into(),
            history: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

impl Analysis for AutoCorrelation {
    fn name(&self) -> &str {
        "autocorrelation"
    }

    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        let current = ctx
            .var(&self.variable)
            .unwrap_or_else(|| panic!("variable {} not materialized", self.variable))
            .clone();
        let mut hist = self.history.lock();
        let ring = hist.entry(ctx.rank).or_default();
        // Pair with the block exactly `lag` steps older, if present.
        let model = ring
            .iter()
            .find(|(s, _)| *s + self.lag as u64 == ctx.step)
            .map(|(_, old)| sitra_stats::CoMoments::from_slices(old.as_slice(), current.as_slice()))
            .unwrap_or_default();
        ring.push_back((ctx.step, current));
        while ring.len() > self.lag + 1 {
            ring.pop_front();
        }
        wire::encode_comoments(&model)
    }

    fn aggregate(&self, _step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        let mut merged = sitra_stats::CoMoments::new();
        for (_, b) in parts {
            let m = wire::decode_comoments(b.clone()).expect("valid in-process comoments");
            merged.merge(&m);
        }
        AnalysisOutput::Scalars(vec![
            (
                format!("autocorr({}, lag={})", self.variable, self.lag),
                merged.correlation().unwrap_or(f64::NAN),
            ),
            ("observations".to_string(), merged.n as f64),
        ])
    }
}

// ---------------------------------------------------------------------
// Lagrangian flow maps (Sane et al., "Scalable In Situ Lagrangian Flow
// Map Extraction": communication-free particle bases per rank)
// ---------------------------------------------------------------------

/// Communication-free Lagrangian flow-map extraction.
///
/// * **In-situ**: each rank seeds a globally aligned particle lattice
///   inside its own block and advects every seed by RK4 through the
///   block's `(U, V, W)` velocity snapshot
///   ([`sitra_flowmap::advect_block`]), shipping one 61-byte
///   termination record per seed. Compute-heavy, tiny output — the
///   opposite cost shape of the down-sample/render analyses.
/// * **Aggregation**: concatenate every rank's records and sort by the
///   (globally unique) seed id. Order-independent, hence streamable.
///
/// Requires `Variable::VelU/VelV/VelW` in
/// [`PipelineConfig::extra_variables`](crate::PipelineConfig::extra_variables)
/// so the velocity components are materialized per block.
#[derive(Debug, Clone, Default)]
pub struct LagrangianFlowMap {
    /// Seeding and integration parameters.
    pub opts: FlowMapOpts,
}

impl Analysis for LagrangianFlowMap {
    fn name(&self) -> &str {
        "flow-map"
    }

    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        let component = |name: &str| {
            ctx.var(name).unwrap_or_else(|| {
                panic!("velocity component {name} not materialized; add Variable::Vel{name} to extra_variables")
            })
        };
        let recs = advect_block(
            component("U"),
            component("V"),
            component("W"),
            &ctx.block(),
            &ctx.decomp.global(),
            &self.opts,
        );
        wire::encode_flow_records(&recs)
    }

    fn aggregate(&self, step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        let mut agg = self.streaming_aggregator(step).expect("always streams");
        for (rank, b) in parts {
            agg.feed(*rank, b.clone());
        }
        agg.finish()
    }

    /// Concatenation commutes and the final sort canonicalizes, so
    /// records accumulate in whatever order payloads arrive.
    fn streaming_aggregator(&self, _step: u64) -> Option<Box<dyn Aggregator>> {
        struct Gather(Vec<FlowRecord>);
        impl Aggregator for Gather {
            fn feed(&mut self, _rank: usize, payload: Bytes) {
                self.0.extend(
                    wire::decode_flow_records(payload).expect("valid in-process flow records"),
                );
            }
            fn finish(self: Box<Self>) -> AnalysisOutput {
                let mut recs = self.0;
                recs.sort_by_key(|r| r.seed);
                AnalysisOutput::FlowMap(recs)
            }
        }
        Some(Box::new(Gather(Vec::new())))
    }
}

// ---------------------------------------------------------------------
// Feature-based statistics (the paper's stated future work: "combining
// the merge tree computation ... with statistical analyses to enable the
// computation of feature-based statistics")
// ---------------------------------------------------------------------

/// Per-feature descriptive statistics: every superlevel-set feature at
/// `threshold` gets its own statistical model.
///
/// * **In-situ**: each rank computes its subtree (as [`HybridTopology`]),
///   *pins* the local component maxima of the thresholded region, and
///   learns one [`sitra_stats::Moments`] model per local component over
///   its own block's cells.
/// * **In-transit**: the subtrees are glued; the global merge tree maps
///   every pinned local maximum to its feature representative (the
///   sweep-highest maximum of its superlevel component at the
///   threshold), and the partial models merge per feature.
///
/// The output equals computing the global threshold segmentation and one
/// model per global feature — but nothing global ever ran on the
/// simulation side.
pub struct FeatureStats {
    /// Feature threshold (superlevel set).
    pub threshold: f64,
    /// Connectivity.
    pub conn: Connectivity,
    /// Interface reduction policy.
    pub policy: BoundaryPolicy,
}

impl Analysis for FeatureStats {
    fn name(&self) -> &str {
        "feature-stats"
    }

    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        let mut sub = rank_subtree(ctx.decomp, ctx.rank, ctx.ghosted, self.conn, self.policy);
        // Segment the ghosted region: labels are the component maxima of
        // the *local* thresholded region — always leaves of the local
        // tree, hence present in the subtree.
        let global = ctx.decomp.global();
        let seg = sitra_topology::segment_superlevel(
            ctx.ghosted,
            &global,
            self.threshold,
            self.conn,
            None,
        );
        // Learn one model per label over the rank's OWN cells only (the
        // halo belongs to the neighbors).
        let block = ctx.block();
        let mut models: std::collections::HashMap<u64, sitra_stats::Moments> =
            std::collections::HashMap::new();
        for p in block.iter() {
            if let Some(label) = seg.label(p) {
                models.entry(label).or_default().push(ctx.ghosted.get(p));
            }
        }
        // Pin the labels so the gluer keeps them addressable.
        for v in &mut sub.verts {
            if models.contains_key(&v.id) {
                v.pinned = true;
            }
        }
        for id in models.keys() {
            debug_assert!(
                sub.verts.iter().any(|v| v.id == *id),
                "label {id} must be a subtree vertex (a local maximum)"
            );
        }
        let mut feats: Vec<(u64, sitra_stats::Moments)> = models.into_iter().collect();
        feats.sort_by_key(|(id, _)| *id);
        wire::encode_feature_stats(&sub, &feats)
    }

    fn aggregate(&self, _step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        let mut sink = StreamingMergeTree::new();
        let mut all_feats: Vec<(u64, sitra_stats::Moments)> = Vec::new();
        for (_, b) in parts {
            let (sub, feats) =
                wire::decode_feature_stats(b.clone()).expect("valid in-process feature stats");
            sub.stream_into(&mut sink);
            all_feats.extend(feats);
        }
        let (tree, _) = sink.finish();
        let reps = tree.feature_representatives(self.threshold);
        let mut merged: std::collections::HashMap<u64, sitra_stats::Moments> =
            std::collections::HashMap::new();
        for (label, m) in all_feats {
            let rep = *reps
                .get(&label)
                .unwrap_or_else(|| panic!("label {label} missing from glued tree"));
            merged.entry(rep).or_default().merge(&m);
        }
        let mut out: Vec<(String, Derived)> = merged
            .into_iter()
            .map(|(rep, m)| (format!("feature:{rep}"), derive(&m).expect("non-empty")))
            .collect();
        // Largest features first, deterministic order.
        out.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
        AnalysisOutput::Stats(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitra_mesh::{exchange_ghosts, BBox3};
    use sitra_viz::ViewAxis;

    fn setup(
        dims: [usize; 3],
        parts: [usize; 3],
    ) -> (Decomposition, ScalarField, Vec<ScalarField>) {
        let g = BBox3::from_dims(dims);
        let whole = ScalarField::from_fn(g, |p| {
            let x = p[0] as f64 * 0.55;
            let y = p[1] as f64 * 0.8;
            let z = p[2] as f64 * 0.35;
            (x.sin() * y.cos() + z.sin() + 2.0) / 4.0
        });
        let d = Decomposition::new(g, parts);
        let fields: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect();
        (d, whole, fields)
    }

    fn run_analysis(a: &dyn Analysis, d: &Decomposition, fields: &[ScalarField]) -> AnalysisOutput {
        let (ghosted, _) = exchange_ghosts(d, fields, 1);
        let parts: Vec<(usize, Bytes)> = (0..d.rank_count())
            .map(|r| {
                let vars = vec![("T".to_string(), fields[r].clone())];
                let ctx = InSituCtx {
                    rank: r,
                    step: 1,
                    decomp: d,
                    ghosted: &ghosted[r],
                    vars: &vars,
                };
                (r, a.in_situ(&ctx))
            })
            .collect();
        a.aggregate(1, &parts)
    }

    #[test]
    fn insitu_viz_equals_serial_render() {
        let (d, whole, fields) = setup([10, 8, 9], [2, 2, 1]);
        let view = View::full_res(whole.bbox(), ViewAxis::Z, false);
        let tf = TransferFunction::hot(0.0, 1.0);
        let a = InSituViz {
            view: view.clone(),
            tf: tf.clone(),
        };
        let out = run_analysis(&a, &d, &fields);
        let serial = sitra_viz::render_serial(&whole, &view, &tf);
        assert!(out.as_image().unwrap().max_abs_diff(&serial) < 1e-9);
    }

    #[test]
    fn insitu_viz_flipped_order_key() {
        let (d, whole, fields) = setup([8, 8, 8], [1, 1, 2]);
        let view = View {
            flip: true,
            ..View::full_res(whole.bbox(), ViewAxis::Z, false)
        };
        let tf = TransferFunction::hot(0.0, 1.0);
        let a = InSituViz {
            view: view.clone(),
            tf: tf.clone(),
        };
        let out = run_analysis(&a, &d, &fields);
        let serial = sitra_viz::render_serial(&whole, &view, &tf);
        assert!(out.as_image().unwrap().max_abs_diff(&serial) < 1e-9);
    }

    #[test]
    fn hybrid_viz_stride1_equals_serial() {
        let (d, whole, fields) = setup([10, 8, 9], [2, 2, 1]);
        let view = View::full_res(whole.bbox(), ViewAxis::Z, false);
        let tf = TransferFunction::hot(0.0, 1.0);
        let a = HybridViz {
            stride: 1,
            view: view.clone(),
            tf: tf.clone(),
        };
        let out = run_analysis(&a, &d, &fields);
        let serial = sitra_viz::render_serial(&whole, &view, &tf);
        assert!(out.as_image().unwrap().max_abs_diff(&serial) < 1e-9);
    }

    #[test]
    fn hybrid_viz_payload_shrinks_with_stride() {
        let (d, _, fields) = setup([16, 16, 16], [2, 2, 2]);
        let (ghosted, _) = exchange_ghosts(&d, &fields, 1);
        let sizes: Vec<usize> = [1usize, 4]
            .iter()
            .map(|&stride| {
                let a = HybridViz {
                    stride,
                    view: View::full_res(d.global(), ViewAxis::Z, false),
                    tf: TransferFunction::hot(0.0, 1.0),
                };
                (0..d.rank_count())
                    .map(|r| {
                        let ctx = InSituCtx {
                            rank: r,
                            step: 1,
                            decomp: &d,
                            ghosted: &ghosted[r],
                            vars: &[],
                        };
                        a.in_situ(&ctx).len()
                    })
                    .sum()
            })
            .collect();
        // 4³ = 64× fewer samples; headers damp the ratio on tiny blocks.
        assert!(sizes[0] > 20 * sizes[1], "sizes {sizes:?}");
    }

    #[test]
    fn stats_aggregation_equals_serial_learn() {
        let (d, whole, fields) = setup([9, 7, 6], [3, 1, 2]);
        let a = HybridStats::default();
        let out = run_analysis(&a, &d, &fields);
        let stats = out.as_stats().unwrap();
        assert_eq!(stats.len(), 1);
        let serial = derive(&sitra_stats::Moments::from_slice(whole.as_slice())).unwrap();
        let (name, got) = &stats[0];
        assert_eq!(name, "T");
        assert_eq!(got.count, serial.count);
        assert!((got.mean - serial.mean).abs() < 1e-12);
        assert!((got.variance - serial.variance).abs() < 1e-10);
        assert_eq!(got.min, serial.min);
        assert_eq!(got.max, serial.max);
    }

    #[test]
    fn stats_variable_selection() {
        let (d, _, fields) = setup([6, 6, 6], [2, 1, 1]);
        let (ghosted, _) = exchange_ghosts(&d, &fields, 1);
        let a = HybridStats {
            variables: vec!["P".to_string()],
        };
        let vars = vec![
            ("T".to_string(), fields[0].clone()),
            ("P".to_string(), fields[0].clone()),
        ];
        let ctx = InSituCtx {
            rank: 0,
            step: 1,
            decomp: &d,
            ghosted: &ghosted[0],
            vars: &vars,
        };
        let m = wire::decode_multimodel(a.in_situ(&ctx)).unwrap();
        assert_eq!(m.vars.len(), 1);
        assert_eq!(m.vars[0].0, "P");
    }

    #[test]
    fn topology_aggregation_equals_serial_tree() {
        let (d, whole, fields) = setup([9, 8, 7], [2, 2, 2]);
        for policy in [BoundaryPolicy::AllShared, BoundaryPolicy::BoundaryMaxima] {
            let a = HybridTopology {
                conn: Connectivity::Six,
                policy,
            };
            let out = run_analysis(&a, &d, &fields);
            let serial = sitra_topology::distributed::serial_merge_tree(&whole, Connectivity::Six)
                .canonical();
            assert_eq!(out.as_tree().unwrap(), &serial, "{policy:?}");
        }
    }

    #[test]
    fn feature_stats_equals_serial_per_feature_models() {
        // Two bumps: feature statistics must equal segmenting the whole
        // domain serially and learning one model per feature.
        let g = BBox3::from_dims([20, 10, 6]);
        let whole = ScalarField::from_fn(g, |p| {
            let b = |cx: f64, cy: f64, h: f64| {
                let dx = p[0] as f64 - cx;
                let dy = p[1] as f64 - cy;
                h * (-(dx * dx + dy * dy) / 8.0).exp()
            };
            b(5.0, 5.0, 10.0) + b(14.0, 5.0, 7.0) + 0.01 * p[2] as f64
        });
        let d = Decomposition::new(g, [2, 2, 2]);
        let fields: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect();
        let threshold = 2.0;
        let a = FeatureStats {
            threshold,
            conn: Connectivity::Six,
            policy: BoundaryPolicy::BoundaryMaxima,
        };
        let out = run_analysis(&a, &d, &fields);
        let got = out.as_stats().unwrap();

        // Serial reference.
        let seg =
            sitra_topology::segment_superlevel(&whole, &g, threshold, Connectivity::Six, None);
        let mut expect: std::collections::HashMap<u64, sitra_stats::Moments> =
            std::collections::HashMap::new();
        for p in g.iter() {
            if let Some(l) = seg.label(p) {
                expect.entry(l).or_default().push(whole.get(p));
            }
        }
        assert_eq!(got.len(), expect.len(), "feature count");
        assert_eq!(got.len(), 2, "two bumps above threshold");
        for (name, derived) in got {
            let rep: u64 = name.strip_prefix("feature:").unwrap().parse().unwrap();
            let reference = derive(&expect[&rep]).unwrap();
            assert_eq!(derived.count, reference.count, "{name}");
            assert!((derived.mean - reference.mean).abs() < 1e-9, "{name}");
            assert_eq!(derived.min, reference.min);
            assert_eq!(derived.max, reference.max);
        }
    }

    #[test]
    fn feature_stats_no_features_above_threshold() {
        let g = BBox3::from_dims([8, 8, 8]);
        let whole = ScalarField::new_fill(g, 1.0);
        let d = Decomposition::new(g, [2, 1, 1]);
        let fields: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect();
        let a = FeatureStats {
            threshold: 5.0,
            conn: Connectivity::Six,
            policy: BoundaryPolicy::AllShared,
        };
        let out = run_analysis(&a, &d, &fields);
        assert!(out.as_stats().unwrap().is_empty());
    }

    #[test]
    fn feature_stats_counts_every_cell_once() {
        // Total observation count across features == number of cells
        // above the threshold, regardless of block boundaries cutting
        // through features.
        let g = BBox3::from_dims([12, 12, 4]);
        let whole = ScalarField::from_fn(g, |p| ((p[0] * 31 + p[1] * 17 + p[2]) % 9) as f64);
        let d = Decomposition::new(g, [3, 2, 1]);
        let fields: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect();
        let threshold = 5.0;
        let a = FeatureStats {
            threshold,
            conn: Connectivity::Six,
            policy: BoundaryPolicy::BoundaryMaxima,
        };
        let out = run_analysis(&a, &d, &fields);
        let total: u64 = out.as_stats().unwrap().iter().map(|(_, d)| d.count).sum();
        let above = whole.as_slice().iter().filter(|&&v| v >= threshold).count() as u64;
        assert_eq!(total, above);
    }

    #[test]
    fn output_accessors() {
        let img = AnalysisOutput::Image(Image::new(2, 2));
        assert!(img.as_image().is_some());
        assert!(img.as_tree().is_none());
        assert!(img.as_stats().is_none());
        assert!(img.as_flow_map().is_none());
        let fm = AnalysisOutput::FlowMap(vec![]);
        assert!(fm.as_flow_map().is_some());
        assert!(fm.as_image().is_none());
    }

    fn flow_map_parts(
        d: &Decomposition,
        ghosted: &[ScalarField],
        a: &LagrangianFlowMap,
    ) -> Vec<(usize, Bytes)> {
        (0..d.rank_count())
            .map(|r| {
                let block = d.block(r);
                let vars = vec![
                    ("U".to_string(), ScalarField::new_fill(block, 0.9)),
                    ("V".to_string(), ScalarField::new_fill(block, 0.1)),
                    ("W".to_string(), ScalarField::new_fill(block, 0.0)),
                ];
                let ctx = InSituCtx {
                    rank: r,
                    step: 1,
                    decomp: d,
                    ghosted: &ghosted[r],
                    vars: &vars,
                };
                (r, a.in_situ(&ctx))
            })
            .collect()
    }

    #[test]
    fn flow_map_covers_global_lattice_once() {
        let (d, _, fields) = setup([12, 8, 6], [2, 2, 1]);
        let (ghosted, _) = exchange_ghosts(&d, &fields, 1);
        let a = LagrangianFlowMap::default();
        let parts = flow_map_parts(&d, &ghosted, &a);
        let out = a.aggregate(1, &parts);
        let recs = out.as_flow_map().unwrap();
        // Sorted strictly by seed: every global lattice point seeds in
        // exactly one rank's basis.
        assert!(recs.windows(2).all(|w| w[0].seed < w[1].seed));
        let g = d.global();
        let stride = a.opts.seed_stride;
        let expected: Vec<u64> = g
            .iter()
            .filter(|p| p.iter().all(|c| c % stride == 0))
            .map(|p| g.local_index(p) as u64)
            .collect();
        let got: Vec<u64> = recs.iter().map(|r| r.seed).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn flow_map_aggregation_is_order_independent() {
        let (d, _, fields) = setup([12, 8, 6], [2, 2, 1]);
        let (ghosted, _) = exchange_ghosts(&d, &fields, 1);
        let a = LagrangianFlowMap::default();
        let parts = flow_map_parts(&d, &ghosted, &a);
        let mut reversed = parts.clone();
        reversed.reverse();
        assert_eq!(a.aggregate(1, &parts), a.aggregate(1, &reversed));
    }
}
