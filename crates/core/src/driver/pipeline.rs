//! The step loop: advance the simulation, run in-situ stages, and hand
//! staged tasks to the configured backends.
//!
//! This file knows nothing about *where* aggregation happens — it
//! builds one [`StagedTask`] per due analysis and routes it either to
//! the always-present [`InSituBackend`] (for `Placement::InSitu`
//! analyses) or to the backend selected by
//! [`StagingMode`](crate::StagingMode) (for `Placement::Hybrid`).

use super::staging::{
    InSituBackend, LocalBackend, RemoteBackend, RetireCtx, StagedTask, StagingBackend,
};
use super::{ConfigError, PipelineConfig, PipelineResult, StagingMode};
use crate::analysis::InSituCtx;
use crate::metrics::{PipelineMetrics, StepMetrics};
use crate::placement::Placement;
use bytes::Bytes;
use rayon::prelude::*;
use sitra_dart::Fabric;
use sitra_mesh::{exchange_ghosts, Decomposition, ScalarField};
use sitra_sim::Simulation;
use std::time::Instant;

/// Run the hybrid pipeline live. See [`super`] module docs for the
/// flow. Returns [`ConfigError`] for a configuration that cannot run
/// (duplicate analysis labels, unparseable staging endpoint) instead of
/// panicking mid-flight.
pub fn run_pipeline(
    sim: &mut Simulation,
    cfg: &PipelineConfig,
) -> Result<PipelineResult, ConfigError> {
    let decomp = Decomposition::new(sim.global(), cfg.parts);
    let n_ranks = decomp.rank_count();

    {
        let mut labels: Vec<&str> = cfg.analyses.iter().map(|s| s.label.as_str()).collect();
        labels.sort_unstable();
        if let Some(w) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(ConfigError::DuplicateLabel(w[0].to_string()));
        }
    }
    let remote_addr = match &cfg.staging {
        StagingMode::Remote(endpoint) => Some(endpoint.parse::<sitra_net::Addr>().map_err(
            |e| ConfigError::InvalidEndpoint {
                endpoint: endpoint.clone(),
                reason: e.to_string(),
            },
        )?),
        StagingMode::Cluster(endpoints) => {
            if endpoints.is_empty() {
                return Err(ConfigError::EmptyCluster);
            }
            for endpoint in endpoints {
                endpoint
                    .parse::<sitra_net::Addr>()
                    .map_err(|e| ConfigError::InvalidEndpoint {
                        endpoint: endpoint.clone(),
                        reason: e.to_string(),
                    })?;
            }
            None
        }
        _ => None,
    };

    // Steerable visualization: bind the steering endpoint before any
    // work runs, and publish every collected image output through the
    // retirement seam so subscribers see frames as they retire.
    let steer = match &cfg.steering {
        Some(endpoint) => {
            if cfg.staging == StagingMode::InSitu {
                return Err(ConfigError::SteeringWithoutStaging {
                    endpoint: endpoint.clone(),
                });
            }
            let addr =
                endpoint
                    .parse::<sitra_net::Addr>()
                    .map_err(|e| ConfigError::InvalidEndpoint {
                        endpoint: endpoint.clone(),
                        reason: e.to_string(),
                    })?;
            Some(sitra_dataspaces::SteerServer::start(&addr).map_err(|e| {
                ConfigError::InvalidEndpoint {
                    endpoint: endpoint.clone(),
                    reason: e.to_string(),
                }
            })?)
        }
        None => None,
    };

    let fabric = Fabric::new(cfg.network);
    let ctx = match &steer {
        Some(server) => {
            let publisher = server.publisher();
            RetireCtx::with_observer(
                cfg.analyses.clone(),
                Some(std::sync::Arc::new(
                    move |_label: &str, _step, output: &_| {
                        if let crate::analysis::AnalysisOutput::Image(img) = output {
                            publisher.publish(img);
                        }
                    },
                )),
            )
        }
        None => RetireCtx::new(cfg.analyses.clone()),
    };

    // `Placement::InSitu` analyses always aggregate synchronously;
    // hybrid analyses go to the configured staging backend.
    let mut insitu = InSituBackend::new(ctx.clone());
    let mut staging: Box<dyn StagingBackend> = match &cfg.staging {
        StagingMode::InSitu => Box::new(InSituBackend::new(ctx.clone())),
        StagingMode::Local => Box::new(LocalBackend::new(
            ctx.clone(),
            &fabric,
            n_ranks,
            cfg.staging_buckets,
            cfg.staging_buffer_depth,
            cfg.bucket_autoscale,
        )),
        StagingMode::Remote(_) => Box::new(RemoteBackend::new(
            ctx.clone(),
            remote_addr.expect("validated above"),
            cfg.staging_deadline,
            cfg.staging_max_inflight,
            n_ranks as u32,
            cfg.staging_output_hook.clone(),
            cfg.staging_tenant.clone(),
        )),
        StagingMode::Cluster(endpoints) => Box::new(RemoteBackend::new_cluster(
            ctx.clone(),
            endpoints.clone(),
            cfg.staging_deadline,
            cfg.staging_max_inflight,
            n_ranks as u32,
            cfg.staging_output_hook.clone(),
            cfg.staging_tenant.clone(),
        )),
    };

    let mut steps_metrics = Vec::with_capacity(cfg.steps);
    let run_start = Instant::now();

    for _ in 0..cfg.steps {
        let t_step = Instant::now();
        sim.advance();
        let step = sim.step();

        // Generate per-rank blocks of the analysis variable, in
        // parallel across ranks.
        let blocks: Vec<ScalarField> = (0..n_ranks)
            .into_par_iter()
            .map(|r| sim.block_field(cfg.analysis_variable, &decomp.block(r)))
            .collect();
        let mut sim_secs = t_step.elapsed().as_secs_f64();

        let t_ghost = Instant::now();
        let (ghosted, _) = exchange_ghosts(&decomp, &blocks, 1);
        let ghost_secs = t_ghost.elapsed().as_secs_f64();

        // Per-rank variable lists: the already-materialized block
        // serves as the analysis variable's entry (moved in, not
        // re-generated or cloned); extra variables are generated on
        // demand.
        let t_extra = Instant::now();
        let extra: Vec<Vec<(String, ScalarField)>> = blocks
            .into_iter()
            .enumerate()
            .into_par_iter()
            .map(|(r, block)| {
                let mut v = vec![(cfg.analysis_variable.name().to_string(), block)];
                for var in &cfg.extra_variables {
                    if *var != cfg.analysis_variable {
                        v.push((
                            var.name().to_string(),
                            sim.block_field(*var, &decomp.block(r)),
                        ));
                    }
                }
                v
            })
            .collect();
        sim_secs += t_extra.elapsed().as_secs_f64();

        // Opportunistically retire staged work that already finished,
        // then run this step's due analyses.
        let mut blocked_secs = staging.collect_ready();
        for (ai, spec) in cfg.analyses.iter().enumerate() {
            if !spec.due(step) {
                continue;
            }
            // In-situ stage, data-parallel over ranks; wall time of the
            // stage is the max per-rank time (ranks run concurrently on
            // the real machine), core time is the sum.
            let t0 = Instant::now();
            let timed: Vec<(usize, Bytes, f64)> = (0..n_ranks)
                .into_par_iter()
                .map(|r| {
                    let ctx = InSituCtx {
                        rank: r,
                        step,
                        decomp: &decomp,
                        ghosted: &ghosted[r],
                        vars: &extra[r],
                    };
                    let t = Instant::now();
                    let payload = spec.analysis.in_situ(&ctx);
                    (r, payload, t.elapsed().as_secs_f64())
                })
                .collect();
            let insitu_wall = t0.elapsed().as_secs_f64();
            let insitu_secs = timed.iter().map(|(_, _, t)| *t).fold(0.0, f64::max);
            let insitu_core_secs: f64 = timed.iter().map(|(_, _, t)| *t).sum();
            let movement_bytes: u64 = timed.iter().map(|(_, b, _)| b.len() as u64).sum();
            let movement_sim_secs: f64 = timed
                .iter()
                .map(|(_, b, _)| cfg.network.auto_transfer_time(b.len()))
                .sum();
            let parts: Vec<(usize, Bytes)> = timed.into_iter().map(|(r, b, _)| (r, b)).collect();

            let task = StagedTask {
                analysis_idx: ai,
                step,
                issued: Instant::now(),
                parts,
                insitu_secs,
                insitu_core_secs,
                movement_bytes,
                movement_sim_secs,
            };
            let backend: &mut dyn StagingBackend = match spec.placement {
                Placement::InSitu => &mut insitu,
                Placement::Hybrid => staging.as_mut(),
            };
            blocked_secs += insitu_wall + backend.submit(task);
        }

        sitra_obs::emit(
            "driver",
            "step",
            &[
                ("step", step.to_string()),
                ("sim_secs", sim_secs.to_string()),
                ("ghost_secs", ghost_secs.to_string()),
                ("blocked_secs", blocked_secs.to_string()),
            ],
        );
        steps_metrics.push(StepMetrics {
            step,
            sim_secs,
            ghost_secs,
            blocked_secs,
            degraded: false,
        });
    }

    // Drain both backends (every submitted task retires — completed,
    // collected, degraded, or dropped), then close them.
    insitu.drain();
    staging.drain();
    let _ = insitu.close();
    let staging_stats = staging.close();
    let total_secs = run_start.elapsed().as_secs_f64();

    let fstats = fabric.stats();
    fabric.shutdown();

    // Every output has retired, so no more frames are coming: drain
    // blocked subscribers and stop serving.
    if let Some(server) = steer {
        server.shutdown();
    }

    // Degradations surface per-step only after the drain: a task can
    // degrade during collection long after its step ended.
    for sm in steps_metrics.iter_mut() {
        sm.degraded = ctx.step_degraded(sm.step);
    }

    let metrics = PipelineMetrics {
        steps: steps_metrics,
        analyses: ctx.metrics_snapshot(),
        total_secs,
        smsg_messages: fstats.smsg_messages,
        smsg_bytes: fstats.smsg_bytes,
        bte_transfers: fstats.bte_transfers,
        bte_bytes: fstats.bte_bytes,
        max_queue_depth: staging_stats.max_queue_depth,
    };
    Ok(PipelineResult {
        metrics,
        outputs: ctx.take_outputs(),
        staged_tasks: staging_stats.submitted,
        dropped_tasks: ctx.dropped_tasks(),
        degraded_tasks: ctx.degraded_tasks(),
    })
}
