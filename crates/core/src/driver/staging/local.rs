//! The in-process staging backend: DART exports, the DataSpaces
//! scheduler, and staging-bucket worker threads.
//!
//! Submission exports each rank's intermediate as an RDMA-able region
//! on that rank's DART endpoint and pushes a *data-ready* descriptor
//! into the scheduler; the simulation moves on immediately — it pays
//! only the (cheap) send initiation. Bucket threads issue
//! *bucket-ready* requests, receive descriptors FCFS, pull every rank's
//! payload directly from the producers' exported memory via `rdma_get`,
//! aggregate, and retire the task. Successive steps naturally land on
//! different buckets (temporal multiplexing).
//!
//! Back-pressure: producers retain a bounded ring of exported step
//! payloads ([`crate::PipelineConfig::staging_buffer_depth`]); if the
//! staging area falls that far behind, the oldest payloads are
//! withdrawn and the overrun tasks retire as dropped — the same signal
//! a real staging deployment must watch.

use super::{BackendCaps, BackendStats, RetireCtx, Retired, StagedTask, StagingBackend};
use bytes::Bytes;
use sitra_dart::{Endpoint, EndpointId, Event, Fabric, RegionKey};
use sitra_dataspaces::{AutoscaleConfig, Autoscaler, BucketHandle, ScaleDecision, Scheduler};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const CAPS: BackendCaps = BackendCaps {
    name: "local",
    placement: "hybrid",
    in_transit: true,
    ships_data: true,
};

/// One in-transit task: which analysis, which step, where the payloads
/// live.
struct TaskDesc {
    analysis_idx: usize,
    step: u64,
    issued: Instant,
    parts: Vec<(usize, EndpointId, RegionKey)>,
}

fn region_key(analysis_idx: usize, step: u64) -> RegionKey {
    ((analysis_idx as u64 + 1) << 40) | (step & ((1 << 40) - 1))
}

/// How often the capacity controller re-evaluates the pool. Short
/// enough that a backlog burst is answered within a few SLO windows at
/// laptop scale; the [`Autoscaler`]'s sustain hysteresis keeps the
/// short tick from thrashing.
const AUTOSCALE_TICK: Duration = Duration::from_millis(20);

/// The worker fleet shared between the backend and its capacity
/// controller: spawned bucket threads (joined at close) and the next
/// fresh bucket id.
struct Fleet {
    workers: Vec<std::thread::JoinHandle<()>>,
    next_id: u32,
}

/// In-process staging buckets fed through the scheduler and the DART
/// fabric (the default hybrid backend). With
/// [`crate::PipelineConfig::with_bucket_autoscale`] the pool is
/// elastic: a controller thread grows it under sustained backlog and
/// drains-then-retires idle buckets inside the SLO.
pub struct LocalBackend {
    ctx: RetireCtx,
    scheduler: Scheduler<TaskDesc>,
    rank_endpoints: Vec<Endpoint>,
    fleet: Arc<Mutex<Fleet>>,
    controller: Option<std::thread::JoinHandle<()>>,
    controller_stop: Arc<AtomicBool>,
    /// Buckets signal here once per task retired (completed or
    /// dropped), so [`drain`](StagingBackend::drain) blocks instead of
    /// polling.
    done_rx: crossbeam::channel::Receiver<()>,
    /// Kept open for the controller to hand to freshly spawned buckets;
    /// dropped at close so `done_rx` disconnects when the fleet exits.
    done_tx: Option<crossbeam::channel::Sender<()>>,
    buffer_depth: u64,
    outstanding: usize,
    submitted: usize,
}

/// Spawn one staging-bucket thread.
fn spawn_bucket(
    scheduler: &Scheduler<TaskDesc>,
    fabric: &Arc<Fabric>,
    ctx: &RetireCtx,
    done_tx: &crossbeam::channel::Sender<()>,
    b: u32,
) -> std::thread::JoinHandle<()> {
    let bucket = scheduler.register_bucket(b);
    let ep = fabric.register();
    let ctx = ctx.clone();
    let done = done_tx.clone();
    std::thread::Builder::new()
        .name(format!("bucket-{b}"))
        .spawn(move || bucket_loop(bucket, ep, b, &ctx, &done))
        .expect("spawn bucket")
}

impl LocalBackend {
    /// Spawn `buckets.max(1)` staging-bucket threads against `fabric`
    /// and register one producer endpoint per rank. With `autoscale`
    /// set, `min_buckets` threads start instead and a controller grows
    /// and shrinks the fleet between the configured bounds.
    pub fn new(
        ctx: RetireCtx,
        fabric: &Arc<Fabric>,
        n_ranks: usize,
        buckets: usize,
        buffer_depth: u64,
        autoscale: Option<AutoscaleConfig>,
    ) -> Self {
        let scheduler: Scheduler<TaskDesc> = Scheduler::new();
        let rank_endpoints: Vec<Endpoint> = (0..n_ranks).map(|_| fabric.register()).collect();
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<()>();
        let initial = match &autoscale {
            Some(cfg) => cfg.min_buckets,
            None => buckets.max(1),
        };
        let workers: Vec<_> = (0..initial)
            .map(|b| spawn_bucket(&scheduler, fabric, &ctx, &done_tx, b as u32))
            .collect();
        let fleet = Arc::new(Mutex::new(Fleet {
            workers,
            next_id: initial as u32,
        }));
        let controller_stop = Arc::new(AtomicBool::new(false));
        let controller = autoscale.map(|cfg| {
            scheduler.set_pool_target(Some(cfg.min_buckets));
            let scheduler = scheduler.clone();
            let fabric = Arc::clone(fabric);
            let ctx = ctx.clone();
            let done_tx = done_tx.clone();
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&controller_stop);
            std::thread::Builder::new()
                .name("bucket-autoscaler".into())
                .spawn(move || {
                    controller_loop(cfg, &scheduler, &fabric, &ctx, &done_tx, &fleet, &stop)
                })
                .expect("spawn autoscaler")
        });
        // Fixed pool: drop the sender now so `done_rx` disconnects if
        // every bucket exits early (the pre-elastic safety valve in
        // `drain`). Elastic pool: the controller needs it to equip
        // freshly spawned buckets, so it lives until close.
        let done_tx = controller.is_some().then_some(done_tx);
        LocalBackend {
            ctx,
            scheduler,
            rank_endpoints,
            fleet,
            controller,
            controller_stop,
            done_rx,
            done_tx,
            buffer_depth,
            outstanding: 0,
            submitted: 0,
        }
    }
}

/// The capacity controller: tick, snapshot the pool, apply the
/// [`Autoscaler`]'s verdict. Growth spawns fresh bucket threads;
/// shrinkage drains the most dispensable bucket (idle preferred) and
/// lets its thread retire itself on the next lease. Every scale action
/// lands in the journal as a `pool.scale` event so `sitra-bench` replay
/// can reconstruct the capacity timeline.
fn controller_loop(
    cfg: AutoscaleConfig,
    scheduler: &Scheduler<TaskDesc>,
    fabric: &Arc<Fabric>,
    ctx: &RetireCtx,
    done_tx: &crossbeam::channel::Sender<()>,
    fleet: &Arc<Mutex<Fleet>>,
    stop: &AtomicBool,
) {
    let mut scaler = Autoscaler::new(cfg);
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(AUTOSCALE_TICK);
        let snap = scheduler.pool_snapshot();
        match scaler.decide(&snap) {
            ScaleDecision::Hold => {}
            ScaleDecision::Grow(k) => {
                let mut f = fleet.lock().expect("fleet lock");
                for _ in 0..k {
                    let b = f.next_id;
                    f.next_id += 1;
                    let h = spawn_bucket(scheduler, fabric, ctx, done_tx, b);
                    f.workers.push(h);
                }
                scheduler.set_pool_target(Some(snap.buckets + k));
                sitra_obs::emit(
                    "sched",
                    "pool.scale",
                    &[
                        ("action", "grow".to_string()),
                        ("delta", k.to_string()),
                        ("buckets", (snap.buckets + k).to_string()),
                        ("queue_depth", snap.queue_depth.to_string()),
                        ("p99_us", snap.p99_wait.as_micros().to_string()),
                    ],
                );
            }
            ScaleDecision::Shrink(k) => {
                let mut drained = 0usize;
                for _ in 0..k {
                    if scheduler.drain_one_bucket().is_some() {
                        drained += 1;
                    }
                }
                if drained > 0 {
                    scheduler.set_pool_target(Some(snap.buckets.saturating_sub(drained)));
                    sitra_obs::emit(
                        "sched",
                        "pool.scale",
                        &[
                            ("action", "shrink".to_string()),
                            ("delta", drained.to_string()),
                            ("buckets", snap.buckets.saturating_sub(drained).to_string()),
                            ("queue_depth", snap.queue_depth.to_string()),
                            ("p99_us", snap.p99_wait.as_micros().to_string()),
                        ],
                    );
                }
            }
        }
    }
}

impl StagingBackend for LocalBackend {
    fn caps(&self) -> BackendCaps {
        CAPS
    }

    fn submit(&mut self, task: StagedTask) -> f64 {
        // Stash the in-situ half of the metrics before the task becomes
        // visible: the bucket that completes it fills in the rest and
        // must find the row even when it wins the race with this
        // thread.
        self.ctx.record_insitu(&task, &CAPS, true);
        // Export payloads and withdraw stale ones (the back-pressure
        // ring).
        let key = region_key(task.analysis_idx, task.step);
        let mut parts = Vec::with_capacity(task.parts.len());
        for (r, payload) in &task.parts {
            self.rank_endpoints[*r].export(key, payload.clone());
            if task.step > self.buffer_depth {
                self.rank_endpoints[*r]
                    .unexport(region_key(task.analysis_idx, task.step - self.buffer_depth));
            }
            parts.push((*r, self.rank_endpoints[*r].id(), key));
        }
        self.scheduler.submit(TaskDesc {
            analysis_idx: task.analysis_idx,
            step: task.step,
            issued: task.issued,
            parts,
        });
        self.outstanding += 1;
        self.submitted += 1;
        0.0
    }

    fn collect_ready(&mut self) -> f64 {
        // Buckets retire tasks themselves; there is nothing for the
        // submitting side to collect.
        0.0
    }

    fn drain(&mut self) -> f64 {
        let t0 = Instant::now();
        // Block until every submitted task was either completed or
        // dropped; each retirement sends exactly one token. A
        // disconnect means every bucket exited early, in which case
        // nothing further can arrive.
        for _ in 0..self.outstanding {
            if self.done_rx.recv().is_err() {
                break;
            }
        }
        self.outstanding = 0;
        t0.elapsed().as_secs_f64()
    }

    fn close(&mut self) -> BackendStats {
        // Controller first, so no new buckets spawn under the closing
        // scheduler; then close (which unparks every idle bucket) and
        // join the whole fleet, dynamically spawned threads included.
        self.controller_stop.store(true, Ordering::Relaxed);
        if let Some(c) = self.controller.take() {
            let _ = c.join();
        }
        self.scheduler.close();
        self.done_tx = None;
        let workers = std::mem::take(&mut self.fleet.lock().expect("fleet lock").workers);
        for w in workers {
            let _ = w.join();
        }
        let stats = self.scheduler.stats();
        BackendStats {
            submitted: self.submitted,
            max_queue_depth: stats.max_queue_depth,
        }
    }
}

fn bucket_loop(
    bucket: BucketHandle<TaskDesc>,
    ep: Endpoint,
    bucket_id: u32,
    ctx: &RetireCtx,
    done: &crossbeam::channel::Sender<()>,
) {
    while let Some((_seq, task)) = bucket.request_task() {
        let spec = &ctx.analyses()[task.analysis_idx];
        // Pull every payload from the producers' memory.
        let mut pending = std::collections::HashMap::new();
        let mut overrun = false;
        for (rank, peer, key) in &task.parts {
            match ep.rdma_get(*peer, *key) {
                Ok(id) => {
                    pending.insert(id, *rank);
                }
                Err(_) => {
                    // Producer already withdrew this step (back-pressure).
                    overrun = true;
                    break;
                }
            }
        }
        if overrun {
            ctx.retire(Retired::Dropped);
            let _ = done.send(());
            continue;
        }
        // Streaming aggregation when the analysis supports it: payloads
        // are combined the moment each pull completes, overlapping the
        // aggregation with the remaining transfers. Otherwise buffer all
        // parts and aggregate at once.
        let mut streaming = spec.analysis.streaming_aggregator(task.step);
        let streamed = streaming.is_some();
        let mut parts: Vec<(usize, Bytes)> = Vec::with_capacity(pending.len());
        let mut movement_sim = 0.0;
        let mut aggregate_secs = 0.0;
        let mut failed_mid_pull = false;
        while !pending.is_empty() {
            match ep.poll_event(Duration::from_secs(30)) {
                Some(Event::GetComplete {
                    id, data, sim_time, ..
                }) => {
                    if let Some(rank) = pending.remove(&id) {
                        movement_sim += sim_time;
                        match &mut streaming {
                            Some(agg) => {
                                let t = Instant::now();
                                agg.feed(rank, data);
                                aggregate_secs += t.elapsed().as_secs_f64();
                            }
                            None => parts.push((rank, data)),
                        }
                    }
                }
                Some(Event::GetFailed { id, .. }) => {
                    // A producer withdrew the region mid-pull: the task is
                    // a staging overrun.
                    if pending.remove(&id).is_some() {
                        failed_mid_pull = true;
                    }
                    if pending.is_empty() {
                        break;
                    }
                }
                Some(_) => {}
                None => panic!("bucket {bucket_id}: transfer timed out"),
            }
        }
        if failed_mid_pull {
            ctx.retire(Retired::Dropped);
            let _ = done.send(());
            continue;
        }
        let t_agg = Instant::now();
        let output = match streaming {
            Some(agg) => agg.finish(),
            None => {
                parts.sort_by_key(|(r, _)| *r);
                spec.analysis.aggregate(task.step, &parts)
            }
        };
        aggregate_secs += t_agg.elapsed().as_secs_f64();
        ctx.retire(Retired::Completed {
            analysis_idx: task.analysis_idx,
            step: task.step,
            output,
            aggregate_secs,
            bucket: Some(bucket_id),
            streamed,
            latency_secs: task.issued.elapsed().as_secs_f64(),
            movement_sim_secs: movement_sim,
            in_transit: true,
        });
        let _ = done.send(());
    }
    ep.unregister();
}
