//! The in-process staging backend: DART exports, the DataSpaces
//! scheduler, and staging-bucket worker threads.
//!
//! Submission exports each rank's intermediate as an RDMA-able region
//! on that rank's DART endpoint and pushes a *data-ready* descriptor
//! into the scheduler; the simulation moves on immediately — it pays
//! only the (cheap) send initiation. Bucket threads issue
//! *bucket-ready* requests, receive descriptors FCFS, pull every rank's
//! payload directly from the producers' exported memory via `rdma_get`,
//! aggregate, and retire the task. Successive steps naturally land on
//! different buckets (temporal multiplexing).
//!
//! Back-pressure: producers retain a bounded ring of exported step
//! payloads ([`crate::PipelineConfig::staging_buffer_depth`]); if the
//! staging area falls that far behind, the oldest payloads are
//! withdrawn and the overrun tasks retire as dropped — the same signal
//! a real staging deployment must watch.

use super::{BackendCaps, BackendStats, RetireCtx, Retired, StagedTask, StagingBackend};
use bytes::Bytes;
use sitra_dart::{Endpoint, EndpointId, Event, Fabric, RegionKey};
use sitra_dataspaces::{BucketHandle, Scheduler};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CAPS: BackendCaps = BackendCaps {
    name: "local",
    placement: "hybrid",
    in_transit: true,
    ships_data: true,
};

/// One in-transit task: which analysis, which step, where the payloads
/// live.
struct TaskDesc {
    analysis_idx: usize,
    step: u64,
    issued: Instant,
    parts: Vec<(usize, EndpointId, RegionKey)>,
}

fn region_key(analysis_idx: usize, step: u64) -> RegionKey {
    ((analysis_idx as u64 + 1) << 40) | (step & ((1 << 40) - 1))
}

/// In-process staging buckets fed through the scheduler and the DART
/// fabric (the default hybrid backend).
pub struct LocalBackend {
    ctx: RetireCtx,
    scheduler: Scheduler<TaskDesc>,
    rank_endpoints: Vec<Endpoint>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Buckets signal here once per task retired (completed or
    /// dropped), so [`drain`](StagingBackend::drain) blocks instead of
    /// polling.
    done_rx: crossbeam::channel::Receiver<()>,
    buffer_depth: u64,
    outstanding: usize,
    submitted: usize,
}

impl LocalBackend {
    /// Spawn `buckets.max(1)` staging-bucket threads against `fabric`
    /// and register one producer endpoint per rank.
    pub fn new(
        ctx: RetireCtx,
        fabric: &Arc<Fabric>,
        n_ranks: usize,
        buckets: usize,
        buffer_depth: u64,
    ) -> Self {
        let scheduler: Scheduler<TaskDesc> = Scheduler::new();
        let rank_endpoints: Vec<Endpoint> = (0..n_ranks).map(|_| fabric.register()).collect();
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<()>();
        let workers: Vec<_> = (0..buckets.max(1))
            .map(|b| {
                let bucket = scheduler.register_bucket(b as u32);
                let ep = fabric.register();
                let ctx = ctx.clone();
                let done = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("bucket-{b}"))
                    .spawn(move || bucket_loop(bucket, ep, b as u32, &ctx, &done))
                    .expect("spawn bucket")
            })
            .collect();
        drop(done_tx);
        LocalBackend {
            ctx,
            scheduler,
            rank_endpoints,
            workers,
            done_rx,
            buffer_depth,
            outstanding: 0,
            submitted: 0,
        }
    }
}

impl StagingBackend for LocalBackend {
    fn caps(&self) -> BackendCaps {
        CAPS
    }

    fn submit(&mut self, task: StagedTask) -> f64 {
        // Stash the in-situ half of the metrics before the task becomes
        // visible: the bucket that completes it fills in the rest and
        // must find the row even when it wins the race with this
        // thread.
        self.ctx.record_insitu(&task, &CAPS, true);
        // Export payloads and withdraw stale ones (the back-pressure
        // ring).
        let key = region_key(task.analysis_idx, task.step);
        let mut parts = Vec::with_capacity(task.parts.len());
        for (r, payload) in &task.parts {
            self.rank_endpoints[*r].export(key, payload.clone());
            if task.step > self.buffer_depth {
                self.rank_endpoints[*r]
                    .unexport(region_key(task.analysis_idx, task.step - self.buffer_depth));
            }
            parts.push((*r, self.rank_endpoints[*r].id(), key));
        }
        self.scheduler.submit(TaskDesc {
            analysis_idx: task.analysis_idx,
            step: task.step,
            issued: task.issued,
            parts,
        });
        self.outstanding += 1;
        self.submitted += 1;
        0.0
    }

    fn collect_ready(&mut self) -> f64 {
        // Buckets retire tasks themselves; there is nothing for the
        // submitting side to collect.
        0.0
    }

    fn drain(&mut self) -> f64 {
        let t0 = Instant::now();
        // Block until every submitted task was either completed or
        // dropped; each retirement sends exactly one token. A
        // disconnect means every bucket exited early, in which case
        // nothing further can arrive.
        for _ in 0..self.outstanding {
            if self.done_rx.recv().is_err() {
                break;
            }
        }
        self.outstanding = 0;
        t0.elapsed().as_secs_f64()
    }

    fn close(&mut self) -> BackendStats {
        self.scheduler.close();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        let stats = self.scheduler.stats();
        BackendStats {
            submitted: self.submitted,
            max_queue_depth: stats.max_queue_depth,
        }
    }
}

fn bucket_loop(
    bucket: BucketHandle<TaskDesc>,
    ep: Endpoint,
    bucket_id: u32,
    ctx: &RetireCtx,
    done: &crossbeam::channel::Sender<()>,
) {
    while let Some((_seq, task)) = bucket.request_task() {
        let spec = &ctx.analyses()[task.analysis_idx];
        // Pull every payload from the producers' memory.
        let mut pending = std::collections::HashMap::new();
        let mut overrun = false;
        for (rank, peer, key) in &task.parts {
            match ep.rdma_get(*peer, *key) {
                Ok(id) => {
                    pending.insert(id, *rank);
                }
                Err(_) => {
                    // Producer already withdrew this step (back-pressure).
                    overrun = true;
                    break;
                }
            }
        }
        if overrun {
            ctx.retire(Retired::Dropped);
            let _ = done.send(());
            continue;
        }
        // Streaming aggregation when the analysis supports it: payloads
        // are combined the moment each pull completes, overlapping the
        // aggregation with the remaining transfers. Otherwise buffer all
        // parts and aggregate at once.
        let mut streaming = spec.analysis.streaming_aggregator(task.step);
        let streamed = streaming.is_some();
        let mut parts: Vec<(usize, Bytes)> = Vec::with_capacity(pending.len());
        let mut movement_sim = 0.0;
        let mut aggregate_secs = 0.0;
        let mut failed_mid_pull = false;
        while !pending.is_empty() {
            match ep.poll_event(Duration::from_secs(30)) {
                Some(Event::GetComplete {
                    id, data, sim_time, ..
                }) => {
                    if let Some(rank) = pending.remove(&id) {
                        movement_sim += sim_time;
                        match &mut streaming {
                            Some(agg) => {
                                let t = Instant::now();
                                agg.feed(rank, data);
                                aggregate_secs += t.elapsed().as_secs_f64();
                            }
                            None => parts.push((rank, data)),
                        }
                    }
                }
                Some(Event::GetFailed { id, .. }) => {
                    // A producer withdrew the region mid-pull: the task is
                    // a staging overrun.
                    if pending.remove(&id).is_some() {
                        failed_mid_pull = true;
                    }
                    if pending.is_empty() {
                        break;
                    }
                }
                Some(_) => {}
                None => panic!("bucket {bucket_id}: transfer timed out"),
            }
        }
        if failed_mid_pull {
            ctx.retire(Retired::Dropped);
            let _ = done.send(());
            continue;
        }
        let t_agg = Instant::now();
        let output = match streaming {
            Some(agg) => agg.finish(),
            None => {
                parts.sort_by_key(|(r, _)| *r);
                spec.analysis.aggregate(task.step, &parts)
            }
        };
        aggregate_secs += t_agg.elapsed().as_secs_f64();
        ctx.retire(Retired::Completed {
            analysis_idx: task.analysis_idx,
            step: task.step,
            output,
            aggregate_secs,
            bucket: Some(bucket_id),
            streamed,
            latency_secs: task.issued.elapsed().as_secs_f64(),
            movement_sim_secs: movement_sim,
            in_transit: true,
        });
        let _ = done.send(());
    }
    ep.unregister();
}
