//! The fully in-situ backend: aggregate synchronously on the caller.

use super::{BackendCaps, BackendStats, RetireCtx, Retired, StagedTask, StagingBackend};
use std::time::Instant;

const CAPS: BackendCaps = BackendCaps {
    name: "insitu",
    placement: "insitu",
    in_transit: false,
    ships_data: false,
};

/// Runs every aggregation immediately, on the submitting thread — the
/// paper's fully in-situ formulation applied to the same two-stage
/// decomposition. The simulation pays the whole analysis cost inline
/// and no data ever leaves the caller, so movement is never charged.
///
/// Also serves `Placement::InSitu` analyses in every staging mode: the
/// driver keeps one instance of this backend alongside whichever
/// backend handles hybrid work.
pub struct InSituBackend {
    ctx: RetireCtx,
    submitted: usize,
}

impl InSituBackend {
    /// An in-situ backend retiring into `ctx`.
    pub fn new(ctx: RetireCtx) -> Self {
        InSituBackend { ctx, submitted: 0 }
    }
}

impl StagingBackend for InSituBackend {
    fn caps(&self) -> BackendCaps {
        CAPS
    }

    fn submit(&mut self, task: StagedTask) -> f64 {
        self.submitted += 1;
        self.ctx.record_insitu(&task, &CAPS, false);
        let spec = &self.ctx.analyses()[task.analysis_idx];
        let t_agg = Instant::now();
        let output = spec.analysis.aggregate(task.step, &task.parts);
        let aggregate_secs = t_agg.elapsed().as_secs_f64();
        self.ctx.retire(Retired::Completed {
            analysis_idx: task.analysis_idx,
            step: task.step,
            output,
            aggregate_secs,
            bucket: None,
            streamed: false,
            latency_secs: 0.0,
            movement_sim_secs: 0.0,
            in_transit: false,
        });
        aggregate_secs
    }

    fn collect_ready(&mut self) -> f64 {
        0.0
    }

    fn drain(&mut self) -> f64 {
        0.0
    }

    fn close(&mut self) -> BackendStats {
        BackendStats {
            submitted: self.submitted,
            max_queue_depth: 0,
        }
    }
}
