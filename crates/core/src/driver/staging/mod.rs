//! The staging seam: one trait, three aggregation placements.
//!
//! The paper's core claim is that a two-stage analysis decomposition
//! (data-parallel in-situ stage, then an aggregation over the small
//! intermediates) runs **unchanged** wherever the aggregation happens.
//! [`StagingBackend`] is that claim as an interface: the step loop
//! hands every due analysis to a backend as one [`StagedTask`] and
//! never looks at placement again.
//!
//! * [`InSituBackend`] aggregates synchronously on the caller — the
//!   fully in-situ formulation. No data leaves the simulation.
//! * [`LocalBackend`] exports payloads through the DART fabric and lets
//!   in-process staging-bucket threads pull and aggregate them — the
//!   paper's in-transit formulation on shared staging cores.
//! * [`RemoteBackend`] ships intermediates to a remote staging service
//!   (`sitra-staged`) over the socket transport, with a bounded
//!   in-flight window, admission handling, and reconnect.
//!
//! Every backend retires tasks through the shared [`RetireCtx`] (the
//! private `retire` module): completions, remote collections, degradations,
//! and drops all flow through one function, which is what keeps the
//! outputs byte-identical and the replay accounting bit-identical
//! across placements.
//!
//! To add a fourth backend, implement [`StagingBackend`], call
//! [`RetireCtx::record_insitu`] exactly once per submitted task, and
//! report every task's fate through [`RetireCtx::retire`] — the metrics
//! rows, journal events, and degradation counters then come for free.

mod insitu;
mod local;
mod remote;

pub use insitu::InSituBackend;
pub use local::LocalBackend;
pub use remote::RemoteBackend;

pub use super::retire::{RetireCtx, Retired};

use bytes::Bytes;
use std::time::Instant;

/// One due analysis at one step, ready for aggregation: the in-situ
/// intermediates plus the already-measured in-situ stage costs. This is
/// everything a backend needs — backends never see fields, ranks, or
/// the simulation.
pub struct StagedTask {
    /// Index into the analysis roster ([`RetireCtx::analyses`]).
    pub analysis_idx: usize,
    /// Simulation step.
    pub step: u64,
    /// Submission time, for completion-latency accounting.
    pub issued: Instant,
    /// Per-rank in-situ intermediates, in rank order. `Bytes` clones
    /// share the underlying buffers, so retaining them for degradation
    /// fallback is cheap.
    pub parts: Vec<(usize, Bytes)>,
    /// In-situ stage wall seconds (max over ranks — ranks run
    /// concurrently on the real machine).
    pub insitu_secs: f64,
    /// In-situ stage core seconds (sum over ranks).
    pub insitu_core_secs: f64,
    /// Total intermediate bytes, charged as data movement only by
    /// backends that actually ship them ([`BackendCaps::ships_data`]).
    pub movement_bytes: u64,
    /// Simulated network seconds for moving the intermediates under the
    /// configured network model.
    pub movement_sim_secs: f64,
}

/// What a backend is, for metrics and journal labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCaps {
    /// Short backend name (`"insitu"`, `"local"`, `"remote"`).
    pub name: &'static str,
    /// Placement label journaled with `analysis.insitu` events
    /// (`"insitu"`, `"hybrid"`, `"hybrid-remote"`).
    pub placement: &'static str,
    /// Tasks aggregate in transit (metrics rows start with
    /// `aggregated_in_transit` set; degradation clears it).
    pub in_transit: bool,
    /// Submitting moves the intermediates off the caller, so movement
    /// bytes/time are charged when the ship succeeds.
    pub ships_data: bool,
}

/// Lifetime accounting a backend reports when it closes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Tasks submitted to this backend.
    pub submitted: usize,
    /// High-water mark of the backend's task queue (0 for backends
    /// without one).
    pub max_queue_depth: usize,
}

/// Where the aggregation stage of staged analyses runs.
///
/// The driver calls, per step: [`collect_ready`](Self::collect_ready)
/// once, then [`submit`](Self::submit) for each due analysis; and at
/// end of run [`drain`](Self::drain) then [`close`](Self::close). Each
/// blocking call returns the wall seconds the *simulation* spent
/// blocked on it, which the driver charges to the step.
pub trait StagingBackend {
    /// What this backend is (stable over its lifetime).
    fn caps(&self) -> BackendCaps;

    /// Accept one task. The backend must record the task's in-situ
    /// metrics row ([`RetireCtx::record_insitu`]) before the task can
    /// reach any consumer, and must eventually retire it. Returns
    /// seconds the caller was blocked beyond the in-situ stage itself
    /// (synchronous aggregation, back-pressure waits, degradation
    /// fallbacks).
    fn submit(&mut self, task: StagedTask) -> f64;

    /// Opportunistically retire tasks whose results are already
    /// available, without waiting for any that are not. Called once per
    /// step so a slow consumer's results don't pile up until drain.
    fn collect_ready(&mut self) -> f64;

    /// Block until every submitted task has retired (completed,
    /// collected, degraded, or dropped).
    fn drain(&mut self) -> f64;

    /// Release the backend's resources (join workers, evict remote
    /// state) and report lifetime stats. Called exactly once, after
    /// [`drain`](Self::drain).
    fn close(&mut self) -> BackendStats;
}
