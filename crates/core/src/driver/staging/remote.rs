//! The remote staging backend: ship intermediates to a `sitra-staged`
//! space server; external bucket workers aggregate them.
//!
//! Flow control runs end to end: at most
//! [`crate::PipelineConfig::staging_max_inflight`] tasks ride the wire
//! at once (submission blocks collecting the oldest first), the
//! server's admission policy can refuse or shed tasks, and any task the
//! staging path fails — deadline missed, admission refused, endpoint
//! unreachable — retires as [`Retired::Degraded`]: its aggregation
//! re-runs in-situ from the retained intermediates and the run
//! continues with zero lost steps.

use super::{BackendCaps, BackendStats, RetireCtx, Retired, StagedTask, StagingBackend};
use crate::driver::StagingOutputHook;
use crate::remote::{await_output, encode_task, intermediate_var, rank_bbox, RemoteTask};
use bytes::Bytes;
use sitra_dataspaces::remote::{RemoteError, RemoteSpace};
use sitra_dataspaces::Admission;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const CAPS: BackendCaps = BackendCaps {
    name: "remote",
    placement: "hybrid-remote",
    in_transit: true,
    ships_data: true,
};

/// Connection manager for the remote staging endpoint. A transport
/// error triggers one reconnect (bounded backoff) and a retry of the
/// failed operation; if the reconnect fails too, the endpoint is marked
/// *lost* and every hybrid analysis degrades to in-situ aggregation for
/// the rest of the run. Non-transport errors (protocol, server,
/// deadline) pass through untouched — the link itself is fine.
struct RemoteStaging {
    addr: sitra_net::Addr,
    conn: Option<RemoteSpace>,
    backoff: sitra_net::Backoff,
}

impl RemoteStaging {
    fn connect(addr: sitra_net::Addr) -> Self {
        let backoff = sitra_net::Backoff::default();
        let conn = match RemoteSpace::connect_retry(&addr, &backoff) {
            Ok(c) => Some(c),
            Err(e) => {
                sitra_obs::emit(
                    "driver",
                    "staging.lost",
                    &[("endpoint", addr.to_string()), ("error", e.to_string())],
                );
                None
            }
        };
        RemoteStaging {
            addr,
            conn,
            backoff,
        }
    }

    fn alive(&self) -> bool {
        self.conn.is_some()
    }

    fn with<R>(
        &mut self,
        mut op: impl FnMut(&RemoteSpace) -> Result<R, RemoteError>,
    ) -> Result<R, RemoteError> {
        let Some(conn) = self.conn.as_ref() else {
            return Err(RemoteError::Net(sitra_net::NetError::Closed));
        };
        match op(conn) {
            Err(RemoteError::Net(e)) if e.is_retryable() => {
                match RemoteSpace::connect_retry(&self.addr, &self.backoff) {
                    Ok(fresh) => {
                        let res = op(&fresh);
                        if matches!(res, Err(RemoteError::Net(_))) {
                            self.mark_lost();
                        } else {
                            sitra_obs::counter("driver.staging.reconnects").inc();
                            self.conn = Some(fresh);
                        }
                        res
                    }
                    Err(e2) => {
                        self.mark_lost();
                        Err(e2)
                    }
                }
            }
            other => other,
        }
    }

    fn mark_lost(&mut self) {
        if self.conn.take().is_some() {
            sitra_obs::emit(
                "driver",
                "staging.lost",
                &[("endpoint", self.addr.to_string())],
            );
        }
    }
}

/// A task shipped to the remote staging area whose output has not been
/// collected yet. `parts` retains the in-situ intermediates so the
/// aggregation can re-run locally if the staging path fails — memory
/// bounded by `staging_max_inflight` retained steps (`Bytes` clones
/// share the underlying buffers with the staged puts).
struct PendingRemote {
    analysis_idx: usize,
    step: u64,
    /// Scheduler sequence number of the submitted task; `u64::MAX` when
    /// the task never made it into the remote queue.
    seq: u64,
    issued: Instant,
    parts: Vec<(usize, Bytes)>,
}

/// Hybrid aggregation on a remote staging service, with a bounded
/// in-flight window and graceful degradation.
pub struct RemoteBackend {
    ctx: RetireCtx,
    staging: RemoteStaging,
    pending: Vec<PendingRemote>,
    /// Every version (step) that had intermediates put remotely, for
    /// eviction at close time.
    versions: BTreeSet<u64>,
    deadline: Duration,
    max_inflight: usize,
    n_ranks: u32,
    hook: Option<StagingOutputHook>,
    submitted: usize,
}

impl RemoteBackend {
    /// Connect to the space server at `addr`. An unreachable endpoint
    /// does not fail the run — the staging starts out *lost* and every
    /// submitted task degrades to in-situ aggregation.
    pub fn new(
        ctx: RetireCtx,
        addr: sitra_net::Addr,
        deadline: Duration,
        max_inflight: usize,
        n_ranks: u32,
        hook: Option<StagingOutputHook>,
    ) -> Self {
        RemoteBackend {
            ctx,
            staging: RemoteStaging::connect(addr),
            pending: Vec::new(),
            versions: BTreeSet::new(),
            deadline,
            max_inflight,
            n_ranks,
            hook,
            submitted: 0,
        }
    }

    /// Re-run a task's aggregation in-situ through the shared
    /// retirement path; returns the wall seconds burned.
    fn degrade(&self, p: PendingRemote, reason: &'static str) -> f64 {
        self.ctx.retire(Retired::Degraded {
            analysis_idx: p.analysis_idx,
            step: p.step,
            issued: p.issued,
            parts: p.parts,
            reason,
        })
    }

    /// Await the oldest in-flight remote output; any failure (deadline
    /// missed, endpoint lost) degrades that task to in-situ
    /// aggregation. Returns the wall seconds spent waiting and/or
    /// aggregating locally.
    fn collect_oldest(&mut self) -> f64 {
        let p = self.pending.remove(0);
        let label = self.ctx.analyses()[p.analysis_idx].label.clone();
        let step = p.step;
        let t0 = Instant::now();
        let deadline = t0 + self.deadline;
        let res = self
            .staging
            .with(|c| await_output(c, &label, step, deadline));
        sitra_obs::histogram("driver.staging.backpressure_wait_ns").observe(t0.elapsed());
        match res {
            Ok(output) => {
                self.ctx.retire(Retired::Collected {
                    analysis_idx: p.analysis_idx,
                    step,
                    output,
                });
                if let Some(h) = &self.hook {
                    h(&label, step);
                }
                t0.elapsed().as_secs_f64()
            }
            Err(e) => {
                let reason = match &e {
                    RemoteError::Timeout(_) => "deadline",
                    RemoteError::Net(_) => "endpoint-lost",
                    _ => "error",
                };
                t0.elapsed().as_secs_f64() + self.degrade(p, reason)
            }
        }
    }

    /// Put this step's intermediates into the staging space and submit
    /// the task through the admission-aware verb, recording it as
    /// in-flight. `Err(reason)` means the staging path refused (or
    /// lost) the task and the caller must degrade it immediately. An
    /// `AcceptedShed` verdict returns the evicted older task — it will
    /// never run remotely, so the caller re-runs its aggregation
    /// locally right away.
    fn try_ship(
        &mut self,
        analysis_idx: usize,
        step: u64,
        issued: Instant,
        parts: &[(usize, Bytes)],
    ) -> Result<Option<PendingRemote>, &'static str> {
        if !self.staging.alive() {
            return Err("endpoint-lost");
        }
        let var = intermediate_var(&self.ctx.analyses()[analysis_idx].label);
        self.versions.insert(step);
        for (r, payload) in parts {
            let bb = rank_bbox(*r);
            if self
                .staging
                .with(|c| c.put(&var, step, bb, payload.clone()))
                .is_err()
            {
                return Err("endpoint-lost");
            }
        }
        let task = encode_task(&RemoteTask {
            analysis_idx: analysis_idx as u32,
            step,
            n_ranks: self.n_ranks,
        });
        let verdict = self.staging.with(|c| c.submit_task_admission(task.clone()));
        let (seq, shed_seq) = match verdict {
            Ok(Admission::Accepted { seq }) => (seq, None),
            Ok(Admission::AcceptedShed { seq, shed_seq }) => (seq, Some(shed_seq)),
            Ok(Admission::Rejected) => return Err("rejected"),
            Ok(Admission::TimedOut) => return Err("admission-timeout"),
            Ok(Admission::Closed) => return Err("sched-closed"),
            Err(_) => return Err("endpoint-lost"),
        };
        self.pending.push(PendingRemote {
            analysis_idx,
            step,
            seq,
            issued,
            parts: parts.to_vec(),
        });
        // The server evicted an older queued task to admit this one
        // (ShedOldest policy): hand it back for immediate local
        // re-aggregation.
        let victim = shed_seq.and_then(|victim_seq| {
            self.pending
                .iter()
                .position(|p| p.seq == victim_seq)
                .map(|pos| self.pending.remove(pos))
        });
        Ok(victim)
    }
}

impl StagingBackend for RemoteBackend {
    fn caps(&self) -> BackendCaps {
        CAPS
    }

    fn submit(&mut self, task: StagedTask) -> f64 {
        self.submitted += 1;
        // Producer-side backpressure: bound the in-flight window by
        // collecting the oldest output first.
        let mut blocked = 0.0;
        while self.pending.len() >= self.max_inflight.max(1) {
            blocked += self.collect_oldest();
        }
        let shipped = self.try_ship(task.analysis_idx, task.step, task.issued, &task.parts);
        self.ctx.record_insitu(&task, &CAPS, shipped.is_ok());
        match shipped {
            Ok(None) => {}
            Ok(Some(victim)) => blocked += self.degrade(victim, "shed"),
            Err(reason) => {
                blocked += self.degrade(
                    PendingRemote {
                        analysis_idx: task.analysis_idx,
                        step: task.step,
                        seq: u64::MAX,
                        issued: task.issued,
                        parts: task.parts,
                    },
                    reason,
                );
            }
        }
        blocked
    }

    fn collect_ready(&mut self) -> f64 {
        if self.pending.is_empty() {
            return 0.0;
        }
        let t0 = Instant::now();
        // Oldest-first, zero-deadline probes: collect outputs that are
        // already in the space, stop at the first that is not. Failures
        // are left pending — the blocking window/drain paths own
        // degradation, so a transient hiccup here never degrades a task
        // that would have made its real deadline.
        while let Some(p) = self.pending.first() {
            let (label, step) = (self.ctx.analyses()[p.analysis_idx].label.clone(), p.step);
            let res = self
                .staging
                .with(|c| await_output(c, &label, step, Instant::now()));
            match res {
                Ok(output) => {
                    let p = self.pending.remove(0);
                    self.ctx.retire(Retired::Collected {
                        analysis_idx: p.analysis_idx,
                        step,
                        output,
                    });
                    if let Some(h) = &self.hook {
                        h(&label, step);
                    }
                }
                Err(_) => break,
            }
        }
        t0.elapsed().as_secs_f64()
    }

    fn drain(&mut self) -> f64 {
        // Collect every in-flight output; anything the staging path
        // lost is re-aggregated in-situ — zero lost steps.
        let mut blocked = 0.0;
        while !self.pending.is_empty() {
            blocked += self.collect_oldest();
        }
        blocked
    }

    fn close(&mut self) -> BackendStats {
        // Reclaim the staging memory, then close the remote scheduler
        // so external bucket workers retire.
        for v in &self.versions {
            let _ = self.staging.with(|c| c.evict_version(*v));
        }
        let _ = self.staging.with(|c| c.close_sched());
        BackendStats {
            submitted: self.submitted,
            max_queue_depth: 0,
        }
    }
}
