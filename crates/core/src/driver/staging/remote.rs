//! The remote staging backend: ship intermediates to a `sitra-staged`
//! space server; external bucket workers aggregate them.
//!
//! Flow control runs end to end: at most
//! [`crate::PipelineConfig::staging_max_inflight`] tasks ride the wire
//! at once (submission blocks collecting the oldest first), the
//! server's admission policy can refuse or shed tasks, and any task the
//! staging path fails — deadline missed, admission refused, endpoint
//! unreachable — retires as [`Retired::Degraded`]: its aggregation
//! re-runs in-situ from the retained intermediates and the run
//! continues with zero lost steps.

use super::{BackendCaps, BackendStats, RetireCtx, Retired, StagedTask, StagingBackend};
use crate::analysis::AnalysisOutput;
use crate::driver::StagingOutputHook;
use crate::remote::{
    await_output, await_output_cluster, encode_task, intermediate_var, rank_bbox, RemoteTask,
};
use bytes::Bytes;
use sitra_cluster::ClusterClient;
use sitra_dataspaces::remote::{RemoteError, RemoteSpace};
use sitra_dataspaces::{Admission, TenantSpec, DEFAULT_TENANT};
use sitra_mesh::BBox3;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const CAPS: BackendCaps = BackendCaps {
    name: "remote",
    placement: "hybrid-remote",
    in_transit: true,
    ships_data: true,
};

/// The cluster link keeps the single-server placement label: the same
/// decomposition aggregates the same bytes wherever the pieces live, so
/// golden outputs and replay accounting stay comparable across both.
const CLUSTER_CAPS: BackendCaps = BackendCaps {
    name: "cluster",
    placement: "hybrid-remote",
    in_transit: true,
    ships_data: true,
};

/// Whether this driver is one tenant among several on a shared staging
/// service. A driver bound to a non-default tenant must not close the
/// scheduler at end-of-run — the service outlives any one of its
/// tenants. No tenant (or explicitly the default one) is the legacy
/// sole-owner deployment, which keeps close-on-exit.
fn is_shared_tenant(tenant: Option<&TenantSpec>) -> bool {
    tenant.is_some_and(|t| t.name != DEFAULT_TENANT)
}

/// Connection manager for the remote staging endpoint. A transport
/// error triggers one reconnect (bounded backoff) and a retry of the
/// failed operation; if the reconnect fails too, the endpoint is marked
/// *lost* and every hybrid analysis degrades to in-situ aggregation for
/// the rest of the run. Non-transport errors (protocol, server,
/// deadline) pass through untouched — the link itself is fine.
struct RemoteStaging {
    addr: sitra_net::Addr,
    conn: Option<RemoteSpace>,
    backoff: sitra_net::Backoff,
    /// Tenant declared on every (re)connection. The binding is
    /// per-connection server state, so a reconnect that skipped the
    /// re-declaration would silently demote the pipeline to the default
    /// tenant — wrong quotas, wrong queue, wrong namespace.
    tenant: Option<TenantSpec>,
}

impl RemoteStaging {
    fn connect(addr: sitra_net::Addr, tenant: Option<TenantSpec>) -> Self {
        let backoff = sitra_net::Backoff::default();
        let conn = match Self::dial(&addr, &backoff, tenant.as_ref()) {
            Ok(c) => Some(c),
            Err(e) => {
                sitra_obs::emit(
                    "driver",
                    "staging.lost",
                    &[("endpoint", addr.to_string()), ("error", e.to_string())],
                );
                None
            }
        };
        RemoteStaging {
            addr,
            conn,
            backoff,
            tenant,
        }
    }

    /// Dial and immediately declare the tenant (when one is set), so no
    /// operation ever runs on an unbound connection.
    fn dial(
        addr: &sitra_net::Addr,
        backoff: &sitra_net::Backoff,
        tenant: Option<&TenantSpec>,
    ) -> Result<RemoteSpace, RemoteError> {
        let conn = RemoteSpace::connect_retry(addr, backoff)?;
        if let Some(spec) = tenant {
            conn.set_tenant(spec)?;
        }
        Ok(conn)
    }

    fn alive(&self) -> bool {
        self.conn.is_some()
    }

    fn with<R>(
        &mut self,
        mut op: impl FnMut(&RemoteSpace) -> Result<R, RemoteError>,
    ) -> Result<R, RemoteError> {
        let Some(conn) = self.conn.as_ref() else {
            return Err(RemoteError::Net(sitra_net::NetError::Closed));
        };
        match op(conn) {
            Err(RemoteError::Net(e)) if e.is_retryable() => {
                match Self::dial(&self.addr, &self.backoff, self.tenant.as_ref()) {
                    Ok(fresh) => {
                        let res = op(&fresh);
                        if matches!(res, Err(RemoteError::Net(_))) {
                            self.mark_lost();
                        } else {
                            sitra_obs::counter("driver.staging.reconnects").inc();
                            self.conn = Some(fresh);
                        }
                        res
                    }
                    Err(e2) => {
                        self.mark_lost();
                        Err(e2)
                    }
                }
            }
            other => other,
        }
    }

    fn mark_lost(&mut self) {
        if self.conn.take().is_some() {
            sitra_obs::emit(
                "driver",
                "staging.lost",
                &[("endpoint", self.addr.to_string())],
            );
        }
    }
}

/// The staging area a [`RemoteBackend`] talks to: one space server, or
/// a member cluster routed through [`ClusterClient`]. The enum keeps
/// every driver-side code path (backpressure window, degradation,
/// retirement) shared between the two deployments; only the five wire
/// operations dispatch.
enum Link {
    Single(RemoteStaging),
    Cluster(ClusterClient),
}

impl Link {
    /// Whether submissions have any chance of landing. The cluster link
    /// is always worth trying: connections are lazy, per-member, and a
    /// failed member is routed around per operation.
    fn alive(&self) -> bool {
        match self {
            Link::Single(s) => s.alive(),
            Link::Cluster(_) => true,
        }
    }

    fn put(&mut self, var: &str, step: u64, bb: BBox3, data: Bytes) -> Result<(), RemoteError> {
        match self {
            Link::Single(s) => s.with(|c| c.put(var, step, bb, data.clone())),
            Link::Cluster(c) => c.put(var, step, bb, data),
        }
    }

    /// Where a task's input bytes will live, for the scheduler's
    /// locality placement: the ring owner of each rank piece, folded
    /// into an `(endpoint, bytes)` map. Single-server staging has no
    /// placement choice to inform — the hint stays empty and the wire
    /// traffic byte-identical.
    fn residency_hint(&self, var: &str, step: u64, parts: &[(usize, Bytes)]) -> Vec<(String, u64)> {
        match self {
            Link::Single(_) => Vec::new(),
            Link::Cluster(c) => {
                let sized: Vec<(BBox3, u64)> = parts
                    .iter()
                    .map(|(r, payload)| (rank_bbox(*r), payload.len() as u64))
                    .collect();
                c.residency_hint(var, step, &sized)
            }
        }
    }

    /// Submit a task descriptor; returns the serving member's index
    /// (always 0 on a single server) with the admission verdict. A
    /// non-empty `hint` rides along for locality-aware schedulers;
    /// FCFS servers ignore it.
    fn submit_task(
        &mut self,
        label: &str,
        step: u64,
        data: Bytes,
        hint: Vec<(String, u64)>,
    ) -> Result<(usize, Admission), RemoteError> {
        match self {
            Link::Single(s) => s
                .with(|c| c.submit_task_admission(data.clone()))
                .map(|adm| (0, adm)),
            Link::Cluster(c) => c.submit_task_routed_hinted(label, step, data, hint),
        }
    }

    fn await_output(
        &mut self,
        label: &str,
        step: u64,
        deadline: Instant,
    ) -> Result<AnalysisOutput, RemoteError> {
        match self {
            Link::Single(s) => s.with(|c| await_output(c, label, step, deadline)),
            Link::Cluster(c) => await_output_cluster(c, label, step, deadline),
        }
    }

    fn evict_version(&mut self, version: u64) {
        match self {
            Link::Single(s) => {
                let _ = s.with(|c| c.evict_version(version));
            }
            Link::Cluster(c) => c.evict_version(version),
        }
    }

    fn close_sched(&mut self) {
        match self {
            Link::Single(s) => {
                let _ = s.with(|c| c.close_sched());
            }
            Link::Cluster(c) => c.close_sched(),
        }
    }
}

/// A task shipped to the remote staging area whose output has not been
/// collected yet. `parts` retains the in-situ intermediates so the
/// aggregation can re-run locally if the staging path fails — memory
/// bounded by `staging_max_inflight` retained steps (`Bytes` clones
/// share the underlying buffers with the staged puts).
struct PendingRemote {
    analysis_idx: usize,
    step: u64,
    /// Scheduler sequence number of the submitted task; `u64::MAX` when
    /// the task never made it into the remote queue. Sequence numbers
    /// are per-member, so shed-victim lookup also matches `member`.
    seq: u64,
    /// Index of the cluster member whose scheduler admitted the task
    /// (always 0 on a single server).
    member: usize,
    issued: Instant,
    parts: Vec<(usize, Bytes)>,
}

/// Hybrid aggregation on a remote staging service, with a bounded
/// in-flight window and graceful degradation.
pub struct RemoteBackend {
    ctx: RetireCtx,
    link: Link,
    caps: BackendCaps,
    pending: Vec<PendingRemote>,
    /// Every version (step) that had intermediates put remotely, for
    /// eviction at close time.
    versions: BTreeSet<u64>,
    deadline: Duration,
    max_inflight: usize,
    n_ranks: u32,
    hook: Option<StagingOutputHook>,
    submitted: usize,
    /// The driver is one tenant among several on a shared staging
    /// service, so closing the scheduler at end-of-run would retire
    /// every other tenant's workers too. Set when a non-default tenant
    /// is configured; the legacy sole-owner deployment (no tenant, or
    /// explicitly the default one) keeps its close-on-exit semantics.
    shared_tenant: bool,
}

impl RemoteBackend {
    /// Connect to the space server at `addr`. An unreachable endpoint
    /// does not fail the run — the staging starts out *lost* and every
    /// submitted task degrades to in-situ aggregation.
    pub fn new(
        ctx: RetireCtx,
        addr: sitra_net::Addr,
        deadline: Duration,
        max_inflight: usize,
        n_ranks: u32,
        hook: Option<StagingOutputHook>,
        tenant: Option<TenantSpec>,
    ) -> Self {
        let shared_tenant = is_shared_tenant(tenant.as_ref());
        RemoteBackend {
            ctx,
            link: Link::Single(RemoteStaging::connect(addr, tenant)),
            caps: CAPS,
            pending: Vec::new(),
            versions: BTreeSet::new(),
            deadline,
            max_inflight,
            n_ranks,
            hook,
            submitted: 0,
            shared_tenant,
        }
    }

    /// Stage through a member cluster instead of a single server. The
    /// endpoints must already be validated (non-empty, parseable) —
    /// [`crate::run_pipeline`] checks them before construction.
    pub fn new_cluster(
        ctx: RetireCtx,
        endpoints: Vec<String>,
        deadline: Duration,
        max_inflight: usize,
        n_ranks: u32,
        hook: Option<StagingOutputHook>,
        tenant: Option<TenantSpec>,
    ) -> Self {
        let mut client = ClusterClient::new(
            sitra_cluster::DEFAULT_SEED,
            sitra_cluster::DEFAULT_VNODES,
            endpoints,
            sitra_net::Backoff::default(),
        )
        .expect("endpoints validated by run_pipeline");
        let shared_tenant = is_shared_tenant(tenant.as_ref());
        if let Some(spec) = tenant {
            client = client.with_tenant(spec);
        }
        RemoteBackend {
            ctx,
            link: Link::Cluster(client),
            caps: CLUSTER_CAPS,
            pending: Vec::new(),
            versions: BTreeSet::new(),
            deadline,
            max_inflight,
            n_ranks,
            hook,
            submitted: 0,
            shared_tenant,
        }
    }

    /// Re-run a task's aggregation in-situ through the shared
    /// retirement path; returns the wall seconds burned.
    fn degrade(&self, p: PendingRemote, reason: &'static str) -> f64 {
        self.ctx.retire(Retired::Degraded {
            analysis_idx: p.analysis_idx,
            step: p.step,
            issued: p.issued,
            parts: p.parts,
            reason,
        })
    }

    /// Await the oldest in-flight remote output; any failure (deadline
    /// missed, endpoint lost) degrades that task to in-situ
    /// aggregation. Returns the wall seconds spent waiting and/or
    /// aggregating locally.
    fn collect_oldest(&mut self) -> f64 {
        let p = self.pending.remove(0);
        let label = self.ctx.analyses()[p.analysis_idx].label.clone();
        let step = p.step;
        let t0 = Instant::now();
        let deadline = t0 + self.deadline;
        let res = self.link.await_output(&label, step, deadline);
        sitra_obs::histogram("driver.staging.backpressure_wait_ns").observe(t0.elapsed());
        match res {
            Ok(output) => {
                self.ctx.retire(Retired::Collected {
                    analysis_idx: p.analysis_idx,
                    step,
                    output,
                });
                if let Some(h) = &self.hook {
                    h(&label, step);
                }
                t0.elapsed().as_secs_f64()
            }
            Err(e) => {
                let reason = match &e {
                    RemoteError::Timeout(_) => "deadline",
                    RemoteError::Net(_) => "endpoint-lost",
                    _ => "error",
                };
                t0.elapsed().as_secs_f64() + self.degrade(p, reason)
            }
        }
    }

    /// Put this step's intermediates into the staging space and submit
    /// the task through the admission-aware verb, recording it as
    /// in-flight. `Err(reason)` means the staging path refused (or
    /// lost) the task and the caller must degrade it immediately. An
    /// `AcceptedShed` verdict returns the evicted older task — it will
    /// never run remotely, so the caller re-runs its aggregation
    /// locally right away.
    fn try_ship(
        &mut self,
        analysis_idx: usize,
        step: u64,
        issued: Instant,
        parts: &[(usize, Bytes)],
    ) -> Result<Option<PendingRemote>, &'static str> {
        if !self.link.alive() {
            return Err("endpoint-lost");
        }
        let label = self.ctx.analyses()[analysis_idx].label.clone();
        let var = intermediate_var(&label);
        self.versions.insert(step);
        for (r, payload) in parts {
            let bb = rank_bbox(*r);
            if self.link.put(&var, step, bb, payload.clone()).is_err() {
                return Err("endpoint-lost");
            }
        }
        let task = encode_task(&RemoteTask {
            analysis_idx: analysis_idx as u32,
            step,
            n_ranks: self.n_ranks,
        });
        let hint = self.link.residency_hint(&var, step, parts);
        let verdict = self.link.submit_task(&label, step, task, hint);
        let (member, seq, shed_seq) = match verdict {
            Ok((member, Admission::Accepted { seq })) => (member, seq, None),
            Ok((member, Admission::AcceptedShed { seq, shed_seq })) => {
                (member, seq, Some(shed_seq))
            }
            Ok((_, Admission::Rejected)) => return Err("rejected"),
            Ok((_, Admission::TimedOut)) => return Err("admission-timeout"),
            Ok((_, Admission::Closed)) => return Err("sched-closed"),
            Err(_) => return Err("endpoint-lost"),
        };
        self.pending.push(PendingRemote {
            analysis_idx,
            step,
            seq,
            member,
            issued,
            parts: parts.to_vec(),
        });
        // The server evicted an older queued task to admit this one
        // (ShedOldest policy): hand it back for immediate local
        // re-aggregation. Sequence numbers are per member scheduler, so
        // the victim must have been admitted by the same member.
        let victim = shed_seq.and_then(|victim_seq| {
            self.pending
                .iter()
                .position(|p| p.seq == victim_seq && p.member == member)
                .map(|pos| self.pending.remove(pos))
        });
        Ok(victim)
    }
}

impl StagingBackend for RemoteBackend {
    fn caps(&self) -> BackendCaps {
        self.caps
    }

    fn submit(&mut self, task: StagedTask) -> f64 {
        self.submitted += 1;
        // Producer-side backpressure: bound the in-flight window by
        // collecting the oldest output first.
        let mut blocked = 0.0;
        while self.pending.len() >= self.max_inflight.max(1) {
            blocked += self.collect_oldest();
        }
        let shipped = self.try_ship(task.analysis_idx, task.step, task.issued, &task.parts);
        let caps = self.caps;
        self.ctx.record_insitu(&task, &caps, shipped.is_ok());
        match shipped {
            Ok(None) => {}
            Ok(Some(victim)) => blocked += self.degrade(victim, "shed"),
            Err(reason) => {
                blocked += self.degrade(
                    PendingRemote {
                        analysis_idx: task.analysis_idx,
                        step: task.step,
                        seq: u64::MAX,
                        member: 0,
                        issued: task.issued,
                        parts: task.parts,
                    },
                    reason,
                );
            }
        }
        blocked
    }

    fn collect_ready(&mut self) -> f64 {
        if self.pending.is_empty() {
            return 0.0;
        }
        let t0 = Instant::now();
        // Oldest-first, zero-deadline probes: collect outputs that are
        // already in the space, stop at the first that is not. Failures
        // are left pending — the blocking window/drain paths own
        // degradation, so a transient hiccup here never degrades a task
        // that would have made its real deadline.
        while let Some(p) = self.pending.first() {
            let (label, step) = (self.ctx.analyses()[p.analysis_idx].label.clone(), p.step);
            let res = self.link.await_output(&label, step, Instant::now());
            match res {
                Ok(output) => {
                    let p = self.pending.remove(0);
                    self.ctx.retire(Retired::Collected {
                        analysis_idx: p.analysis_idx,
                        step,
                        output,
                    });
                    if let Some(h) = &self.hook {
                        h(&label, step);
                    }
                }
                Err(_) => break,
            }
        }
        t0.elapsed().as_secs_f64()
    }

    fn drain(&mut self) -> f64 {
        // Collect every in-flight output; anything the staging path
        // lost is re-aggregated in-situ — zero lost steps.
        let mut blocked = 0.0;
        while !self.pending.is_empty() {
            blocked += self.collect_oldest();
        }
        blocked
    }

    fn close(&mut self) -> BackendStats {
        // Reclaim the staging memory (scoped to this tenant's namespace
        // when one is bound), then close the remote scheduler so
        // external bucket workers retire — unless the service is shared
        // with other tenants, in which case its lifetime belongs to the
        // operator, not to whichever driver finishes first.
        let versions: Vec<u64> = self.versions.iter().copied().collect();
        for v in versions {
            self.link.evict_version(v);
        }
        if !self.shared_tenant {
            self.link.close_sched();
        }
        BackendStats {
            submitted: self.submitted,
            max_queue_depth: 0,
        }
    }
}
