//! The single retirement path every staging backend reports through.
//!
//! A staged task can end four ways — aggregated by an in-process bucket
//! or synchronously on the caller ([`Retired::Completed`]), collected
//! from a remote staging area ([`Retired::Collected`]), re-aggregated
//! in-situ after a staging failure ([`Retired::Degraded`]), or dropped
//! on a back-pressure overrun ([`Retired::Dropped`]). All four funnel
//! into [`RetireCtx::retire`], which owns the bookkeeping the rest of
//! the system depends on: the [`AnalysisMetrics`] row, the
//! `analysis.aggregate` / `analysis.degraded` / `step.degraded` journal
//! events that `sitra_bench::replay` folds back into the paper-style
//! tables, the output recording, and the degraded/dropped counters.
//! Backends never touch those surfaces directly, so every backend keeps
//! byte-identical outputs and bit-identical replay accounting.

use crate::analysis::AnalysisOutput;
use crate::driver::staging::{BackendCaps, StagedTask};
use crate::metrics::AnalysisMetrics;
use crate::placement::AnalysisSpec;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How one staged task ended.
pub enum Retired {
    /// The aggregation ran inside this process (in-process bucket or
    /// synchronously on the caller): fill the row's aggregation half,
    /// journal `analysis.aggregate`, record the output.
    Completed {
        /// Index into the analysis roster.
        analysis_idx: usize,
        /// Simulation step.
        step: u64,
        /// The aggregated output.
        output: AnalysisOutput,
        /// Wall seconds of the aggregation stage.
        aggregate_secs: f64,
        /// Which bucket aggregated (None when synchronous).
        bucket: Option<u32>,
        /// Streaming aggregation was used.
        streamed: bool,
        /// Submission → output availability.
        latency_secs: f64,
        /// Simulated network seconds measured on the consuming side
        /// (merged into the row with `max`, like the replay does).
        movement_sim_secs: f64,
        /// Whether the row being completed is an in-transit row.
        in_transit: bool,
    },
    /// The aggregation ran on an *external* worker and the driver
    /// collected the encoded output: record it. The worker journals its
    /// own `analysis.aggregate` half (component `worker`), so the
    /// driver-side row keeps its aggregation fields zero.
    Collected {
        /// Index into the analysis roster.
        analysis_idx: usize,
        /// Simulation step.
        step: u64,
        /// The collected output.
        output: AnalysisOutput,
    },
    /// The staging path failed this task (deadline missed, admission
    /// refused, endpoint lost, task shed): re-run the aggregation
    /// in-situ from the retained intermediates — the paper's fully
    /// in-situ formulation as a degradation path. A degraded task is
    /// never a lost task.
    Degraded {
        /// Index into the analysis roster.
        analysis_idx: usize,
        /// Simulation step.
        step: u64,
        /// When the task was submitted (for completion latency).
        issued: Instant,
        /// The retained in-situ intermediates, in rank order.
        parts: Vec<(usize, Bytes)>,
        /// Failure label journaled with the `analysis.degraded` event.
        reason: &'static str,
    },
    /// The producers withdrew the payloads before the staging area got
    /// to them (back-pressure overrun): count the drop.
    Dropped,
}

/// Observes every output as it is recorded, regardless of which
/// backend or thread retired it (the steering publisher hangs off
/// this seam).
pub(crate) type OutputObserver = Arc<dyn Fn(&str, u64, &AnalysisOutput) + Send + Sync>;

/// Shared pipeline state every backend retires into. Cheap to clone
/// (one `Arc`); worker threads hold their own handle.
#[derive(Clone)]
pub struct RetireCtx {
    inner: Arc<Shared>,
}

struct Shared {
    analyses: Vec<AnalysisSpec>,
    metrics: Mutex<Vec<AnalysisMetrics>>,
    outputs: Mutex<Vec<(String, u64, AnalysisOutput)>>,
    dropped: AtomicUsize,
    degraded_tasks: AtomicUsize,
    degraded_steps: Mutex<BTreeSet<u64>>,
    observer: Option<OutputObserver>,
}

impl RetireCtx {
    pub(crate) fn new(analyses: Vec<AnalysisSpec>) -> Self {
        Self::with_observer(analyses, None)
    }

    pub(crate) fn with_observer(
        analyses: Vec<AnalysisSpec>,
        observer: Option<OutputObserver>,
    ) -> Self {
        RetireCtx {
            inner: Arc::new(Shared {
                analyses,
                metrics: Mutex::new(Vec::new()),
                outputs: Mutex::new(Vec::new()),
                dropped: AtomicUsize::new(0),
                degraded_tasks: AtomicUsize::new(0),
                degraded_steps: Mutex::new(BTreeSet::new()),
                observer,
            }),
        }
    }

    /// The analysis roster, shared by the driver and every backend.
    pub fn analyses(&self) -> &[AnalysisSpec] {
        &self.inner.analyses
    }

    /// Record the in-situ half of a task's metrics row and journal the
    /// `analysis.insitu` event, using the backend's placement label.
    /// Data movement is only charged when the backend actually shipped
    /// the intermediates (`caps.ships_data` and the ship succeeded).
    ///
    /// Backends must call this *before* the task becomes visible to any
    /// consumer: whoever completes the task updates this row in place
    /// and must find it even when it wins the race with the submitter.
    pub fn record_insitu(&self, task: &StagedTask, caps: &BackendCaps, shipped: bool) {
        let moved = caps.ships_data && shipped;
        let row = AnalysisMetrics {
            analysis: self.label(task.analysis_idx).to_string(),
            step: task.step,
            insitu_secs: task.insitu_secs,
            insitu_core_secs: task.insitu_core_secs,
            movement_bytes: if moved { task.movement_bytes } else { 0 },
            movement_sim_secs: if moved { task.movement_sim_secs } else { 0.0 },
            aggregate_secs: 0.0,
            aggregated_in_transit: caps.in_transit,
            bucket: None,
            streamed: false,
            completion_latency_secs: 0.0,
            degraded: false,
        };
        emit_insitu(&row, caps.placement);
        self.inner.metrics.lock().push(row);
    }

    /// Retire one task. Returns the wall seconds burned locally (the
    /// degraded re-aggregation; 0.0 otherwise) so the backend can charge
    /// them to the simulation's blocked time.
    pub fn retire(&self, retired: Retired) -> f64 {
        match retired {
            Retired::Completed {
                analysis_idx,
                step,
                output,
                aggregate_secs,
                bucket,
                streamed,
                latency_secs,
                movement_sim_secs,
                in_transit,
            } => {
                let label = self.label(analysis_idx);
                emit_aggregate(
                    "driver",
                    label,
                    step,
                    aggregate_secs,
                    bucket,
                    streamed,
                    latency_secs,
                    movement_sim_secs,
                );
                {
                    let mut m = self.inner.metrics.lock();
                    if let Some(row) = m.iter_mut().find(|r| {
                        r.analysis == label
                            && r.step == step
                            && r.aggregated_in_transit == in_transit
                    }) {
                        row.aggregate_secs = aggregate_secs;
                        row.bucket = bucket;
                        row.streamed = streamed;
                        row.completion_latency_secs = latency_secs;
                        row.movement_sim_secs = row.movement_sim_secs.max(movement_sim_secs);
                    }
                }
                self.push_output(analysis_idx, step, output);
                0.0
            }
            Retired::Collected {
                analysis_idx,
                step,
                output,
            } => {
                sitra_obs::counter("driver.staging.outputs_collected").inc();
                self.push_output(analysis_idx, step, output);
                0.0
            }
            Retired::Degraded {
                analysis_idx,
                step,
                issued,
                parts,
                reason,
            } => {
                let spec = &self.inner.analyses[analysis_idx];
                let t = Instant::now();
                let output = spec.analysis.aggregate(step, &parts);
                let aggregate_secs = t.elapsed().as_secs_f64();
                let latency_secs = issued.elapsed().as_secs_f64();
                self.inner.degraded_tasks.fetch_add(1, Ordering::Relaxed);
                sitra_obs::counter("driver.tasks.degraded").inc();
                sitra_obs::emit(
                    "driver",
                    "analysis.degraded",
                    &[
                        ("analysis", spec.label.clone()),
                        ("step", step.to_string()),
                        ("reason", reason.to_string()),
                        ("aggregate_secs", aggregate_secs.to_string()),
                        ("latency_secs", latency_secs.to_string()),
                    ],
                );
                if self.inner.degraded_steps.lock().insert(step) {
                    sitra_obs::counter("driver.steps.degraded").inc();
                    sitra_obs::emit("driver", "step.degraded", &[("step", step.to_string())]);
                }
                {
                    let mut m = self.inner.metrics.lock();
                    if let Some(row) = m
                        .iter_mut()
                        .find(|r| r.analysis == spec.label && r.step == step)
                    {
                        row.aggregate_secs = aggregate_secs;
                        row.aggregated_in_transit = false;
                        row.degraded = true;
                        row.completion_latency_secs = latency_secs;
                    }
                }
                self.push_output(analysis_idx, step, output);
                aggregate_secs
            }
            Retired::Dropped => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                0.0
            }
        }
    }

    fn label(&self, analysis_idx: usize) -> &str {
        &self.inner.analyses[analysis_idx].label
    }

    fn push_output(&self, analysis_idx: usize, step: u64, output: AnalysisOutput) {
        if let Some(observer) = &self.inner.observer {
            observer(self.label(analysis_idx), step, &output);
        }
        self.inner
            .outputs
            .lock()
            .push((self.label(analysis_idx).to_string(), step, output));
    }

    pub(crate) fn metrics_snapshot(&self) -> Vec<AnalysisMetrics> {
        self.inner.metrics.lock().clone()
    }

    pub(crate) fn take_outputs(&self) -> Vec<(String, u64, AnalysisOutput)> {
        std::mem::take(&mut *self.inner.outputs.lock())
    }

    pub(crate) fn dropped_tasks(&self) -> usize {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn degraded_tasks(&self) -> usize {
        self.inner.degraded_tasks.load(Ordering::Relaxed)
    }

    pub(crate) fn step_degraded(&self, step: u64) -> bool {
        self.inner.degraded_steps.lock().contains(&step)
    }
}

/// Journal the in-situ half of an analysis row. The kv payload mirrors
/// [`AnalysisMetrics`] field-for-field (f64s via `Display`, which
/// round-trips exactly) so `obs_report` can rebuild the paper-style
/// per-stage table from the journal alone.
fn emit_insitu(m: &AnalysisMetrics, placement: &str) {
    sitra_obs::emit(
        "driver",
        "analysis.insitu",
        &[
            ("analysis", m.analysis.clone()),
            ("step", m.step.to_string()),
            ("placement", placement.to_string()),
            ("insitu_secs", m.insitu_secs.to_string()),
            ("insitu_core_secs", m.insitu_core_secs.to_string()),
            ("movement_bytes", m.movement_bytes.to_string()),
            ("movement_sim_secs", m.movement_sim_secs.to_string()),
        ],
    );
}

/// Journal the aggregation half of an analysis row (either placement).
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_aggregate(
    component: &str,
    analysis: &str,
    step: u64,
    aggregate_secs: f64,
    bucket: Option<u32>,
    streamed: bool,
    latency_secs: f64,
    movement_sim_secs: f64,
) {
    sitra_obs::emit(
        component,
        "analysis.aggregate",
        &[
            ("analysis", analysis.to_string()),
            ("step", step.to_string()),
            ("aggregate_secs", aggregate_secs.to_string()),
            (
                "bucket",
                bucket.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            ),
            ("streamed", streamed.to_string()),
            ("latency_secs", latency_secs.to_string()),
            // The bucket-measured movement time; the live run merges it
            // into the row with max(), and so does the replay.
            ("movement_sim_secs", movement_sim_secs.to_string()),
        ],
    );
}
