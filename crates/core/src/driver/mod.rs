//! The live pipeline driver: simulation ranks, in-situ stages, and a
//! pluggable staging backend aggregating the in-transit stage.
//!
//! This is the paper's Fig. 5 running for real (at laptop scale):
//!
//! 1. Each step, the simulation ranks produce their blocks and exchange
//!    ghosts; due analyses run their in-situ stage data-parallel across
//!    ranks.
//! 2. The in-situ intermediates of every due analysis are handed to a
//!    [`staging::StagingBackend`] as one [`staging::StagedTask`]. The
//!    paper's core claim — one analysis decomposition runs unchanged
//!    wherever the aggregation happens — is that seam:
//!    [`staging::InSituBackend`] aggregates synchronously on the caller
//!    (the fully in-situ formulation), [`staging::LocalBackend`] exports
//!    payloads through the DART fabric and lets in-process
//!    staging-bucket threads pull and aggregate them, and
//!    [`staging::RemoteBackend`] ships them to a remote staging service
//!    (`sitra-staged`) over the socket transport.
//! 3. However a task ends — aggregated on a bucket, collected from the
//!    remote space, degraded to a local re-aggregation, or dropped on
//!    back-pressure overrun — it retires through one shared path
//!    ([`staging::RetireCtx::retire`]) that owns the metrics row, the
//!    journal events, the output recording, and the degradation
//!    counters, so every backend produces byte-identical outputs and
//!    bit-identical replay accounting.
//! 4. Back-pressure is a backend concern: the local backend's producers
//!    retain a bounded ring of exported payloads
//!    ([`PipelineConfig::staging_buffer_depth`]) and count overruns as
//!    dropped tasks; the remote backend bounds its in-flight window
//!    ([`PipelineConfig::staging_max_inflight`]), honours the server's
//!    admission verdicts, and *degrades* any task the staging path
//!    fails — the aggregation re-runs in-situ from the retained
//!    intermediates and the run continues with zero lost steps.

pub mod staging;

mod pipeline;
mod retire;

pub use pipeline::run_pipeline;
pub(crate) use retire::emit_aggregate;

use crate::analysis::AnalysisOutput;
use crate::metrics::PipelineMetrics;
use sitra_dart::NetworkModel;
use sitra_sim::Variable;
use std::sync::Arc;
use std::time::Duration;

/// Callback invoked after each remotely staged output is collected
/// (driver side), with the analysis label and step. An observation seam
/// for streaming consumers — and for tests, which use it to inject
/// faults at exact pipeline moments.
pub type StagingOutputHook = Arc<dyn Fn(&str, u64) + Send + Sync>;

/// Which [`staging::StagingBackend`] aggregates `Placement::Hybrid`
/// analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StagingMode {
    /// Aggregate on the simulation ranks, synchronously — the paper's
    /// fully in-situ formulation applied to the same two-stage
    /// decomposition. No data leaves the caller.
    InSitu,
    /// In-process staging-bucket threads fed through the scheduler and
    /// the DART fabric (the default).
    Local,
    /// A remote staging service (`"tcp://host:port"`, `"shm://name"`
    /// for a same-node shared-memory link, or `"inproc://name"`):
    /// intermediates are put into the addressed
    /// [`SpaceServer`](sitra_dataspaces::SpaceServer) (e.g. a
    /// `sitra-staged` process) and tasks are queued in its scheduler for
    /// external bucket workers ([`crate::remote::run_bucket_worker`]).
    Remote(String),
    /// A multi-member staging cluster: the listed endpoints are
    /// `sitra-staged` instances bound by `sitra-cluster` membership.
    /// Intermediates are routed to their consistent-hash ring owner,
    /// outputs are collected by fanning gets out to every member, and
    /// task descriptors are routed with fail-over
    /// ([`crate::remote::run_cluster_bucket_worker`] is the matching
    /// worker loop). Placement stays `hybrid-remote`, so golden outputs
    /// and replay accounting are identical to the single-server path.
    Cluster(Vec<String>),
}

/// A rejected [`PipelineConfig`], reported before the run starts instead
/// of panicking mid-flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Two analyses share a label; use [`crate::AnalysisSpec::with_label`].
    DuplicateLabel(String),
    /// The staging endpoint does not parse as a transport address.
    InvalidEndpoint {
        /// The offending endpoint string.
        endpoint: String,
        /// Why it failed to parse.
        reason: String,
    },
    /// [`StagingMode::Cluster`] was selected with an empty member list.
    EmptyCluster,
    /// A steering endpoint was configured on a fully in-situ pipeline:
    /// with [`StagingMode::InSitu`] there is no staging service for
    /// subscribers to interact with, so the endpoint would silently
    /// never serve a frame.
    SteeringWithoutStaging {
        /// The configured steering endpoint.
        endpoint: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::DuplicateLabel(label) => write!(
                f,
                "duplicate analysis label `{label}`; use AnalysisSpec::with_label"
            ),
            ConfigError::InvalidEndpoint { endpoint, reason } => {
                write!(f, "invalid staging endpoint `{endpoint}`: {reason}")
            }
            ConfigError::EmptyCluster => {
                write!(f, "cluster staging requires at least one member endpoint")
            }
            ConfigError::SteeringWithoutStaging { endpoint } => write!(
                f,
                "steering endpoint `{endpoint}` requires a staging backend; \
                 a fully in-situ pipeline has no staging service to steer"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a live pipeline run.
pub struct PipelineConfig {
    /// Rank grid (must evenly cover the simulation domain).
    pub parts: [usize; 3],
    /// Number of staging-bucket worker threads (local staging mode).
    pub staging_buckets: usize,
    /// Registered analyses.
    pub analyses: Vec<crate::placement::AnalysisSpec>,
    /// Simulation steps to run.
    pub steps: usize,
    /// The variable fed to single-variable analyses (viz, topology).
    pub analysis_variable: Variable,
    /// Additional variables materialized per block (for statistics).
    pub extra_variables: Vec<Variable>,
    /// How many steps of exported payloads each producer retains before
    /// withdrawing the oldest (staging back-pressure horizon; local
    /// staging mode).
    pub staging_buffer_depth: u64,
    /// Network model used for simulated-time accounting.
    pub network: NetworkModel,
    /// Where hybrid analyses aggregate; see [`StagingMode`].
    pub staging: StagingMode,
    /// Per-output deadline when awaiting a remotely staged aggregation.
    /// An output that misses it is re-aggregated in-situ and the step is
    /// marked degraded.
    pub staging_deadline: Duration,
    /// How many hybrid tasks may be in flight at the remote staging
    /// area before the driver blocks collecting the oldest (producer-
    /// side backpressure; also bounds the memory retained for in-situ
    /// fallback).
    pub staging_max_inflight: usize,
    /// Called after each remotely staged output is collected.
    pub staging_output_hook: Option<StagingOutputHook>,
    /// Tenant this pipeline runs as against a shared staging service
    /// (remote and cluster modes): every connection declares it before
    /// any traffic, so the service's weighted-fair scheduler and quotas
    /// attribute this pipeline's puts and tasks to it. `None` (the
    /// default) runs under the unscoped default tenant, byte-compatible
    /// with pre-tenancy deployments.
    pub staging_tenant: Option<sitra_dataspaces::TenantSpec>,
    /// Elastic bucket capacity (local staging mode): when set, the
    /// backend starts `min_buckets` workers and a controller thread
    /// grows the pool under sustained backlog / drains it back when the
    /// queue-wait p99 is comfortably inside the SLO, instead of pinning
    /// [`PipelineConfig::staging_buckets`] threads for the whole run.
    /// `None` (the default) keeps the fixed pool — byte-identical
    /// scheduling to the pre-elastic driver.
    pub bucket_autoscale: Option<sitra_dataspaces::AutoscaleConfig>,
    /// Serve steerable visualization on this endpoint: the driver runs
    /// a [`sitra_dataspaces::SteerServer`] there and publishes every
    /// collected [`AnalysisOutput::Image`] as a versioned frame, so
    /// subscribers can pull reduced frames and steer their downsample
    /// rate while the pipeline runs. Requires a staging backend
    /// (rejected with [`ConfigError::SteeringWithoutStaging`] under
    /// [`StagingMode::InSitu`]). `None` (the default) disables it.
    pub steering: Option<String>,
}

impl PipelineConfig {
    /// A minimal configuration.
    pub fn new(parts: [usize; 3], staging_buckets: usize, steps: usize) -> Self {
        Self {
            parts,
            staging_buckets,
            analyses: Vec::new(),
            steps,
            analysis_variable: Variable::Temperature,
            extra_variables: Vec::new(),
            staging_buffer_depth: 16,
            network: NetworkModel::gemini(),
            staging: StagingMode::Local,
            staging_deadline: Duration::from_secs(60),
            staging_max_inflight: 4,
            staging_output_hook: None,
            staging_tenant: None,
            bucket_autoscale: None,
            steering: None,
        }
    }

    /// Select the staging backend aggregating hybrid analyses.
    pub fn with_staging_mode(mut self, mode: StagingMode) -> Self {
        self.staging = mode;
        self
    }

    /// Stage hybrid analyses through a remote space server at `endpoint`.
    pub fn with_staging_endpoint(mut self, endpoint: impl Into<String>) -> Self {
        self.staging = StagingMode::Remote(endpoint.into());
        self
    }

    /// Stage hybrid analyses through a multi-member staging cluster.
    pub fn with_staging_cluster<I, S>(mut self, endpoints: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.staging = StagingMode::Cluster(endpoints.into_iter().map(Into::into).collect());
        self
    }

    /// Per-output deadline for remotely staged aggregations.
    pub fn with_staging_deadline(mut self, deadline: Duration) -> Self {
        self.staging_deadline = deadline;
        self
    }

    /// Bound on remotely staged tasks in flight.
    pub fn with_staging_max_inflight(mut self, max_inflight: usize) -> Self {
        self.staging_max_inflight = max_inflight;
        self
    }

    /// Observe every remotely collected output.
    pub fn with_staging_output_hook(mut self, hook: StagingOutputHook) -> Self {
        self.staging_output_hook = Some(hook);
        self
    }

    /// Run this pipeline as `tenant` against the staging service
    /// (remote and cluster modes; ignored by in-process backends, which
    /// are single-tenant by construction).
    pub fn with_tenant(mut self, tenant: sitra_dataspaces::TenantSpec) -> Self {
        self.staging_tenant = Some(tenant);
        self
    }

    /// Serve steerable visualization frames to subscribers on
    /// `endpoint` while the pipeline runs.
    pub fn with_steering_endpoint(mut self, endpoint: impl Into<String>) -> Self {
        self.steering = Some(endpoint.into());
        self
    }

    /// Autoscale the local staging-bucket pool between `min` and `max`
    /// workers, growing under sustained backlog and draining idle
    /// buckets once the queue-wait p99 is comfortably inside `slo`.
    pub fn with_bucket_autoscale(mut self, min: usize, max: usize, slo: Duration) -> Self {
        self.bucket_autoscale = Some(sitra_dataspaces::AutoscaleConfig::new(min, max, slo));
        self
    }
}

/// Result of a pipeline run: metrics plus every analysis output.
#[derive(Debug)]
pub struct PipelineResult {
    /// Per-stage measurements.
    pub metrics: PipelineMetrics,
    /// `(analysis name, step, output)` for every completed aggregation.
    pub outputs: Vec<(String, u64, AnalysisOutput)>,
    /// Tasks submitted to the staging backend selected by
    /// [`StagingMode`] (in-situ placed tasks are not counted). Every
    /// one of these retires exactly once — completed, collected,
    /// degraded, or dropped — which is the conservation law the chaos
    /// harness checks.
    pub staged_tasks: usize,
    /// Tasks dropped because the staging area fell behind the
    /// back-pressure horizon.
    pub dropped_tasks: usize,
    /// Staged tasks whose staging path failed (deadline missed,
    /// admission refused, endpoint lost) and whose aggregation the
    /// driver re-ran in-situ. Their outputs are still present — a
    /// degraded task is never a lost task.
    pub degraded_tasks: usize,
}

impl PipelineResult {
    /// Output of one analysis at one step.
    pub fn output(&self, name: &str, step: u64) -> Option<&AnalysisOutput> {
        self.outputs
            .iter()
            .find(|(n, s, _)| n == name && *s == step)
            .map(|(_, _, o)| o)
    }
}
