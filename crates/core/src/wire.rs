//! Compact binary codecs for analysis intermediates.
//!
//! The intermediates are what actually moves from the primary to the
//! secondary resources, so their encodings are fixed-layout little-endian
//! binary (not JSON): the byte counts reported by the metrics are the
//! real transfer sizes, directly comparable to the paper's Table II
//! "data movement size" column.
//!
//! Decoders are total: any byte sequence — truncated, corrupted, or
//! adversarial — yields a [`WireError`] rather than a panic or an
//! unbounded allocation. This matters once intermediates cross process
//! boundaries (the `sitra-net` remote staging path), where a peer's
//! bytes cannot be trusted to be well-formed.

use crate::analysis::AnalysisOutput;
use bytes::{BufMut, Bytes, BytesMut};
use sitra_flowmap::{FlowRecord, Termination};
use sitra_mesh::{BBox3, SampledBlock};
use sitra_stats::{CoMoments, Derived, Moments, MultiModel};
use sitra_topology::reduce::{Subtree, SubtreeVertex};
use sitra_topology::tree::CanonicalTree;

/// Decoding failure: the buffer does not hold a valid intermediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before `field` could be read.
    Truncated {
        /// Name of the field being read when the bytes ran out.
        field: &'static str,
    },
    /// A field was read but its value is structurally invalid.
    Malformed {
        /// Name of the offending field.
        field: &'static str,
    },
    /// Decoding finished with bytes left over (framing mismatch).
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { field } => write!(f, "buffer truncated reading `{field}`"),
            WireError::Malformed { field } => write!(f, "malformed field `{field}`"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after decoded value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked little-endian reader over a byte buffer.
struct Reader {
    buf: Bytes,
    pos: usize,
}

impl Reader {
    fn new(buf: Bytes) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<Bytes, WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { field });
        }
        let b = self.buf.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(b)
    }

    fn array<const N: usize>(&mut self, field: &'static str) -> Result<[u8; N], WireError> {
        if self.remaining() < N {
            return Err(WireError::Truncated { field });
        }
        let mut a = [0u8; N];
        a.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(a)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.array::<1>(field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array(field)?))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array(field)?))
    }

    fn i64(&mut self, field: &'static str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.array(field)?))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.array(field)?))
    }

    /// A claimed element count, validated against the bytes actually
    /// present (`min_elem_size` per element) so a corrupt length prefix
    /// cannot drive an unbounded allocation.
    fn count(&mut self, min_elem_size: usize, field: &'static str) -> Result<usize, WireError> {
        let n = self.u64(field)? as usize;
        if n.checked_mul(min_elem_size)
            .is_none_or(|total| total > self.remaining())
        {
            return Err(WireError::Truncated { field });
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

fn put_bbox(buf: &mut BytesMut, b: &BBox3) {
    for v in b.lo.iter().chain(b.hi.iter()) {
        buf.put_u64_le(*v as u64);
    }
}

fn read_bbox(rd: &mut Reader, field: &'static str) -> Result<BBox3, WireError> {
    let mut vals = [0usize; 6];
    for v in &mut vals {
        *v = rd.u64(field)? as usize;
    }
    let (lo, hi) = ([vals[0], vals[1], vals[2]], [vals[3], vals[4], vals[5]]);
    // BBox3::new asserts lo <= hi; validate instead of panicking.
    if lo.iter().zip(&hi).any(|(l, h)| l > h) {
        return Err(WireError::Malformed { field });
    }
    Ok(BBox3::new(lo, hi))
}

/// Encode a down-sampled block (hybrid visualization intermediate).
pub fn encode_sampled_block(s: &SampledBlock) -> Bytes {
    let mut buf = BytesMut::with_capacity(s.data.len() * 8 + 112);
    put_bbox(&mut buf, &s.src_bbox);
    put_bbox(&mut buf, &s.coarse_bbox);
    buf.put_u64_le(s.stride as u64);
    buf.put_u64_le(s.data.len() as u64);
    for v in &s.data {
        buf.put_f64_le(*v);
    }
    buf.freeze()
}

/// Decode a down-sampled block.
pub fn decode_sampled_block(b: Bytes) -> Result<SampledBlock, WireError> {
    let mut rd = Reader::new(b);
    let src_bbox = read_bbox(&mut rd, "src_bbox")?;
    let coarse_bbox = read_bbox(&mut rd, "coarse_bbox")?;
    let stride = rd.u64("stride")? as usize;
    if stride == 0 {
        return Err(WireError::Malformed { field: "stride" });
    }
    let n = rd.count(8, "data.len")?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(rd.f64("data")?);
    }
    rd.finish()?;
    Ok(SampledBlock {
        src_bbox,
        stride,
        coarse_bbox,
        data,
    })
}

/// Encode a multi-variable statistics model (hybrid stats intermediate).
pub fn encode_multimodel(m: &MultiModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(m.vars.len() as u32);
    for (name, mom) in &m.vars {
        let nb = name.as_bytes();
        buf.put_u32_le(nb.len() as u32);
        buf.put_slice(nb);
        buf.put_u64_le(mom.n);
        for v in [mom.min, mom.max, mom.mean, mom.m2, mom.m3, mom.m4] {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

fn read_moments(rd: &mut Reader) -> Result<Moments, WireError> {
    let n = rd.u64("moments.n")?;
    let mut f = [0.0f64; 6];
    for v in &mut f {
        *v = rd.f64("moments")?;
    }
    Ok(Moments {
        n,
        min: f[0],
        max: f[1],
        mean: f[2],
        m2: f[3],
        m3: f[4],
        m4: f[5],
    })
}

/// Decode a multi-variable statistics model.
pub fn decode_multimodel(b: Bytes) -> Result<MultiModel, WireError> {
    let mut rd = Reader::new(b);
    let nvars = rd.u32("nvars")? as usize;
    // Each variable is at least a length prefix plus the moment block.
    if nvars
        .checked_mul(4 + 56)
        .is_none_or(|total| total > rd.remaining())
    {
        return Err(WireError::Truncated { field: "nvars" });
    }
    let mut vars = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let nlen = rd.u32("name.len")? as usize;
        let raw = rd.take(nlen, "name")?;
        let name =
            String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed { field: "name" })?;
        vars.push((name, read_moments(&mut rd)?));
    }
    rd.finish()?;
    Ok(MultiModel { vars })
}

/// Encode a merge-tree subtree (hybrid topology intermediate).
pub fn encode_subtree(s: &Subtree) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(s.source);
    buf.put_u64_le(s.verts.len() as u64);
    for v in &s.verts {
        buf.put_u64_le(v.id);
        buf.put_f64_le(v.value);
        buf.put_u32_le(v.degree);
        buf.put_u8(u8::from(v.pinned));
        buf.put_u32_le(v.potential.len() as u32);
        for p in &v.potential {
            buf.put_u32_le(*p);
        }
    }
    buf.put_u64_le(s.edges.len() as u64);
    for (a, bb) in &s.edges {
        buf.put_u64_le(*a);
        buf.put_u64_le(*bb);
    }
    buf.freeze()
}

fn read_subtree(rd: &mut Reader) -> Result<Subtree, WireError> {
    let source = rd.u32("source")?;
    // A vertex is at least id + value + degree + pinned + potential.len.
    let nverts = rd.count(8 + 8 + 4 + 1 + 4, "verts.len")?;
    let mut verts = Vec::with_capacity(nverts);
    for _ in 0..nverts {
        let id = rd.u64("vert.id")?;
        let value = rd.f64("vert.value")?;
        let degree = rd.u32("vert.degree")?;
        let pinned = rd.u8("vert.pinned")? != 0;
        let np = rd.u32("potential.len")? as usize;
        if np.checked_mul(4).is_none_or(|total| total > rd.remaining()) {
            return Err(WireError::Truncated {
                field: "potential.len",
            });
        }
        let mut potential = Vec::with_capacity(np);
        for _ in 0..np {
            potential.push(rd.u32("potential")?);
        }
        verts.push(SubtreeVertex {
            id,
            value,
            degree,
            potential,
            pinned,
        });
    }
    let nedges = rd.count(16, "edges.len")?;
    let mut edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let a = rd.u64("edge.a")?;
        let bb = rd.u64("edge.b")?;
        edges.push((a, bb));
    }
    Ok(Subtree {
        source,
        verts,
        edges,
    })
}

/// Decode a merge-tree subtree.
pub fn decode_subtree(b: Bytes) -> Result<Subtree, WireError> {
    let mut rd = Reader::new(b);
    let sub = read_subtree(&mut rd)?;
    rd.finish()?;
    Ok(sub)
}

/// Encode a bivariate co-moment model (auto-correlative statistics
/// intermediate).
pub fn encode_comoments(m: &CoMoments) -> Bytes {
    let mut buf = BytesMut::with_capacity(48);
    buf.put_u64_le(m.n);
    for v in [m.mean_x, m.mean_y, m.m2x, m.m2y, m.cxy] {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Decode a bivariate co-moment model.
pub fn decode_comoments(b: Bytes) -> Result<CoMoments, WireError> {
    let mut rd = Reader::new(b);
    let n = rd.u64("n")?;
    let mut f = [0.0f64; 5];
    for v in &mut f {
        *v = rd.f64("comoments")?;
    }
    rd.finish()?;
    Ok(CoMoments {
        n,
        mean_x: f[0],
        mean_y: f[1],
        m2x: f[2],
        m2y: f[3],
        cxy: f[4],
    })
}

/// Encode a feature-statistics intermediate: a (pinned) subtree plus
/// per-local-feature partial moment models.
pub fn encode_feature_stats(sub: &Subtree, feats: &[(u64, Moments)]) -> Bytes {
    let tree_bytes = encode_subtree(sub);
    let mut buf = BytesMut::with_capacity(tree_bytes.len() + feats.len() * 64 + 16);
    buf.put_u64_le(tree_bytes.len() as u64);
    buf.put_slice(&tree_bytes);
    buf.put_u64_le(feats.len() as u64);
    for (id, m) in feats {
        buf.put_u64_le(*id);
        buf.put_u64_le(m.n);
        for v in [m.min, m.max, m.mean, m.m2, m.m3, m.m4] {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Decode a feature-statistics intermediate.
pub fn decode_feature_stats(b: Bytes) -> Result<(Subtree, Vec<(u64, Moments)>), WireError> {
    let mut rd = Reader::new(b);
    let tlen = rd.u64("subtree.len")? as usize;
    let tree_bytes = rd.take(tlen, "subtree")?;
    let sub = decode_subtree(tree_bytes)?;
    let n = rd.count(8 + 56, "feats.len")?;
    let mut feats = Vec::with_capacity(n);
    for _ in 0..n {
        let id = rd.u64("feat.id")?;
        feats.push((id, read_moments(&mut rd)?));
    }
    rd.finish()?;
    Ok((sub, feats))
}

/// Encode a partial (premultiplied RGBA) image with its block's position
/// along the compositing axis (fully in-situ visualization intermediate).
pub fn encode_partial_image(order_key: i64, img: &sitra_viz::Image) -> Bytes {
    let mut buf = BytesMut::with_capacity(img.pixels().len() * 32 + 24);
    buf.put_i64_le(order_key);
    buf.put_u64_le(img.width() as u64);
    buf.put_u64_le(img.height() as u64);
    for p in img.pixels() {
        for c in p {
            buf.put_f64_le(*c);
        }
    }
    buf.freeze()
}

/// Decode a partial image.
pub fn decode_partial_image(b: Bytes) -> Result<(i64, sitra_viz::Image), WireError> {
    let mut rd = Reader::new(b);
    let key = rd.i64("order_key")?;
    let w = rd.u64("width")? as usize;
    let h = rd.u64("height")? as usize;
    // Validate the full pixel payload before allocating the image.
    let pixels = w
        .checked_mul(h)
        .ok_or(WireError::Malformed { field: "dims" })?;
    if pixels
        .checked_mul(32)
        .is_none_or(|total| total != rd.remaining())
    {
        return Err(WireError::Truncated { field: "pixels" });
    }
    let mut img = sitra_viz::Image::new(w, h);
    for p in img.pixels_mut() {
        for c in p.iter_mut() {
            *c = rd.f64("pixel")?;
        }
    }
    rd.finish()?;
    Ok((key, img))
}

/// Encoded size of one [`FlowRecord`]: seed id, six position doubles,
/// step count, termination code.
const FLOW_RECORD_SIZE: usize = 8 + 48 + 4 + 1;

fn put_flow_records(buf: &mut BytesMut, recs: &[FlowRecord]) {
    buf.put_u64_le(recs.len() as u64);
    for r in recs {
        buf.put_u64_le(r.seed);
        for c in r.start.iter().chain(r.end.iter()) {
            buf.put_f64_le(*c);
        }
        buf.put_u32_le(r.steps);
        buf.put_u8(r.reason.code());
    }
}

fn read_flow_records(rd: &mut Reader) -> Result<Vec<FlowRecord>, WireError> {
    let n = rd.count(FLOW_RECORD_SIZE, "flow.len")?;
    let mut recs = Vec::with_capacity(n);
    for _ in 0..n {
        let seed = rd.u64("flow.seed")?;
        let mut c = [0.0f64; 6];
        for v in &mut c {
            *v = rd.f64("flow.pos")?;
        }
        let steps = rd.u32("flow.steps")?;
        let reason = Termination::from_code(rd.u8("flow.reason")?).ok_or(WireError::Malformed {
            field: "flow.reason",
        })?;
        recs.push(FlowRecord {
            seed,
            start: [c[0], c[1], c[2]],
            end: [c[3], c[4], c[5]],
            steps,
            reason,
        });
    }
    Ok(recs)
}

/// Encode a flow-map termination-record list (Lagrangian flow-map
/// intermediate).
pub fn encode_flow_records(recs: &[FlowRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + recs.len() * FLOW_RECORD_SIZE);
    put_flow_records(&mut buf, recs);
    buf.freeze()
}

/// Decode a flow-map termination-record list.
pub fn decode_flow_records(b: Bytes) -> Result<Vec<FlowRecord>, WireError> {
    let mut rd = Reader::new(b);
    let recs = read_flow_records(&mut rd)?;
    rd.finish()?;
    Ok(recs)
}

const OUT_IMAGE: u8 = 0;
const OUT_TREE: u8 = 1;
const OUT_STATS: u8 = 2;
const OUT_SCALARS: u8 = 3;
const OUT_FLOWMAP: u8 = 4;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn read_str(rd: &mut Reader, field: &'static str) -> Result<String, WireError> {
    let n = rd.u32(field)? as usize;
    let raw = rd.take(n, field)?;
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed { field })
}

/// Encode a completed analysis result for shipment from a remote staging
/// bucket back to the driver. Byte-for-byte deterministic: two equal
/// outputs always encode identically, which is what the remote-staging
/// integration test leans on to prove the TCP path exactly reproduces
/// the in-process pipeline.
pub fn encode_analysis_output(out: &AnalysisOutput) -> Bytes {
    let mut buf = BytesMut::new();
    match out {
        AnalysisOutput::Image(img) => {
            buf.put_u8(OUT_IMAGE);
            buf.put_u64_le(img.width() as u64);
            buf.put_u64_le(img.height() as u64);
            for p in img.pixels() {
                for c in p {
                    buf.put_f64_le(*c);
                }
            }
        }
        AnalysisOutput::Tree(tree) => {
            buf.put_u8(OUT_TREE);
            buf.put_u64_le(tree.nodes.len() as u64);
            for (id, v) in &tree.nodes {
                buf.put_u64_le(*id);
                buf.put_f64_le(*v);
            }
            buf.put_u64_le(tree.arcs.len() as u64);
            for (a, b) in &tree.arcs {
                buf.put_u64_le(*a);
                buf.put_u64_le(*b);
            }
        }
        AnalysisOutput::Stats(rows) => {
            buf.put_u8(OUT_STATS);
            buf.put_u32_le(rows.len() as u32);
            for (name, d) in rows {
                put_str(&mut buf, name);
                buf.put_u64_le(d.count);
                for v in [
                    d.min,
                    d.max,
                    d.mean,
                    d.variance,
                    d.std_dev,
                    d.skewness,
                    d.kurtosis_excess,
                ] {
                    buf.put_f64_le(v);
                }
            }
        }
        AnalysisOutput::Scalars(rows) => {
            buf.put_u8(OUT_SCALARS);
            buf.put_u32_le(rows.len() as u32);
            for (name, v) in rows {
                put_str(&mut buf, name);
                buf.put_f64_le(*v);
            }
        }
        AnalysisOutput::FlowMap(recs) => {
            buf.put_u8(OUT_FLOWMAP);
            put_flow_records(&mut buf, recs);
        }
    }
    buf.freeze()
}

/// Decode an analysis result. Total: never panics on arbitrary input.
pub fn decode_analysis_output(b: Bytes) -> Result<AnalysisOutput, WireError> {
    let mut rd = Reader::new(b);
    let out = match rd.u8("output.tag")? {
        OUT_IMAGE => {
            let w = rd.u64("width")? as usize;
            let h = rd.u64("height")? as usize;
            let pixels = w
                .checked_mul(h)
                .ok_or(WireError::Malformed { field: "dims" })?;
            if pixels
                .checked_mul(32)
                .is_none_or(|total| total != rd.remaining())
            {
                return Err(WireError::Truncated { field: "pixels" });
            }
            let mut img = sitra_viz::Image::new(w, h);
            for p in img.pixels_mut() {
                for c in p.iter_mut() {
                    *c = rd.f64("pixel")?;
                }
            }
            AnalysisOutput::Image(img)
        }
        OUT_TREE => {
            let nnodes = rd.count(16, "nodes.len")?;
            let mut nodes = Vec::with_capacity(nnodes);
            for _ in 0..nnodes {
                let id = rd.u64("node.id")?;
                let v = rd.f64("node.value")?;
                nodes.push((id, v));
            }
            let narcs = rd.count(16, "arcs.len")?;
            let mut arcs = Vec::with_capacity(narcs);
            for _ in 0..narcs {
                let a = rd.u64("arc.a")?;
                let b = rd.u64("arc.b")?;
                arcs.push((a, b));
            }
            AnalysisOutput::Tree(CanonicalTree { nodes, arcs })
        }
        OUT_STATS => {
            let n = rd.u32("stats.len")? as usize;
            // Each row is at least a name prefix plus count + 7 moments.
            if n.checked_mul(4 + 8 + 56)
                .is_none_or(|total| total > rd.remaining())
            {
                return Err(WireError::Truncated { field: "stats.len" });
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let name = read_str(&mut rd, "stat.name")?;
                let count = rd.u64("stat.count")?;
                let mut f = [0.0f64; 7];
                for v in &mut f {
                    *v = rd.f64("stat")?;
                }
                rows.push((
                    name,
                    Derived {
                        count,
                        min: f[0],
                        max: f[1],
                        mean: f[2],
                        variance: f[3],
                        std_dev: f[4],
                        skewness: f[5],
                        kurtosis_excess: f[6],
                    },
                ));
            }
            AnalysisOutput::Stats(rows)
        }
        OUT_SCALARS => {
            let n = rd.u32("scalars.len")? as usize;
            if n.checked_mul(4 + 8)
                .is_none_or(|total| total > rd.remaining())
            {
                return Err(WireError::Truncated {
                    field: "scalars.len",
                });
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let name = read_str(&mut rd, "scalar.name")?;
                rows.push((name, rd.f64("scalar")?));
            }
            AnalysisOutput::Scalars(rows)
        }
        OUT_FLOWMAP => AnalysisOutput::FlowMap(read_flow_records(&mut rd)?),
        _ => {
            return Err(WireError::Malformed {
                field: "output.tag",
            })
        }
    };
    rd.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitra_mesh::{downsample, ScalarField};

    #[test]
    fn sampled_block_roundtrip() {
        let b = BBox3::new([4, 0, 8], [12, 6, 14]);
        let f = ScalarField::from_fn(b, |p| p[0] as f64 * 1.5 - p[2] as f64);
        let s = downsample(&f, 2);
        let bytes = encode_sampled_block(&s);
        assert_eq!(decode_sampled_block(bytes).unwrap(), s);
    }

    #[test]
    fn multimodel_roundtrip() {
        let m = MultiModel::learn(&[("T", &[1.0, 2.0, 300.5][..]), ("Y_OH", &[0.001, 0.002][..])]);
        let bytes = encode_multimodel(&m);
        assert_eq!(bytes.len(), 4 + (4 + 1 + 56) + (4 + 4 + 56));
        assert_eq!(decode_multimodel(bytes).unwrap(), m);
    }

    #[test]
    fn subtree_roundtrip() {
        let s = Subtree {
            source: 3,
            verts: vec![
                SubtreeVertex {
                    id: 10,
                    value: 5.5,
                    degree: 1,
                    potential: vec![3],
                    pinned: true,
                },
                SubtreeVertex {
                    id: 20,
                    value: -1.0,
                    degree: 1,
                    potential: vec![1, 3, 7],
                    pinned: false,
                },
            ],
            edges: vec![(10, 20)],
        };
        assert_eq!(decode_subtree(encode_subtree(&s)).unwrap(), s);
    }

    #[test]
    fn empty_subtree_roundtrip() {
        let s = Subtree {
            source: 0,
            verts: vec![],
            edges: vec![],
        };
        assert_eq!(decode_subtree(encode_subtree(&s)).unwrap(), s);
    }

    #[test]
    fn comoments_roundtrip() {
        let m = CoMoments::from_slices(&[1.0, 2.0, 5.0], &[2.0, 4.0, 9.0]);
        let back = decode_comoments(encode_comoments(&m)).unwrap();
        assert_eq!(back, m);
        assert_eq!(encode_comoments(&m).len(), 48);
    }

    #[test]
    fn feature_stats_roundtrip() {
        let sub = Subtree {
            source: 1,
            verts: vec![SubtreeVertex {
                id: 5,
                value: 2.0,
                degree: 0,
                potential: vec![1],
                pinned: true,
            }],
            edges: vec![],
        };
        let feats = vec![(5u64, Moments::from_slice(&[1.0, 2.0, 3.0]))];
        let (s2, f2) = decode_feature_stats(encode_feature_stats(&sub, &feats)).unwrap();
        assert_eq!(s2, sub);
        assert_eq!(f2, feats);
    }

    #[test]
    fn image_roundtrip() {
        let mut img = sitra_viz::Image::new(3, 2);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = [i as f64, 0.5, -1.0, 1.0];
        }
        let (key, back) = decode_partial_image(encode_partial_image(-7, &img)).unwrap();
        assert_eq!(key, -7);
        assert_eq!(back, img);
    }

    #[test]
    fn encoded_sizes_track_content() {
        let b = BBox3::from_dims([16, 16, 16]);
        let f = ScalarField::zeros(b);
        let s1 = encode_sampled_block(&downsample(&f, 1));
        let s4 = encode_sampled_block(&downsample(&f, 4));
        assert!(
            s1.len() > 40 * s4.len() / 2,
            "s1 {} s4 {}",
            s1.len(),
            s4.len()
        );
    }

    #[test]
    fn empty_buffers_error() {
        let e = Bytes::new();
        assert!(decode_sampled_block(e.clone()).is_err());
        assert!(decode_multimodel(e.clone()).is_err());
        assert!(decode_subtree(e.clone()).is_err());
        assert!(decode_comoments(e.clone()).is_err());
        assert!(decode_feature_stats(e.clone()).is_err());
        assert!(decode_flow_records(e.clone()).is_err());
        assert!(decode_partial_image(e).is_err());
    }

    fn sample_flow_records() -> Vec<FlowRecord> {
        vec![
            FlowRecord {
                seed: 12,
                start: [0.0, 4.0, 0.0],
                end: [7.25, 4.5, 0.125],
                steps: 9,
                reason: Termination::ExitedBlock,
            },
            FlowRecord {
                seed: 40,
                start: [8.0, 0.0, 4.0],
                end: [9.5, 0.25, 4.0],
                steps: 64,
                reason: Termination::MaxSteps,
            },
        ]
    }

    #[test]
    fn flow_records_roundtrip() {
        let recs = sample_flow_records();
        let enc = encode_flow_records(&recs);
        assert_eq!(enc.len(), 8 + recs.len() * FLOW_RECORD_SIZE);
        assert_eq!(decode_flow_records(enc.clone()).unwrap(), recs);
        // Determinism: equal lists encode identically.
        assert_eq!(encode_flow_records(&recs), enc);
        // Empty lists round-trip too.
        assert_eq!(
            decode_flow_records(encode_flow_records(&[])).unwrap(),
            vec![]
        );
        // Every truncation errors.
        for cut in 0..enc.len() {
            assert!(decode_flow_records(enc.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn flow_records_reject_hostile_count_and_bad_reason() {
        // A list claiming u64::MAX records in an 8-byte buffer.
        let mut buf = BytesMut::new();
        buf.put_u64_le(u64::MAX);
        assert_eq!(
            decode_flow_records(buf.freeze()),
            Err(WireError::Truncated { field: "flow.len" })
        );
        // An undefined termination code is malformed, not a panic.
        let mut recs = sample_flow_records();
        recs.truncate(1);
        let enc = encode_flow_records(&recs);
        let mut corrupt = enc.to_vec();
        *corrupt.last_mut().unwrap() = 9;
        assert_eq!(
            decode_flow_records(Bytes::from(corrupt)),
            Err(WireError::Malformed {
                field: "flow.reason"
            })
        );
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        // A subtree claiming u64::MAX vertices in a 16-byte buffer.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_u64_le(u64::MAX);
        buf.put_u32_le(0);
        assert_eq!(
            decode_subtree(buf.freeze()),
            Err(WireError::Truncated { field: "verts.len" })
        );
        // An image claiming enormous dimensions with no pixel payload.
        let mut buf = BytesMut::new();
        buf.put_i64_le(0);
        buf.put_u64_le(u64::MAX / 2);
        buf.put_u64_le(u64::MAX / 2);
        assert!(decode_partial_image(buf.freeze()).is_err());
    }

    #[test]
    fn inverted_bbox_is_malformed() {
        let mut buf = BytesMut::new();
        // lo = (9,9,9), hi = (1,1,1): violates the bbox invariant.
        for v in [9u64, 9, 9, 1, 1, 1] {
            buf.put_u64_le(v);
        }
        for v in [0u64; 12] {
            buf.put_u64_le(v);
        }
        assert_eq!(
            decode_sampled_block(buf.freeze()),
            Err(WireError::Malformed { field: "src_bbox" })
        );
    }

    #[test]
    fn analysis_output_roundtrip() {
        let mut img = sitra_viz::Image::new(2, 2);
        img.pixels_mut()[3] = [0.1, 0.2, 0.3, 1.0];
        let outs = vec![
            AnalysisOutput::Image(img),
            AnalysisOutput::Tree(CanonicalTree {
                nodes: vec![(1, 5.0), (9, -2.5)],
                arcs: vec![(9, 1)],
            }),
            AnalysisOutput::Stats(vec![(
                "T".to_string(),
                sitra_stats::derive(&Moments::from_slice(&[1.0, 2.0, 3.0, 4.0])).unwrap(),
            )]),
            AnalysisOutput::Scalars(vec![("corr(T,P)".to_string(), 0.93)]),
            AnalysisOutput::FlowMap(sample_flow_records()),
        ];
        for o in outs {
            let enc = encode_analysis_output(&o);
            assert_eq!(decode_analysis_output(enc.clone()).unwrap(), o);
            // Determinism: equal outputs encode identically.
            assert_eq!(encode_analysis_output(&o), enc);
        }
    }

    #[test]
    fn analysis_output_rejects_garbage() {
        assert!(decode_analysis_output(Bytes::new()).is_err());
        assert!(decode_analysis_output(Bytes::from_static(&[99])).is_err());
        // Hostile stats count with no payload.
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        buf.put_u32_le(u32::MAX);
        assert!(decode_analysis_output(buf.freeze()).is_err());
        // Truncations of a valid tree all error.
        let enc = encode_analysis_output(&AnalysisOutput::Tree(CanonicalTree {
            nodes: vec![(3, 1.0)],
            arcs: vec![],
        }));
        for cut in 0..enc.len() {
            assert!(decode_analysis_output(enc.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let m = CoMoments::from_slices(&[1.0, 2.0], &[3.0, 4.0]);
        let enc = encode_comoments(&m);
        let mut padded = BytesMut::new();
        padded.put_slice(&enc);
        padded.put_u8(0xAA);
        assert_eq!(
            decode_comoments(padded.freeze()),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }
}
