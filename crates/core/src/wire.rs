//! Compact binary codecs for analysis intermediates.
//!
//! The intermediates are what actually moves from the primary to the
//! secondary resources, so their encodings are fixed-layout little-endian
//! binary (not JSON): the byte counts reported by the metrics are the
//! real transfer sizes, directly comparable to the paper's Table II
//! "data movement size" column.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sitra_mesh::{BBox3, SampledBlock};
use sitra_stats::{CoMoments, Moments, MultiModel};
use sitra_topology::reduce::{Subtree, SubtreeVertex};

fn put_bbox(buf: &mut BytesMut, b: &BBox3) {
    for v in b.lo.iter().chain(b.hi.iter()) {
        buf.put_u64_le(*v as u64);
    }
}

fn get_bbox(buf: &mut Bytes) -> BBox3 {
    let mut vals = [0usize; 6];
    for v in &mut vals {
        *v = buf.get_u64_le() as usize;
    }
    BBox3::new([vals[0], vals[1], vals[2]], [vals[3], vals[4], vals[5]])
}

/// Encode a down-sampled block (hybrid visualization intermediate).
pub fn encode_sampled_block(s: &SampledBlock) -> Bytes {
    let mut buf = BytesMut::with_capacity(s.data.len() * 8 + 112);
    put_bbox(&mut buf, &s.src_bbox);
    put_bbox(&mut buf, &s.coarse_bbox);
    buf.put_u64_le(s.stride as u64);
    buf.put_u64_le(s.data.len() as u64);
    for v in &s.data {
        buf.put_f64_le(*v);
    }
    buf.freeze()
}

/// Decode a down-sampled block.
pub fn decode_sampled_block(mut b: Bytes) -> SampledBlock {
    let src_bbox = get_bbox(&mut b);
    let coarse_bbox = get_bbox(&mut b);
    let stride = b.get_u64_le() as usize;
    let n = b.get_u64_le() as usize;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(b.get_f64_le());
    }
    SampledBlock {
        src_bbox,
        stride,
        coarse_bbox,
        data,
    }
}

/// Encode a multi-variable statistics model (hybrid stats intermediate).
pub fn encode_multimodel(m: &MultiModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(m.vars.len() as u32);
    for (name, mom) in &m.vars {
        let nb = name.as_bytes();
        buf.put_u32_le(nb.len() as u32);
        buf.put_slice(nb);
        buf.put_u64_le(mom.n);
        for v in [mom.min, mom.max, mom.mean, mom.m2, mom.m3, mom.m4] {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Decode a multi-variable statistics model.
pub fn decode_multimodel(mut b: Bytes) -> MultiModel {
    let nvars = b.get_u32_le() as usize;
    let mut vars = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let nlen = b.get_u32_le() as usize;
        let name = String::from_utf8(b.split_to(nlen).to_vec()).expect("utf8 name");
        let n = b.get_u64_le();
        let mut f = [0.0f64; 6];
        for v in &mut f {
            *v = b.get_f64_le();
        }
        vars.push((
            name,
            Moments {
                n,
                min: f[0],
                max: f[1],
                mean: f[2],
                m2: f[3],
                m3: f[4],
                m4: f[5],
            },
        ));
    }
    MultiModel { vars }
}

/// Encode a merge-tree subtree (hybrid topology intermediate).
pub fn encode_subtree(s: &Subtree) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(s.source);
    buf.put_u64_le(s.verts.len() as u64);
    for v in &s.verts {
        buf.put_u64_le(v.id);
        buf.put_f64_le(v.value);
        buf.put_u32_le(v.degree);
        buf.put_u8(u8::from(v.pinned));
        buf.put_u32_le(v.potential.len() as u32);
        for p in &v.potential {
            buf.put_u32_le(*p);
        }
    }
    buf.put_u64_le(s.edges.len() as u64);
    for (a, bb) in &s.edges {
        buf.put_u64_le(*a);
        buf.put_u64_le(*bb);
    }
    buf.freeze()
}

/// Decode a merge-tree subtree.
pub fn decode_subtree(mut b: Bytes) -> Subtree {
    let source = b.get_u32_le();
    let nverts = b.get_u64_le() as usize;
    let mut verts = Vec::with_capacity(nverts);
    for _ in 0..nverts {
        let id = b.get_u64_le();
        let value = b.get_f64_le();
        let degree = b.get_u32_le();
        let pinned = b.get_u8() != 0;
        let np = b.get_u32_le() as usize;
        let mut potential = Vec::with_capacity(np);
        for _ in 0..np {
            potential.push(b.get_u32_le());
        }
        verts.push(SubtreeVertex {
            id,
            value,
            degree,
            potential,
            pinned,
        });
    }
    let nedges = b.get_u64_le() as usize;
    let mut edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let a = b.get_u64_le();
        let bb = b.get_u64_le();
        edges.push((a, bb));
    }
    Subtree {
        source,
        verts,
        edges,
    }
}

/// Encode a bivariate co-moment model (auto-correlative statistics
/// intermediate).
pub fn encode_comoments(m: &CoMoments) -> Bytes {
    let mut buf = BytesMut::with_capacity(48);
    buf.put_u64_le(m.n);
    for v in [m.mean_x, m.mean_y, m.m2x, m.m2y, m.cxy] {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Decode a bivariate co-moment model.
pub fn decode_comoments(mut b: Bytes) -> CoMoments {
    let n = b.get_u64_le();
    let mut f = [0.0f64; 5];
    for v in &mut f {
        *v = b.get_f64_le();
    }
    CoMoments {
        n,
        mean_x: f[0],
        mean_y: f[1],
        m2x: f[2],
        m2y: f[3],
        cxy: f[4],
    }
}

/// Encode a feature-statistics intermediate: a (pinned) subtree plus
/// per-local-feature partial moment models.
pub fn encode_feature_stats(sub: &Subtree, feats: &[(u64, Moments)]) -> Bytes {
    let tree_bytes = encode_subtree(sub);
    let mut buf = BytesMut::with_capacity(tree_bytes.len() + feats.len() * 64 + 16);
    buf.put_u64_le(tree_bytes.len() as u64);
    buf.put_slice(&tree_bytes);
    buf.put_u64_le(feats.len() as u64);
    for (id, m) in feats {
        buf.put_u64_le(*id);
        buf.put_u64_le(m.n);
        for v in [m.min, m.max, m.mean, m.m2, m.m3, m.m4] {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Decode a feature-statistics intermediate.
pub fn decode_feature_stats(mut b: Bytes) -> (Subtree, Vec<(u64, Moments)>) {
    let tlen = b.get_u64_le() as usize;
    let sub = decode_subtree(b.split_to(tlen));
    let n = b.get_u64_le() as usize;
    let mut feats = Vec::with_capacity(n);
    for _ in 0..n {
        let id = b.get_u64_le();
        let nn = b.get_u64_le();
        let mut f = [0.0f64; 6];
        for v in &mut f {
            *v = b.get_f64_le();
        }
        feats.push((
            id,
            Moments {
                n: nn,
                min: f[0],
                max: f[1],
                mean: f[2],
                m2: f[3],
                m3: f[4],
                m4: f[5],
            },
        ));
    }
    (sub, feats)
}

/// Encode a partial (premultiplied RGBA) image with its block's position
/// along the compositing axis (fully in-situ visualization intermediate).
pub fn encode_partial_image(order_key: i64, img: &sitra_viz::Image) -> Bytes {
    let mut buf = BytesMut::with_capacity(img.pixels().len() * 32 + 24);
    buf.put_i64_le(order_key);
    buf.put_u64_le(img.width() as u64);
    buf.put_u64_le(img.height() as u64);
    for p in img.pixels() {
        for c in p {
            buf.put_f64_le(*c);
        }
    }
    buf.freeze()
}

/// Decode a partial image.
pub fn decode_partial_image(mut b: Bytes) -> (i64, sitra_viz::Image) {
    let key = b.get_i64_le();
    let w = b.get_u64_le() as usize;
    let h = b.get_u64_le() as usize;
    let mut img = sitra_viz::Image::new(w, h);
    for p in img.pixels_mut() {
        for c in p.iter_mut() {
            *c = b.get_f64_le();
        }
    }
    (key, img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitra_mesh::{downsample, ScalarField};

    #[test]
    fn sampled_block_roundtrip() {
        let b = BBox3::new([4, 0, 8], [12, 6, 14]);
        let f = ScalarField::from_fn(b, |p| p[0] as f64 * 1.5 - p[2] as f64);
        let s = downsample(&f, 2);
        let bytes = encode_sampled_block(&s);
        assert_eq!(decode_sampled_block(bytes), s);
    }

    #[test]
    fn multimodel_roundtrip() {
        let m = MultiModel::learn(&[
            ("T", &[1.0, 2.0, 300.5][..]),
            ("Y_OH", &[0.001, 0.002][..]),
        ]);
        let bytes = encode_multimodel(&m);
        assert_eq!(bytes.len(), 4 + (4 + 1 + 56) + (4 + 4 + 56));
        assert_eq!(decode_multimodel(bytes), m);
    }

    #[test]
    fn subtree_roundtrip() {
        let s = Subtree {
            source: 3,
            verts: vec![
                SubtreeVertex {
                    id: 10,
                    value: 5.5,
                    degree: 1,
                    potential: vec![3],
                    pinned: true,
                },
                SubtreeVertex {
                    id: 20,
                    value: -1.0,
                    degree: 1,
                    potential: vec![1, 3, 7],
                    pinned: false,
                },
            ],
            edges: vec![(10, 20)],
        };
        assert_eq!(decode_subtree(encode_subtree(&s)), s);
    }

    #[test]
    fn empty_subtree_roundtrip() {
        let s = Subtree {
            source: 0,
            verts: vec![],
            edges: vec![],
        };
        assert_eq!(decode_subtree(encode_subtree(&s)), s);
    }

    #[test]
    fn comoments_roundtrip() {
        let m = CoMoments::from_slices(&[1.0, 2.0, 5.0], &[2.0, 4.0, 9.0]);
        let back = decode_comoments(encode_comoments(&m));
        assert_eq!(back, m);
        assert_eq!(encode_comoments(&m).len(), 48);
    }

    #[test]
    fn feature_stats_roundtrip() {
        let sub = Subtree {
            source: 1,
            verts: vec![SubtreeVertex {
                id: 5,
                value: 2.0,
                degree: 0,
                potential: vec![1],
                pinned: true,
            }],
            edges: vec![],
        };
        let feats = vec![(5u64, Moments::from_slice(&[1.0, 2.0, 3.0]))];
        let (s2, f2) = decode_feature_stats(encode_feature_stats(&sub, &feats));
        assert_eq!(s2, sub);
        assert_eq!(f2, feats);
    }

    #[test]
    fn image_roundtrip() {
        let mut img = sitra_viz::Image::new(3, 2);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = [i as f64, 0.5, -1.0, 1.0];
        }
        let (key, back) = decode_partial_image(encode_partial_image(-7, &img));
        assert_eq!(key, -7);
        assert_eq!(back, img);
    }

    #[test]
    fn encoded_sizes_track_content() {
        let b = BBox3::from_dims([16, 16, 16]);
        let f = ScalarField::zeros(b);
        let s1 = encode_sampled_block(&downsample(&f, 1));
        let s4 = encode_sampled_block(&downsample(&f, 4));
        assert!(s1.len() > 40 * s4.len() / 2, "s1 {} s4 {}", s1.len(), s4.len());
    }
}
