//! The live pipeline driver: simulation ranks, in-situ stages, DART
//! exports, the DataSpaces scheduler, and staging-bucket worker threads.
//!
//! This is the paper's Fig. 5 running for real (at laptop scale):
//!
//! 1. Each step, the simulation ranks produce their blocks and exchange
//!    ghosts; due analyses run their in-situ stage data-parallel across
//!    ranks.
//! 2. Hybrid-placement intermediates are exported as RDMA-able regions
//!    on each rank's DART endpoint; a *data-ready* task descriptor is
//!    pushed into the scheduler. The simulation moves on immediately —
//!    it pays only the in-situ stage and the (cheap) send initiation.
//! 3. Staging-bucket threads issue *bucket-ready* requests, receive task
//!    descriptors FCFS, pull every rank's payload directly from the
//!    producers' exported memory via `rdma_get`, run the aggregation
//!    stage, and record the output. Successive steps naturally land on
//!    different buckets (temporal multiplexing).
//! 4. Producers retain a bounded ring of exported step payloads
//!    (`staging_buffer_depth`); if the staging area falls that far
//!    behind, the oldest payloads are withdrawn and the overrun tasks
//!    are counted as dropped — the same back-pressure signal a real
//!    staging deployment must watch.
//! 5. In **remote** staging mode the driver additionally applies flow
//!    control end to end: at most `staging_max_inflight` tasks ride the
//!    wire at once (the producer blocks collecting the oldest first),
//!    the server's admission policy can refuse or shed tasks, and any
//!    task the staging path fails — deadline missed, admission refused,
//!    endpoint unreachable — is *degraded*: its aggregation re-runs
//!    in-situ from the retained intermediates, the step is marked
//!    degraded in the metrics and the journal, and the run continues
//!    with zero lost steps.

use crate::analysis::{AnalysisOutput, InSituCtx};
use crate::metrics::{AnalysisMetrics, PipelineMetrics, StepMetrics};
use crate::placement::{AnalysisSpec, Placement};
use crate::remote::{await_output, encode_task, intermediate_var, rank_bbox, RemoteTask};
use bytes::Bytes;
use parking_lot::Mutex;
use rayon::prelude::*;
use sitra_dart::{Endpoint, EndpointId, Event, Fabric, NetworkModel, RegionKey};
use sitra_dataspaces::remote::{RemoteError, RemoteSpace};
use sitra_dataspaces::{Admission, Scheduler};
use sitra_mesh::{exchange_ghosts, Decomposition, ScalarField};
use sitra_sim::{Simulation, Variable};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Callback invoked after each remotely staged output is collected
/// (driver side), with the analysis label and step. An observation seam
/// for streaming consumers — and for tests, which use it to inject
/// faults at exact pipeline moments.
pub type StagingOutputHook = Arc<dyn Fn(&str, u64) + Send + Sync>;

/// Configuration of a live pipeline run.
pub struct PipelineConfig {
    /// Rank grid (must evenly cover the simulation domain).
    pub parts: [usize; 3],
    /// Number of staging-bucket worker threads.
    pub staging_buckets: usize,
    /// Registered analyses.
    pub analyses: Vec<AnalysisSpec>,
    /// Simulation steps to run.
    pub steps: usize,
    /// The variable fed to single-variable analyses (viz, topology).
    pub analysis_variable: Variable,
    /// Additional variables materialized per block (for statistics).
    pub extra_variables: Vec<Variable>,
    /// How many steps of exported payloads each producer retains before
    /// withdrawing the oldest (staging back-pressure horizon).
    pub staging_buffer_depth: u64,
    /// Network model used for simulated-time accounting.
    pub network: NetworkModel,
    /// When set (`"tcp://host:port"` or `"inproc://name"`), hybrid
    /// analyses are staged **remotely**: intermediates are put into the
    /// addressed [`SpaceServer`](sitra_dataspaces::SpaceServer) (e.g. a
    /// `sitra-staged` process) and tasks are queued in its scheduler for
    /// external bucket workers ([`crate::remote::run_bucket_worker`]).
    /// `None` keeps the in-process staging threads.
    pub staging_endpoint: Option<String>,
    /// Per-output deadline when awaiting a remotely staged aggregation.
    /// An output that misses it is re-aggregated in-situ and the step is
    /// marked degraded.
    pub staging_deadline: Duration,
    /// How many hybrid tasks may be in flight at the remote staging
    /// area before the driver blocks collecting the oldest (producer-
    /// side backpressure; also bounds the memory retained for in-situ
    /// fallback).
    pub staging_max_inflight: usize,
    /// Called after each remotely staged output is collected.
    pub staging_output_hook: Option<StagingOutputHook>,
}

impl PipelineConfig {
    /// A minimal configuration.
    pub fn new(parts: [usize; 3], staging_buckets: usize, steps: usize) -> Self {
        Self {
            parts,
            staging_buckets,
            analyses: Vec::new(),
            steps,
            analysis_variable: Variable::Temperature,
            extra_variables: Vec::new(),
            staging_buffer_depth: 16,
            network: NetworkModel::gemini(),
            staging_endpoint: None,
            staging_deadline: Duration::from_secs(60),
            staging_max_inflight: 4,
            staging_output_hook: None,
        }
    }

    /// Stage hybrid analyses through a remote space server at `endpoint`.
    pub fn with_staging_endpoint(mut self, endpoint: impl Into<String>) -> Self {
        self.staging_endpoint = Some(endpoint.into());
        self
    }

    /// Per-output deadline for remotely staged aggregations.
    pub fn with_staging_deadline(mut self, deadline: Duration) -> Self {
        self.staging_deadline = deadline;
        self
    }

    /// Bound on remotely staged tasks in flight.
    pub fn with_staging_max_inflight(mut self, max_inflight: usize) -> Self {
        self.staging_max_inflight = max_inflight;
        self
    }

    /// Observe every remotely collected output.
    pub fn with_staging_output_hook(mut self, hook: StagingOutputHook) -> Self {
        self.staging_output_hook = Some(hook);
        self
    }
}

/// One in-transit task: which analysis, which step, where the payloads
/// live.
struct TaskDesc {
    analysis_idx: usize,
    step: u64,
    issued: Instant,
    parts: Vec<(usize, EndpointId, RegionKey)>,
}

/// Connection manager for the remote staging endpoint. A transport
/// error triggers one reconnect (bounded backoff) and a retry of the
/// failed operation; if the reconnect fails too, the endpoint is marked
/// *lost* and every hybrid analysis degrades to in-situ aggregation for
/// the rest of the run. Non-transport errors (protocol, server,
/// deadline) pass through untouched — the link itself is fine.
struct RemoteStaging {
    addr: sitra_net::Addr,
    conn: Option<RemoteSpace>,
    backoff: sitra_net::Backoff,
}

impl RemoteStaging {
    fn connect(endpoint: &str) -> Self {
        let addr: sitra_net::Addr = endpoint
            .parse()
            .unwrap_or_else(|e| panic!("invalid staging endpoint `{endpoint}`: {e}"));
        let backoff = sitra_net::Backoff::default();
        let conn = match RemoteSpace::connect_retry(&addr, &backoff) {
            Ok(c) => Some(c),
            Err(e) => {
                sitra_obs::emit(
                    "driver",
                    "staging.lost",
                    &[("endpoint", addr.to_string()), ("error", e.to_string())],
                );
                None
            }
        };
        RemoteStaging {
            addr,
            conn,
            backoff,
        }
    }

    fn alive(&self) -> bool {
        self.conn.is_some()
    }

    fn with<R>(
        &mut self,
        mut op: impl FnMut(&RemoteSpace) -> Result<R, RemoteError>,
    ) -> Result<R, RemoteError> {
        let Some(conn) = self.conn.as_ref() else {
            return Err(RemoteError::Net(sitra_net::NetError::Closed));
        };
        match op(conn) {
            Err(RemoteError::Net(e)) if e.is_retryable() => {
                match RemoteSpace::connect_retry(&self.addr, &self.backoff) {
                    Ok(fresh) => {
                        let res = op(&fresh);
                        if matches!(res, Err(RemoteError::Net(_))) {
                            self.mark_lost();
                        } else {
                            sitra_obs::counter("driver.staging.reconnects").inc();
                            self.conn = Some(fresh);
                        }
                        res
                    }
                    Err(e2) => {
                        self.mark_lost();
                        Err(e2)
                    }
                }
            }
            other => other,
        }
    }

    fn mark_lost(&mut self) {
        if self.conn.take().is_some() {
            sitra_obs::emit(
                "driver",
                "staging.lost",
                &[("endpoint", self.addr.to_string())],
            );
        }
    }
}

/// A hybrid task shipped to the remote staging area whose output has
/// not been collected yet. `parts` retains the in-situ intermediates so
/// the driver can re-run the aggregation locally if the staging path
/// fails — memory bounded by `staging_max_inflight` retained steps
/// (`Bytes` clones share the underlying buffers with the staged puts).
struct PendingRemote {
    analysis_idx: usize,
    step: u64,
    /// Scheduler sequence number of the submitted task; `u64::MAX` when
    /// the task never made it into the remote queue.
    seq: u64,
    issued: Instant,
    parts: Vec<(usize, Bytes)>,
}

/// Driver-side state of the remote staging mode: the connection, the
/// bounded in-flight window, and the degradation bookkeeping.
struct RemoteCtx<'a> {
    staging: RemoteStaging,
    pending: Vec<PendingRemote>,
    /// Every version (step) that had intermediates put remotely, for
    /// eviction at drain time.
    versions: BTreeSet<u64>,
    degraded_steps: BTreeSet<u64>,
    degraded_tasks: usize,
    deadline: Duration,
    n_ranks: u32,
    hook: Option<StagingOutputHook>,
    analyses: &'a [AnalysisSpec],
    metrics: &'a Mutex<Vec<AnalysisMetrics>>,
    outputs: &'a Mutex<Vec<(String, u64, AnalysisOutput)>>,
}

impl RemoteCtx<'_> {
    /// Re-run a task's aggregation in-situ — the paper's fully-in-situ
    /// formulation as a degradation path. Updates the task's metrics
    /// row in place, journals the fallback, and returns the wall
    /// seconds burned (charged to the current step as blocked time).
    fn degrade(&mut self, p: PendingRemote, reason: &str) -> f64 {
        let spec = &self.analyses[p.analysis_idx];
        let t = Instant::now();
        let out = spec.analysis.aggregate(p.step, &p.parts);
        let aggregate_secs = t.elapsed().as_secs_f64();
        let latency = p.issued.elapsed().as_secs_f64();
        self.degraded_tasks += 1;
        sitra_obs::counter("driver.tasks.degraded").inc();
        sitra_obs::emit(
            "driver",
            "analysis.degraded",
            &[
                ("analysis", spec.label.clone()),
                ("step", p.step.to_string()),
                ("reason", reason.to_string()),
                ("aggregate_secs", aggregate_secs.to_string()),
                ("latency_secs", latency.to_string()),
            ],
        );
        if self.degraded_steps.insert(p.step) {
            sitra_obs::counter("driver.steps.degraded").inc();
            sitra_obs::emit("driver", "step.degraded", &[("step", p.step.to_string())]);
        }
        {
            let mut m = self.metrics.lock();
            if let Some(row) = m
                .iter_mut()
                .find(|r| r.analysis == spec.label && r.step == p.step)
            {
                row.aggregate_secs = aggregate_secs;
                row.aggregated_in_transit = false;
                row.degraded = true;
                row.completion_latency_secs = latency;
            }
        }
        self.outputs.lock().push((spec.label.clone(), p.step, out));
        aggregate_secs
    }

    /// Await the oldest in-flight remote output; any failure (deadline
    /// missed, endpoint lost) degrades that task to in-situ
    /// aggregation. Returns the wall seconds spent waiting and/or
    /// aggregating locally.
    fn collect_oldest(&mut self) -> f64 {
        let p = self.pending.remove(0);
        let label = self.analyses[p.analysis_idx].label.clone();
        let step = p.step;
        let t0 = Instant::now();
        let deadline = t0 + self.deadline;
        let res = self
            .staging
            .with(|c| await_output(c, &label, step, deadline));
        sitra_obs::histogram("driver.staging.backpressure_wait_ns").observe(t0.elapsed());
        match res {
            Ok(out) => {
                sitra_obs::counter("driver.staging.outputs_collected").inc();
                self.outputs.lock().push((label.clone(), step, out));
                if let Some(h) = &self.hook {
                    h(&label, step);
                }
                t0.elapsed().as_secs_f64()
            }
            Err(e) => {
                let reason = match &e {
                    RemoteError::Timeout(_) => "deadline",
                    RemoteError::Net(_) => "endpoint-lost",
                    _ => "error",
                };
                t0.elapsed().as_secs_f64() + self.degrade(p, reason)
            }
        }
    }

    /// Put this step's intermediates into the staging space and submit
    /// the task through the admission-aware verb, recording it as
    /// in-flight. `Err(reason)` means the staging path refused (or
    /// lost) the task and the caller must degrade it immediately. An
    /// `AcceptedShed` verdict degrades the evicted older task here; the
    /// `Ok` value is the wall seconds that local re-aggregation took
    /// (0.0 when nothing was shed).
    fn try_ship(
        &mut self,
        analysis_idx: usize,
        step: u64,
        issued: Instant,
        parts: &[(usize, Bytes)],
    ) -> Result<f64, &'static str> {
        if !self.staging.alive() {
            return Err("endpoint-lost");
        }
        let var = intermediate_var(&self.analyses[analysis_idx].label);
        self.versions.insert(step);
        for (r, payload) in parts {
            let bb = rank_bbox(*r);
            if self
                .staging
                .with(|c| c.put(&var, step, bb, payload.clone()))
                .is_err()
            {
                return Err("endpoint-lost");
            }
        }
        let task = encode_task(&RemoteTask {
            analysis_idx: analysis_idx as u32,
            step,
            n_ranks: self.n_ranks,
        });
        let verdict = self.staging.with(|c| c.submit_task_admission(task.clone()));
        let (seq, shed_seq) = match verdict {
            Ok(Admission::Accepted { seq }) => (seq, None),
            Ok(Admission::AcceptedShed { seq, shed_seq }) => (seq, Some(shed_seq)),
            Ok(Admission::Rejected) => return Err("rejected"),
            Ok(Admission::TimedOut) => return Err("admission-timeout"),
            Ok(Admission::Closed) => return Err("sched-closed"),
            Err(_) => return Err("endpoint-lost"),
        };
        self.pending.push(PendingRemote {
            analysis_idx,
            step,
            seq,
            issued,
            parts: parts.to_vec(),
        });
        // The server evicted an older queued task to admit this one
        // (ShedOldest policy): that task will never run remotely, so
        // re-run its aggregation locally right away.
        let mut shed_secs = 0.0;
        if let Some(victim_seq) = shed_seq {
            if let Some(pos) = self.pending.iter().position(|p| p.seq == victim_seq) {
                let victim = self.pending.remove(pos);
                shed_secs = self.degrade(victim, "shed");
            }
        }
        Ok(shed_secs)
    }
}

/// Result of a pipeline run: metrics plus every analysis output.
pub struct PipelineResult {
    /// Per-stage measurements.
    pub metrics: PipelineMetrics,
    /// `(analysis name, step, output)` for every completed aggregation.
    pub outputs: Vec<(String, u64, AnalysisOutput)>,
    /// Tasks dropped because the staging area fell behind the
    /// back-pressure horizon.
    pub dropped_tasks: usize,
    /// Remote-staged tasks whose staging path failed (deadline missed,
    /// admission refused, endpoint lost) and whose aggregation the
    /// driver re-ran in-situ. Their outputs are still present — a
    /// degraded task is never a lost task.
    pub degraded_tasks: usize,
}

impl PipelineResult {
    /// Output of one analysis at one step.
    pub fn output(&self, name: &str, step: u64) -> Option<&AnalysisOutput> {
        self.outputs
            .iter()
            .find(|(n, s, _)| n == name && *s == step)
            .map(|(_, _, o)| o)
    }
}

fn region_key(analysis_idx: usize, step: u64) -> RegionKey {
    ((analysis_idx as u64 + 1) << 40) | (step & ((1 << 40) - 1))
}

/// Journal the in-situ half of an analysis row. The kv payload mirrors
/// [`AnalysisMetrics`] field-for-field (f64s via `Display`, which
/// round-trips exactly) so `obs_report` can rebuild the paper-style
/// per-stage table from the journal alone.
fn emit_insitu(m: &AnalysisMetrics, placement: &str) {
    sitra_obs::emit(
        "driver",
        "analysis.insitu",
        &[
            ("analysis", m.analysis.clone()),
            ("step", m.step.to_string()),
            ("placement", placement.to_string()),
            ("insitu_secs", m.insitu_secs.to_string()),
            ("insitu_core_secs", m.insitu_core_secs.to_string()),
            ("movement_bytes", m.movement_bytes.to_string()),
            ("movement_sim_secs", m.movement_sim_secs.to_string()),
        ],
    );
}

/// Journal the aggregation half of an analysis row (either placement).
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_aggregate(
    component: &str,
    analysis: &str,
    step: u64,
    aggregate_secs: f64,
    bucket: Option<u32>,
    streamed: bool,
    latency_secs: f64,
    movement_sim_secs: f64,
) {
    sitra_obs::emit(
        component,
        "analysis.aggregate",
        &[
            ("analysis", analysis.to_string()),
            ("step", step.to_string()),
            ("aggregate_secs", aggregate_secs.to_string()),
            (
                "bucket",
                bucket.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            ),
            ("streamed", streamed.to_string()),
            ("latency_secs", latency_secs.to_string()),
            // The bucket-measured movement time; the live run merges it
            // into the row with max(), and so does the replay.
            ("movement_sim_secs", movement_sim_secs.to_string()),
        ],
    );
}

/// Run the hybrid pipeline live. See module docs for the flow.
pub fn run_pipeline(sim: &mut Simulation, cfg: &PipelineConfig) -> PipelineResult {
    let decomp = Decomposition::new(sim.global(), cfg.parts);
    let n_ranks = decomp.rank_count();
    let fabric = Fabric::new(cfg.network);
    let rank_endpoints: Vec<Endpoint> = (0..n_ranks).map(|_| fabric.register()).collect();
    let scheduler: Scheduler<TaskDesc> = Scheduler::new();

    let remote_mode = cfg.staging_endpoint.is_some();

    let analyses: Vec<AnalysisSpec> = cfg.analyses.clone();
    {
        let mut labels: Vec<&str> = analyses.iter().map(|s| s.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(
            labels.len(),
            analyses.len(),
            "analysis labels must be unique; use AnalysisSpec::with_label"
        );
    }
    let shared_metrics: Arc<Mutex<Vec<AnalysisMetrics>>> = Arc::new(Mutex::new(Vec::new()));
    let shared_outputs: Arc<Mutex<Vec<(String, u64, AnalysisOutput)>>> =
        Arc::new(Mutex::new(Vec::new()));
    let dropped: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
    // Buckets signal here once per hybrid task retired (completed or
    // dropped), so the drain below blocks instead of polling.
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<()>();

    // Remote staging: hybrid work goes through a SpaceServer instead of
    // the in-process scheduler + DART pulls. An unreachable endpoint no
    // longer aborts the run — the staging starts out "lost" and every
    // hybrid analysis degrades to in-situ aggregation.
    let mut rctx: Option<RemoteCtx<'_>> = cfg.staging_endpoint.as_ref().map(|ep| RemoteCtx {
        staging: RemoteStaging::connect(ep),
        pending: Vec::new(),
        versions: BTreeSet::new(),
        degraded_steps: BTreeSet::new(),
        degraded_tasks: 0,
        deadline: cfg.staging_deadline,
        n_ranks: n_ranks as u32,
        hook: cfg.staging_output_hook.clone(),
        analyses: &analyses,
        metrics: &shared_metrics,
        outputs: &shared_outputs,
    });

    // Staging-bucket workers (in-process mode only: with a remote
    // endpoint the buckets live behind the space server).
    let local_buckets = if remote_mode {
        0
    } else {
        cfg.staging_buckets.max(1)
    };
    let workers: Vec<_> = (0..local_buckets)
        .map(|b| {
            let bucket = scheduler.register_bucket(b as u32);
            let ep = fabric.register();
            let analyses = analyses.clone();
            let metrics = Arc::clone(&shared_metrics);
            let outputs = Arc::clone(&shared_outputs);
            let dropped = Arc::clone(&dropped);
            let done = done_tx.clone();
            std::thread::Builder::new()
                .name(format!("bucket-{b}"))
                .spawn(move || {
                    bucket_loop(
                        bucket, ep, b as u32, &analyses, &metrics, &outputs, &dropped, &done,
                    )
                })
                .expect("spawn bucket")
        })
        .collect();
    drop(done_tx);

    let mut steps_metrics = Vec::with_capacity(cfg.steps);
    let run_start = Instant::now();

    // Ring buffer of exports so producers can withdraw stale payloads.
    for _ in 0..cfg.steps {
        let t_step = Instant::now();
        sim.advance();
        let step = sim.step();

        // Generate per-rank blocks of the analysis variable and all extra
        // variables, in parallel across ranks.
        let blocks: Vec<ScalarField> = (0..n_ranks)
            .into_par_iter()
            .map(|r| sim.block_field(cfg.analysis_variable, &decomp.block(r)))
            .collect();
        let extra: Vec<Vec<(String, ScalarField)>> = (0..n_ranks)
            .into_par_iter()
            .map(|r| {
                let mut v = vec![(cfg.analysis_variable.name().to_string(), blocks[r].clone())];
                for var in &cfg.extra_variables {
                    if *var != cfg.analysis_variable {
                        v.push((
                            var.name().to_string(),
                            sim.block_field(*var, &decomp.block(r)),
                        ));
                    }
                }
                v
            })
            .collect();
        let sim_secs = t_step.elapsed().as_secs_f64();

        let t_ghost = Instant::now();
        let (ghosted, _) = exchange_ghosts(&decomp, &blocks, 1);
        let ghost_secs = t_ghost.elapsed().as_secs_f64();

        let mut blocked_secs = 0.0;
        for (ai, spec) in analyses.iter().enumerate() {
            if !spec.due(step) {
                continue;
            }
            // In-situ stage, data-parallel over ranks; wall time of the
            // stage is the max per-rank time (ranks run concurrently on
            // the real machine), core time is the sum.
            let t0 = Instant::now();
            let timed: Vec<(usize, Bytes, f64)> = (0..n_ranks)
                .into_par_iter()
                .map(|r| {
                    let ctx = InSituCtx {
                        rank: r,
                        step,
                        decomp: &decomp,
                        ghosted: &ghosted[r],
                        vars: &extra[r],
                    };
                    let t = Instant::now();
                    let payload = spec.analysis.in_situ(&ctx);
                    (r, payload, t.elapsed().as_secs_f64())
                })
                .collect();
            let insitu_wall = t0.elapsed().as_secs_f64();
            let insitu_secs = timed.iter().map(|(_, _, t)| *t).fold(0.0, f64::max);
            let insitu_core_secs: f64 = timed.iter().map(|(_, _, t)| *t).sum();
            let movement_bytes: u64 = timed.iter().map(|(_, b, _)| b.len() as u64).sum();
            let movement_sim_secs: f64 = timed
                .iter()
                .map(|(_, b, _)| cfg.network.auto_transfer_time(b.len()))
                .sum();

            match spec.placement {
                Placement::InSitu => {
                    let parts: Vec<(usize, Bytes)> =
                        timed.into_iter().map(|(r, b, _)| (r, b)).collect();
                    let t_agg = Instant::now();
                    let out = spec.analysis.aggregate(step, &parts);
                    let aggregate_secs = t_agg.elapsed().as_secs_f64();
                    blocked_secs += insitu_wall + aggregate_secs;
                    let row = AnalysisMetrics {
                        analysis: spec.label.clone(),
                        step,
                        insitu_secs,
                        insitu_core_secs,
                        movement_bytes: 0,
                        movement_sim_secs: 0.0,
                        aggregate_secs,
                        aggregated_in_transit: false,
                        bucket: None,
                        streamed: false,
                        completion_latency_secs: 0.0,
                        degraded: false,
                    };
                    emit_insitu(&row, "insitu");
                    emit_aggregate(
                        "driver",
                        &spec.label,
                        step,
                        aggregate_secs,
                        None,
                        false,
                        0.0,
                        0.0,
                    );
                    shared_metrics.lock().push(row);
                    shared_outputs.lock().push((spec.label.clone(), step, out));
                }
                Placement::Hybrid if remote_mode => {
                    // Remote staging: intermediates go into the space
                    // (one degenerate region per rank so a whole-step
                    // query returns them in rank order) and the task is
                    // queued in the server's scheduler for external
                    // bucket workers. Every failure along the path —
                    // endpoint unreachable, task refused by admission
                    // control, output past its deadline — degrades the
                    // task to local aggregation instead of losing it.
                    let rc = rctx.as_mut().unwrap();
                    // Producer-side backpressure: bound the in-flight
                    // window by collecting the oldest output first.
                    while rc.pending.len() >= cfg.staging_max_inflight.max(1) {
                        blocked_secs += rc.collect_oldest();
                    }
                    let parts: Vec<(usize, Bytes)> =
                        timed.into_iter().map(|(r, b, _)| (r, b)).collect();
                    blocked_secs += insitu_wall;
                    let issued = Instant::now();
                    let shipped = rc.try_ship(ai, step, issued, &parts);
                    let ok = shipped.is_ok();
                    let row = AnalysisMetrics {
                        analysis: spec.label.clone(),
                        step,
                        insitu_secs,
                        insitu_core_secs,
                        movement_bytes: if ok { movement_bytes } else { 0 },
                        movement_sim_secs: if ok { movement_sim_secs } else { 0.0 },
                        aggregate_secs: 0.0,
                        aggregated_in_transit: true,
                        bucket: None,
                        streamed: false,
                        completion_latency_secs: 0.0,
                        degraded: false,
                    };
                    emit_insitu(&row, "hybrid-remote");
                    shared_metrics.lock().push(row);
                    match shipped {
                        Ok(shed_secs) => blocked_secs += shed_secs,
                        Err(reason) => {
                            blocked_secs += rc.degrade(
                                PendingRemote {
                                    analysis_idx: ai,
                                    step,
                                    seq: u64::MAX,
                                    issued,
                                    parts,
                                },
                                reason,
                            );
                        }
                    }
                }
                Placement::Hybrid => {
                    // Export payloads and withdraw stale ones.
                    let key = region_key(ai, step);
                    let mut parts = Vec::with_capacity(n_ranks);
                    for (r, payload, _) in &timed {
                        rank_endpoints[*r].export(key, payload.clone());
                        if step > cfg.staging_buffer_depth {
                            rank_endpoints[*r]
                                .unexport(region_key(ai, step - cfg.staging_buffer_depth));
                        }
                        parts.push((*r, rank_endpoints[*r].id(), key));
                    }
                    blocked_secs += insitu_wall;
                    let base = AnalysisMetrics {
                        analysis: spec.label.clone(),
                        step,
                        insitu_secs,
                        insitu_core_secs,
                        movement_bytes,
                        movement_sim_secs,
                        aggregate_secs: 0.0,
                        aggregated_in_transit: true,
                        bucket: None,
                        streamed: false,
                        completion_latency_secs: 0.0,
                        degraded: false,
                    };
                    // Stash the in-situ half of the metrics before the
                    // task becomes visible: the bucket that completes it
                    // fills in the rest and must find the row even when
                    // it wins the race with this thread.
                    emit_insitu(&base, "hybrid");
                    shared_metrics.lock().push(base);
                    scheduler.submit(TaskDesc {
                        analysis_idx: ai,
                        step,
                        issued: Instant::now(),
                        parts,
                    });
                }
            }
        }

        sitra_obs::emit(
            "driver",
            "step",
            &[
                ("step", step.to_string()),
                ("sim_secs", sim_secs.to_string()),
                ("ghost_secs", ghost_secs.to_string()),
                ("blocked_secs", blocked_secs.to_string()),
            ],
        );
        steps_metrics.push(StepMetrics {
            step,
            sim_secs,
            ghost_secs,
            blocked_secs,
            degraded: false,
        });
    }

    // Drain: close the queue once all buckets finished outstanding work.
    let mut degraded_tasks = 0;
    if let Some(mut rc) = rctx.take() {
        // Remote mode: collect every in-flight output (anything the
        // staging path lost is re-aggregated in-situ — zero lost
        // steps), reclaim the staging memory, then close the remote
        // scheduler so external bucket workers retire.
        while !rc.pending.is_empty() {
            rc.collect_oldest();
        }
        for v in &rc.versions {
            let _ = rc.staging.with(|c| c.evict_version(*v));
        }
        let _ = rc.staging.with(|c| c.close_sched());
        for sm in steps_metrics.iter_mut() {
            sm.degraded = rc.degraded_steps.contains(&sm.step);
        }
        degraded_tasks = rc.degraded_tasks;
    } else {
        let expected_hybrid: u64 = {
            let m = shared_metrics.lock();
            m.iter().filter(|a| a.aggregated_in_transit).count() as u64
        };
        // Block until every hybrid task was either completed or dropped;
        // each retirement sends exactly one token. A disconnect means
        // every bucket exited early, in which case nothing further can
        // arrive.
        for _ in 0..expected_hybrid {
            if done_rx.recv().is_err() {
                break;
            }
        }
    }
    scheduler.close();
    for w in workers {
        let _ = w.join();
    }
    let total_secs = run_start.elapsed().as_secs_f64();

    let fstats = fabric.stats();
    let sched_stats = scheduler.stats();
    fabric.shutdown();

    let metrics = PipelineMetrics {
        steps: steps_metrics,
        analyses: shared_metrics.lock().clone(),
        total_secs,
        smsg_messages: fstats.smsg_messages,
        smsg_bytes: fstats.smsg_bytes,
        bte_transfers: fstats.bte_transfers,
        bte_bytes: fstats.bte_bytes,
        max_queue_depth: sched_stats.max_queue_depth,
    };
    let dropped_tasks = *dropped.lock();
    PipelineResult {
        metrics,
        outputs: Arc::try_unwrap(shared_outputs)
            .map(|m| m.into_inner())
            .unwrap_or_default(),
        dropped_tasks,
        degraded_tasks,
    }
}

#[allow(clippy::too_many_arguments)]
fn bucket_loop(
    bucket: sitra_dataspaces::BucketHandle<TaskDesc>,
    ep: Endpoint,
    bucket_id: u32,
    analyses: &[AnalysisSpec],
    metrics: &Mutex<Vec<AnalysisMetrics>>,
    outputs: &Mutex<Vec<(String, u64, AnalysisOutput)>>,
    dropped: &Mutex<usize>,
    done: &crossbeam::channel::Sender<()>,
) {
    while let Some((_seq, task)) = bucket.request_task() {
        let spec = &analyses[task.analysis_idx];
        // Pull every payload from the producers' memory.
        let mut pending = std::collections::HashMap::new();
        let mut overrun = false;
        for (rank, peer, key) in &task.parts {
            match ep.rdma_get(*peer, *key) {
                Ok(id) => {
                    pending.insert(id, *rank);
                }
                Err(_) => {
                    // Producer already withdrew this step (back-pressure).
                    overrun = true;
                    break;
                }
            }
        }
        if overrun {
            *dropped.lock() += 1;
            let _ = done.send(());
            continue;
        }
        // Streaming aggregation when the analysis supports it: payloads
        // are combined the moment each pull completes, overlapping the
        // aggregation with the remaining transfers. Otherwise buffer all
        // parts and aggregate at once.
        let mut streaming = spec.analysis.streaming_aggregator(task.step);
        let streamed = streaming.is_some();
        let mut parts: Vec<(usize, Bytes)> = Vec::with_capacity(pending.len());
        let mut movement_sim = 0.0;
        let mut aggregate_secs = 0.0;
        let mut failed_mid_pull = false;
        while !pending.is_empty() {
            match ep.poll_event(Duration::from_secs(30)) {
                Some(Event::GetComplete {
                    id, data, sim_time, ..
                }) => {
                    if let Some(rank) = pending.remove(&id) {
                        movement_sim += sim_time;
                        match &mut streaming {
                            Some(agg) => {
                                let t = Instant::now();
                                agg.feed(rank, data);
                                aggregate_secs += t.elapsed().as_secs_f64();
                            }
                            None => parts.push((rank, data)),
                        }
                    }
                }
                Some(Event::GetFailed { id, .. }) => {
                    // A producer withdrew the region mid-pull: the task is
                    // a staging overrun.
                    if pending.remove(&id).is_some() {
                        failed_mid_pull = true;
                    }
                    if pending.is_empty() {
                        break;
                    }
                }
                Some(_) => {}
                None => panic!("bucket {bucket_id}: transfer timed out"),
            }
        }
        if failed_mid_pull {
            *dropped.lock() += 1;
            let _ = done.send(());
            continue;
        }
        let t_agg = Instant::now();
        let out = match streaming {
            Some(agg) => agg.finish(),
            None => {
                parts.sort_by_key(|(r, _)| *r);
                spec.analysis.aggregate(task.step, &parts)
            }
        };
        aggregate_secs += t_agg.elapsed().as_secs_f64();
        let latency = task.issued.elapsed().as_secs_f64();
        emit_aggregate(
            "driver",
            &spec.label,
            task.step,
            aggregate_secs,
            Some(bucket_id),
            streamed,
            latency,
            movement_sim,
        );
        {
            let mut m = metrics.lock();
            if let Some(row) = m.iter_mut().find(|r| {
                r.analysis == spec.label && r.step == task.step && r.aggregated_in_transit
            }) {
                row.aggregate_secs = aggregate_secs;
                row.bucket = Some(bucket_id);
                row.streamed = streamed;
                row.completion_latency_secs = latency;
                row.movement_sim_secs = row.movement_sim_secs.max(movement_sim);
            }
        }
        outputs.lock().push((spec.label.clone(), task.step, out));
        let _ = done.send(());
    }
    ep.unregister();
}
