//! End-to-end tests of the live hybrid pipeline: simulation → in-situ
//! stages → DART transport → scheduler → staging buckets → outputs,
//! validated against serial recomputation.

use bytes::Bytes;
use sitra_core::{
    run_pipeline, Analysis, AnalysisOutput, AnalysisSpec, ConfigError, HybridStats, HybridTopology,
    HybridViz, InSituCtx, InSituViz, PipelineConfig, Placement,
};
use sitra_mesh::BBox3;
use sitra_sim::{SimConfig, Simulation, Variable};
use sitra_topology::distributed::serial_merge_tree;
use sitra_topology::Connectivity;
use sitra_viz::{render_serial, TransferFunction, View, ViewAxis};
use std::sync::Arc;

const DIMS: [usize; 3] = [18, 12, 10];
const SEED: u64 = 77;

fn sim() -> Simulation {
    Simulation::new(SimConfig::small(DIMS, SEED))
}

fn view() -> View {
    View::full_res(BBox3::from_dims(DIMS), ViewAxis::Z, false)
}

fn tf() -> TransferFunction {
    TransferFunction::hot(250.0, 2500.0)
}

/// Recompute the temperature field at a given step with a fresh,
/// identically seeded simulation (the proxy is deterministic).
fn field_at_step(step: u64) -> sitra_mesh::ScalarField {
    let mut s = sim();
    for _ in 0..step {
        s.advance();
    }
    s.block_field(Variable::Temperature, &s.global())
}

#[test]
fn full_pipeline_all_five_variants() {
    let mut cfg = PipelineConfig::new([2, 2, 1], 3, 4);
    cfg.extra_variables = vec![Variable::Pressure, Variable::Species(5)];
    cfg.analyses = vec![
        AnalysisSpec::new(
            Arc::new(InSituViz {
                view: view(),
                tf: tf(),
            }),
            Placement::InSitu,
            1,
        ),
        AnalysisSpec::new(
            Arc::new(HybridViz {
                stride: 2,
                view: view(),
                tf: tf(),
            }),
            Placement::Hybrid,
            1,
        ),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::InSitu, 1)
            .with_label("stats-insitu"),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::Hybrid, 1)
            .with_label("stats-hybrid"),
        AnalysisSpec::new(Arc::new(HybridTopology::default()), Placement::Hybrid, 2),
    ];
    let mut s = sim();
    let result = run_pipeline(&mut s, &cfg).expect("valid config");

    assert_eq!(result.dropped_tasks, 0);
    // Every due (analysis, step) produced an output.
    for step in 1..=4u64 {
        assert!(
            result.output("viz-insitu", step).is_some(),
            "viz step {step}"
        );
        assert!(result.output("viz-hybrid", step).is_some());
        assert!(result.output("stats-insitu", step).is_some());
        assert!(result.output("stats-hybrid", step).is_some());
        assert_eq!(
            result.output("topology", step).is_some(),
            step % 2 == 0,
            "topology due only on even steps"
        );
    }

    // The two stats placements agree exactly at every step, and match a
    // serial recomputation.
    for step in 1..=4u64 {
        let a = result
            .output("stats-insitu", step)
            .unwrap()
            .as_stats()
            .unwrap();
        let b = result
            .output("stats-hybrid", step)
            .unwrap()
            .as_stats()
            .unwrap();
        assert_eq!(a, b, "step {step}");
        let whole = field_at_step(step);
        let serial =
            sitra_stats::derive(&sitra_stats::Moments::from_slice(whole.as_slice())).unwrap();
        let t = a.iter().find(|(n, _)| n == "T").unwrap();
        assert_eq!(t.1.count, serial.count);
        assert!((t.1.mean - serial.mean).abs() < 1e-9);
        assert_eq!(t.1.min, serial.min);
        assert_eq!(t.1.max, serial.max);
        // All three variables present.
        assert_eq!(a.len(), 3);
    }

    // The hybrid merge tree equals the serial tree of the recomputed
    // field.
    for step in [2u64, 4] {
        let tree = result.output("topology", step).unwrap().as_tree().unwrap();
        let whole = field_at_step(step);
        let serial = serial_merge_tree(&whole, Connectivity::Six).canonical();
        assert_eq!(tree, &serial, "step {step}");
    }

    // The in-situ image equals a serial render of the recomputed field.
    for step in [1u64, 3] {
        let img = result
            .output("viz-insitu", step)
            .unwrap()
            .as_image()
            .unwrap();
        let whole = field_at_step(step);
        let serial = render_serial(&whole, &view(), &tf());
        assert!(serial.max_abs_diff(img) < 1e-9, "step {step}");
    }

    // Metrics sanity: hybrid rows moved bytes over the BTE or SMSG path,
    // buckets were assigned, and the scheduler queue stayed bounded.
    let m = &result.metrics;
    assert_eq!(m.steps.len(), 4);
    assert!(m.mean_movement_bytes("stats-hybrid") > 0.0);
    assert!(m.mean_movement_bytes("viz-hybrid") > 0.0);
    assert_eq!(m.mean_movement_bytes("stats-insitu"), 0.0);
    assert!(m.bte_transfers + m.smsg_messages > 0);
    for row in m.for_analysis("topology") {
        assert!(row.aggregated_in_transit);
        assert!(row.bucket.is_some());
        assert!(row.completion_latency_secs >= 0.0);
        assert!(row.aggregate_secs > 0.0);
    }
    for row in m.for_analysis("viz-insitu") {
        assert!(!row.aggregated_in_transit);
        assert!(row.bucket.is_none());
    }
    // The hybrid stats intermediate is tiny compared to the raw data
    // (the whole point of the decomposition).
    let raw_bytes = (DIMS[0] * DIMS[1] * DIMS[2] * 8 * 3) as f64;
    assert!(m.mean_movement_bytes("stats-hybrid") < raw_bytes / 50.0);
}

#[test]
fn streaming_aggregation_marks_rows_and_matches_batch() {
    // Topology and stats stream in-transit; their outputs (already
    // validated against serial elsewhere) must carry the streamed flag.
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, 2);
    cfg.analyses = vec![
        AnalysisSpec::new(Arc::new(HybridTopology::default()), Placement::Hybrid, 1),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::Hybrid, 1),
    ];
    let mut s = sim();
    let result = run_pipeline(&mut s, &cfg).expect("valid config");
    for name in ["topology", "stats"] {
        for row in result.metrics.for_analysis(name) {
            assert!(row.streamed, "{name} should stream");
        }
    }
    // Batch path (Analysis::aggregate) and streaming path agree: the
    // pipeline streamed; recompute the batch result directly.
    use sitra_mesh::{exchange_ghosts, Decomposition};
    let whole = field_at_step(1);
    let d = Decomposition::new(whole.bbox(), [2, 2, 1]);
    let fields: Vec<_> = (0..4).map(|r| whole.extract(&d.block(r))).collect();
    let (ghosted, _) = exchange_ghosts(&d, &fields, 1);
    let topo = HybridTopology::default();
    let parts: Vec<(usize, bytes::Bytes)> = (0..4)
        .map(|r| {
            let vars = vec![("T".to_string(), fields[r].clone())];
            let ctx = sitra_core::InSituCtx {
                rank: r,
                step: 1,
                decomp: &d,
                ghosted: &ghosted[r],
                vars: &vars,
            };
            (r, topo.in_situ(&ctx))
        })
        .collect();
    let batch = topo.aggregate(1, &parts);
    let streamed = result.output("topology", 1).unwrap();
    assert_eq!(batch.as_tree().unwrap(), streamed.as_tree().unwrap());
}

#[test]
fn temporal_multiplexing_spreads_buckets() {
    // More steps than buckets: different steps must land on different
    // buckets (FCFS rotates through the free list).
    let mut cfg = PipelineConfig::new([2, 1, 1], 3, 6);
    cfg.analyses = vec![AnalysisSpec::new(
        Arc::new(HybridTopology::default()),
        Placement::Hybrid,
        1,
    )];
    let mut s = sim();
    let result = run_pipeline(&mut s, &cfg).expect("valid config");
    assert_eq!(result.dropped_tasks, 0);
    let buckets: std::collections::HashSet<u32> = result
        .metrics
        .for_analysis("topology")
        .iter()
        .filter_map(|r| r.bucket)
        .collect();
    assert!(
        buckets.len() >= 2,
        "expected multiple buckets to serve 6 steps, got {buckets:?}"
    );
}

/// An artificially slow analysis used to trigger staging back-pressure.
struct SlowStats {
    inner: HybridStats,
    delay: std::time::Duration,
}

impl Analysis for SlowStats {
    fn name(&self) -> &str {
        "slow-stats"
    }
    fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
        self.inner.in_situ(ctx)
    }
    fn aggregate(&self, step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
        std::thread::sleep(self.delay);
        self.inner.aggregate(step, parts)
    }
}

#[test]
fn staging_overrun_drops_tasks_instead_of_blocking() {
    let mut cfg = PipelineConfig::new([2, 1, 1], 1, 10);
    cfg.staging_buffer_depth = 2;
    cfg.analyses = vec![AnalysisSpec::new(
        Arc::new(SlowStats {
            inner: HybridStats::default(),
            delay: std::time::Duration::from_millis(120),
        }),
        Placement::Hybrid,
        1,
    )];
    let mut s = sim();
    let result = run_pipeline(&mut s, &cfg).expect("valid config");
    // One bucket at ~120 ms per task against 10 fast steps with a
    // 2-deep producer ring: some tasks must be dropped, and the run must
    // still terminate with the completed ones correct.
    assert!(result.dropped_tasks > 0, "expected back-pressure drops");
    let completed = result
        .outputs
        .iter()
        .filter(|(n, _, _)| n == "slow-stats")
        .count();
    assert_eq!(completed + result.dropped_tasks, 10);
    assert!(completed >= 1);
}

#[test]
fn autocorrelation_matches_serial_comoments() {
    use sitra_core::AutoCorrelation;
    let lag = 2usize;
    let steps = 5usize;
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, steps);
    cfg.analyses = vec![AnalysisSpec::new(
        Arc::new(AutoCorrelation::new(lag, "T")),
        Placement::Hybrid,
        1,
    )];
    let mut s = sim();
    let result = run_pipeline(&mut s, &cfg).expect("valid config");

    // Steps <= lag: no pairs yet, NaN correlation, 0 observations.
    for step in 1..=lag as u64 {
        let out = result
            .output("autocorrelation", step)
            .unwrap()
            .as_scalars()
            .unwrap();
        assert!(out[0].1.is_nan(), "step {step}");
        assert_eq!(out[1].1, 0.0);
    }
    // Later steps: equals the serial lag-k correlation of the full
    // domain fields (the proxy is deterministic).
    for step in (lag as u64 + 1)..=steps as u64 {
        let old = field_at_step(step - lag as u64);
        let new = field_at_step(step);
        let serial = sitra_stats::CoMoments::from_slices(old.as_slice(), new.as_slice());
        let expect = serial.correlation().unwrap();
        let out = result
            .output("autocorrelation", step)
            .unwrap()
            .as_scalars()
            .unwrap();
        assert!(
            (out[0].1 - expect).abs() < 1e-9,
            "step {step}: {} vs {expect}",
            out[0].1
        );
        assert_eq!(out[1].1, serial.n as f64);
        // Consecutive timesteps of a smooth simulation are strongly
        // correlated.
        assert!(
            out[0].1 > 0.5,
            "lagged fields should correlate: {}",
            out[0].1
        );
    }
}

#[test]
fn custom_user_analysis_plugs_in() {
    /// A minimal user-defined analysis: global max via 8-byte payloads.
    struct GlobalMax;
    impl Analysis for GlobalMax {
        fn name(&self) -> &str {
            "global-max"
        }
        fn in_situ(&self, ctx: &InSituCtx<'_>) -> Bytes {
            let block = ctx.block();
            let own = ctx.ghosted.extract(&block);
            let (_, mx) = own.min_max().unwrap();
            Bytes::copy_from_slice(&mx.to_le_bytes())
        }
        fn aggregate(&self, _step: u64, parts: &[(usize, Bytes)]) -> AnalysisOutput {
            let mx = parts
                .iter()
                .map(|(_, b)| f64::from_le_bytes(b[..8].try_into().unwrap()))
                .fold(f64::NEG_INFINITY, f64::max);
            AnalysisOutput::Stats(vec![(
                "max".to_string(),
                sitra_stats::derive(&sitra_stats::Moments::from_slice(&[mx])).unwrap(),
            )])
        }
    }

    let mut cfg = PipelineConfig::new([2, 2, 1], 2, 2);
    cfg.analyses = vec![AnalysisSpec::new(Arc::new(GlobalMax), Placement::Hybrid, 1)];
    let mut s = sim();
    let result = run_pipeline(&mut s, &cfg).expect("valid config");
    for step in 1..=2u64 {
        let out = result
            .output("global-max", step)
            .unwrap()
            .as_stats()
            .unwrap();
        let whole = field_at_step(step);
        let (_, mx) = whole.min_max().unwrap();
        assert_eq!(out[0].1.max, mx, "step {step}");
        // The payload per rank is 8 bytes — four ranks, 32 bytes total.
        let row = &result.metrics.for_analysis("global-max")[(step - 1) as usize];
        assert_eq!(row.movement_bytes, 32);
    }
}

#[test]
fn duplicate_labels_rejected() {
    let mut cfg = PipelineConfig::new([2, 1, 1], 1, 1);
    cfg.analyses = vec![
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::InSitu, 1),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::Hybrid, 1),
    ];
    let mut s = sim();
    let err = run_pipeline(&mut s, &cfg).unwrap_err();
    assert!(
        matches!(&err, ConfigError::DuplicateLabel(label) if label == "stats"),
        "expected DuplicateLabel(\"stats\"), got {err:?}"
    );
    // The error displays the offending label for the user.
    assert!(err.to_string().contains("stats"), "{err}");
}

#[test]
fn invalid_staging_endpoint_rejected() {
    let mut cfg = PipelineConfig::new([2, 1, 1], 1, 1);
    cfg.analyses = vec![AnalysisSpec::new(
        Arc::new(HybridStats::default()),
        Placement::Hybrid,
        1,
    )];
    cfg = cfg.with_staging_endpoint("not-a-transport://nope");
    let mut s = sim();
    let err = run_pipeline(&mut s, &cfg).unwrap_err();
    assert!(
        matches!(&err, ConfigError::InvalidEndpoint { endpoint, .. }
            if endpoint == "not-a-transport://nope"),
        "expected InvalidEndpoint, got {err:?}"
    );
}
