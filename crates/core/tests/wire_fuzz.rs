//! Property tests for the wire codecs: valid encodings round-trip,
//! and decoders are total — every strict prefix of a valid encoding
//! and arbitrary byte soup return `Err`, never panic and never
//! over-allocate.

use bytes::Bytes;
use proptest::prelude::*;
use sitra_cluster::{decode_msg, encode_msg, ClusterMsg, ClusterView, MemberInfo};
use sitra_core::analysis::AnalysisOutput;
use sitra_core::wire;
use sitra_dataspaces::{
    decode_steer_msg, decode_steer_reply, encode_steer_msg, encode_steer_reply, SteerMsg,
    SteerReply,
};
use sitra_flowmap::{FlowRecord, Termination};
use sitra_mesh::{downsample, BBox3, ScalarField};
use sitra_stats::{CoMoments, Derived, Moments, MultiModel};
use sitra_topology::reduce::{Subtree, SubtreeVertex};
use sitra_topology::tree::CanonicalTree;

fn moments_strategy() -> impl Strategy<Value = Moments> {
    (any::<u64>(), prop::array::uniform3(-1.0e12..1.0e12f64)).prop_map(|(n, [a, b, c])| Moments {
        n,
        min: a.min(b),
        max: a.max(b),
        mean: (a + b) / 2.0,
        m2: c.abs(),
        m3: c,
        m4: c.abs() * 2.0,
    })
}

fn multimodel_strategy() -> impl Strategy<Value = MultiModel> {
    prop::collection::vec(
        (prop::collection::vec(0u8..128, 0..12), moments_strategy()),
        0..6,
    )
    .prop_map(|vars| MultiModel {
        vars: vars
            .into_iter()
            .map(|(name, m)| (String::from_utf8(name).unwrap(), m))
            .collect(),
    })
}

fn subtree_strategy() -> impl Strategy<Value = Subtree> {
    (
        any::<u32>(),
        prop::collection::vec(
            (
                any::<u64>(),
                -1.0e6..1.0e6f64,
                0u32..8,
                any::<bool>(),
                prop::collection::vec(any::<u32>(), 0..4),
            ),
            0..10,
        ),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..10),
    )
        .prop_map(|(source, verts, edges)| Subtree {
            source,
            verts: verts
                .into_iter()
                .map(|(id, value, degree, pinned, potential)| SubtreeVertex {
                    id,
                    value,
                    degree,
                    potential,
                    pinned,
                })
                .collect(),
            edges,
        })
}

fn derived_strategy() -> impl Strategy<Value = Derived> {
    (any::<u64>(), prop::array::uniform3(-1.0e9..1.0e9f64)).prop_map(|(count, [a, b, c])| Derived {
        count,
        min: a.min(b),
        max: a.max(b),
        mean: (a + b) / 2.0,
        variance: c.abs(),
        std_dev: c.abs().sqrt(),
        skewness: c,
        kurtosis_excess: -c,
    })
}

fn short_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..128, 0..10).prop_map(|raw| String::from_utf8(raw).unwrap())
}

fn flow_record_strategy() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u64>(),
        prop::array::uniform3(-1.0e6..1.0e6f64),
        prop::array::uniform3(-1.0e6..1.0e6f64),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(|(seed, start, end, steps, exited)| FlowRecord {
            seed,
            start,
            end,
            steps,
            reason: if exited {
                Termination::ExitedBlock
            } else {
                Termination::MaxSteps
            },
        })
}

fn steer_image_strategy() -> impl Strategy<Value = sitra_viz::Image> {
    (1usize..5, 1usize..5, -1.0e3..1.0e3f64).prop_map(|(w, h, fill)| {
        let mut img = sitra_viz::Image::new(w, h);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = [fill, i as f64, -fill, 1.0];
        }
        img
    })
}

fn steer_msg_strategy() -> proptest::BoxedStrategy<SteerMsg> {
    prop_oneof![
        (short_name(), 1u32..1000)
            .prop_map(|(subscriber, rate)| SteerMsg::Subscribe { subscriber, rate }),
        any::<u64>().prop_map(|after| SteerMsg::NextFrame { after }),
        (1u32..1000).prop_map(|rate| SteerMsg::Steer { rate }),
    ]
    .boxed()
}

fn steer_reply_strategy() -> proptest::BoxedStrategy<SteerReply> {
    prop_oneof![
        (1u32..1000).prop_map(|rate| SteerReply::SubAck { rate }),
        (any::<u64>(), 1u32..1000, steer_image_strategy()).prop_map(|(version, rate, image)| {
            SteerReply::Frame {
                version,
                rate,
                image,
            }
        }),
        (1u32..1000, any::<u64>()).prop_map(|(rate, latest_version)| SteerReply::SteerAck {
            rate,
            latest_version
        }),
        Just(SteerReply::NoFrame),
        short_name().prop_map(|reason| SteerReply::Error { reason }),
    ]
    .boxed()
}

fn analysis_output_strategy() -> proptest::BoxedStrategy<AnalysisOutput> {
    prop_oneof![
        (1usize..5, 1usize..5, -1.0e3..1.0e3f64).prop_map(|(w, h, fill)| {
            let mut img = sitra_viz::Image::new(w, h);
            for (i, p) in img.pixels_mut().iter_mut().enumerate() {
                *p = [fill, i as f64, -fill, 1.0];
            }
            AnalysisOutput::Image(img)
        }),
        (
            prop::collection::vec((any::<u64>(), -1.0e6..1.0e6f64), 0..8),
            prop::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        )
            .prop_map(|(nodes, arcs)| AnalysisOutput::Tree(CanonicalTree { nodes, arcs })),
        prop::collection::vec((short_name(), derived_strategy()), 0..6)
            .prop_map(AnalysisOutput::Stats),
        prop::collection::vec((short_name(), -1.0e9..1.0e9f64), 0..6)
            .prop_map(AnalysisOutput::Scalars),
        prop::collection::vec(flow_record_strategy(), 0..8).prop_map(AnalysisOutput::FlowMap),
    ]
    .boxed()
}

fn cluster_view_strategy() -> impl Strategy<Value = ClusterView> {
    (
        any::<u64>(),
        prop::collection::vec(prop::collection::vec(0u8..128, 0..24), 0..6),
    )
        .prop_map(|(epoch, addrs)| {
            let mut members: Vec<MemberInfo> = addrs
                .into_iter()
                .map(|raw| MemberInfo {
                    addr: String::from_utf8(raw).unwrap(),
                })
                .collect();
            members.sort();
            members.dedup();
            ClusterView { epoch, members }
        })
}

fn cluster_msg_strategy() -> proptest::BoxedStrategy<ClusterMsg> {
    prop_oneof![
        Just(ClusterMsg::Hello),
        short_name().prop_map(|addr| ClusterMsg::Join {
            from: MemberInfo { addr }
        }),
        short_name().prop_map(|addr| ClusterMsg::Leave { addr }),
        (short_name(), any::<u64>())
            .prop_map(|(from, epoch)| ClusterMsg::Heartbeat { from, epoch }),
        cluster_view_strategy().prop_map(|view| ClusterMsg::View { view }),
        any::<u64>().prop_map(|epoch| ClusterMsg::Ack { epoch }),
    ]
    .boxed()
}

/// Every strict prefix of `enc` must decode to an error without panicking.
fn assert_prefixes_error<T, E>(enc: &Bytes, decode: impl Fn(Bytes) -> Result<T, E>) {
    for cut in 0..enc.len() {
        assert!(
            decode(enc.slice(0..cut)).is_err(),
            "prefix of {} bytes decoded successfully",
            cut
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampled_block_roundtrips_and_prefixes_error(
        dims in prop::array::uniform3(1usize..8),
        stride in 1usize..4,
        seed in any::<u64>(),
    ) {
        let b = BBox3::from_dims(dims);
        let f = ScalarField::from_fn(b, |p| {
            (p[0] * 3 + p[1] * 5 + p[2] * 7) as f64 + seed as f64 * 1e-3
        });
        let s = downsample(&f, stride);
        let enc = wire::encode_sampled_block(&s);
        prop_assert_eq!(wire::decode_sampled_block(enc.clone()).unwrap(), s);
        assert_prefixes_error(&enc, wire::decode_sampled_block);
    }

    #[test]
    fn multimodel_roundtrips_and_prefixes_error(m in multimodel_strategy()) {
        let enc = wire::encode_multimodel(&m);
        prop_assert_eq!(wire::decode_multimodel(enc.clone()).unwrap(), m);
        assert_prefixes_error(&enc, wire::decode_multimodel);
    }

    #[test]
    fn subtree_roundtrips_and_prefixes_error(s in subtree_strategy()) {
        let enc = wire::encode_subtree(&s);
        prop_assert_eq!(wire::decode_subtree(enc.clone()).unwrap(), s);
        assert_prefixes_error(&enc, wire::decode_subtree);
    }

    #[test]
    fn comoments_roundtrips_and_prefixes_error(
        xs in prop::collection::vec(-1.0e9..1.0e9f64, 1..32),
        ys in prop::collection::vec(-1.0e9..1.0e9f64, 1..32),
    ) {
        let n = xs.len().min(ys.len());
        let m = CoMoments::from_slices(&xs[..n], &ys[..n]);
        let enc = wire::encode_comoments(&m);
        prop_assert_eq!(wire::decode_comoments(enc.clone()).unwrap(), m);
        assert_prefixes_error(&enc, wire::decode_comoments);
    }

    #[test]
    fn feature_stats_roundtrips_and_prefixes_error(
        s in subtree_strategy(),
        feats in prop::collection::vec((any::<u64>(), moments_strategy()), 0..6),
    ) {
        let enc = wire::encode_feature_stats(&s, &feats);
        let (s2, f2) = wire::decode_feature_stats(enc.clone()).unwrap();
        prop_assert_eq!(s2, s);
        prop_assert_eq!(f2, feats);
        assert_prefixes_error(&enc, wire::decode_feature_stats);
    }

    #[test]
    fn partial_image_roundtrips_and_prefixes_error(
        w in 1usize..6,
        h in 1usize..6,
        key in any::<i64>(),
        fill in -1.0e3..1.0e3f64,
    ) {
        let mut img = sitra_viz::Image::new(w, h);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = [fill, i as f64, -fill, 1.0];
        }
        let enc = wire::encode_partial_image(key, &img);
        let (k2, img2) = wire::decode_partial_image(enc.clone()).unwrap();
        prop_assert_eq!(k2, key);
        prop_assert_eq!(img2, img);
        assert_prefixes_error(&enc, wire::decode_partial_image);
    }

    /// The output codec — what crosses the wire from a remote bucket
    /// back to the driver — round-trips every variant, encodes
    /// deterministically, and errors on every strict prefix.
    #[test]
    fn analysis_output_roundtrips_and_prefixes_error(out in analysis_output_strategy()) {
        let enc = wire::encode_analysis_output(&out);
        prop_assert_eq!(wire::decode_analysis_output(enc.clone()).unwrap(), out);
        prop_assert_eq!(&wire::encode_analysis_output(
            &wire::decode_analysis_output(enc.clone()).unwrap()), &enc);
        assert_prefixes_error(&enc, wire::decode_analysis_output);
    }

    /// Single-byte corruption of a valid encoding must never panic a
    /// decoder: it either still decodes (the flipped byte landed in a
    /// payload value) or returns a structured error — both acceptable,
    /// a crash is not.
    #[test]
    fn corrupted_encodings_never_panic(
        out in analysis_output_strategy(),
        sub in subtree_strategy(),
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        for enc in [
            wire::encode_analysis_output(&out),
            wire::encode_subtree(&sub),
        ] {
            if enc.is_empty() {
                continue;
            }
            let mut raw = enc.to_vec();
            let i = (at as usize) % raw.len();
            raw[i] ^= flip;
            let b = Bytes::from(raw);
            let _ = wire::decode_analysis_output(b.clone());
            let _ = wire::decode_subtree(b.clone());
            let _ = wire::decode_feature_stats(b);
        }
    }

    /// The flow-map record list — the Lagrangian workload's in-transit
    /// intermediate *and* its final output payload — round-trips every
    /// record bit-exactly and errors on every strict prefix (the count
    /// prefix is validated against the bytes actually present before
    /// any allocation).
    #[test]
    fn flow_records_roundtrip_and_prefixes_error(
        recs in prop::collection::vec(flow_record_strategy(), 0..12),
    ) {
        let enc = wire::encode_flow_records(&recs);
        prop_assert_eq!(wire::decode_flow_records(enc.clone()).unwrap(), recs);
        assert_prefixes_error(&enc, wire::decode_flow_records);
    }

    /// Steering-feedback request frames (subscribe / next-frame /
    /// steer) round-trip and error on every strict prefix. Zero
    /// downsample rates are unrepresentable on the wire: the decoder
    /// rejects them before the server ever sees one.
    #[test]
    fn steer_msg_roundtrips_and_prefixes_error(msg in steer_msg_strategy()) {
        let enc = encode_steer_msg(&msg);
        prop_assert_eq!(decode_steer_msg(enc.clone()).unwrap(), msg);
        assert_prefixes_error(&enc, decode_steer_msg);
    }

    /// Steering reply frames — including full reduced-image frames —
    /// round-trip and error on every strict prefix (the pixel payload
    /// length is validated against the image dims before allocating).
    #[test]
    fn steer_reply_roundtrips_and_prefixes_error(reply in steer_reply_strategy()) {
        let enc = encode_steer_reply(&reply);
        prop_assert_eq!(decode_steer_reply(enc.clone()).unwrap(), reply);
        assert_prefixes_error(&enc, decode_steer_reply);
    }

    /// Single-byte corruption of flow-map and steering frames must
    /// never panic a decoder — the faulty transport hands exactly this
    /// to the staging service and the steering client.
    #[test]
    fn corrupted_flow_and_steer_frames_never_panic(
        recs in prop::collection::vec(flow_record_strategy(), 0..8),
        msg in steer_msg_strategy(),
        reply in steer_reply_strategy(),
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        for enc in [
            wire::encode_flow_records(&recs),
            encode_steer_msg(&msg),
            encode_steer_reply(&reply),
        ] {
            if enc.is_empty() {
                continue;
            }
            let mut raw = enc.to_vec();
            let i = (at as usize) % raw.len();
            raw[i] ^= flip;
            let b = Bytes::from(raw);
            let _ = wire::decode_flow_records(b.clone());
            let _ = decode_steer_msg(b.clone());
            let _ = decode_steer_reply(b);
        }
    }

    /// The membership/handoff control frames (`sitra-cluster`'s inner
    /// codec, carried opaquely inside dataspaces `Control` frames)
    /// hold to the same bar as the data-plane codecs: every message
    /// round-trips, and every strict prefix errors without panicking.
    #[test]
    fn cluster_msg_roundtrips_and_prefixes_error(msg in cluster_msg_strategy()) {
        let enc = encode_msg(&msg);
        prop_assert_eq!(decode_msg(enc.clone()).unwrap(), msg);
        assert_prefixes_error(&enc, decode_msg);
    }

    /// Single-byte corruption of a membership frame must never panic
    /// the decoder — a corrupted byte either still decodes (it landed
    /// in a payload value) or returns a structured `ProtoError`, and a
    /// node treats either as a malformed peer, not a crash.
    #[test]
    fn corrupted_cluster_msgs_never_panic(
        msg in cluster_msg_strategy(),
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let enc = encode_msg(&msg);
        prop_assert!(!enc.is_empty(), "every message carries at least a tag byte");
        let mut raw = enc.to_vec();
        let i = (at as usize) % raw.len();
        raw[i] ^= flip;
        let _ = decode_msg(Bytes::from(raw));
    }

    /// The transport's frame decoder is total over arbitrary read
    /// coalescing: however the byte stream is cut into chunks (single
    /// bytes, whole-batch reads, anything between), the same frames
    /// come out in the same order with the same bytes. This is the
    /// invariant that lets the reader task feed whatever `read` hands
    /// it — batched small frames or a spanning large one — through one
    /// state machine.
    #[test]
    fn frame_decoder_is_chunking_invariant(
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..10),
        cuts in prop::collection::vec(1usize..64, 1..40),
    ) {
        use sitra_net::frame::{encode_header, FrameDecoder};

        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_header(f.len()));
            stream.extend_from_slice(f);
        }
        // Decode the whole stream in one feed...
        let mut whole = Vec::new();
        let mut dec = FrameDecoder::new();
        dec.feed(Bytes::from(stream.clone()), &mut whole).unwrap();
        // ...and again cut at arbitrary points, cycling `cuts`.
        let mut split = Vec::new();
        let mut dec2 = FrameDecoder::new();
        let mut rest = Bytes::from(stream);
        let mut i = 0;
        while !rest.is_empty() {
            let take = cuts[i % cuts.len()].min(rest.len());
            i += 1;
            let chunk = rest.split_to(take);
            dec2.feed(chunk, &mut split).unwrap();
        }
        prop_assert!(dec2.is_at_boundary(), "stream ends on a frame boundary");
        prop_assert_eq!(whole.len(), frames.len());
        for ((w, s), f) in whole.iter().zip(&split).zip(&frames) {
            prop_assert_eq!(w.as_slice(), f.as_slice());
            prop_assert_eq!(s.as_slice(), f.as_slice());
        }
    }

    /// Arbitrary byte soup through the frame decoder, in arbitrary
    /// chunk splits, never panics and never allocates from a hostile
    /// length prefix: a frame claiming more than the cap errors out
    /// (and poisons the decoder) *before* any buffer is reserved.
    #[test]
    fn frame_decoder_never_panics_on_soup(
        raw in prop::collection::vec(any::<u8>(), 0..512),
        cuts in prop::collection::vec(1usize..32, 1..20),
        spike in any::<bool>(),
    ) {
        use sitra_net::frame::FrameDecoder;

        let mut raw = raw;
        if spike && raw.len() >= 4 {
            // A header claiming a ~4 GiB frame at the front.
            raw[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        let mut rest = Bytes::from(raw);
        let mut i = 0;
        let mut poisoned = false;
        while !rest.is_empty() {
            let take = cuts[i % cuts.len()].min(rest.len());
            i += 1;
            let chunk = rest.split_to(take);
            match dec.feed(chunk, &mut out) {
                Ok(()) => {}
                Err(_) => { poisoned = true; break; }
            }
        }
        if spike && !poisoned {
            // The spiked header exceeds MAX_FRAME_LEN (1 GiB), so if we
            // fed at least the full header the decoder must have
            // rejected it.
            prop_assert!(i == 0, "hostile length prefix went unrejected");
        }
    }

    /// Arbitrary byte soup never panics any decoder. Length-prefix
    /// positions are seeded with large values often enough that hostile
    /// allocation sizes are exercised (the decoders cap allocations by
    /// the bytes actually present).
    #[test]
    fn arbitrary_bytes_never_panic(
        raw in prop::collection::vec(any::<u8>(), 0..256),
        spike_at in any::<u64>(),
    ) {
        let mut raw = raw;
        if !raw.is_empty() {
            // Overwrite 8 bytes somewhere with u64::MAX to fake a huge
            // length prefix.
            let at = (spike_at as usize) % raw.len();
            for i in at..raw.len().min(at + 8) {
                raw[i] = 0xFF;
            }
        }
        let b = Bytes::from(raw);
        let _ = wire::decode_sampled_block(b.clone());
        let _ = wire::decode_multimodel(b.clone());
        let _ = wire::decode_subtree(b.clone());
        let _ = wire::decode_comoments(b.clone());
        let _ = wire::decode_feature_stats(b.clone());
        let _ = wire::decode_partial_image(b.clone());
        let _ = wire::decode_analysis_output(b.clone());
        let _ = wire::decode_flow_records(b.clone());
        let _ = decode_steer_msg(b.clone());
        let _ = decode_steer_reply(b.clone());
        let _ = decode_msg(b);
    }
}
