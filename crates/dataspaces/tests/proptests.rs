//! Property-based tests for the staging service: the object space behaves
//! like a reference map with spatial queries, and the scheduler is a
//! lossless FCFS queue under arbitrary interleavings.

use proptest::prelude::*;
use sitra_dataspaces::{DataSpaces, Scheduler};
use sitra_mesh::{BBox3, ScalarField};
use std::time::Duration;

fn arb_box() -> impl Strategy<Value = BBox3> {
    (
        prop::array::uniform3(0usize..10),
        prop::array::uniform3(1usize..6),
    )
        .prop_map(|(lo, ext)| BBox3::new(lo, [lo[0] + ext[0], lo[1] + ext[1], lo[2] + ext[2]]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn space_queries_match_reference(puts in prop::collection::vec((arb_box(), 0u64..3), 1..20),
                                     query in arb_box(),
                                     servers in 1usize..6) {
        let ds = DataSpaces::new(servers);
        // Last write wins per point is NOT the semantic (objects
        // accumulate); the reference is "every stored object intersecting
        // the query is returned".
        for (i, (bbox, version)) in puts.iter().enumerate() {
            let f = ScalarField::new_fill(*bbox, i as f64);
            ds.put_field("T", *version, &f);
        }
        for version in 0u64..3 {
            let got = ds.get("T", version, &query);
            let expect: Vec<BBox3> = puts
                .iter()
                .filter(|(b, v)| *v == version && b.intersect(&query).is_some())
                .map(|(b, _)| *b)
                .collect();
            prop_assert_eq!(got.len(), expect.len());
            for (b, data) in &got {
                prop_assert!(expect.contains(b));
                prop_assert_eq!(data.len(), b.count() * 8);
            }
        }
        // Total object count conserved across shards.
        let stats = ds.stats();
        prop_assert_eq!(stats.objects_per_server.iter().sum::<u64>() as usize, puts.len());
    }

    #[test]
    fn scheduler_lossless_fcfs_under_interleaving(schedule in prop::collection::vec(any::<bool>(), 1..60)) {
        // true = submit a task, false = a bucket requests (with timeout so
        // an excess of requests doesn't block).
        let s: Scheduler<u64> = Scheduler::new();
        let bucket = s.register_bucket(0);
        let mut submitted = 0u64;
        let mut received: Vec<u64> = Vec::new();
        for op in schedule {
            if op {
                s.submit(submitted);
                submitted += 1;
            } else if let Some((seq, task)) =
                bucket.request_task_timeout(Duration::from_millis(5))
            {
                prop_assert_eq!(seq, task, "seq equals payload by construction");
                received.push(task);
            }
        }
        // Drain the rest.
        while let Some((_, task)) = bucket.request_task_timeout(Duration::from_millis(5)) {
            received.push(task);
        }
        // FCFS: received in submission order, none lost.
        prop_assert_eq!(received, (0..submitted).collect::<Vec<_>>());
        let stats = s.stats();
        prop_assert_eq!(stats.tasks_submitted, submitted);
        prop_assert_eq!(stats.tasks_assigned, submitted);
    }
}
