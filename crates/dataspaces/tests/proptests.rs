//! Property-based tests for the staging service: the object space behaves
//! like a reference map with spatial queries, the scheduler is a
//! lossless FCFS queue under arbitrary interleavings, and the RPC wire
//! codecs — including the admission/backpressure control frames — are
//! total (any bytes decode to Ok or Err, never a panic) and round-trip
//! every representable frame.

use bytes::Bytes;
use proptest::prelude::*;
use sitra_dataspaces::remote::{
    decode_request, decode_response, encode_request, encode_response, RemoteStats, Request,
    Response, TaskPoll,
};
use sitra_dataspaces::{Admission, AdmissionPolicy, DataSpaces, Scheduler};
use sitra_mesh::{BBox3, ScalarField};
use std::time::Duration;

fn arb_box() -> impl Strategy<Value = BBox3> {
    (
        prop::array::uniform3(0usize..10),
        prop::array::uniform3(1usize..6),
    )
        .prop_map(|(lo, ext)| BBox3::new(lo, [lo[0] + ext[0], lo[1] + ext[1], lo[2] + ext[2]]))
}

fn arb_bytes() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..48).prop_map(Bytes::from)
}

fn arb_var() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 0..12)
        .prop_map(|v| v.into_iter().map(|c| (b'a' + c) as char).collect())
}

fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
}

// The wire carries Block's max_wait in whole milliseconds, so only
// ms-granular durations round-trip.
fn arb_policy() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        (0u64..100_000).prop_map(|ms| AdmissionPolicy::Block {
            max_wait: Duration::from_millis(ms)
        }),
        Just(AdmissionPolicy::ShedOldest),
        Just(AdmissionPolicy::RejectNew),
    ]
}

fn arb_admission() -> impl Strategy<Value = Admission> {
    prop_oneof![
        any::<u64>().prop_map(|seq| Admission::Accepted { seq }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, shed_seq)| Admission::AcceptedShed { seq, shed_seq }),
        Just(Admission::Rejected),
        Just(Admission::TimedOut),
        Just(Admission::Closed),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_var(), any::<u64>(), arb_box(), arb_bytes()).prop_map(|(var, version, bbox, data)| {
            Request::Put {
                var,
                version,
                bbox,
                data,
            }
        }),
        (arb_var(), any::<u64>(), arb_box()).prop_map(|(var, version, bbox)| Request::Get {
            var,
            version,
            bbox
        }),
        arb_var().prop_map(|var| Request::LatestVersion { var }),
        arb_bytes().prop_map(|data| Request::SubmitTask { data }),
        arb_bytes().prop_map(|data| Request::SubmitTaskAdm { data }),
        Just(Request::SchedPolicy),
        (any::<u32>(), any::<u64>()).prop_map(|(bucket_id, timeout_ms)| Request::RequestTask {
            bucket_id,
            timeout_ms
        }),
        any::<u64>().prop_map(|seq| Request::AckTask { seq }),
        Just(Request::Stats),
        any::<u64>().prop_map(|version| Request::EvictVersion { version }),
        Just(Request::CloseSched),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        any::<u64>().prop_map(Response::Seq),
        prop::collection::vec((arb_box(), arb_bytes()), 0..4).prop_map(Response::Pieces),
        arb_opt_u64().prop_map(Response::Version),
        prop_oneof![
            (any::<u64>(), arb_bytes(), arb_var()).prop_map(|(seq, data, tenant)| Response::Task(
                TaskPoll::Assigned { seq, data, tenant }
            )),
            Just(Response::Task(TaskPoll::Empty)),
            Just(Response::Task(TaskPoll::Closed)),
        ],
        prop::collection::vec(any::<u64>(), 7..8).prop_map(|v| {
            Response::Stats(RemoteStats {
                tasks_submitted: v[0],
                tasks_assigned: v[1],
                tasks_requeued: v[2],
                tasks_shed: v[3],
                tasks_rejected: v[4],
                objects: v[5],
                resident_bytes: v[6],
            })
        }),
        arb_admission().prop_map(Response::Admission),
        (arb_opt_u64(), arb_policy())
            .prop_map(|(capacity, policy)| Response::Policy { capacity, policy }),
        arb_var().prop_map(Response::Error),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn space_queries_match_reference(puts in prop::collection::vec((arb_box(), 0u64..3), 1..20),
                                     query in arb_box(),
                                     servers in 1usize..6) {
        let ds = DataSpaces::new(servers);
        // Last write wins per point is NOT the semantic (objects
        // accumulate); the reference is "every stored object intersecting
        // the query is returned".
        for (i, (bbox, version)) in puts.iter().enumerate() {
            let f = ScalarField::new_fill(*bbox, i as f64);
            ds.put_field("T", *version, &f);
        }
        for version in 0u64..3 {
            let got = ds.get("T", version, &query);
            let expect: Vec<BBox3> = puts
                .iter()
                .filter(|(b, v)| *v == version && b.intersect(&query).is_some())
                .map(|(b, _)| *b)
                .collect();
            prop_assert_eq!(got.len(), expect.len());
            for (b, data) in &got {
                prop_assert!(expect.contains(b));
                prop_assert_eq!(data.len(), b.count() * 8);
            }
        }
        // Total object count conserved across shards.
        let stats = ds.stats();
        prop_assert_eq!(stats.objects_per_server.iter().sum::<u64>() as usize, puts.len());
    }

    #[test]
    fn scheduler_lossless_fcfs_under_interleaving(schedule in prop::collection::vec(any::<bool>(), 1..60)) {
        // true = submit a task, false = a bucket requests (with timeout so
        // an excess of requests doesn't block).
        let s: Scheduler<u64> = Scheduler::new();
        let bucket = s.register_bucket(0);
        let mut submitted = 0u64;
        let mut received: Vec<u64> = Vec::new();
        for op in schedule {
            if op {
                s.submit(submitted);
                submitted += 1;
            } else if let Some((seq, task)) =
                bucket.request_task_timeout(Duration::from_millis(5))
            {
                prop_assert_eq!(seq, task, "seq equals payload by construction");
                received.push(task);
            }
        }
        // Drain the rest.
        while let Some((_, task)) = bucket.request_task_timeout(Duration::from_millis(5)) {
            received.push(task);
        }
        // FCFS: received in submission order, none lost.
        prop_assert_eq!(received, (0..submitted).collect::<Vec<_>>());
        let stats = s.stats();
        prop_assert_eq!(stats.tasks_submitted, submitted);
        prop_assert_eq!(stats.tasks_assigned, submitted);
    }

    #[test]
    fn request_codec_roundtrips(req in arb_request()) {
        let enc = encode_request(&req);
        prop_assert_eq!(decode_request(enc).unwrap(), req);
    }

    #[test]
    fn response_codec_roundtrips(resp in arb_response()) {
        let enc = encode_response(&resp);
        prop_assert_eq!(decode_response(enc).unwrap(), resp);
    }

    #[test]
    fn codecs_total_on_arbitrary_bytes(raw in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any byte soup — including frames claiming payloads far larger
        // than the buffer — must decode to Ok or Err, never panic.
        let _ = decode_request(Bytes::from(raw.clone()));
        let _ = decode_response(Bytes::from(raw));
    }

    #[test]
    fn truncated_frames_error_not_panic(resp in arb_response(),
                                        req in arb_request(),
                                        cut in any::<usize>()) {
        // Every strict prefix of a valid frame is an error: the codecs
        // have no optional trailing fields.
        let enc = encode_response(&resp);
        let n = cut % enc.len();
        prop_assert!(decode_response(enc.slice(..n)).is_err());
        let enc = encode_request(&req);
        let n = cut % enc.len();
        prop_assert!(decode_request(enc.slice(..n)).is_err());
    }

    #[test]
    fn oversized_frames_error_not_panic(resp in arb_response(),
                                        req in arb_request(),
                                        extra in prop::collection::vec(any::<u8>(), 1..16)) {
        // Trailing garbage after a complete frame must be rejected
        // (`finish` trailing-bytes check), not silently absorbed.
        let mut buf = encode_response(&resp).to_vec();
        buf.extend_from_slice(&extra);
        prop_assert!(decode_response(Bytes::from(buf)).is_err());
        let mut buf = encode_request(&req).to_vec();
        buf.extend_from_slice(&extra);
        prop_assert!(decode_request(Bytes::from(buf)).is_err());
    }
}
