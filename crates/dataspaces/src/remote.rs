//! Remote staging: the shared space and the in-transit scheduler
//! served over [`sitra_net`] so staging can run in its own process.
//!
//! In the paper the staging area is a distinct partition of the machine
//! reached through DART; here the same role is played by a
//! [`SpaceServer`] — a thread-per-connection RPC service wrapping the
//! sharded [`DataSpaces`] and the FCFS [`Scheduler`] — and a
//! [`RemoteSpace`] client mirroring the in-process API. The protocol
//! carries exactly the staging verbs: `put`, spatial `get`,
//! `query-version`, `submit-task` (data-ready), `request-task`
//! (bucket-ready), plus stats/evict/close for lifecycle.
//!
//! **Task hand-off is acknowledged.** A bucket that is assigned a task
//! must acknowledge receipt on the same connection; if the connection
//! dies first, the server puts the task back at the head of the queue
//! ([`Scheduler::requeue_front`]) where the next free bucket picks it
//! up. A crashing or reconnecting consumer therefore never loses a
//! task — the invariant the remote-staging integration test asserts.

use crate::pool::ResidencyHint;
use crate::sched::{Admission, AdmissionPolicy, Lease, SchedStats, Scheduler};
use crate::space::DataSpaces;
use crate::tenant::{scoped_var, TenantSpec, DEFAULT_TENANT};
use bytes::{BufMut, Bytes, BytesMut};
use sitra_mesh::{BBox3, ScalarField};
use sitra_net::{serve, Addr, Backoff, ConnStats, Connection, Listener, NetError, ServerHandle};
use std::sync::Arc;
use std::time::Duration;

/// Failure of a remote-space operation.
#[derive(Debug)]
pub enum RemoteError {
    /// Transport failure (connection dropped, timeout, ...).
    Net(NetError),
    /// A client-side deadline elapsed (e.g. an awaited output never
    /// appeared). Distinct from [`RemoteError::Proto`]: nothing was
    /// malformed, the data just never came — a retryable condition.
    Timeout(String),
    /// The peer sent bytes that do not decode as protocol messages.
    Proto(String),
    /// The server executed the request and reported an error.
    Server(String),
}

impl RemoteError {
    /// Whether retrying the operation (possibly after reconnecting) can
    /// succeed. Transport faults and elapsed deadlines are transient;
    /// protocol violations and server-reported errors are not — the
    /// same request would fail the same way.
    pub fn is_retryable(&self) -> bool {
        match self {
            RemoteError::Net(e) => e.is_retryable(),
            RemoteError::Timeout(_) => true,
            RemoteError::Proto(_) | RemoteError::Server(_) => false,
        }
    }
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Net(e) => write!(f, "transport: {e}"),
            RemoteError::Timeout(s) => write!(f, "timed out: {s}"),
            RemoteError::Proto(s) => write!(f, "protocol violation: {s}"),
            RemoteError::Server(s) => write!(f, "server error: {s}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<NetError> for RemoteError {
    fn from(e: NetError) -> Self {
        RemoteError::Net(e)
    }
}

// --------------------------------------------------------------------
// Protocol messages
// --------------------------------------------------------------------

const REQ_PUT: u8 = 1;
const REQ_GET: u8 = 2;
const REQ_LATEST_VERSION: u8 = 3;
const REQ_SUBMIT_TASK: u8 = 4;
const REQ_REQUEST_TASK: u8 = 5;
const REQ_ACK_TASK: u8 = 6;
const REQ_STATS: u8 = 7;
const REQ_EVICT_VERSION: u8 = 8;
const REQ_CLOSE_SCHED: u8 = 9;
const REQ_SUBMIT_TASK_ADM: u8 = 10;
const REQ_SCHED_POLICY: u8 = 11;
const REQ_CONTROL: u8 = 12;
const REQ_SET_TENANT: u8 = 13;
const REQ_TENANT_STATS: u8 = 14;
const REQ_POOL_STATS: u8 = 15;
const REQ_SUBMIT_TASK_HINTED: u8 = 16;
const REQ_REQUEST_TASK_LOCATED: u8 = 17;

const RESP_OK: u8 = 100;
const RESP_SEQ: u8 = 101;
const RESP_PIECES: u8 = 102;
const RESP_VERSION: u8 = 103;
const RESP_TASK: u8 = 104;
const RESP_STATS: u8 = 105;
const RESP_ADMISSION: u8 = 106;
const RESP_POLICY: u8 = 107;
const RESP_CONTROL: u8 = 108;
const RESP_TENANT_STATS: u8 = 109;
const RESP_POOL: u8 = 110;
const RESP_ERROR: u8 = 199;

// Admission verdict tags (RESP_ADMISSION payload).
const ADM_ACCEPTED: u8 = 0;
const ADM_ACCEPTED_SHED: u8 = 1;
const ADM_REJECTED: u8 = 2;
const ADM_TIMED_OUT: u8 = 3;
const ADM_CLOSED: u8 = 4;

// Admission policy tags (RESP_POLICY payload).
const POL_BLOCK: u8 = 0;
const POL_SHED_OLDEST: u8 = 1;
const POL_REJECT_NEW: u8 = 2;

/// Requests a client can issue.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Store an object.
    Put {
        /// Variable name.
        var: String,
        /// Version (timestep).
        version: u64,
        /// Region covered.
        bbox: BBox3,
        /// Payload.
        data: Bytes,
    },
    /// Spatial query.
    Get {
        /// Variable name.
        var: String,
        /// Version (timestep).
        version: u64,
        /// Query region.
        bbox: BBox3,
    },
    /// Highest stored version of a variable.
    LatestVersion {
        /// Variable name.
        var: String,
    },
    /// Data-ready: enqueue an opaque task descriptor.
    SubmitTask {
        /// Encoded task.
        data: Bytes,
    },
    /// Data-ready with an explicit admission verdict: like
    /// [`Request::SubmitTask`] but the response reports *why* a refused
    /// task was refused (and which task was shed to admit this one), so
    /// remote producers can apply backpressure or degrade.
    SubmitTaskAdm {
        /// Encoded task.
        data: Bytes,
    },
    /// Query the scheduler's queue capacity and admission policy.
    SchedPolicy,
    /// Bucket-ready: ask for the next task, waiting up to `timeout_ms`.
    RequestTask {
        /// Requesting bucket.
        bucket_id: u32,
        /// Server-side wait bound in milliseconds.
        timeout_ms: u64,
    },
    /// Acknowledge receipt of an assigned task.
    AckTask {
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Server counters.
    Stats,
    /// Drop all objects of one version.
    EvictVersion {
        /// Version to drop.
        version: u64,
    },
    /// Close the scheduler: buckets drain and stop.
    CloseSched,
    /// An opaque control frame for a layered service (e.g. cluster
    /// membership). The space/scheduler protocol does not interpret the
    /// payload; a server started without a control handler answers with
    /// an error.
    Control {
        /// Opaque payload, owned by the layer that installed the
        /// server's control handler.
        data: Bytes,
    },
    /// Declare this connection's tenant: registers (or updates) the
    /// tenant's weight/quotas/policy server-side and binds every
    /// subsequent data-plane request on this connection to the tenant's
    /// namespace. Clients that never send it stay on the default tenant
    /// with unscoped variables — the entire pre-tenancy protocol is a
    /// valid conversation.
    SetTenant {
        /// The tenant declaration.
        spec: TenantSpec,
    },
    /// Per-tenant scheduler counters and space residency.
    TenantStats,
    /// Bucket-pool state: live/idle bucket counts, desired capacity,
    /// queue depth, queue-wait p99, and the locality savings counter.
    PoolStats,
    /// Data-ready with a residency hint: like [`Request::SubmitTaskAdm`]
    /// plus `(location, bytes)` rows describing where the task's input
    /// lives, so a locality-aware server placement can steer the
    /// assignment. A server with FCFS placement (the default) ignores
    /// the hint entirely — same verdict, same assignment order.
    SubmitTaskHinted {
        /// Encoded task.
        data: Bytes,
        /// Resident input bytes per location label.
        hint: Vec<(String, u64)>,
    },
    /// Bucket-ready with a location label: like [`Request::RequestTask`]
    /// but registers the bucket as co-resident with `location` so
    /// locality placement can match it against task hints, and the
    /// server may answer [`TaskPoll::Retire`] when the capacity
    /// controller drains the bucket.
    RequestTaskLocated {
        /// Requesting bucket.
        bucket_id: u32,
        /// Server-side wait bound in milliseconds.
        timeout_ms: u64,
        /// The bucket's location label (its cluster member endpoint;
        /// empty = unlocated).
        location: String,
    },
}

/// One tenant's combined server-side counters, as reported by
/// [`Request::TenantStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantRow {
    /// Tenant name.
    pub name: String,
    /// DRR weight.
    pub weight: u32,
    /// Tasks currently queued.
    pub queued: u64,
    /// Task quota (`None` = unlimited).
    pub task_quota: Option<u64>,
    /// Tasks admitted.
    pub tasks_submitted: u64,
    /// Task assignments.
    pub tasks_assigned: u64,
    /// Tasks requeued after failed hand-offs.
    pub tasks_requeued: u64,
    /// Queued tasks shed.
    pub tasks_shed: u64,
    /// Submissions refused.
    pub tasks_rejected: u64,
    /// Bytes resident in the space.
    pub resident_bytes: u64,
    /// Byte quota (`None` = unlimited).
    pub byte_quota: Option<u64>,
}

/// The outcome of a bucket-ready request.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskPoll {
    /// A task was assigned.
    Assigned {
        /// Scheduler sequence number.
        seq: u64,
        /// Encoded task descriptor.
        data: Bytes,
        /// Tenant that submitted the task. Buckets are shared across
        /// tenants, so the worker needs this to scope its input gets
        /// and output puts to the right namespace
        /// ([`crate::scoped_var`]); [`crate::DEFAULT_TENANT`] scopes to
        /// the unprefixed legacy namespace.
        tenant: String,
    },
    /// The wait elapsed with no task available.
    Empty,
    /// The scheduler was closed; no more tasks will ever arrive.
    Closed,
    /// The capacity controller drained this bucket: deregister and
    /// exit. Other buckets keep serving; only this one retires.
    Retire,
}

/// Bucket-pool state, as reported by [`Request::PoolStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Live (non-retired) buckets.
    pub buckets: u64,
    /// Of those, parked idle right now.
    pub idle: u64,
    /// The capacity controller's desired bucket count, if one is set.
    /// External supervisors reconcile their worker fleet toward this.
    pub desired: Option<u64>,
    /// Tasks queued (not yet assigned).
    pub queue_depth: u64,
    /// p99 of recent task queue-waits, microseconds.
    pub p99_wait_us: u64,
    /// Input bytes locality placement has avoided moving.
    pub locality_bytes_saved: u64,
    /// Name of the placement policy in force (`fcfs`, `locality`).
    pub placement: String,
}

/// Combined server-side counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoteStats {
    /// Tasks submitted (data-ready events).
    pub tasks_submitted: u64,
    /// Task assignments (a requeued task counts once per assignment).
    pub tasks_assigned: u64,
    /// Tasks requeued after a failed hand-off.
    pub tasks_requeued: u64,
    /// Queued tasks evicted under [`AdmissionPolicy::ShedOldest`].
    pub tasks_shed: u64,
    /// Submissions refused at capacity (rejects and elapsed Block
    /// deadlines).
    pub tasks_rejected: u64,
    /// Objects resident in the space.
    pub objects: u64,
    /// Bytes resident in the space.
    pub resident_bytes: u64,
}

/// Responses the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Request executed.
    Ok,
    /// Sequence number of a submitted task.
    Seq(u64),
    /// Pieces matching a spatial query.
    Pieces(Vec<(BBox3, Bytes)>),
    /// Latest version, if any.
    Version(Option<u64>),
    /// Outcome of a bucket-ready request.
    Task(TaskPoll),
    /// Server counters.
    Stats(RemoteStats),
    /// Verdict of an admission-aware task submission.
    Admission(Admission),
    /// The scheduler's queue capacity (`None` = unbounded) and
    /// admission policy.
    Policy {
        /// Queue capacity, if bounded.
        capacity: Option<u64>,
        /// Policy applied at capacity.
        policy: AdmissionPolicy,
    },
    /// Reply of the server's control handler to a [`Request::Control`].
    Control {
        /// Opaque payload produced by the control handler.
        data: Bytes,
    },
    /// Per-tenant counters, one row per tenant known to the server.
    TenantRows(Vec<TenantRow>),
    /// Bucket-pool state.
    Pool(PoolStats),
    /// The request failed server-side.
    Error(String),
}

// --------------------------------------------------------------------
// Codecs (total: any byte sequence decodes to Ok or Err, never panics)
// --------------------------------------------------------------------

struct Rd {
    buf: Bytes,
    pos: usize,
}

impl Rd {
    fn new(buf: Bytes) -> Self {
        Rd { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, RemoteError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| RemoteError::Proto("truncated".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, RemoteError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, RemoteError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], RemoteError> {
        if self.remaining() < N {
            return Err(RemoteError::Proto("truncated".into()));
        }
        let mut a = [0u8; N];
        a.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(a)
    }

    fn bytes(&mut self) -> Result<Bytes, RemoteError> {
        let n = self.u32()? as usize;
        if self.remaining() < n {
            return Err(RemoteError::Proto("truncated payload".into()));
        }
        let b = self.buf.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(b)
    }

    fn string(&mut self) -> Result<String, RemoteError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| RemoteError::Proto("non-utf8 string".into()))
    }

    fn bbox(&mut self) -> Result<BBox3, RemoteError> {
        let mut v = [0usize; 6];
        for slot in &mut v {
            *slot = self.u64()? as usize;
        }
        let (lo, hi) = ([v[0], v[1], v[2]], [v[3], v[4], v[5]]);
        if lo.iter().zip(&hi).any(|(l, h)| l > h) {
            return Err(RemoteError::Proto("inverted bbox".into()));
        }
        Ok(BBox3::new(lo, hi))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, RemoteError> {
        let has = self.u8()? != 0;
        let v = self.u64()?;
        Ok(has.then_some(v))
    }

    fn policy(&mut self) -> Result<AdmissionPolicy, RemoteError> {
        let tag = self.u8()?;
        let wait_ms = self.u64()?;
        match tag {
            POL_BLOCK => Ok(AdmissionPolicy::Block {
                max_wait: Duration::from_millis(wait_ms),
            }),
            POL_SHED_OLDEST => Ok(AdmissionPolicy::ShedOldest),
            POL_REJECT_NEW => Ok(AdmissionPolicy::RejectNew),
            t => Err(RemoteError::Proto(format!("unknown policy tag {t}"))),
        }
    }

    fn finish(self) -> Result<(), RemoteError> {
        if self.remaining() != 0 {
            return Err(RemoteError::Proto("trailing bytes".into()));
        }
        Ok(())
    }
}

fn put_bytes(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

fn put_bbox(buf: &mut BytesMut, b: &BBox3) {
    for v in b.lo.iter().chain(b.hi.iter()) {
        buf.put_u64_le(*v as u64);
    }
}

fn put_opt_u64(buf: &mut BytesMut, v: Option<u64>) {
    buf.put_u8(u8::from(v.is_some()));
    buf.put_u64_le(v.unwrap_or(0));
}

fn put_policy(buf: &mut BytesMut, policy: &AdmissionPolicy) {
    match policy {
        AdmissionPolicy::Block { max_wait } => {
            buf.put_u8(POL_BLOCK);
            buf.put_u64_le(max_wait.as_millis() as u64);
        }
        AdmissionPolicy::ShedOldest => {
            buf.put_u8(POL_SHED_OLDEST);
            buf.put_u64_le(0);
        }
        AdmissionPolicy::RejectNew => {
            buf.put_u8(POL_REJECT_NEW);
            buf.put_u64_le(0);
        }
    }
}

/// Encode a request frame.
pub fn encode_request(req: &Request) -> Bytes {
    let mut buf = BytesMut::new();
    match req {
        Request::Put {
            var,
            version,
            bbox,
            data,
        } => {
            buf.put_u8(REQ_PUT);
            put_bytes(&mut buf, var.as_bytes());
            buf.put_u64_le(*version);
            put_bbox(&mut buf, bbox);
            put_bytes(&mut buf, data);
        }
        Request::Get { var, version, bbox } => {
            buf.put_u8(REQ_GET);
            put_bytes(&mut buf, var.as_bytes());
            buf.put_u64_le(*version);
            put_bbox(&mut buf, bbox);
        }
        Request::LatestVersion { var } => {
            buf.put_u8(REQ_LATEST_VERSION);
            put_bytes(&mut buf, var.as_bytes());
        }
        Request::SubmitTask { data } => {
            buf.put_u8(REQ_SUBMIT_TASK);
            put_bytes(&mut buf, data);
        }
        Request::SubmitTaskAdm { data } => {
            buf.put_u8(REQ_SUBMIT_TASK_ADM);
            put_bytes(&mut buf, data);
        }
        Request::SchedPolicy => buf.put_u8(REQ_SCHED_POLICY),
        Request::RequestTask {
            bucket_id,
            timeout_ms,
        } => {
            buf.put_u8(REQ_REQUEST_TASK);
            buf.put_u32_le(*bucket_id);
            buf.put_u64_le(*timeout_ms);
        }
        Request::AckTask { seq } => {
            buf.put_u8(REQ_ACK_TASK);
            buf.put_u64_le(*seq);
        }
        Request::Stats => buf.put_u8(REQ_STATS),
        Request::EvictVersion { version } => {
            buf.put_u8(REQ_EVICT_VERSION);
            buf.put_u64_le(*version);
        }
        Request::CloseSched => buf.put_u8(REQ_CLOSE_SCHED),
        Request::Control { data } => {
            buf.put_u8(REQ_CONTROL);
            put_bytes(&mut buf, data);
        }
        Request::SetTenant { spec } => {
            buf.put_u8(REQ_SET_TENANT);
            put_bytes(&mut buf, spec.name.as_bytes());
            buf.put_u32_le(spec.weight);
            put_opt_u64(&mut buf, spec.byte_quota);
            put_opt_u64(&mut buf, spec.task_quota.map(|t| t as u64));
            match &spec.policy {
                Some(p) => {
                    buf.put_u8(1);
                    put_policy(&mut buf, p);
                }
                None => {
                    buf.put_u8(0);
                    buf.put_u8(0);
                    buf.put_u64_le(0);
                }
            }
        }
        Request::TenantStats => buf.put_u8(REQ_TENANT_STATS),
        Request::PoolStats => buf.put_u8(REQ_POOL_STATS),
        Request::SubmitTaskHinted { data, hint } => {
            buf.put_u8(REQ_SUBMIT_TASK_HINTED);
            put_bytes(&mut buf, data);
            buf.put_u32_le(hint.len() as u32);
            for (location, bytes) in hint {
                put_bytes(&mut buf, location.as_bytes());
                buf.put_u64_le(*bytes);
            }
        }
        Request::RequestTaskLocated {
            bucket_id,
            timeout_ms,
            location,
        } => {
            buf.put_u8(REQ_REQUEST_TASK_LOCATED);
            buf.put_u32_le(*bucket_id);
            buf.put_u64_le(*timeout_ms);
            put_bytes(&mut buf, location.as_bytes());
        }
    }
    buf.freeze()
}

/// Decode a request frame. Total: never panics on malformed input.
pub fn decode_request(frame: Bytes) -> Result<Request, RemoteError> {
    let mut rd = Rd::new(frame);
    let req = match rd.u8()? {
        REQ_PUT => Request::Put {
            var: rd.string()?,
            version: rd.u64()?,
            bbox: rd.bbox()?,
            data: rd.bytes()?,
        },
        REQ_GET => Request::Get {
            var: rd.string()?,
            version: rd.u64()?,
            bbox: rd.bbox()?,
        },
        REQ_LATEST_VERSION => Request::LatestVersion { var: rd.string()? },
        REQ_SUBMIT_TASK => Request::SubmitTask { data: rd.bytes()? },
        REQ_SUBMIT_TASK_ADM => Request::SubmitTaskAdm { data: rd.bytes()? },
        REQ_SCHED_POLICY => Request::SchedPolicy,
        REQ_REQUEST_TASK => Request::RequestTask {
            bucket_id: rd.u32()?,
            timeout_ms: rd.u64()?,
        },
        REQ_ACK_TASK => Request::AckTask { seq: rd.u64()? },
        REQ_STATS => Request::Stats,
        REQ_EVICT_VERSION => Request::EvictVersion { version: rd.u64()? },
        REQ_CLOSE_SCHED => Request::CloseSched,
        REQ_CONTROL => Request::Control { data: rd.bytes()? },
        REQ_SET_TENANT => {
            let name = rd.string()?;
            if name.is_empty() || name.contains(crate::tenant::TENANT_SEP) {
                return Err(RemoteError::Proto(format!("bad tenant name `{name}`")));
            }
            let weight = rd.u32()?;
            let byte_quota = rd.opt_u64()?;
            let task_quota = rd.opt_u64()?.map(|t| t as usize);
            let has_policy = rd.u8()? != 0;
            let policy = rd.policy().ok().filter(|_| has_policy);
            // A policy-less SetTenant still carries the two filler
            // bytes+u64 (consumed above by the failed/ignored parse); a
            // malformed policy tag with has_policy set is an error.
            if has_policy && policy.is_none() {
                return Err(RemoteError::Proto("bad tenant policy".into()));
            }
            Request::SetTenant {
                spec: TenantSpec {
                    name,
                    weight: weight.max(1),
                    byte_quota,
                    task_quota,
                    policy,
                },
            }
        }
        REQ_TENANT_STATS => Request::TenantStats,
        REQ_POOL_STATS => Request::PoolStats,
        REQ_SUBMIT_TASK_HINTED => {
            let data = rd.bytes()?;
            let n = rd.u32()? as usize;
            // Each row is at least a length prefix plus the byte count.
            if n.checked_mul(12).is_none_or(|total| total > rd.remaining()) {
                return Err(RemoteError::Proto("hint row count exceeds frame".into()));
            }
            let mut hint = Vec::with_capacity(n);
            for _ in 0..n {
                hint.push((rd.string()?, rd.u64()?));
            }
            Request::SubmitTaskHinted { data, hint }
        }
        REQ_REQUEST_TASK_LOCATED => Request::RequestTaskLocated {
            bucket_id: rd.u32()?,
            timeout_ms: rd.u64()?,
            location: rd.string()?,
        },
        t => return Err(RemoteError::Proto(format!("unknown request tag {t}"))),
    };
    rd.finish()?;
    Ok(req)
}

/// Encode a response frame.
pub fn encode_response(resp: &Response) -> Bytes {
    let mut buf = BytesMut::new();
    match resp {
        Response::Ok => buf.put_u8(RESP_OK),
        Response::Seq(seq) => {
            buf.put_u8(RESP_SEQ);
            buf.put_u64_le(*seq);
        }
        Response::Pieces(pieces) => {
            buf.put_u8(RESP_PIECES);
            buf.put_u32_le(pieces.len() as u32);
            for (bbox, data) in pieces {
                put_bbox(&mut buf, bbox);
                put_bytes(&mut buf, data);
            }
        }
        Response::Version(v) => {
            buf.put_u8(RESP_VERSION);
            buf.put_u8(u8::from(v.is_some()));
            buf.put_u64_le(v.unwrap_or(0));
        }
        Response::Task(poll) => {
            buf.put_u8(RESP_TASK);
            match poll {
                TaskPoll::Assigned { seq, data, tenant } => {
                    buf.put_u8(0);
                    buf.put_u64_le(*seq);
                    put_bytes(&mut buf, data);
                    put_bytes(&mut buf, tenant.as_bytes());
                }
                TaskPoll::Empty => buf.put_u8(1),
                TaskPoll::Closed => buf.put_u8(2),
                TaskPoll::Retire => buf.put_u8(3),
            }
        }
        Response::Stats(s) => {
            buf.put_u8(RESP_STATS);
            buf.put_u64_le(s.tasks_submitted);
            buf.put_u64_le(s.tasks_assigned);
            buf.put_u64_le(s.tasks_requeued);
            buf.put_u64_le(s.tasks_shed);
            buf.put_u64_le(s.tasks_rejected);
            buf.put_u64_le(s.objects);
            buf.put_u64_le(s.resident_bytes);
        }
        Response::Admission(adm) => {
            buf.put_u8(RESP_ADMISSION);
            match adm {
                Admission::Accepted { seq } => {
                    buf.put_u8(ADM_ACCEPTED);
                    buf.put_u64_le(*seq);
                }
                Admission::AcceptedShed { seq, shed_seq } => {
                    buf.put_u8(ADM_ACCEPTED_SHED);
                    buf.put_u64_le(*seq);
                    buf.put_u64_le(*shed_seq);
                }
                Admission::Rejected => buf.put_u8(ADM_REJECTED),
                Admission::TimedOut => buf.put_u8(ADM_TIMED_OUT),
                Admission::Closed => buf.put_u8(ADM_CLOSED),
            }
        }
        Response::Policy { capacity, policy } => {
            buf.put_u8(RESP_POLICY);
            buf.put_u8(u8::from(capacity.is_some()));
            buf.put_u64_le(capacity.unwrap_or(0));
            match policy {
                AdmissionPolicy::Block { max_wait } => {
                    buf.put_u8(POL_BLOCK);
                    buf.put_u64_le(max_wait.as_millis() as u64);
                }
                AdmissionPolicy::ShedOldest => {
                    buf.put_u8(POL_SHED_OLDEST);
                    buf.put_u64_le(0);
                }
                AdmissionPolicy::RejectNew => {
                    buf.put_u8(POL_REJECT_NEW);
                    buf.put_u64_le(0);
                }
            }
        }
        Response::Control { data } => {
            buf.put_u8(RESP_CONTROL);
            put_bytes(&mut buf, data);
        }
        Response::TenantRows(rows) => {
            buf.put_u8(RESP_TENANT_STATS);
            buf.put_u32_le(rows.len() as u32);
            for r in rows {
                put_bytes(&mut buf, r.name.as_bytes());
                buf.put_u32_le(r.weight);
                buf.put_u64_le(r.queued);
                put_opt_u64(&mut buf, r.task_quota);
                buf.put_u64_le(r.tasks_submitted);
                buf.put_u64_le(r.tasks_assigned);
                buf.put_u64_le(r.tasks_requeued);
                buf.put_u64_le(r.tasks_shed);
                buf.put_u64_le(r.tasks_rejected);
                buf.put_u64_le(r.resident_bytes);
                put_opt_u64(&mut buf, r.byte_quota);
            }
        }
        Response::Pool(p) => {
            buf.put_u8(RESP_POOL);
            buf.put_u64_le(p.buckets);
            buf.put_u64_le(p.idle);
            put_opt_u64(&mut buf, p.desired);
            buf.put_u64_le(p.queue_depth);
            buf.put_u64_le(p.p99_wait_us);
            buf.put_u64_le(p.locality_bytes_saved);
            put_bytes(&mut buf, p.placement.as_bytes());
        }
        Response::Error(msg) => {
            buf.put_u8(RESP_ERROR);
            put_bytes(&mut buf, msg.as_bytes());
        }
    }
    buf.freeze()
}

/// Decode a response frame. Total: never panics on malformed input.
pub fn decode_response(frame: Bytes) -> Result<Response, RemoteError> {
    let mut rd = Rd::new(frame);
    let resp = match rd.u8()? {
        RESP_OK => Response::Ok,
        RESP_SEQ => Response::Seq(rd.u64()?),
        RESP_PIECES => {
            let n = rd.u32()? as usize;
            // Each piece is at least a bbox and a length prefix.
            if n.checked_mul(52).is_none_or(|total| total > rd.remaining()) {
                return Err(RemoteError::Proto("piece count exceeds frame".into()));
            }
            let mut pieces = Vec::with_capacity(n);
            for _ in 0..n {
                let bbox = rd.bbox()?;
                let data = rd.bytes()?;
                pieces.push((bbox, data));
            }
            Response::Pieces(pieces)
        }
        RESP_VERSION => {
            let has = rd.u8()? != 0;
            let v = rd.u64()?;
            Response::Version(has.then_some(v))
        }
        RESP_TASK => match rd.u8()? {
            0 => Response::Task(TaskPoll::Assigned {
                seq: rd.u64()?,
                data: rd.bytes()?,
                tenant: rd.string()?,
            }),
            1 => Response::Task(TaskPoll::Empty),
            2 => Response::Task(TaskPoll::Closed),
            3 => Response::Task(TaskPoll::Retire),
            s => return Err(RemoteError::Proto(format!("unknown task status {s}"))),
        },
        RESP_STATS => Response::Stats(RemoteStats {
            tasks_submitted: rd.u64()?,
            tasks_assigned: rd.u64()?,
            tasks_requeued: rd.u64()?,
            tasks_shed: rd.u64()?,
            tasks_rejected: rd.u64()?,
            objects: rd.u64()?,
            resident_bytes: rd.u64()?,
        }),
        RESP_ADMISSION => match rd.u8()? {
            ADM_ACCEPTED => Response::Admission(Admission::Accepted { seq: rd.u64()? }),
            ADM_ACCEPTED_SHED => Response::Admission(Admission::AcceptedShed {
                seq: rd.u64()?,
                shed_seq: rd.u64()?,
            }),
            ADM_REJECTED => Response::Admission(Admission::Rejected),
            ADM_TIMED_OUT => Response::Admission(Admission::TimedOut),
            ADM_CLOSED => Response::Admission(Admission::Closed),
            v => return Err(RemoteError::Proto(format!("unknown admission verdict {v}"))),
        },
        RESP_POLICY => {
            let has_cap = rd.u8()? != 0;
            let cap = rd.u64()?;
            let tag = rd.u8()?;
            let wait_ms = rd.u64()?;
            let policy = match tag {
                POL_BLOCK => AdmissionPolicy::Block {
                    max_wait: Duration::from_millis(wait_ms),
                },
                POL_SHED_OLDEST => AdmissionPolicy::ShedOldest,
                POL_REJECT_NEW => AdmissionPolicy::RejectNew,
                t => return Err(RemoteError::Proto(format!("unknown policy tag {t}"))),
            };
            Response::Policy {
                capacity: has_cap.then_some(cap),
                policy,
            }
        }
        RESP_CONTROL => Response::Control { data: rd.bytes()? },
        RESP_TENANT_STATS => {
            let n = rd.u32()? as usize;
            // Each row is at least a name length prefix plus the fixed
            // numeric fields.
            if n.checked_mul(78).is_none_or(|total| total > rd.remaining()) {
                return Err(RemoteError::Proto("tenant row count exceeds frame".into()));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(TenantRow {
                    name: rd.string()?,
                    weight: rd.u32()?,
                    queued: rd.u64()?,
                    task_quota: rd.opt_u64()?,
                    tasks_submitted: rd.u64()?,
                    tasks_assigned: rd.u64()?,
                    tasks_requeued: rd.u64()?,
                    tasks_shed: rd.u64()?,
                    tasks_rejected: rd.u64()?,
                    resident_bytes: rd.u64()?,
                    byte_quota: rd.opt_u64()?,
                });
            }
            Response::TenantRows(rows)
        }
        RESP_POOL => Response::Pool(PoolStats {
            buckets: rd.u64()?,
            idle: rd.u64()?,
            desired: rd.opt_u64()?,
            queue_depth: rd.u64()?,
            p99_wait_us: rd.u64()?,
            locality_bytes_saved: rd.u64()?,
            placement: rd.string()?,
        }),
        RESP_ERROR => Response::Error(rd.string()?),
        t => return Err(RemoteError::Proto(format!("unknown response tag {t}"))),
    };
    rd.finish()?;
    Ok(resp)
}

// --------------------------------------------------------------------
// Server
// --------------------------------------------------------------------

/// How long the server waits for a task-receipt acknowledgement before
/// declaring the hand-off failed and requeueing.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-request scheduler wait slice; the overall bound is the client's
/// `timeout_ms`.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Handler for opaque [`Request::Control`] frames. Layered services
/// (cluster membership, handoff) install one at server start; the
/// space/scheduler protocol never looks inside the payloads.
pub type ControlHandler = Arc<dyn Fn(Bytes) -> Bytes + Send + Sync>;

struct ServerInner {
    space: Arc<DataSpaces>,
    sched: Scheduler<Bytes>,
    control: Option<ControlHandler>,
}

/// The remote staging service: [`DataSpaces`] + [`Scheduler`] behind a
/// [`sitra_net`] listener, one thread per connection.
pub struct SpaceServer {
    inner: Arc<ServerInner>,
    handle: Option<ServerHandle>,
    addr: Addr,
}

impl SpaceServer {
    /// Bind `addr` and start serving with `shards` space shards and an
    /// unbounded task queue.
    pub fn start(addr: &Addr, shards: usize) -> Result<SpaceServer, NetError> {
        Self::start_with(addr, shards, None, AdmissionPolicy::RejectNew)
    }

    /// Bind `addr` and start serving with `shards` space shards and a
    /// task queue bounded at `capacity` (when `Some`), applying `policy`
    /// to submissions that find it full.
    pub fn start_with(
        addr: &Addr,
        shards: usize,
        capacity: Option<usize>,
        policy: AdmissionPolicy,
    ) -> Result<SpaceServer, NetError> {
        let sched = match capacity {
            Some(cap) => Scheduler::bounded(cap, policy),
            None => Scheduler::new(),
        };
        Self::start_custom(addr, Arc::new(DataSpaces::new(shards)), sched, None)
    }

    /// Bind `addr` and serve an externally constructed space and
    /// scheduler, optionally dispatching [`Request::Control`] frames to
    /// `control`. This is the seam a layered service (the cluster
    /// membership node) uses to keep its own handle on the space for
    /// shard handoff while the RPC surface stays unchanged.
    pub fn start_custom(
        addr: &Addr,
        space: Arc<DataSpaces>,
        sched: Scheduler<Bytes>,
        control: Option<ControlHandler>,
    ) -> Result<SpaceServer, NetError> {
        let listener = Listener::bind(addr)?;
        let bound = listener.local_addr();
        let inner = Arc::new(ServerInner {
            space,
            sched,
            control,
        });
        let conn_inner = Arc::clone(&inner);
        let handle = serve(listener, move |conn| serve_connection(&conn_inner, &conn));
        Ok(SpaceServer {
            inner,
            handle: Some(handle),
            addr: bound,
        })
    }

    /// Where the server is listening (the OS-assigned port for
    /// `tcp://…:0` binds).
    pub fn addr(&self) -> Addr {
        self.addr.clone()
    }

    /// Direct access to the served space (same-process convenience).
    pub fn space(&self) -> &DataSpaces {
        &self.inner.space
    }

    /// A clone of the served scheduler (same-process convenience; the
    /// cluster node drains it on graceful leave).
    pub fn scheduler(&self) -> Scheduler<Bytes> {
        self.inner.sched.clone()
    }

    /// Scheduler counters.
    pub fn sched_stats(&self) -> SchedStats {
        self.inner.sched.stats()
    }

    /// Has a client closed the scheduler? (`sitra-staged` exits on this.)
    pub fn closed(&self) -> bool {
        self.inner.sched.is_closed()
    }

    /// Close the scheduler and stop accepting connections.
    pub fn shutdown(mut self) {
        self.inner.sched.close();
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
    }
}

fn serve_connection(inner: &ServerInner, conn: &Connection) {
    let reg = sitra_obs::global();
    let rpc_requests = reg.counter("space.rpc.requests");
    let rpc_proto_errors = reg.counter("space.rpc.proto_errors");
    // The connection's tenant binding: None until a SetTenant arrives,
    // which keeps every legacy client on the default tenant with
    // unscoped variable names and unscoped eviction.
    let mut tenant: Option<String> = None;
    let scope = |tenant: &Option<String>, var: &str| match tenant {
        Some(t) => scoped_var(t, var),
        None => var.to_string(),
    };
    loop {
        let frame = match conn.recv() {
            Ok(f) => f,
            Err(_) => return, // peer hung up
        };
        let req = match decode_request(frame) {
            Ok(r) => r,
            Err(e) => {
                rpc_proto_errors.inc();
                let _ = conn.send(encode_response(&Response::Error(e.to_string())));
                return;
            }
        };
        rpc_requests.inc();
        let resp = match req {
            Request::Put {
                var,
                version,
                bbox,
                data,
            } => {
                // Quota-checked even for unbound connections: a client
                // may address another tenant's namespace explicitly (the
                // cluster handoff path does), and the quota follows the
                // name, not the connection.
                match inner
                    .space
                    .put_quota(&scope(&tenant, &var), version, bbox, data)
                {
                    Ok(_) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Get { var, version, bbox } => {
                Response::Pieces(inner.space.get(&scope(&tenant, &var), version, &bbox))
            }
            Request::LatestVersion { var } => {
                Response::Version(inner.space.latest_version(&scope(&tenant, &var)))
            }
            Request::SubmitTask { data } => {
                let t = tenant.as_deref().unwrap_or(DEFAULT_TENANT);
                match inner.sched.submit_admission_as(t, data) {
                    Admission::Accepted { seq } | Admission::AcceptedShed { seq, .. } => {
                        Response::Seq(seq)
                    }
                    Admission::Closed => Response::Error("scheduler closed".into()),
                    verdict => Response::Error(format!("task not admitted: {verdict:?}")),
                }
            }
            Request::SubmitTaskAdm { data } => {
                let t = tenant.as_deref().unwrap_or(DEFAULT_TENANT);
                Response::Admission(inner.sched.submit_admission_as(t, data))
            }
            Request::SubmitTaskHinted { data, hint } => {
                let t = tenant.as_deref().unwrap_or(DEFAULT_TENANT);
                let hint = (!hint.is_empty()).then_some(ResidencyHint { bytes_at: hint });
                Response::Admission(inner.sched.submit_admission_hinted_as(t, data, hint))
            }
            Request::SchedPolicy => Response::Policy {
                capacity: inner.sched.capacity().map(|c| c as u64),
                policy: inner.sched.policy(),
            },
            Request::RequestTask {
                bucket_id,
                timeout_ms,
            } => {
                if !handle_request_task(inner, conn, bucket_id, timeout_ms, None) {
                    return; // hand-off failed; connection is dead
                }
                continue; // response already sent
            }
            Request::RequestTaskLocated {
                bucket_id,
                timeout_ms,
                location,
            } => {
                let loc = (!location.is_empty()).then_some(location.as_str());
                if !handle_request_task(inner, conn, bucket_id, timeout_ms, loc) {
                    return; // hand-off failed; connection is dead
                }
                continue; // response already sent
            }
            Request::AckTask { .. } => Response::Error("unexpected ack".into()),
            Request::Stats => {
                let sched = inner.sched.stats();
                let space = inner.space.stats();
                Response::Stats(RemoteStats {
                    tasks_submitted: sched.tasks_submitted,
                    tasks_assigned: sched.tasks_assigned,
                    tasks_requeued: sched.tasks_requeued,
                    tasks_shed: sched.tasks_shed,
                    tasks_rejected: sched.tasks_rejected,
                    objects: space.objects_per_server.iter().sum(),
                    resident_bytes: space.resident_bytes,
                })
            }
            Request::EvictVersion { version } => {
                // A tenant-bound connection reclaims only its own
                // namespace; an unbound one keeps the global semantics.
                match &tenant {
                    Some(t) => inner.space.evict_version_scoped(t, version),
                    None => inner.space.evict_version(version),
                }
                Response::Ok
            }
            Request::CloseSched => {
                inner.sched.close();
                Response::Ok
            }
            Request::Control { data } => match &inner.control {
                Some(handler) => Response::Control {
                    data: handler(data),
                },
                None => Response::Error("control frames not supported".into()),
            },
            Request::SetTenant { spec } => {
                inner.sched.register_tenant(&spec);
                inner
                    .space
                    .set_tenant_byte_quota(&spec.name, spec.byte_quota);
                tenant = Some(spec.name);
                Response::Ok
            }
            Request::TenantStats => Response::TenantRows(tenant_rows(inner)),
            Request::PoolStats => {
                let snap = inner.sched.pool_snapshot();
                Response::Pool(PoolStats {
                    buckets: snap.buckets as u64,
                    idle: snap.idle as u64,
                    desired: inner.sched.pool_target().map(|t| t as u64),
                    queue_depth: snap.queue_depth as u64,
                    p99_wait_us: snap.p99_wait.as_micros() as u64,
                    locality_bytes_saved: inner.sched.stats().locality_bytes_saved,
                    placement: inner.sched.placement_name().to_string(),
                })
            }
        };
        if conn.send(encode_response(&resp)).is_err() {
            return;
        }
    }
}

/// Join the scheduler's per-tenant snapshot with the space's residency
/// ledger into the wire rows.
fn tenant_rows(inner: &ServerInner) -> Vec<TenantRow> {
    let usage: std::collections::HashMap<String, (u64, Option<u64>)> = inner
        .space
        .tenant_usage()
        .into_iter()
        .map(|(name, used, quota)| (name, (used, quota)))
        .collect();
    let mut rows: Vec<TenantRow> = inner
        .sched
        .tenant_stats()
        .into_iter()
        .map(|t| {
            let (resident_bytes, byte_quota) = usage.get(&t.name).copied().unwrap_or((0, None));
            TenantRow {
                name: t.name,
                weight: t.weight,
                queued: t.queued,
                task_quota: t.task_quota,
                tasks_submitted: t.stats.tasks_submitted,
                tasks_assigned: t.stats.tasks_assigned,
                tasks_requeued: t.stats.tasks_requeued,
                tasks_shed: t.stats.tasks_shed,
                tasks_rejected: t.stats.tasks_rejected,
                resident_bytes,
                byte_quota,
            }
        })
        .collect();
    // Tenants with resident bytes but no scheduler traffic still get a
    // row (puts-only tenants exist).
    for (name, (used, quota)) in usage {
        if !rows.iter().any(|r| r.name == name) {
            rows.push(TenantRow {
                name,
                weight: 1,
                resident_bytes: used,
                byte_quota: quota,
                ..TenantRow::default()
            });
        }
    }
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    rows
}

/// Serve one bucket-ready request. Returns false when the connection
/// must be torn down (a task hand-off could not be completed; the task
/// has been requeued).
fn handle_request_task(
    inner: &ServerInner,
    conn: &Connection,
    bucket_id: u32,
    timeout_ms: u64,
    location: Option<&str>,
) -> bool {
    let bucket = inner.sched.register_bucket_at(bucket_id, location);
    let deadline = std::time::Instant::now() + Duration::from_millis(timeout_ms);
    let assigned = loop {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            break None;
        }
        match bucket.poll_task(Some(left.min(WAIT_SLICE))) {
            Lease::Assigned { seq, task } => break Some((seq, task)),
            Lease::Retire => {
                return conn
                    .send(encode_response(&Response::Task(TaskPoll::Retire)))
                    .is_ok()
            }
            Lease::Closed => {
                // Drain-then-closed: one more non-blocking look so a
                // task requeued during close is not missed.
                match bucket.poll_task(Some(Duration::ZERO)) {
                    Lease::Assigned { seq, task } => break Some((seq, task)),
                    Lease::Retire => {
                        return conn
                            .send(encode_response(&Response::Task(TaskPoll::Retire)))
                            .is_ok()
                    }
                    _ => {
                        return conn
                            .send(encode_response(&Response::Task(TaskPoll::Closed)))
                            .is_ok()
                    }
                }
            }
            Lease::Empty => continue,
        }
    };
    let Some((seq, data)) = assigned else {
        return conn
            .send(encode_response(&Response::Task(TaskPoll::Empty)))
            .is_ok();
    };
    // Two-phase hand-off: send, then require an ack on the same
    // connection. Either failure requeues the task at the queue head.
    let tenant = inner
        .sched
        .tenant_of(seq)
        .unwrap_or_else(|| DEFAULT_TENANT.to_string());
    let sent = conn
        .send(encode_response(&Response::Task(TaskPoll::Assigned {
            seq,
            data: data.clone(),
            tenant,
        })))
        .is_ok();
    if !sent {
        emit_requeue(bucket_id, seq, "send-failed");
        inner.sched.requeue_front(seq, data);
        return false;
    }
    let t_sent = std::time::Instant::now();
    match conn.recv_timeout(ACK_TIMEOUT) {
        Ok(frame) => match decode_request(frame) {
            Ok(Request::AckTask { seq: acked }) if acked == seq => {
                inner.sched.ack(seq);
                sitra_obs::global()
                    .histogram("space.rpc.ack_ns")
                    .observe(t_sent.elapsed());
                sitra_obs::emit(
                    "space",
                    "task.assign",
                    &[
                        ("bucket", bucket_id.to_string()),
                        ("seq", seq.to_string()),
                        ("ack_ns", t_sent.elapsed().as_nanos().to_string()),
                    ],
                );
                true
            }
            _ => {
                emit_requeue(bucket_id, seq, "bad-ack");
                inner.sched.requeue_front(seq, data);
                false
            }
        },
        Err(_) => {
            emit_requeue(bucket_id, seq, "ack-timeout");
            inner.sched.requeue_front(seq, data);
            false
        }
    }
}

/// Journal a failed hand-off. The requeue is the interesting fault
/// signal in a staging service's event stream — one line per lost
/// consumer, with why the two-phase hand-off failed.
fn emit_requeue(bucket_id: u32, seq: u64, reason: &str) {
    sitra_obs::emit(
        "space",
        "task.requeue",
        &[
            ("bucket", bucket_id.to_string()),
            ("seq", seq.to_string()),
            ("reason", reason.to_string()),
        ],
    );
}

// --------------------------------------------------------------------
// Client
// --------------------------------------------------------------------

/// Client handle to a [`SpaceServer`], mirroring the in-process
/// [`DataSpaces`] API plus the scheduler verbs.
pub struct RemoteSpace {
    conn: Connection,
}

impl RemoteSpace {
    /// Connect with a single attempt.
    pub fn connect(addr: &Addr) -> Result<RemoteSpace, RemoteError> {
        Ok(RemoteSpace {
            conn: sitra_net::connect(addr)?,
        })
    }

    /// Connect with bounded exponential backoff.
    pub fn connect_retry(addr: &Addr, backoff: &Backoff) -> Result<RemoteSpace, RemoteError> {
        Ok(RemoteSpace {
            conn: sitra_net::connect_retry(addr, backoff)?,
        })
    }

    fn rpc(&self, req: &Request) -> Result<Response, RemoteError> {
        self.conn.send(encode_request(req))?;
        let frame = self.conn.recv()?;
        match decode_response(frame)? {
            Response::Error(msg) => Err(RemoteError::Server(msg)),
            resp => Ok(resp),
        }
    }

    fn expect_ok(&self, req: &Request) -> Result<(), RemoteError> {
        match self.rpc(req)? {
            Response::Ok => Ok(()),
            other => Err(RemoteError::Proto(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Store an object.
    pub fn put(
        &self,
        var: &str,
        version: u64,
        bbox: BBox3,
        data: Bytes,
    ) -> Result<(), RemoteError> {
        self.expect_ok(&Request::Put {
            var: var.to_string(),
            version,
            bbox,
            data,
        })
    }

    /// Store a field (serializing its values).
    pub fn put_field(
        &self,
        var: &str,
        version: u64,
        field: &ScalarField,
    ) -> Result<(), RemoteError> {
        self.put(
            var,
            version,
            field.bbox(),
            crate::codec::field_to_bytes(field),
        )
    }

    /// Spatial query: every stored piece of `(var, version)`
    /// intersecting `query`.
    pub fn get(
        &self,
        var: &str,
        version: u64,
        query: &BBox3,
    ) -> Result<Vec<(BBox3, Bytes)>, RemoteError> {
        match self.rpc(&Request::Get {
            var: var.to_string(),
            version,
            bbox: *query,
        })? {
            Response::Pieces(p) => Ok(p),
            other => Err(RemoteError::Proto(format!(
                "expected Pieces, got {other:?}"
            ))),
        }
    }

    /// Spatial query assembled into one field over `query`.
    pub fn get_assembled(
        &self,
        var: &str,
        version: u64,
        query: &BBox3,
        fill: f64,
    ) -> Result<ScalarField, RemoteError> {
        let pieces: Vec<ScalarField> = self
            .get(var, version, query)?
            .into_iter()
            .filter_map(|(bbox, data)| {
                bbox.intersect(query)
                    .map(|clip| crate::codec::bytes_to_field(bbox, &data).extract(&clip))
            })
            .collect();
        Ok(sitra_mesh::field::assemble(*query, &pieces, fill))
    }

    /// Highest stored version of `var`.
    pub fn latest_version(&self, var: &str) -> Result<Option<u64>, RemoteError> {
        match self.rpc(&Request::LatestVersion {
            var: var.to_string(),
        })? {
            Response::Version(v) => Ok(v),
            other => Err(RemoteError::Proto(format!(
                "expected Version, got {other:?}"
            ))),
        }
    }

    /// Data-ready: enqueue an opaque task descriptor; returns its
    /// sequence number.
    pub fn submit_task(&self, data: Bytes) -> Result<u64, RemoteError> {
        match self.rpc(&Request::SubmitTask { data })? {
            Response::Seq(s) => Ok(s),
            other => Err(RemoteError::Proto(format!("expected Seq, got {other:?}"))),
        }
    }

    /// Data-ready with an explicit [`Admission`] verdict: the server
    /// applies its admission policy and reports the outcome instead of
    /// turning a refusal into an opaque error. This is how a remote
    /// producer learns it should degrade (run the aggregation in-situ)
    /// or that one of its earlier tasks was shed.
    pub fn submit_task_admission(&self, data: Bytes) -> Result<Admission, RemoteError> {
        match self.rpc(&Request::SubmitTaskAdm { data })? {
            Response::Admission(adm) => Ok(adm),
            other => Err(RemoteError::Proto(format!(
                "expected Admission, got {other:?}"
            ))),
        }
    }

    /// The server scheduler's queue capacity (`None` = unbounded) and
    /// admission policy.
    pub fn sched_policy(&self) -> Result<(Option<u64>, AdmissionPolicy), RemoteError> {
        match self.rpc(&Request::SchedPolicy)? {
            Response::Policy { capacity, policy } => Ok((capacity, policy)),
            other => Err(RemoteError::Proto(format!(
                "expected Policy, got {other:?}"
            ))),
        }
    }

    /// Bucket-ready: request the next task, waiting up to `timeout` on
    /// the server. An assigned task is acknowledged automatically
    /// before this returns.
    pub fn request_task(&self, bucket_id: u32, timeout: Duration) -> Result<TaskPoll, RemoteError> {
        self.request_task_frame(&Request::RequestTask {
            bucket_id,
            timeout_ms: timeout.as_millis() as u64,
        })
    }

    /// [`Self::request_task`] with a location label: registers the
    /// bucket as co-resident with `location` so the server's locality
    /// placement can steer matching tasks here, and may return
    /// [`TaskPoll::Retire`] when the capacity controller drains this
    /// bucket.
    pub fn request_task_located(
        &self,
        bucket_id: u32,
        timeout: Duration,
        location: &str,
    ) -> Result<TaskPoll, RemoteError> {
        self.request_task_frame(&Request::RequestTaskLocated {
            bucket_id,
            timeout_ms: timeout.as_millis() as u64,
            location: location.to_string(),
        })
    }

    fn request_task_frame(&self, req: &Request) -> Result<TaskPoll, RemoteError> {
        let timeout_ms = match req {
            Request::RequestTask { timeout_ms, .. }
            | Request::RequestTaskLocated { timeout_ms, .. } => *timeout_ms,
            _ => 0,
        };
        self.conn.send(encode_request(req))?;
        // The server may legitimately take the full timeout; pad the
        // client-side wait generously.
        let frame = self
            .conn
            .recv_timeout(Duration::from_millis(timeout_ms) + Duration::from_secs(30))?;
        match decode_response(frame)? {
            Response::Task(poll) => {
                if let TaskPoll::Assigned { seq, .. } = &poll {
                    self.conn
                        .send(encode_request(&Request::AckTask { seq: *seq }))?;
                }
                Ok(poll)
            }
            Response::Error(msg) => Err(RemoteError::Server(msg)),
            other => Err(RemoteError::Proto(format!("expected Task, got {other:?}"))),
        }
    }

    /// [`Self::submit_task_admission`] with a residency hint: `hint`
    /// rows name where the task's input bytes live so a locality-aware
    /// server placement can steer the assignment. Advisory — an FCFS
    /// server behaves exactly as for the unhinted verb.
    pub fn submit_task_hinted(
        &self,
        data: Bytes,
        hint: Vec<(String, u64)>,
    ) -> Result<Admission, RemoteError> {
        match self.rpc(&Request::SubmitTaskHinted { data, hint })? {
            Response::Admission(adm) => Ok(adm),
            other => Err(RemoteError::Proto(format!(
                "expected Admission, got {other:?}"
            ))),
        }
    }

    /// Bucket-pool state: live/idle counts, desired capacity, queue
    /// depth, queue-wait p99, and the locality savings counter.
    pub fn pool_stats(&self) -> Result<PoolStats, RemoteError> {
        match self.rpc(&Request::PoolStats)? {
            Response::Pool(p) => Ok(p),
            other => Err(RemoteError::Proto(format!("expected Pool, got {other:?}"))),
        }
    }

    /// Server counters.
    pub fn stats(&self) -> Result<RemoteStats, RemoteError> {
        match self.rpc(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(RemoteError::Proto(format!("expected Stats, got {other:?}"))),
        }
    }

    /// Drop all objects of `version`.
    pub fn evict_version(&self, version: u64) -> Result<(), RemoteError> {
        self.expect_ok(&Request::EvictVersion { version })
    }

    /// Close the scheduler: every bucket's next request returns
    /// [`TaskPoll::Closed`] once the queue drains.
    pub fn close_sched(&self) -> Result<(), RemoteError> {
        self.expect_ok(&Request::CloseSched)
    }

    /// Declare this connection's tenant: registers (or updates) the
    /// tenant server-side and scopes every subsequent request on this
    /// connection to its namespace. Must be re-sent after a reconnect —
    /// the binding is per-connection, not per-client.
    pub fn set_tenant(&self, spec: &TenantSpec) -> Result<(), RemoteError> {
        self.expect_ok(&Request::SetTenant { spec: spec.clone() })
    }

    /// Per-tenant scheduler counters and space residency, one row per
    /// tenant the server has seen, sorted by name.
    pub fn tenant_stats(&self) -> Result<Vec<TenantRow>, RemoteError> {
        match self.rpc(&Request::TenantStats)? {
            Response::TenantRows(rows) => Ok(rows),
            other => Err(RemoteError::Proto(format!(
                "expected TenantRows, got {other:?}"
            ))),
        }
    }

    /// Send an opaque control frame and return the handler's reply.
    /// Errors with [`RemoteError::Server`] when the server was started
    /// without a control handler.
    pub fn control(&self, data: Bytes) -> Result<Bytes, RemoteError> {
        match self.rpc(&Request::Control { data })? {
            Response::Control { data } => Ok(data),
            other => Err(RemoteError::Proto(format!(
                "expected Control, got {other:?}"
            ))),
        }
    }

    /// Transport counters of this client's connection.
    pub fn conn_stats(&self) -> ConnStats {
        self.conn.stats()
    }

    /// Close the connection.
    pub fn close(&self) {
        self.conn.close();
    }

    /// Fault injection for tests: send a bucket-ready request and then
    /// drop the connection without reading the response, simulating a
    /// consumer crash at the worst moment — after the server may have
    /// popped a task for us. The server must requeue that task.
    pub fn fault_drop_during_request(&self, bucket_id: u32, timeout: Duration) {
        let _ = self.conn.send(encode_request(&Request::RequestTask {
            bucket_id,
            timeout_ms: timeout.as_millis() as u64,
        }));
        // Give the request time to reach the server thread before the
        // hang-up races it.
        std::thread::sleep(Duration::from_millis(30));
        self.conn.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_bbox(lo: [usize; 3], hi: [usize; 3]) -> BBox3 {
        BBox3::new(lo, hi)
    }

    #[test]
    fn request_codec_roundtrip() {
        let reqs = vec![
            Request::Put {
                var: "T".into(),
                version: 9,
                bbox: mk_bbox([0, 1, 2], [3, 4, 5]),
                data: Bytes::from_static(b"\x01\x02"),
            },
            Request::Get {
                var: "ρ".into(),
                version: 0,
                bbox: mk_bbox([0, 0, 0], [0, 0, 0]),
            },
            Request::LatestVersion { var: "x".into() },
            Request::SubmitTask {
                data: Bytes::from_static(b"task"),
            },
            Request::RequestTask {
                bucket_id: 7,
                timeout_ms: 1500,
            },
            Request::AckTask { seq: 42 },
            Request::Stats,
            Request::EvictVersion { version: 3 },
            Request::CloseSched,
            Request::SubmitTaskAdm {
                data: Bytes::from_static(b"task-adm"),
            },
            Request::SchedPolicy,
            Request::Control {
                data: Bytes::from_static(b"\x00opaque"),
            },
            Request::SetTenant {
                spec: TenantSpec::new("viz")
                    .with_weight(3)
                    .with_byte_quota(1 << 20)
                    .with_task_quota(8)
                    .with_policy(AdmissionPolicy::Block {
                        max_wait: Duration::from_millis(40),
                    }),
            },
            Request::SetTenant {
                spec: TenantSpec::new("plain"),
            },
            Request::TenantStats,
            Request::PoolStats,
            Request::SubmitTaskHinted {
                data: Bytes::from_static(b"task-hinted"),
                hint: vec![("tcp://m0:7000".into(), 4096), ("tcp://m1:7000".into(), 64)],
            },
            Request::SubmitTaskHinted {
                data: Bytes::from_static(b"no-hint"),
                hint: vec![],
            },
            Request::RequestTaskLocated {
                bucket_id: 3,
                timeout_ms: 250,
                location: "tcp://m1:7000".into(),
            },
        ];
        for r in reqs {
            assert_eq!(decode_request(encode_request(&r)).unwrap(), r);
        }
    }

    #[test]
    fn response_codec_roundtrip() {
        let resps = vec![
            Response::Ok,
            Response::Seq(17),
            Response::Pieces(vec![
                (mk_bbox([0, 0, 0], [1, 1, 1]), Bytes::from_static(b"abc")),
                (mk_bbox([2, 0, 0], [3, 1, 1]), Bytes::new()),
            ]),
            Response::Version(Some(8)),
            Response::Version(None),
            Response::Task(TaskPoll::Assigned {
                seq: 5,
                data: Bytes::from_static(b"t"),
                tenant: "acme".into(),
            }),
            Response::Task(TaskPoll::Empty),
            Response::Task(TaskPoll::Closed),
            Response::Task(TaskPoll::Retire),
            Response::Pool(PoolStats {
                buckets: 4,
                idle: 2,
                desired: Some(6),
                queue_depth: 9,
                p99_wait_us: 1500,
                locality_bytes_saved: 1 << 20,
                placement: "locality".into(),
            }),
            Response::Pool(PoolStats::default()),
            Response::Stats(RemoteStats {
                tasks_submitted: 1,
                tasks_assigned: 2,
                tasks_requeued: 3,
                tasks_shed: 6,
                tasks_rejected: 7,
                objects: 4,
                resident_bytes: 5,
            }),
            Response::Admission(Admission::Accepted { seq: 11 }),
            Response::Admission(Admission::AcceptedShed {
                seq: 12,
                shed_seq: 2,
            }),
            Response::Admission(Admission::Rejected),
            Response::Admission(Admission::TimedOut),
            Response::Admission(Admission::Closed),
            Response::Policy {
                capacity: Some(32),
                policy: AdmissionPolicy::Block {
                    max_wait: Duration::from_millis(250),
                },
            },
            Response::Policy {
                capacity: None,
                policy: AdmissionPolicy::ShedOldest,
            },
            Response::Policy {
                capacity: Some(1),
                policy: AdmissionPolicy::RejectNew,
            },
            Response::Control {
                data: Bytes::from_static(b"reply"),
            },
            Response::TenantRows(vec![
                TenantRow {
                    name: "default".into(),
                    weight: 1,
                    ..TenantRow::default()
                },
                TenantRow {
                    name: "viz".into(),
                    weight: 3,
                    queued: 2,
                    task_quota: Some(8),
                    tasks_submitted: 10,
                    tasks_assigned: 7,
                    tasks_requeued: 1,
                    tasks_shed: 1,
                    tasks_rejected: 2,
                    resident_bytes: 4096,
                    byte_quota: Some(1 << 20),
                },
            ]),
            Response::TenantRows(vec![]),
            Response::Error("boom".into()),
        ];
        for r in resps {
            assert_eq!(decode_response(encode_response(&r)).unwrap(), r);
        }
    }

    #[test]
    fn codecs_reject_garbage_without_panicking() {
        for len in 0..64 {
            let junk = Bytes::from(vec![0xFEu8; len]);
            assert!(decode_request(junk.clone()).is_err());
            assert!(decode_response(junk).is_err());
        }
        // Truncations of every valid message error out too.
        let enc = encode_request(&Request::Put {
            var: "T".into(),
            version: 1,
            bbox: mk_bbox([0, 0, 0], [1, 1, 1]),
            data: Bytes::from_static(b"xyz"),
        });
        for cut in 0..enc.len() {
            assert!(decode_request(enc.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn server_put_get_over_inproc() {
        let addr: Addr = "inproc://space-putget".parse().unwrap();
        let server = SpaceServer::start(&addr, 4).unwrap();
        let client = RemoteSpace::connect(&server.addr()).unwrap();
        let b = mk_bbox([0, 0, 0], [3, 3, 3]);
        let f = ScalarField::from_fn(b, |p| p[0] as f64 + 0.5 * p[1] as f64);
        client.put_field("T", 2, &f).unwrap();
        assert_eq!(client.latest_version("T").unwrap(), Some(2));
        assert_eq!(client.latest_version("nope").unwrap(), None);
        let got = client.get_assembled("T", 2, &b, f64::NAN).unwrap();
        assert_eq!(got, f);
        client.evict_version(2).unwrap();
        assert!(client.get("T", 2, &b).unwrap().is_empty());
        server.shutdown();
    }

    #[test]
    fn scheduler_verbs_over_inproc() {
        let addr: Addr = "inproc://space-sched".parse().unwrap();
        let server = SpaceServer::start(&addr, 1).unwrap();
        let producer = RemoteSpace::connect(&server.addr()).unwrap();
        let bucket = RemoteSpace::connect(&server.addr()).unwrap();

        // Empty poll times out.
        assert_eq!(
            bucket.request_task(0, Duration::from_millis(40)).unwrap(),
            TaskPoll::Empty
        );
        let seq = producer.submit_task(Bytes::from_static(b"job-0")).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(
            bucket.request_task(0, Duration::from_secs(2)).unwrap(),
            TaskPoll::Assigned {
                seq: 0,
                data: Bytes::from_static(b"job-0"),
                tenant: DEFAULT_TENANT.into(),
            }
        );
        producer.close_sched().unwrap();
        assert_eq!(
            bucket.request_task(0, Duration::from_secs(2)).unwrap(),
            TaskPoll::Closed
        );
        let stats = producer.stats().unwrap();
        assert_eq!(stats.tasks_submitted, 1);
        assert_eq!(stats.tasks_assigned, 1);
        assert_eq!(stats.tasks_requeued, 0);
        server.shutdown();
    }

    #[test]
    fn dropped_consumer_connection_requeues_task() {
        let addr: Addr = "inproc://space-requeue".parse().unwrap();
        let server = SpaceServer::start(&addr, 1).unwrap();
        let producer = RemoteSpace::connect(&server.addr()).unwrap();
        producer
            .submit_task(Bytes::from_static(b"precious"))
            .unwrap();

        // A consumer asks for the task and dies before acknowledging.
        let doomed = RemoteSpace::connect(&server.addr()).unwrap();
        doomed.fault_drop_during_request(9, Duration::from_secs(2));

        // The replacement consumer still gets the task.
        let survivor = RemoteSpace::connect(&server.addr()).unwrap();
        let polled = survivor.request_task(1, Duration::from_secs(5)).unwrap();
        assert_eq!(
            polled,
            TaskPoll::Assigned {
                seq: 0,
                data: Bytes::from_static(b"precious"),
                tenant: DEFAULT_TENANT.into(),
            }
        );
        let stats = producer.stats().unwrap();
        assert_eq!(stats.tasks_submitted, 1);
        assert_eq!(stats.tasks_requeued, 1);
        assert_eq!(stats.tasks_assigned, 2); // once to the doomed, once to the survivor
        server.shutdown();
    }

    #[test]
    fn admission_verbs_over_inproc() {
        let addr: Addr = "inproc://space-admission".parse().unwrap();
        let server =
            SpaceServer::start_with(&addr, 1, Some(2), AdmissionPolicy::ShedOldest).unwrap();
        let producer = RemoteSpace::connect(&server.addr()).unwrap();
        assert_eq!(
            producer.sched_policy().unwrap(),
            (Some(2), AdmissionPolicy::ShedOldest)
        );
        assert_eq!(
            producer
                .submit_task_admission(Bytes::from_static(b"t0"))
                .unwrap(),
            Admission::Accepted { seq: 0 }
        );
        assert_eq!(
            producer
                .submit_task_admission(Bytes::from_static(b"t1"))
                .unwrap(),
            Admission::Accepted { seq: 1 }
        );
        // Queue full: the oldest task is shed to admit the new one.
        assert_eq!(
            producer
                .submit_task_admission(Bytes::from_static(b"t2"))
                .unwrap(),
            Admission::AcceptedShed {
                seq: 2,
                shed_seq: 0
            }
        );
        let stats = producer.stats().unwrap();
        assert_eq!(stats.tasks_shed, 1);
        assert_eq!(stats.tasks_rejected, 0);
        // The survivors drain FCFS; the shed task is gone.
        let bucket = RemoteSpace::connect(&server.addr()).unwrap();
        assert_eq!(
            bucket.request_task(0, Duration::from_secs(2)).unwrap(),
            TaskPoll::Assigned {
                seq: 1,
                data: Bytes::from_static(b"t1"),
                tenant: DEFAULT_TENANT.into(),
            }
        );
        assert_eq!(
            bucket.request_task(0, Duration::from_secs(2)).unwrap(),
            TaskPoll::Assigned {
                seq: 2,
                data: Bytes::from_static(b"t2"),
                tenant: DEFAULT_TENANT.into(),
            }
        );
        producer.close_sched().unwrap();
        assert_eq!(
            producer
                .submit_task_admission(Bytes::from_static(b"late"))
                .unwrap(),
            Admission::Closed
        );
        server.shutdown();
    }

    #[test]
    fn reject_new_over_rpc_reports_rejection() {
        let addr: Addr = "inproc://space-reject".parse().unwrap();
        let server =
            SpaceServer::start_with(&addr, 1, Some(1), AdmissionPolicy::RejectNew).unwrap();
        let producer = RemoteSpace::connect(&server.addr()).unwrap();
        assert_eq!(
            producer
                .submit_task_admission(Bytes::from_static(b"a"))
                .unwrap(),
            Admission::Accepted { seq: 0 }
        );
        assert_eq!(
            producer
                .submit_task_admission(Bytes::from_static(b"b"))
                .unwrap(),
            Admission::Rejected
        );
        // The legacy verb surfaces the refusal as a server error.
        assert!(matches!(
            producer.submit_task(Bytes::from_static(b"c")),
            Err(RemoteError::Server(_))
        ));
        assert_eq!(producer.stats().unwrap().tasks_rejected, 2);
        server.shutdown();
    }

    #[test]
    fn server_survives_malformed_frames() {
        let addr: Addr = "inproc://space-garbage".parse().unwrap();
        let server = SpaceServer::start(&addr, 1).unwrap();
        let bad = sitra_net::connect(&server.addr()).unwrap();
        bad.send(Bytes::from_static(b"\xFF\xFF\xFF")).unwrap();
        // Server answers with an error then hangs up.
        let resp = decode_response(bad.recv().unwrap()).unwrap();
        assert!(matches!(resp, Response::Error(_)));
        // A fresh, well-behaved client is unaffected.
        let good = RemoteSpace::connect(&server.addr()).unwrap();
        assert_eq!(good.latest_version("T").unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn control_frames_reach_the_installed_handler() {
        let addr: Addr = "inproc://space-control".parse().unwrap();
        let handler: ControlHandler = Arc::new(|data: Bytes| {
            let mut out = data.to_vec();
            out.reverse();
            Bytes::from(out)
        });
        let server = SpaceServer::start_custom(
            &addr,
            Arc::new(DataSpaces::new(1)),
            Scheduler::new(),
            Some(handler),
        )
        .unwrap();
        let client = RemoteSpace::connect(&server.addr()).unwrap();
        assert_eq!(
            client.control(Bytes::from_static(b"abc")).unwrap(),
            Bytes::from_static(b"cba")
        );
        // The data-plane verbs coexist on the same connection.
        assert_eq!(client.latest_version("T").unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn control_without_handler_is_a_server_error() {
        let addr: Addr = "inproc://space-nocontrol".parse().unwrap();
        let server = SpaceServer::start(&addr, 1).unwrap();
        let client = RemoteSpace::connect(&server.addr()).unwrap();
        assert!(matches!(
            client.control(Bytes::from_static(b"x")),
            Err(RemoteError::Server(_))
        ));
        server.shutdown();
    }

    #[test]
    fn tenant_binding_scopes_the_connection() {
        let addr: Addr = "inproc://space-tenant".parse().unwrap();
        let server = SpaceServer::start(&addr, 2).unwrap();
        let b = mk_bbox([0, 0, 0], [1, 1, 1]);
        let data = Bytes::from(vec![1u8; 64]);

        // Two tenants and one legacy client all put "T" version 1.
        let viz = RemoteSpace::connect(&server.addr()).unwrap();
        viz.set_tenant(&TenantSpec::new("viz").with_weight(2))
            .unwrap();
        let stats_client = RemoteSpace::connect(&server.addr()).unwrap();
        stats_client.set_tenant(&TenantSpec::new("stats")).unwrap();
        let legacy = RemoteSpace::connect(&server.addr()).unwrap();
        viz.put("T", 1, b, data.clone()).unwrap();
        stats_client.put("T", 1, b, data.clone()).unwrap();
        legacy.put("T", 1, b, data.clone()).unwrap();

        // Each sees exactly its own piece under the same name.
        assert_eq!(viz.get("T", 1, &b).unwrap().len(), 1);
        assert_eq!(stats_client.get("T", 1, &b).unwrap().len(), 1);
        assert_eq!(legacy.get("T", 1, &b).unwrap().len(), 1);

        // Tenant-scoped eviction spares the neighbours.
        viz.evict_version(1).unwrap();
        assert!(viz.get("T", 1, &b).unwrap().is_empty());
        assert_eq!(stats_client.get("T", 1, &b).unwrap().len(), 1);
        assert_eq!(legacy.get("T", 1, &b).unwrap().len(), 1);

        // Task submissions are attributed per tenant.
        viz.submit_task(Bytes::from_static(b"v0")).unwrap();
        stats_client.submit_task(Bytes::from_static(b"s0")).unwrap();
        legacy.submit_task(Bytes::from_static(b"l0")).unwrap();
        let rows = viz.tenant_stats().unwrap();
        let row = |name: &str| rows.iter().find(|r| r.name == name).unwrap().clone();
        assert_eq!(row("viz").tasks_submitted, 1);
        assert_eq!(row("viz").weight, 2);
        assert_eq!(row("stats").tasks_submitted, 1);
        assert_eq!(row("default").tasks_submitted, 1);
        assert_eq!(row("stats").resident_bytes, 64);
        assert_eq!(row("viz").resident_bytes, 0, "evicted");
        server.shutdown();
    }

    #[test]
    fn byte_quota_refusal_is_a_server_error() {
        let addr: Addr = "inproc://space-bytequota".parse().unwrap();
        let server = SpaceServer::start(&addr, 1).unwrap();
        let c = RemoteSpace::connect(&server.addr()).unwrap();
        c.set_tenant(&TenantSpec::new("small").with_byte_quota(100))
            .unwrap();
        let b = mk_bbox([0, 0, 0], [1, 1, 1]);
        c.put("T", 1, b, Bytes::from(vec![0u8; 80])).unwrap();
        let err = c.put("T", 2, b, Bytes::from(vec![0u8; 80])).unwrap_err();
        assert!(matches!(err, RemoteError::Server(_)), "{err}");
        assert!(!err.is_retryable(), "quota refusal must not be retried");
        // Redelivery of the SAME piece replaces and stays admitted.
        c.put("T", 1, b, Bytes::from(vec![1u8; 80])).unwrap();
        server.shutdown();
    }

    #[test]
    fn pool_verbs_over_inproc() {
        let addr: Addr = "inproc://space-pool".parse().unwrap();
        let server = SpaceServer::start(&addr, 1).unwrap();
        server
            .scheduler()
            .set_placement(Arc::new(crate::pool::LocalityPlacement));
        let producer = RemoteSpace::connect(&server.addr()).unwrap();

        // Empty located poll: bucket registers at its location, times out.
        let bucket = RemoteSpace::connect(&server.addr()).unwrap();
        assert_eq!(
            bucket
                .request_task_located(0, Duration::from_millis(40), "tcp://m0:1")
                .unwrap(),
            TaskPoll::Empty
        );
        // A hinted submission lands on the co-located bucket and the
        // saved bytes show up in pool stats.
        assert_eq!(
            producer
                .submit_task_hinted(
                    Bytes::from_static(b"near"),
                    vec![("tcp://m0:1".into(), 2048)],
                )
                .unwrap(),
            Admission::Accepted { seq: 0 }
        );
        assert_eq!(
            bucket
                .request_task_located(0, Duration::from_secs(2), "tcp://m0:1")
                .unwrap(),
            TaskPoll::Assigned {
                seq: 0,
                data: Bytes::from_static(b"near"),
                tenant: DEFAULT_TENANT.into(),
            }
        );
        let pool = producer.pool_stats().unwrap();
        assert_eq!(pool.placement, "locality");
        assert_eq!(pool.buckets, 1);
        assert_eq!(pool.queue_depth, 0);
        assert_eq!(pool.locality_bytes_saved, 2048);
        assert_eq!(pool.desired, None);

        // Draining the bucket turns its next poll into Retire; other
        // verbs keep working on the same connection afterwards.
        server.scheduler().begin_drain(0);
        assert_eq!(
            bucket
                .request_task_located(0, Duration::from_secs(2), "tcp://m0:1")
                .unwrap(),
            TaskPoll::Retire
        );
        assert_eq!(producer.pool_stats().unwrap().buckets, 0);
        server.shutdown();
    }

    #[test]
    fn works_over_tcp_loopback() {
        let bind: Addr = "tcp://127.0.0.1:0".parse().unwrap();
        let server = SpaceServer::start(&bind, 2).unwrap();
        let client = RemoteSpace::connect_retry(&server.addr(), &Backoff::default()).unwrap();
        let b = mk_bbox([0, 0, 0], [2, 2, 2]);
        client
            .put("T", 1, b, Bytes::from(vec![7u8; 27 * 8]))
            .unwrap();
        let pieces = client.get("T", 1, &b).unwrap();
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].1.len(), 27 * 8);
        let cs = client.conn_stats();
        assert_eq!(cs.frames_sent, 2);
        assert_eq!(cs.frames_recv, 2);
        server.shutdown();
    }
}
