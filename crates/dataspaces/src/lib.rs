//! # sitra-dataspaces
//!
//! An in-process reimplementation of **DataSpaces** (Docan, Parashar,
//! Klasky, HPDC'10) — the distributed interaction and coordination
//! service the paper's staging framework is built on — together with the
//! paper's in-transit **task scheduler**.
//!
//! Three pieces:
//!
//! * [`space`] — the semantically specialized shared space: versioned,
//!   named, bounding-box-indexed data objects sharded over multiple
//!   server instances by hashing (the paper credits this hashing with
//!   balancing RPC load over the DataSpaces servers). Clients `put`
//!   regions and `get` arbitrary query boxes; the service returns every
//!   stored piece intersecting the query and the client assembles them.
//! * [`sched`] — the pull-based scheduler: in-situ ranks insert
//!   *data-ready* task descriptors into the task queue; staging buckets
//!   announce themselves *bucket-ready* and are assigned tasks
//!   first-come-first-served from the free-bucket list. This asynchronous
//!   pull model is what absorbs the heterogeneity of analysis run times
//!   and temporally multiplexes successive timesteps over buckets.
//! * [`codec`] — `ScalarField` ⇄ bytes for shipping blocks through the
//!   space or the DART transport.

pub mod codec;
pub mod pool;
pub mod remote;
pub mod sched;
pub mod space;
pub mod steer;
pub mod tenant;

pub use codec::{bytes_to_field, field_to_bytes};
pub use pool::{
    AutoscaleConfig, Autoscaler, BucketCandidate, BucketState, FcfsPlacement, LocalityPlacement,
    Placement, PoolSnapshot, ResidencyHint, ScaleDecision,
};
pub use remote::{
    ControlHandler, PoolStats, RemoteError, RemoteSpace, RemoteStats, SpaceServer, TaskPoll,
    TenantRow,
};
pub use sched::{
    Admission, AdmissionPolicy, BucketHandle, Lease, SchedStats, Scheduler, TenantSchedStats,
    TenantSnapshot,
};
pub use space::{DataSpaces, ObjectMeta, QuotaExceeded, SpaceStats};
pub use steer::{
    decode_steer_msg, decode_steer_reply, encode_steer_msg, encode_steer_reply, reduce_image,
    replay_steer, SteerAccounting, SteerClient, SteerFrame, SteerMsg, SteerPublisher, SteerReply,
    SteerServer,
};
pub use tenant::{scoped_var, tenant_of_var, TenantSpec, DEFAULT_TENANT};
