//! Field serialization for transport through the space and DART.

use bytes::Bytes;
use sitra_mesh::{BBox3, ScalarField};

/// Serialize a field's values as little-endian f64 (the bbox travels in
/// the object metadata, not the payload).
pub fn field_to_bytes(field: &ScalarField) -> Bytes {
    let mut out = Vec::with_capacity(field.len() * 8);
    for v in field.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Reconstruct a field over `bbox` from little-endian f64 bytes. Panics
/// if the byte length does not match the region.
pub fn bytes_to_field(bbox: BBox3, data: &Bytes) -> ScalarField {
    assert_eq!(
        data.len(),
        bbox.count() * 8,
        "payload length does not match region"
    );
    let mut vals = Vec::with_capacity(bbox.count());
    for c in data.chunks_exact(8) {
        vals.push(f64::from_le_bytes(c.try_into().unwrap()));
    }
    ScalarField::from_vec(bbox, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let b = BBox3::new([1, 2, 3], [4, 5, 6]);
        let f = ScalarField::from_fn(b, |p| p[0] as f64 * 0.5 - p[2] as f64);
        let bytes = field_to_bytes(&f);
        assert_eq!(bytes.len(), 27 * 8);
        assert_eq!(bytes_to_field(b, &bytes), f);
    }

    #[test]
    fn preserves_special_values() {
        let b = BBox3::from_dims([4, 1, 1]);
        let f = ScalarField::from_vec(b, vec![f64::NAN, f64::INFINITY, -0.0, 1e-300]);
        let back = bytes_to_field(b, &field_to_bytes(&f));
        assert!(back.get_linear(0).is_nan());
        assert_eq!(back.get_linear(1), f64::INFINITY);
        assert_eq!(back.get_linear(2).to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.get_linear(3), 1e-300);
    }

    #[test]
    #[should_panic]
    fn wrong_length_panics() {
        let b = BBox3::from_dims([2, 2, 2]);
        let _ = bytes_to_field(b, &Bytes::from(vec![0u8; 7]));
    }
}
