//! The elastic bucket pool: per-bucket lifecycle state, pluggable task
//! placement, and the pure autoscaling policy.
//!
//! The paper's scheduler treats staging buckets as an anonymous FCFS
//! free list — enough for a fixed-size staging partition, but a service
//! that grows under backlog and shrinks when idle needs to know *which*
//! buckets exist, what state each is in, and where each one runs:
//!
//! * `BucketPool` (crate-internal) replaces the scheduler's bare
//!   free-bucket queue. It
//!   keeps the parked (idle) buckets in arrival order — preserving the
//!   paper's FCFS bucket semantics — plus a metadata row per bucket:
//!   lifecycle [`BucketState`] and an optional *location* label (the
//!   endpoint or cluster member the bucket is co-resident with).
//! * [`Placement`] chooses which parked bucket receives the next task.
//!   [`FcfsPlacement`] (the default) always picks the head of the
//!   parked queue, which makes the degenerate fixed-pool configuration
//!   byte-identical to the pre-pool scheduler — the pinned chaos corpus
//!   and `backend_equivalence` hold bit-for-bit. [`LocalityPlacement`]
//!   scores candidates by the resident input bytes named in a
//!   [`ResidencyHint`] and prefers the bucket co-located with the shard
//!   holding the most input, crediting the avoided movement to the
//!   scheduler's `locality_bytes_saved` metric.
//! * [`Autoscaler`] is the capacity controller: a pure decision
//!   function from a [`PoolSnapshot`] (queue depth, bucket counts, p99
//!   task queue-wait) to a [`ScaleDecision`], driven by a latency SLO.
//!   Keeping it pure makes every scaling trajectory unit-testable with
//!   synthetic snapshots; the impure parts (spawning worker threads,
//!   draining buckets) live with whoever owns the workers — the local
//!   staging backend or `sitra-staged`.
//!
//! Lifecycle: a worker registers and leases tasks (Idle ⇄ Busy); a
//! shrink decision marks it Draining — it finishes its current task,
//! and its next lease request retires it (Retired) instead of parking.
//! A draining bucket killed mid-task loses nothing: the two-phase
//! hand-off requeues the unacknowledged task exactly as for any other
//! lost consumer.

use crate::sched::BucketId;
use crossbeam::channel::Sender;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// What [`BucketPool::take_for`] hands back: the chosen bucket, its
/// task channel, and the movement bytes the placement avoided.
pub(crate) type TakenBucket<T> = (BucketId, Sender<(u64, T)>, u64);

/// Lifecycle state of one staging bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketState {
    /// Parked on the free list, waiting for a task.
    Idle,
    /// Leased a task (or between lease requests).
    Busy,
    /// Marked for retirement: finishes its current task, then its next
    /// lease request returns the retire signal instead of a task.
    Draining,
    /// Done: the bucket observed the retire signal and exited.
    Retired,
}

/// Where a task's input bytes currently live, as `(location, bytes)`
/// rows. Locations are whatever label the deployment registers buckets
/// under — a server endpoint in single-space mode, a cluster member's
/// endpoint when the consistent-hash ring decides residency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidencyHint {
    /// Resident input bytes per location.
    pub bytes_at: Vec<(String, u64)>,
}

impl ResidencyHint {
    /// A hint placing all `bytes` at one `location` (the single-space
    /// case: everything is resident with the one server).
    pub fn single(location: impl Into<String>, bytes: u64) -> Self {
        ResidencyHint {
            bytes_at: vec![(location.into(), bytes)],
        }
    }

    /// Add `bytes` to `location`'s row, creating it if absent.
    pub fn add(&mut self, location: &str, bytes: u64) {
        match self.bytes_at.iter_mut().find(|(l, _)| l == location) {
            Some((_, b)) => *b += bytes,
            None => self.bytes_at.push((location.to_string(), bytes)),
        }
    }

    /// Total input bytes across all locations.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_at.iter().map(|(_, b)| b).sum()
    }

    /// Bytes resident at `location`.
    pub fn bytes_at(&self, location: &str) -> u64 {
        self.bytes_at
            .iter()
            .find(|(l, _)| l == location)
            .map_or(0, |(_, b)| *b)
    }

    /// Whether the hint carries no information.
    pub fn is_empty(&self) -> bool {
        self.bytes_at.iter().all(|(_, b)| *b == 0)
    }
}

/// One parked bucket as seen by a [`Placement`] policy.
#[derive(Debug, Clone, Copy)]
pub struct BucketCandidate<'a> {
    /// The bucket's id.
    pub id: BucketId,
    /// The bucket's registered location, if any.
    pub location: Option<&'a str>,
}

/// Chooses which parked bucket receives the next task. `candidates` is
/// the parked list in FCFS (arrival) order and is never empty. Returns
/// the index of the chosen candidate plus the input bytes the choice
/// avoids moving (0 when the policy did not use locality).
pub trait Placement: Send + Sync {
    /// Policy name, for journal events and stats surfaces.
    fn name(&self) -> &'static str;

    /// Pick a candidate for a task with optional residency `hint`.
    fn choose(
        &self,
        candidates: &[BucketCandidate<'_>],
        hint: Option<&ResidencyHint>,
    ) -> (usize, u64);
}

/// The default policy: first parked, first served — exactly the
/// pre-pool free-list behaviour, byte-identical in assignment order.
#[derive(Debug, Default, Clone, Copy)]
pub struct FcfsPlacement;

impl Placement for FcfsPlacement {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn choose(
        &self,
        _candidates: &[BucketCandidate<'_>],
        _hint: Option<&ResidencyHint>,
    ) -> (usize, u64) {
        (0, 0)
    }
}

/// Locality-aware placement: prefer the parked bucket whose location
/// holds the most of the task's input bytes; the bytes resident there
/// are movement avoided. Ties — and tasks without a hint — fall back to
/// FCFS order, so a locality pool degrades gracefully to the default
/// policy when producers do not hint.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalityPlacement;

impl Placement for LocalityPlacement {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn choose(
        &self,
        candidates: &[BucketCandidate<'_>],
        hint: Option<&ResidencyHint>,
    ) -> (usize, u64) {
        let Some(hint) = hint else { return (0, 0) };
        let mut best = (0usize, 0u64);
        for (i, cand) in candidates.iter().enumerate() {
            let here = cand.location.map_or(0, |loc| hint.bytes_at(loc));
            // Strictly-greater keeps ties FCFS: the earliest-parked
            // bucket among equals wins, like the default policy.
            if here > best.1 {
                best = (i, here);
            }
        }
        best
    }
}

struct BucketMeta {
    state: BucketState,
    location: Option<String>,
}

/// The scheduler's bucket roster: parked buckets in FCFS order plus
/// per-bucket lifecycle state, capacity target, and the placement
/// policy. Owned by the scheduler's lock; every method is called with
/// that lock held.
pub(crate) struct BucketPool<T> {
    /// Parked (idle) buckets in arrival order, each with the one-shot
    /// channel its blocked lease request is waiting on.
    parked: VecDeque<(BucketId, Sender<(u64, T)>)>,
    meta: HashMap<BucketId, BucketMeta>,
    placement: Arc<dyn Placement>,
    /// Desired bucket count, when a capacity controller has set one.
    /// `None` = legacy fixed pool: no retirement ever fires.
    target: Option<usize>,
}

impl<T> BucketPool<T> {
    pub(crate) fn new() -> Self {
        BucketPool {
            parked: VecDeque::new(),
            meta: HashMap::new(),
            placement: Arc::new(FcfsPlacement),
            target: None,
        }
    }

    pub(crate) fn set_placement(&mut self, placement: Arc<dyn Placement>) {
        self.placement = placement;
    }

    pub(crate) fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    pub(crate) fn set_target(&mut self, target: Option<usize>) {
        self.target = target;
    }

    pub(crate) fn target(&self) -> Option<usize> {
        self.target
    }

    /// Record (or update) a bucket's location label.
    pub(crate) fn set_location(&mut self, id: BucketId, location: Option<String>) {
        let m = self.meta.entry(id).or_insert(BucketMeta {
            state: BucketState::Busy,
            location: None,
        });
        if location.is_some() {
            m.location = location;
        }
    }

    /// Note that `id` exists and is active (first lease request or an
    /// immediate assignment without parking).
    pub(crate) fn note_busy(&mut self, id: BucketId) {
        let m = self.meta.entry(id).or_insert(BucketMeta {
            state: BucketState::Busy,
            location: None,
        });
        if m.state != BucketState::Draining {
            m.state = BucketState::Busy;
        }
    }

    /// Park `id` on the free list.
    pub(crate) fn park(&mut self, id: BucketId, tx: Sender<(u64, T)>) {
        self.parked.push_back((id, tx));
        let m = self.meta.entry(id).or_insert(BucketMeta {
            state: BucketState::Idle,
            location: None,
        });
        m.state = BucketState::Idle;
    }

    /// Withdraw a timed-out bucket from the free list (it may already
    /// have been taken by a racing assignment — that is fine, the
    /// caller rescues the task from its channel).
    pub(crate) fn withdraw(&mut self, id: BucketId) {
        self.parked.retain(|(b, _)| *b != id);
        if let Some(m) = self.meta.get_mut(&id) {
            if m.state == BucketState::Idle {
                m.state = BucketState::Busy;
            }
        }
    }

    /// Movement bytes avoided when `id` takes a task directly off the
    /// queue (nobody else was parked, so there is no choice to make —
    /// but the assignment still avoids moving whatever input already
    /// sits at the bucket's location). The policy scores the single
    /// candidate; FCFS scores everything 0.
    pub(crate) fn immediate_saved(&self, id: BucketId, hint: Option<&ResidencyHint>) -> u64 {
        let location = self.meta.get(&id).and_then(|m| m.location.as_deref());
        let cand = [BucketCandidate { id, location }];
        self.placement.choose(&cand, hint).1
    }

    pub(crate) fn has_parked(&self) -> bool {
        !self.parked.is_empty()
    }

    pub(crate) fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Buckets not yet retired (the live pool size).
    pub(crate) fn active_len(&self) -> usize {
        self.meta
            .values()
            .filter(|m| m.state != BucketState::Retired)
            .count()
    }

    pub(crate) fn state(&self, id: BucketId) -> Option<BucketState> {
        self.meta.get(&id).map(|m| m.state)
    }

    /// Pick a parked bucket for a task via the placement policy and
    /// remove it from the free list. Returns the bucket, its channel,
    /// and the movement bytes the placement avoided.
    pub(crate) fn take_for(&mut self, hint: Option<&ResidencyHint>) -> Option<TakenBucket<T>> {
        if self.parked.is_empty() {
            return None;
        }
        let (idx, saved) = {
            let cands: Vec<BucketCandidate<'_>> = self
                .parked
                .iter()
                .map(|(id, _)| BucketCandidate {
                    id: *id,
                    location: self.meta.get(id).and_then(|m| m.location.as_deref()),
                })
                .collect();
            self.placement.choose(&cands, hint)
        };
        // A policy returning an out-of-range index is clamped rather
        // than trusted: placement must never lose a task.
        let idx = idx.min(self.parked.len() - 1);
        let (id, tx) = self.parked.remove(idx).expect("idx clamped in range");
        self.note_busy(id);
        Some((id, tx, saved))
    }

    /// Mark `id` Draining. If it is parked, it is removed from the free
    /// list and its channel dropped, waking the blocked lease request
    /// with the retire signal; if busy, it finishes its current task
    /// and retires on its next lease request.
    pub(crate) fn begin_drain(&mut self, id: BucketId) -> bool {
        let Some(m) = self.meta.get_mut(&id) else {
            return false;
        };
        if matches!(m.state, BucketState::Retired | BucketState::Draining) {
            return false;
        }
        m.state = BucketState::Draining;
        self.parked.retain(|(b, _)| *b != id);
        true
    }

    /// Pick an idle bucket to drain (the most recently parked, so the
    /// longest-idle buckets keep serving FCFS), else any busy one.
    pub(crate) fn drain_one(&mut self) -> Option<BucketId> {
        let id = self.parked.back().map(|(id, _)| *id).or_else(|| {
            self.meta
                .iter()
                .filter(|(_, m)| m.state == BucketState::Busy)
                .map(|(id, _)| *id)
                .max()
        })?;
        self.begin_drain(id).then_some(id)
    }

    /// Consume a pending retirement: when `id` is Draining this flips
    /// it to Retired and returns true — the caller answers the lease
    /// request with the retire signal instead of a task.
    pub(crate) fn take_retirement(&mut self, id: BucketId) -> bool {
        match self.meta.get_mut(&id) {
            Some(m) if m.state == BucketState::Draining => {
                m.state = BucketState::Retired;
                true
            }
            Some(m) if m.state == BucketState::Retired => true,
            _ => false,
        }
    }

    /// Drop every parked bucket's channel (scheduler close).
    pub(crate) fn clear_parked(&mut self) {
        self.parked.clear();
    }
}

// --------------------------------------------------------------------
// Autoscaler
// --------------------------------------------------------------------

/// Configuration of the capacity controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscaleConfig {
    /// Never drain below this many buckets.
    pub min_buckets: usize,
    /// Never grow past this many buckets.
    pub max_buckets: usize,
    /// The p99 task queue-wait objective. Sustained breaches grow the
    /// pool; a comfortably met SLO with idle buckets shrinks it.
    pub slo: Duration,
    /// Consecutive breached ticks before a grow fires, and consecutive
    /// idle ticks before a shrink fires — hysteresis against flapping
    /// on a single noisy sample.
    pub sustain_ticks: u32,
}

impl AutoscaleConfig {
    /// A controller holding the pool between `min` and `max` buckets
    /// against a p99 queue-wait `slo`.
    pub fn new(min: usize, max: usize, slo: Duration) -> Self {
        AutoscaleConfig {
            min_buckets: min.max(1),
            max_buckets: max.max(min.max(1)),
            slo,
            sustain_ticks: 2,
        }
    }
}

/// What the controller reads each tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Live (non-retired) buckets.
    pub buckets: usize,
    /// Of those, currently parked idle.
    pub idle: usize,
    /// Tasks queued (not yet assigned).
    pub queue_depth: usize,
    /// p99 of recent task queue-waits.
    pub p99_wait: Duration,
}

/// One tick's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Capacity is right (or a change is still sustaining).
    Hold,
    /// Add this many buckets.
    Grow(usize),
    /// Drain-then-retire this many buckets.
    Shrink(usize),
}

/// The pure autoscaling policy: feed it a [`PoolSnapshot`] per control
/// tick, apply whatever it decides. Deterministic — identical snapshot
/// sequences produce identical decision sequences, which is what makes
/// scale trajectories unit-testable and journal replays faithful.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    hot_ticks: u32,
    cold_ticks: u32,
}

impl Autoscaler {
    /// A controller with `cfg`.
    pub fn new(cfg: AutoscaleConfig) -> Self {
        Autoscaler {
            cfg,
            hot_ticks: 0,
            cold_ticks: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// One control tick.
    pub fn decide(&mut self, s: &PoolSnapshot) -> ScaleDecision {
        let buckets = s.buckets.max(1);
        // Hot: backlog waiting with nobody idle, or the SLO breached.
        let hot = (s.queue_depth > 0 && s.idle == 0) || s.p99_wait > self.cfg.slo;
        // Cold: empty queue, comfortably under the SLO, spare capacity.
        let cold = s.queue_depth == 0 && s.idle > 0 && s.p99_wait <= self.cfg.slo / 2;
        if hot {
            self.cold_ticks = 0;
            self.hot_ticks += 1;
            if self.hot_ticks >= self.cfg.sustain_ticks && buckets < self.cfg.max_buckets {
                self.hot_ticks = 0;
                // Step proportionally to the backlog per live bucket,
                // but at least one and never past the ceiling.
                let step = (s.queue_depth / buckets).clamp(1, self.cfg.max_buckets - buckets);
                return ScaleDecision::Grow(step);
            }
        } else if cold {
            self.hot_ticks = 0;
            self.cold_ticks += 1;
            // Shrinking is deliberately slower than growing (one bucket
            // per sustained-cold window, double the sustain): capacity
            // mistakes under backlog cost SLO, mistakes when idle only
            // cost a warm thread.
            if self.cold_ticks >= self.cfg.sustain_ticks * 2 && buckets > self.cfg.min_buckets {
                self.cold_ticks = 0;
                return ScaleDecision::Shrink(1);
            }
        } else {
            self.hot_ticks = 0;
            self.cold_ticks = 0;
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: BucketId, location: Option<&'static str>) -> BucketCandidate<'static> {
        BucketCandidate { id, location }
    }

    #[test]
    fn fcfs_placement_always_picks_the_head() {
        let p = FcfsPlacement;
        let cands = [cand(3, Some("a")), cand(1, Some("b")), cand(2, None)];
        let hint = ResidencyHint::single("b", 1 << 20);
        assert_eq!(p.choose(&cands, Some(&hint)), (0, 0));
        assert_eq!(p.choose(&cands, None), (0, 0));
    }

    #[test]
    fn locality_placement_prefers_the_heaviest_location() {
        let p = LocalityPlacement;
        let cands = [
            cand(0, Some("m0")),
            cand(1, Some("m1")),
            cand(2, Some("m2")),
        ];
        let mut hint = ResidencyHint::default();
        hint.add("m1", 300);
        hint.add("m2", 900);
        hint.add("m0", 100);
        assert_eq!(p.choose(&cands, Some(&hint)), (2, 900));
        // No hint: FCFS fallback.
        assert_eq!(p.choose(&cands, None), (0, 0));
        // Ties keep FCFS order among equals.
        let tie = ResidencyHint {
            bytes_at: vec![("m0".into(), 500), ("m2".into(), 500)],
        };
        assert_eq!(p.choose(&cands, Some(&tie)), (0, 500));
        // Unlocated buckets score zero.
        let unloc = [cand(7, None), cand(8, Some("m2"))];
        assert_eq!(p.choose(&unloc, Some(&hint)), (1, 900));
    }

    #[test]
    fn residency_hint_accumulates_and_sums() {
        let mut h = ResidencyHint::default();
        assert!(h.is_empty());
        h.add("a", 10);
        h.add("b", 5);
        h.add("a", 7);
        assert_eq!(h.bytes_at("a"), 17);
        assert_eq!(h.bytes_at("b"), 5);
        assert_eq!(h.bytes_at("c"), 0);
        assert_eq!(h.total_bytes(), 22);
        assert!(!h.is_empty());
    }

    #[test]
    fn autoscaler_grows_under_sustained_backlog_only() {
        let mut a = Autoscaler::new(AutoscaleConfig::new(1, 8, Duration::from_millis(50)));
        let hot = PoolSnapshot {
            buckets: 2,
            idle: 0,
            queue_depth: 6,
            p99_wait: Duration::from_millis(200),
        };
        // First hot tick sustains, second fires, proportional step.
        assert_eq!(a.decide(&hot), ScaleDecision::Hold);
        assert_eq!(a.decide(&hot), ScaleDecision::Grow(3));
        // A single hot tick interleaved with recovery never fires.
        let ok = PoolSnapshot {
            buckets: 5,
            idle: 2,
            queue_depth: 0,
            p99_wait: Duration::from_millis(1),
        };
        assert_eq!(a.decide(&hot), ScaleDecision::Hold);
        assert_eq!(a.decide(&ok), ScaleDecision::Hold);
        assert_eq!(a.decide(&hot), ScaleDecision::Hold);
    }

    #[test]
    fn autoscaler_respects_bounds_and_shrinks_slowly() {
        let mut a = Autoscaler::new(AutoscaleConfig::new(2, 4, Duration::from_millis(50)));
        let hot = PoolSnapshot {
            buckets: 4,
            idle: 0,
            queue_depth: 100,
            p99_wait: Duration::from_secs(1),
        };
        // At the ceiling: never grows.
        for _ in 0..10 {
            assert_eq!(a.decide(&hot), ScaleDecision::Hold);
        }
        let cold = PoolSnapshot {
            buckets: 4,
            idle: 3,
            queue_depth: 0,
            p99_wait: Duration::ZERO,
        };
        // Shrink needs 2× the grow sustain.
        assert_eq!(a.decide(&cold), ScaleDecision::Hold);
        assert_eq!(a.decide(&cold), ScaleDecision::Hold);
        assert_eq!(a.decide(&cold), ScaleDecision::Hold);
        assert_eq!(a.decide(&cold), ScaleDecision::Shrink(1));
        // At the floor: never shrinks.
        let floor = PoolSnapshot {
            buckets: 2,
            idle: 2,
            queue_depth: 0,
            p99_wait: Duration::ZERO,
        };
        for _ in 0..10 {
            assert_eq!(a.decide(&floor), ScaleDecision::Hold);
        }
    }

    #[test]
    fn pool_take_for_fcfs_matches_pop_front_order() {
        let mut pool: BucketPool<u32> = BucketPool::new();
        let chans: Vec<_> = (0..3)
            .map(|i| {
                let (tx, rx) = crossbeam::channel::bounded(1);
                pool.park(i, tx);
                rx
            })
            .collect();
        for want in 0..3u32 {
            let (id, _tx, saved) = pool.take_for(None).unwrap();
            assert_eq!(id, want);
            assert_eq!(saved, 0);
        }
        assert!(pool.take_for(None).is_none());
        drop(chans);
    }

    #[test]
    fn pool_drain_lifecycle_idle_and_busy() {
        let mut pool: BucketPool<u32> = BucketPool::new();
        let (tx, rx) = crossbeam::channel::bounded(1);
        pool.park(7, tx);
        assert_eq!(pool.state(7), Some(BucketState::Idle));
        // Draining a parked bucket removes it from the free list and
        // drops its sender, waking the parked lease request empty.
        assert!(pool.begin_drain(7));
        assert!(!pool.has_parked());
        assert!(rx.recv().is_err());
        assert!(pool.take_retirement(7));
        assert_eq!(pool.state(7), Some(BucketState::Retired));
        // Busy bucket: drains on its next lease request.
        pool.note_busy(9);
        assert!(pool.begin_drain(9));
        assert_eq!(pool.state(9), Some(BucketState::Draining));
        assert!(pool.take_retirement(9));
        // Retirement is idempotent; draining an already-retired bucket
        // is a no-op.
        assert!(pool.take_retirement(9));
        assert!(!pool.begin_drain(9));
        assert_eq!(pool.active_len(), 0);
    }

    #[test]
    fn pool_drain_one_prefers_the_most_recently_parked() {
        let mut pool: BucketPool<u32> = BucketPool::new();
        let rxs: Vec<_> = (0..3)
            .map(|i| {
                let (tx, rx) = crossbeam::channel::bounded(1);
                pool.park(i, tx);
                rx
            })
            .collect();
        assert_eq!(pool.drain_one(), Some(2));
        assert_eq!(pool.parked_len(), 2);
        // The head of the FCFS list is untouched.
        let (id, _, _) = pool.take_for(None).unwrap();
        assert_eq!(id, 0);
        drop(rxs);
    }
}
