//! Tenancy: named namespaces sharing one staging service.
//!
//! A **tenant** is an independent pipeline (or user) multiplexed onto a
//! shared staging deployment. The tenant model is deliberately small:
//!
//! * **Namespace** — a tenant's objects live under variable names
//!   prefixed with `"{tenant}\u{1f}"` ([`scoped_var`]), so two tenants
//!   can both put a variable called `T` without colliding, and every
//!   layer that already keys on the variable name (space shards, the
//!   cluster placement ring, shard handoff) carries the tenancy for
//!   free. The [`DEFAULT_TENANT`] is unprefixed, which keeps every
//!   pre-tenancy client, on-disk journal, and wire frame meaning exactly
//!   what it meant before.
//! * **Quotas** — bytes resident in the space and tasks queued in the
//!   scheduler, both enforced at admission time ([`TenantSpec`]).
//! * **Weight** — the tenant's share of the scheduler's deficit-round-
//!   robin rotation (see [`crate::sched`]): with every tenant
//!   backlogged, a weight-3 tenant is assigned three tasks for every one
//!   a weight-1 tenant gets.
//! * **Policy** — an optional per-tenant [`AdmissionPolicy`] override,
//!   so one tenant can block at its quota while another sheds.

use crate::sched::AdmissionPolicy;
use std::time::Duration;

/// The implicit tenant of every un-scoped client. Its variables are
/// stored un-prefixed and it has no quotas, which makes a pre-tenancy
/// deployment a single-tenant deployment by construction.
pub const DEFAULT_TENANT: &str = "default";

/// Separator between tenant name and variable name in scoped keys. A
/// unit separator cannot appear in tenant names ([`TenantSpec::parse`]
/// rejects it) so the split is unambiguous.
pub const TENANT_SEP: char = '\u{1f}';

/// Declaration of one tenant: its scheduling weight, quotas, and
/// optional admission-policy override.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant name (non-empty, no `\u{1f}`).
    pub name: String,
    /// Deficit-round-robin weight (clamped to at least 1).
    pub weight: u32,
    /// Bytes this tenant may keep resident in the space (`None` =
    /// unlimited). A put that would exceed it is refused server-side
    /// and the producer degrades that task in-situ.
    pub byte_quota: Option<u64>,
    /// Tasks this tenant may keep queued in the scheduler (`None` =
    /// unlimited). Enforced through the tenant's admission policy.
    pub task_quota: Option<usize>,
    /// Admission policy applied when *this tenant* is over its task
    /// quota (or the global queue is at capacity). `None` inherits the
    /// scheduler's global policy.
    pub policy: Option<AdmissionPolicy>,
}

impl TenantSpec {
    /// A weight-1, unlimited tenant.
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            byte_quota: None,
            task_quota: None,
            policy: None,
        }
    }

    /// Set the DRR weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Bound the bytes resident in the space.
    pub fn with_byte_quota(mut self, bytes: u64) -> Self {
        self.byte_quota = Some(bytes);
        self
    }

    /// Bound the tasks queued in the scheduler.
    pub fn with_task_quota(mut self, tasks: usize) -> Self {
        self.task_quota = Some(tasks);
        self
    }

    /// Override the admission policy for this tenant.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Parse the `sitra-staged --tenant` flag syntax:
    /// `NAME[:WEIGHT[:BYTE_QUOTA[:TASK_QUOTA[:POLICY]]]]` where a `0`
    /// quota means unlimited and `POLICY` is `block=MS`, `shed`, or
    /// `reject`. Examples: `viz:3`, `stats:1:16777216:8`,
    /// `bulk:1:0:4:shed`.
    pub fn parse(spec: &str) -> Result<TenantSpec, String> {
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or("");
        if name.is_empty() {
            return Err(format!("tenant spec `{spec}`: empty name"));
        }
        if name.contains(TENANT_SEP) {
            return Err(format!("tenant spec `{spec}`: name contains \\u{{1f}}"));
        }
        let mut out = TenantSpec::new(name);
        if let Some(w) = parts.next() {
            let w: u32 = w
                .parse()
                .map_err(|_| format!("tenant spec `{spec}`: bad weight `{w}`"))?;
            out.weight = w.max(1);
        }
        if let Some(b) = parts.next() {
            let b: u64 = b
                .parse()
                .map_err(|_| format!("tenant spec `{spec}`: bad byte quota `{b}`"))?;
            out.byte_quota = (b > 0).then_some(b);
        }
        if let Some(t) = parts.next() {
            let t: usize = t
                .parse()
                .map_err(|_| format!("tenant spec `{spec}`: bad task quota `{t}`"))?;
            out.task_quota = (t > 0).then_some(t);
        }
        if let Some(p) = parts.next() {
            out.policy = Some(parse_policy(p).ok_or_else(|| {
                format!("tenant spec `{spec}`: bad policy `{p}` (block=MS|shed|reject)")
            })?);
        }
        if let Some(extra) = parts.next() {
            return Err(format!("tenant spec `{spec}`: trailing `{extra}`"));
        }
        Ok(out)
    }
}

fn parse_policy(p: &str) -> Option<AdmissionPolicy> {
    match p {
        "shed" => Some(AdmissionPolicy::ShedOldest),
        "reject" => Some(AdmissionPolicy::RejectNew),
        _ => {
            let ms: u64 = p.strip_prefix("block=")?.parse().ok()?;
            Some(AdmissionPolicy::Block {
                max_wait: Duration::from_millis(ms),
            })
        }
    }
}

/// The stored variable name for `var` under `tenant`. The default
/// tenant stays un-prefixed so pre-tenancy keys are untouched.
pub fn scoped_var(tenant: &str, var: &str) -> String {
    if tenant == DEFAULT_TENANT {
        var.to_string()
    } else {
        format!("{tenant}{TENANT_SEP}{var}")
    }
}

/// Split a stored variable name into `(tenant, bare_var)`. Un-prefixed
/// names belong to the [`DEFAULT_TENANT`].
pub fn tenant_of_var(var: &str) -> (&str, &str) {
    match var.split_once(TENANT_SEP) {
        Some((tenant, bare)) if !tenant.is_empty() => (tenant, bare),
        _ => (DEFAULT_TENANT, var),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let t = TenantSpec::parse("viz:3:1048576:8:shed").unwrap();
        assert_eq!(t.name, "viz");
        assert_eq!(t.weight, 3);
        assert_eq!(t.byte_quota, Some(1048576));
        assert_eq!(t.task_quota, Some(8));
        assert_eq!(t.policy, Some(AdmissionPolicy::ShedOldest));
    }

    #[test]
    fn parse_defaults_and_zero_means_unlimited() {
        let t = TenantSpec::parse("stats").unwrap();
        assert_eq!(t.weight, 1);
        assert_eq!(t.byte_quota, None);
        assert_eq!(t.task_quota, None);
        assert_eq!(t.policy, None);
        let t = TenantSpec::parse("bulk:2:0:0").unwrap();
        assert_eq!(t.byte_quota, None);
        assert_eq!(t.task_quota, None);
        let t = TenantSpec::parse("slow:1:0:4:block=250").unwrap();
        assert_eq!(
            t.policy,
            Some(AdmissionPolicy::Block {
                max_wait: Duration::from_millis(250)
            })
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(TenantSpec::parse("").is_err());
        assert!(TenantSpec::parse(":2").is_err());
        assert!(TenantSpec::parse("a:x").is_err());
        assert!(TenantSpec::parse("a:1:y").is_err());
        assert!(TenantSpec::parse("a:1:0:z").is_err());
        assert!(TenantSpec::parse("a:1:0:0:nope").is_err());
        assert!(TenantSpec::parse("a:1:0:0:shed:extra").is_err());
        assert!(TenantSpec::parse("a\u{1f}b").is_err());
    }

    #[test]
    fn weight_zero_clamps_to_one() {
        assert_eq!(TenantSpec::parse("t:0").unwrap().weight, 1);
    }

    #[test]
    fn scoping_roundtrip() {
        assert_eq!(scoped_var(DEFAULT_TENANT, "T"), "T");
        let s = scoped_var("viz", "T");
        assert_eq!(tenant_of_var(&s), ("viz", "T"));
        assert_eq!(tenant_of_var("T"), (DEFAULT_TENANT, "T"));
    }
}
